"""Legacy setup shim.

``pip install -e .`` needs the ``wheel`` package for PEP 660 editable
installs; this offline environment lacks it, so ``python setup.py develop``
provides the equivalent editable install.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
