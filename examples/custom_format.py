"""Defining a *custom* format and getting conversions for free (Section 3).

A user adds a new target format by providing exactly the three
specifications the paper asks for — a coordinate remapping, level formats
(which carry their attribute queries), and nothing else.  The compiler
then generates conversion routines from *every* existing source format,
with no per-pair code.

Here we define two formats not in the library:

* ``CBCOO`` — column-major COO (nonzeros ordered by column, then row),
  via the remapping ``(i,j) -> (j,i)`` over COO's level formats;
* ``BDIA``  — a 64-row-banded block-diagonal-ish format using the
  remapping ``(i,j) -> (i/B, i, j)`` (group rows into bands of B).

    python examples/custom_format.py
"""

import repro
from repro.formats import COO, CSR, make_format
from repro.levels import CompressedLevel, DenseLevel, SingletonLevel
from repro.matrices.synthetic import random_matrix


def main() -> None:
    # -- column-major COO ---------------------------------------------------
    cbcoo = make_format(
        "CBCOO",
        "(i,j) -> (j, i)",
        [CompressedLevel(unique=False, ordered=False), SingletonLevel(ordered=False)],
        inverse_text="(j,i) -> (i, j)",
    )

    # -- row-banded format: band id is i/B, rows dense inside, columns
    #    compressed per row (a simple custom blocked-CSR flavour) ----------
    bdia = make_format(
        "BandedRows",
        "(i,j) -> (i/B, i%B, j)",
        [DenseLevel(), DenseLevel(), CompressedLevel(ordered=False)],
        inverse_text="(b,r,j) -> (b*B+r, j)",
        params={"B": 64},
    )

    dims, coords, vals = random_matrix(256, 256, 2000, seed=21)
    coo = repro.build(COO, dims, coords, vals)

    for fmt in (cbcoo, bdia):
        converted = repro.convert(coo, fmt)
        converted.check()
        assert converted.to_coo() == coo.to_coo()
        print(f"COO -> {fmt.name}: OK ({converted.nnz} nonzeros preserved)")
        # and back again, and sideways from CSR — all generated:
        back = repro.convert(converted, COO)
        assert back.to_coo() == coo.to_coo()
        csr = repro.build(CSR, dims, coords, vals)
        sideways = repro.convert(csr, fmt)
        assert sideways.to_coo() == coo.to_coo()
        print(f"{fmt.name} -> COO and CSR -> {fmt.name}: OK")

    # register once, then the format is addressable by name everywhere
    # (convert(), Tensor.to(), the CLI, the bench harness)
    repro.register_format(cbcoo)
    by_name = repro.convert(coo, "cbcoo")
    assert by_name.to_coo() == coo.to_coo()
    print('register_format(cbcoo); convert(coo, "cbcoo"): OK')

    print("\n--- generated CSR -> BandedRows routine ---")
    print(repro.generated_source(repro.formats.CSR, bdia))


if __name__ == "__main__":
    main()
