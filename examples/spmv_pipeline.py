"""The import → convert → compute pipeline of the paper's introduction.

A banded matrix (a 5-point stencil, like jnlbrng1 in Table 2) is imported
in COO, converted with generated routines to CSR / DIA / ELL, and SpMV is
timed in every format.  On banded matrices DIA's contiguous, vectorizable
diagonals win — which is exactly why applications pay for the conversion,
and why the conversion itself must be fast (Section 1).

    python examples/spmv_pipeline.py
"""

import time

import numpy as np

import repro
from repro.formats import COO, CSR, DIA, ELL
from repro.kernels import spmv
from repro.matrices.synthetic import stencil


def bench(label, fn, repeats=5):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    best = min(times) * 1e3
    print(f"  {label:28s} {best:8.3f} ms")
    return best


def main() -> None:
    n = 40_000
    dims, coords, vals = stencil(n, [0, -1, 1, -200, 200], seed=7)
    print(f"5-point stencil: {n}x{n}, {len(coords)} nonzeros")

    coo = repro.build(COO, dims, coords, vals)
    x = np.random.default_rng(0).uniform(-1, 1, n)

    print("\nconversion (generated routines):")
    tensors = {"COO": coo}
    for fmt in (CSR, DIA, ELL):
        start = time.perf_counter()
        tensors[fmt.name] = repro.convert(coo, fmt)
        print(f"  COO -> {fmt.name:4s} {(time.perf_counter() - start) * 1e3:8.1f} ms")

    print("\nSpMV in each format:")
    reference = spmv(tensors["CSR"], x)
    for name, tensor in tensors.items():
        result = spmv(tensor, x)
        np.testing.assert_allclose(result, reference, atol=1e-9)
        bench(f"y = A@x  [{name}]", lambda t=tensor: spmv(t, x))

    print("\nDIA stores", tensors["DIA"].meta(0, "K"), "diagonals;"
          " its SpMV runs on contiguous slices — the payoff that motivates"
          " fast conversion.")


if __name__ == "__main__":
    main()
