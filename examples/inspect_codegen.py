"""Print the generated routines for all seven evaluated conversions.

Compare the output with the paper's Figure 6 — the three background-color
phases appear as comments in the generated Python.

    python examples/inspect_codegen.py [pair]
"""

import sys

from repro import generated_source
from repro.formats import COO, CSC, CSR, DIA, ELL

PAIRS = {
    "coo_csr": (COO, CSR),
    "coo_dia": (COO, DIA),
    "csr_csc": (CSR, CSC),
    "csr_dia": (CSR, DIA),
    "csr_ell": (CSR, ELL),
    "csc_dia": (CSC, DIA),
    "csc_ell": (CSC, ELL),
}


def main() -> None:
    wanted = sys.argv[1:] or list(PAIRS)
    for name in wanted:
        src_fmt, dst_fmt = PAIRS[name]
        print(f"{'=' * 70}\n== {name}\n{'=' * 70}")
        print(generated_source(src_fmt, dst_fmt))
        print()


if __name__ == "__main__":
    main()
