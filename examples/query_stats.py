"""The attribute query language as a user-facing analysis tool (Section 5).

Attribute queries summarize a tensor's sparsity structure; the conversion
compiler uses them to size output data structures, but they are useful on
their own — this example computes the Figure 10 queries plus matrix
bandwidth on a suite matrix, exactly as Section 5.1 describes.

    python examples/query_stats.py
"""

from repro import parse_queries
from repro.matrices import get_matrix
from repro.query import evaluate_query
from repro.remap import apply_remap, parse_remap


def main() -> None:
    entry = get_matrix("cant", scale=0.25)
    dims, coords, _ = entry.data()
    print(f"matrix {entry.name}: {dims[0]}x{dims[1]}, {len(coords)} nonzeros")

    # Figure 10 queries on canonical coordinates.
    nir, = parse_queries("select [i] -> count(j) as nir", dim_names=["i", "j"])
    per_row = evaluate_query(nir, coords)
    print("max nonzeros per row  :", max(per_row.values()))
    print("mean nonzeros per row :", round(sum(per_row.values()) / dims[0], 2))

    spans = parse_queries(
        "select [i] -> min(j) as minir, max(j) as maxir", dim_names=["i", "j"]
    )
    lo = evaluate_query(spans[0], coords)
    hi = evaluate_query(spans[1], coords)
    widest = max(hi[k] - lo[k] + 1 for k in hi)
    print("widest row span       :", widest)

    # Combining queries with a remapping: diagonal statistics (the DIA
    # analysis — Section 5.1's "even more complex attributes").
    remapped = apply_remap(parse_remap("(i,j) -> (j-i, i, j)"), coords)
    ne, = parse_queries("select [k] -> id() as ne", dim_names=["k", "i", "j"])
    diagonals = evaluate_query(ne, remapped)
    print("nonzero diagonals     :", len(diagonals))

    bw = parse_queries(
        "select [] -> min(k) as lb, max(k) as ub", dim_names=["k", "i", "j"]
    )
    lower = evaluate_query(bw[0], remapped)[()]
    upper = evaluate_query(bw[1], remapped)[()]
    print(f"bandwidth             : [{lower}, {upper}]")

    # The same numbers drive conversion: DIA would store len(diagonals)
    # diagonals; ELL would store max-per-row slices.
    print("DIA padding ratio     :", round(entry.dia_padding_ratio(), 3))
    print("ELL padding ratio     :", round(entry.ell_padding_ratio(), 3))


if __name__ == "__main__":
    main()
