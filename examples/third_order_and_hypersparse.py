"""Beyond matrices: third-order tensors and hypersparse formats.

Two workloads beyond the paper's evaluated (matrix) formats that the same
three specifications cover:

* a third-order tensor imported as COO and converted to CSF (the fiber
  tree used by MTTKRP kernels) — assembled in two *staged* passes with no
  sort;
* a hypersparse matrix (almost all rows empty) converted to DCSR, which
  stores only the nonempty rows.

    python examples/third_order_and_hypersparse.py
"""

import random
import time

import repro
from repro.formats import COO, COO3, CSF, CSR, DCSR
from repro.kernels import spmv


def third_order() -> None:
    rng = random.Random(0)
    dims = (80, 60, 40)
    cells = set()
    while len(cells) < 20_000:
        cells.add(tuple(rng.randrange(d) for d in dims))
    cells = list(cells)
    rng.shuffle(cells)  # unsorted, as imported data arrives
    vals = [rng.uniform(1, 2) for _ in cells]

    coo3 = repro.build(COO3, dims, cells, vals)
    start = time.perf_counter()
    csf = repro.convert(coo3, CSF)
    elapsed = (time.perf_counter() - start) * 1e3
    csf.check()
    fibers = len(csf.array(1, "crd"))
    print(f"COO3 -> CSF: {len(cells)} nonzeros, {fibers} (i,j) fibers,"
          f" {elapsed:.1f} ms, no sorting (two staged passes)")
    assert csf.to_coo() == coo3.to_coo()


def hypersparse() -> None:
    rng = random.Random(1)
    nrows = 100_000
    active = rng.sample(range(nrows), 200)  # 0.2% of rows are nonempty
    cells = [(i, rng.randrange(500)) for i in active]
    vals = [rng.uniform(1, 2) for _ in cells]

    coo = repro.build(COO, (nrows, 500), cells, vals)
    csr = repro.convert(coo, CSR)
    dcsr = repro.convert(coo, DCSR)
    print(f"\nhypersparse {nrows}x500 with {len(cells)} nonzeros:")
    print(f"  CSR  pos array: {len(csr.array(1, 'pos')):>7} entries"
          " (one per row, almost all empty)")
    print(f"  DCSR row crd  : {len(dcsr.array(0, 'crd')):>7} entries"
          " (only nonempty rows)")

    x = [1.0] * 500
    import numpy as np

    np.testing.assert_allclose(spmv(dcsr, np.array(x)), spmv(csr, np.array(x)))
    print("  SpMV agrees between CSR and DCSR")


if __name__ == "__main__":
    third_order()
    hypersparse()
