"""Quickstart: build a tensor, convert it, inspect the generated routine.

Reproduces the workflow of the paper's Figure 1/2 matrices:

    python examples/quickstart.py
"""

import repro
from repro.formats import COO, CSR, DIA, ELL

# The 4x6 matrix of Figure 1.
COORDS = [(0, 0), (0, 1), (1, 1), (1, 2), (2, 0), (2, 2), (2, 3),
          (3, 1), (3, 3), (3, 4)]
VALUES = [5.0, 1.0, 7.0, 3.0, 8.0, 2.0, 4.0, 9.0, 6.0, 2.0]


def main() -> None:
    # Import data in COO — the format that supports cheap appends.
    coo = repro.build(COO, dims=(4, 6), coords=COORDS, vals=VALUES)
    print(f"built {coo!r}")

    # Convert to CSR with a *generated* routine (Figure 6c's algorithm).
    csr = repro.convert(coo, CSR)
    print(f"converted to {csr!r}")
    print("CSR pos:", csr.array(1, "pos"))
    print("CSR crd:", csr.array(1, "crd"))

    # Convert CSR to DIA — the conversion of Figure 6a; offsets match
    # Figure 2c's perm array [-2, 0, 1].
    dia = repro.convert(csr, DIA)
    print(f"converted to {dia!r}")
    print("DIA perm:", dia.array(0, "perm"), " K =", dia.meta(0, "K"))

    # And CSR to ELL (Figure 6b); K == 3 == max nonzeros per row.
    ell = repro.convert(csr, ELL)
    print(f"converted to {ell!r}; K = {ell.meta(0, 'K')}")

    # All conversions preserve content exactly.
    assert coo.to_coo() == csr.to_coo() == dia.to_coo() == ell.to_coo()

    # The generated code is ordinary Python you can read (compare with
    # the hand-written C of the paper's Figure 6):
    print("\n--- generated COO->CSR routine ---")
    print(repro.generated_source(COO, CSR))


if __name__ == "__main__":
    main()
