"""Algebraic simplification and constant folding for the imperative IR.

The code generator composes IR fragments mechanically (inlining level
functions, remapping expressions, query aggregations), which leaves obvious
redundancies like ``p0 * N + i`` with ``p0 == 0`` or ``k + 0``.  The passes
here clean those up so the emitted Python matches the hand-written style of
the paper's Figure 6.  All rewrites are semantics-preserving for the integer
arithmetic used by conversion code (non-negative coordinates/positions).
"""

from __future__ import annotations

from typing import Optional

from .nodes import (
    Alloc,
    Assign,
    AugAssign,
    AugStore,
    BinOp,
    Block,
    Call,
    Comment,
    Const,
    Expr,
    ExprStmt,
    For,
    If,
    Pass,
    Return,
    Stmt,
    Store,
    Ternary,
    UnOp,
    While,
    map_expr,
)

_FOLDABLE = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b if b != 0 else None,
    "%": lambda a, b: a % b if b != 0 else None,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def _is_const(expr: Expr, value=None) -> bool:
    if not isinstance(expr, Const):
        return False
    return value is None or expr.value == value


def _flatten_sum(expr: Expr, sign: int, terms: dict, const_acc: list) -> bool:
    """Collect ``expr`` into a linear combination; False if not int-linear."""
    if isinstance(expr, Const):
        if not isinstance(expr.value, int) or isinstance(expr.value, bool):
            return False
        const_acc[0] += sign * expr.value
        return True
    if isinstance(expr, BinOp) and expr.op == "+":
        return _flatten_sum(expr.lhs, sign, terms, const_acc) and _flatten_sum(
            expr.rhs, sign, terms, const_acc
        )
    if isinstance(expr, BinOp) and expr.op == "-":
        return _flatten_sum(expr.lhs, sign, terms, const_acc) and _flatten_sum(
            expr.rhs, -sign, terms, const_acc
        )
    if isinstance(expr, UnOp) and expr.op == "-":
        return _flatten_sum(expr.operand, -sign, terms, const_acc)
    if isinstance(expr, BinOp) and expr.op == "*":
        if _is_const(expr.lhs) and isinstance(expr.lhs.value, int):
            terms[expr.rhs] = terms.get(expr.rhs, 0) + sign * expr.lhs.value
            return True
        if _is_const(expr.rhs) and isinstance(expr.rhs.value, int):
            terms[expr.lhs] = terms.get(expr.lhs, 0) + sign * expr.rhs.value
            return True
    terms[expr] = terms.get(expr, 0) + sign
    return True


def _rebuild_sum(terms: dict, constant: int) -> Expr:
    result: Optional[Expr] = None
    for term, coeff in terms.items():
        if coeff == 0:
            continue
        magnitude = term if abs(coeff) == 1 else BinOp("*", Const(abs(coeff)), term)
        if result is None:
            result = magnitude if coeff > 0 else UnOp("-", magnitude)
        else:
            result = BinOp("+" if coeff > 0 else "-", result, magnitude)
    if result is None:
        return Const(constant)
    if constant > 0:
        return BinOp("+", result, Const(constant))
    if constant < 0:
        return BinOp("-", result, Const(-constant))
    return result


def _normalize_sum(node: Expr) -> Expr:
    """Combine like terms in +/- chains (``N - 1 + 1`` -> ``N``)."""
    terms: dict = {}
    const_acc = [0]
    if not _flatten_sum(node, 1, terms, const_acc):
        return node
    return _rebuild_sum(terms, const_acc[0])


def _fold(node: Expr) -> Expr:
    """Single-node simplification; children are already simplified."""
    if isinstance(node, BinOp):
        lhs, rhs, op = node.lhs, node.rhs, node.op
        if isinstance(lhs, Const) and isinstance(rhs, Const) and op in _FOLDABLE:
            try:
                folded = _FOLDABLE[op](lhs.value, rhs.value)
            except TypeError:
                folded = None
            if folded is not None:
                return Const(folded)
        if op == "+":
            if _is_const(lhs, 0):
                return rhs
            if _is_const(rhs, 0):
                return lhs
        elif op == "-":
            if _is_const(rhs, 0):
                return lhs
            if _is_const(lhs, 0):
                return UnOp("-", rhs)
            if lhs == rhs:
                return Const(0)
        elif op == "*":
            if _is_const(lhs, 0) or _is_const(rhs, 0):
                return Const(0)
            if _is_const(lhs, 1):
                return rhs
            if _is_const(rhs, 1):
                return lhs
        elif op == "//":
            if _is_const(rhs, 1):
                return lhs
            if _is_const(lhs, 0):
                return Const(0)
        elif op == "%":
            if _is_const(rhs, 1):
                return Const(0)
        elif op in ("<<", ">>"):
            if _is_const(rhs, 0):
                return lhs
            if _is_const(lhs, 0):
                return Const(0)
        elif op == "&":
            if _is_const(lhs, 0) or _is_const(rhs, 0):
                return Const(0)
        elif op in ("|", "^"):
            if _is_const(lhs, 0):
                return rhs
            if _is_const(rhs, 0):
                return lhs
        elif op == "and":
            if _is_const(lhs, True):
                return rhs
            if _is_const(lhs, False):
                return Const(False)
        elif op == "or":
            if _is_const(lhs, False):
                return rhs
            if _is_const(lhs, True):
                return Const(True)
        return node
    if isinstance(node, UnOp):
        if isinstance(node.operand, Const):
            value = node.operand.value
            if node.op == "-":
                return Const(-value)
            if node.op == "not":
                return Const(not value)
            if node.op == "~":
                return Const(~value)
        if node.op == "-" and isinstance(node.operand, UnOp) and node.operand.op == "-":
            return node.operand.operand
        return node
    if isinstance(node, Call):
        if node.func in ("min", "max") and len(node.args) == 2:
            a, b = node.args
            if isinstance(a, Const) and isinstance(b, Const):
                return Const(min(a.value, b.value) if node.func == "min" else max(a.value, b.value))
            if a == b:
                return a
        return node
    if isinstance(node, Ternary):
        if isinstance(node.cond, Const):
            return node.if_true if node.cond.value else node.if_false
        if node.if_true == node.if_false:
            return node.if_true
        return node
    return node


def _fold_and_normalize(node: Expr) -> Expr:
    node = _fold(node)
    if isinstance(node, (BinOp, UnOp)) and getattr(node, "op", None) in ("+", "-"):
        normalized = _normalize_sum(node)
        # Only accept the normalized form if it actually shrank the tree,
        # so printing stays close to what the author wrote.
        if _size(normalized) < _size(node):
            return normalized
    return node


def _size(expr: Expr) -> int:
    from .nodes import expr_children

    return 1 + sum(_size(c) for c in expr_children(expr))


def simplify_expr(expr: Expr) -> Expr:
    """Simplify an expression bottom-up until a fixed point is reached."""
    prev = None
    current = expr
    for _ in range(20):  # fixed point in practice after 2-3 rounds
        if current == prev:
            break
        prev = current
        current = map_expr(current, _fold_and_normalize)
    return current


def simplify_stmt(stmt: Stmt) -> Stmt:
    """Simplify all expressions inside a statement tree and prune dead code.

    Conditionals with constant conditions are resolved and empty blocks are
    removed, which happens for instance when the explicit-zero guard of a
    dense source level is statically known to be unnecessary.
    """
    if isinstance(stmt, Block):
        out = []
        for child in stmt.stmts:
            child = simplify_stmt(child)
            if isinstance(child, Pass):
                continue
            if isinstance(child, Block):
                out.extend(child.stmts)
            else:
                out.append(child)
        return Block(tuple(out))
    if isinstance(stmt, Assign):
        return Assign(stmt.target, simplify_expr(stmt.value))
    if isinstance(stmt, AugAssign):
        return AugAssign(stmt.target, stmt.op, simplify_expr(stmt.value))
    if isinstance(stmt, Store):
        return Store(
            simplify_expr(stmt.array), simplify_expr(stmt.index), simplify_expr(stmt.value)
        )
    if isinstance(stmt, AugStore):
        return AugStore(
            simplify_expr(stmt.array),
            simplify_expr(stmt.index),
            stmt.op,
            simplify_expr(stmt.value),
        )
    if isinstance(stmt, For):
        lo = simplify_expr(stmt.lo)
        hi = simplify_expr(stmt.hi)
        body = simplify_stmt(stmt.body)
        if isinstance(lo, Const) and isinstance(hi, Const) and hi.value <= lo.value:
            return Pass()
        if isinstance(body, Block) and not body.stmts:
            return Pass()
        return For(stmt.var, lo, hi, body)
    if isinstance(stmt, While):
        cond = simplify_expr(stmt.cond)
        if _is_const(cond, False):
            return Pass()
        return While(cond, simplify_stmt(stmt.body))
    if isinstance(stmt, If):
        cond = simplify_expr(stmt.cond)
        then = simplify_stmt(stmt.then)
        orelse = simplify_stmt(stmt.orelse) if stmt.orelse is not None else None
        if isinstance(cond, Const):
            if cond.value:
                return then
            return orelse if orelse is not None else Pass()
        if isinstance(then, Block) and not then.stmts and orelse is None:
            return Pass()
        return If(cond, then, orelse)
    if isinstance(stmt, Alloc):
        return Alloc(stmt.target, simplify_expr(stmt.size), stmt.dtype, stmt.init)
    if isinstance(stmt, ExprStmt):
        return ExprStmt(simplify_expr(stmt.expr))
    if isinstance(stmt, Return):
        return Return(tuple(simplify_expr(v) for v in stmt.values))
    if isinstance(stmt, (Comment, Pass)):
        return stmt
    raise TypeError(f"cannot simplify {stmt!r}")
