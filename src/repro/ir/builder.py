"""Convenience constructors for building IR trees.

These helpers keep code-generation sites terse and readable: ``add(x, 1)``
instead of ``BinOp("+", x, Const(1))``.  All helpers accept plain Python
ints/floats/bools/strings and coerce them to :class:`~repro.ir.nodes.Const`
or :class:`~repro.ir.nodes.Var` as appropriate.
"""

from __future__ import annotations

from typing import Iterable, Union

from .nodes import (
    Assign,
    AugAssign,
    AugStore,
    BinOp,
    Block,
    Call,
    Const,
    Expr,
    Load,
    Stmt,
    Ternary,
    UnOp,
    Var,
)

ExprLike = Union[Expr, int, float, bool, str]


def to_expr(value: ExprLike) -> Expr:
    """Coerce a Python value to an IR expression.

    Strings become :class:`Var` references; numbers and bools become
    :class:`Const`.  Existing expressions pass through unchanged.
    """
    if isinstance(value, Expr):
        return value
    if isinstance(value, str):
        return Var(value)
    if isinstance(value, bool) or isinstance(value, (int, float)):
        return Const(value)
    raise TypeError(f"cannot convert {value!r} to an IR expression")


def var(name: str) -> Var:
    """Create a variable reference."""
    return Var(name)


def const(value) -> Const:
    """Create a literal constant."""
    return Const(value)


def _bin(op: str):
    def make(lhs: ExprLike, rhs: ExprLike) -> BinOp:
        return BinOp(op, to_expr(lhs), to_expr(rhs))

    make.__name__ = f"binop_{op}"
    return make


add = _bin("+")
sub = _bin("-")
mul = _bin("*")
floordiv = _bin("//")
mod = _bin("%")
shl = _bin("<<")
shr = _bin(">>")
bitand = _bin("&")
bitor = _bin("|")
bitxor = _bin("^")
lt = _bin("<")
le = _bin("<=")
gt = _bin(">")
ge = _bin(">=")
eq = _bin("==")
ne = _bin("!=")
logical_and = _bin("and")
logical_or = _bin("or")


def neg(operand: ExprLike) -> UnOp:
    """Arithmetic negation ``-operand``."""
    return UnOp("-", to_expr(operand))


def logical_not(operand: ExprLike) -> UnOp:
    """Boolean negation ``not operand``."""
    return UnOp("not", to_expr(operand))


def load(array: ExprLike, index: ExprLike) -> Load:
    """Array element read ``array[index]``."""
    return Load(to_expr(array), to_expr(index))


def call(func: str, *args: ExprLike) -> Call:
    """Call a named function with the given arguments."""
    return Call(func, tuple(to_expr(a) for a in args))


def minimum(lhs: ExprLike, rhs: ExprLike) -> Call:
    """``min(lhs, rhs)``."""
    return call("min", lhs, rhs)


def maximum(lhs: ExprLike, rhs: ExprLike) -> Call:
    """``max(lhs, rhs)``."""
    return call("max", lhs, rhs)


def ternary(cond: ExprLike, if_true: ExprLike, if_false: ExprLike) -> Ternary:
    """Conditional expression."""
    return Ternary(to_expr(cond), to_expr(if_true), to_expr(if_false))


def assign(target: Union[Var, str], value: ExprLike) -> Assign:
    """Scalar assignment statement."""
    tgt = target if isinstance(target, Var) else Var(target)
    return Assign(tgt, to_expr(value))


def aug_assign(target: Union[Var, str], op: str, value: ExprLike) -> AugAssign:
    """Compound scalar assignment ``target op= value``."""
    tgt = target if isinstance(target, Var) else Var(target)
    return AugAssign(tgt, op, to_expr(value))


def store(array: ExprLike, index: ExprLike, value: ExprLike):
    """Array store statement ``array[index] = value``."""
    from .nodes import Store

    return Store(to_expr(array), to_expr(index), to_expr(value))


def aug_store(array: ExprLike, index: ExprLike, op: str, value: ExprLike) -> AugStore:
    """Compound array update ``array[index] op= value`` (op may be max/min/or)."""
    return AugStore(to_expr(array), to_expr(index), op, to_expr(value))


def block(stmts: Iterable[Stmt]) -> Block:
    """Build a block, flattening nested blocks and dropping no-ops."""
    from .nodes import Pass

    flat = []
    for stmt in stmts:
        if isinstance(stmt, Block):
            flat.extend(block(stmt.stmts).stmts)
        elif isinstance(stmt, Pass):
            continue
        elif stmt is not None:
            flat.append(stmt)
    return Block(tuple(flat))


class NameGenerator:
    """Produces fresh, deterministic variable names for generated code.

    Names are of the form ``prefix`` for the first request and
    ``prefix_2``, ``prefix_3``, ... afterwards, so simple generated code
    stays close to the paper's examples (``i``, ``pA2``, ``k``...).
    """

    def __init__(self) -> None:
        self._counts: dict = {}

    def fresh(self, prefix: str) -> str:
        """Return a name that has not been handed out before."""
        count = self._counts.get(prefix, 0) + 1
        self._counts[prefix] = count
        return prefix if count == 1 else f"{prefix}_{count}"

    def reserve(self, name: str) -> str:
        """Mark ``name`` as taken (e.g. a function parameter) and return it."""
        self._counts[name] = max(self._counts.get(name, 0), 1)
        return name
