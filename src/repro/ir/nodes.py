"""Imperative intermediate representation (IR) for generated conversion code.

The conversion code generator (``repro.convert``), the attribute query
compiler (``repro.cin``) and the coordinate remapping lowerer
(``repro.remap``) all produce trees of the node classes defined here.  The
tree is then printed to Python source by :mod:`repro.ir.printer` and compiled
to a callable by :mod:`repro.ir.runtime`.

The IR deliberately mirrors the subset of C that the paper's prototype emits
(Figure 6): scalar assignments, array loads/stores, ``for``/``while`` loops,
conditionals, one-shot array allocations, and calls to a small runtime
(e.g. ``prefix_sum``).  Every node is an immutable dataclass so trees can be
shared and rewritten functionally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union


class Node:
    """Base class of all IR nodes (expressions and statements)."""

    __slots__ = ()


class Expr(Node):
    """Base class of IR expressions."""

    __slots__ = ()


class Stmt(Node):
    """Base class of IR statements."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Var(Expr):
    """A scalar (or array-valued) variable reference by name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant (int, float or bool)."""

    value: Union[int, float, bool]

    def __str__(self) -> str:
        return repr(self.value)


#: Binary operators understood by the printer, in Python spelling.
BINARY_OPS = (
    "+", "-", "*", "//", "/", "%", "<<", ">>", "&", "|", "^",
    "<", "<=", ">", ">=", "==", "!=", "and", "or",
)


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation ``lhs op rhs``.

    Integer division uses Python's ``//`` (the remap language's ``/`` maps to
    it, matching C integer division on the non-negative coordinates the
    paper manipulates).
    """

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary operator {self.op!r}")


@dataclass(frozen=True)
class UnOp(Expr):
    """A unary operation; ``op`` is one of ``-``, ``not``, ``~``."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in ("-", "not", "~"):
            raise ValueError(f"unknown unary operator {self.op!r}")


@dataclass(frozen=True)
class Load(Expr):
    """An array element read ``array[index]``."""

    array: Expr
    index: Expr


@dataclass(frozen=True)
class Call(Expr):
    """A call to a named function (``min``, ``max``, runtime helpers...)."""

    func: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Ternary(Expr):
    """A conditional expression ``if_true if cond else if_false``."""

    cond: Expr
    if_true: Expr
    if_false: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Block(Stmt):
    """A sequence of statements."""

    stmts: Tuple[Stmt, ...]

    def __init__(self, stmts=()):  # accept any iterable for convenience
        object.__setattr__(self, "stmts", tuple(stmts))


@dataclass(frozen=True)
class Assign(Stmt):
    """A scalar assignment ``target = value``."""

    target: Var
    value: Expr


@dataclass(frozen=True)
class AugAssign(Stmt):
    """A compound scalar assignment ``target op= value``."""

    target: Var
    op: str
    value: Expr


@dataclass(frozen=True)
class Store(Stmt):
    """An array element write ``array[index] = value``."""

    array: Expr
    index: Expr
    value: Expr


@dataclass(frozen=True)
class AugStore(Stmt):
    """A compound array element update ``array[index] op= value``.

    ``op`` may be any arithmetic operator, or the pseudo-operators ``max``
    and ``min`` which the printer expands to
    ``array[index] = max(array[index], value)`` — these implement the
    ``max=`` / ``min=`` reductions of concrete index notation (Section 5.2),
    and ``or`` which expands the boolean OR reduction ``|=`` of the paper.
    """

    array: Expr
    index: Expr
    op: str
    value: Expr


@dataclass(frozen=True)
class For(Stmt):
    """A counted loop ``for var in range(lo, hi):``."""

    var: Var
    lo: Expr
    hi: Expr
    body: Stmt


@dataclass(frozen=True)
class While(Stmt):
    """A ``while cond:`` loop."""

    cond: Expr
    body: Stmt


@dataclass(frozen=True)
class If(Stmt):
    """A conditional statement with optional else branch."""

    cond: Expr
    then: Stmt
    orelse: Optional[Stmt] = None


@dataclass(frozen=True)
class Alloc(Stmt):
    """An array allocation ``target = zeros/empty(size, dtype)``.

    ``init`` is ``"zeros"`` (the paper's ``calloc``) or ``"empty"`` (the
    paper's ``malloc``).  ``dtype`` is a numpy dtype name (``"int64"``,
    ``"float64"``, ``"bool"``).
    """

    target: Var
    size: Expr
    dtype: str = "int64"
    init: str = "zeros"

    def __post_init__(self) -> None:
        if self.init not in ("zeros", "empty"):
            raise ValueError(f"unknown init kind {self.init!r}")


@dataclass(frozen=True)
class Comment(Stmt):
    """A source comment, used to label the three conversion phases."""

    text: str


@dataclass(frozen=True)
class Pass(Stmt):
    """A no-op statement."""


@dataclass(frozen=True)
class ExprStmt(Stmt):
    """An expression evaluated for effect (e.g. a runtime call)."""

    expr: Expr


@dataclass(frozen=True)
class Return(Stmt):
    """A ``return`` of one expression or a tuple of expressions."""

    values: Tuple[Expr, ...]

    def __init__(self, values=()):
        object.__setattr__(self, "values", tuple(values))


@dataclass(frozen=True)
class FuncDef(Node):
    """A generated function definition.

    ``params`` are positional parameter names; ``docstring`` (if given) is
    emitted verbatim as the function's docstring.
    """

    name: str
    params: Tuple[str, ...]
    body: Block
    docstring: Optional[str] = None


# ---------------------------------------------------------------------------
# Generic traversal helpers
# ---------------------------------------------------------------------------


def expr_children(expr: Expr) -> Tuple[Expr, ...]:
    """Return the direct sub-expressions of ``expr``."""
    if isinstance(expr, (Var, Const)):
        return ()
    if isinstance(expr, BinOp):
        return (expr.lhs, expr.rhs)
    if isinstance(expr, UnOp):
        return (expr.operand,)
    if isinstance(expr, Load):
        return (expr.array, expr.index)
    if isinstance(expr, Call):
        return expr.args
    if isinstance(expr, Ternary):
        return (expr.cond, expr.if_true, expr.if_false)
    raise TypeError(f"not an expression: {expr!r}")


def map_expr(expr: Expr, fn) -> Expr:
    """Rebuild ``expr`` bottom-up, applying ``fn`` to every node.

    ``fn`` receives a node whose children have already been rewritten and
    returns its replacement.  This is the workhorse used by the simplifier
    and by coordinate-variable substitution in :mod:`repro.remap`.
    """
    if isinstance(expr, (Var, Const)):
        return fn(expr)
    if isinstance(expr, BinOp):
        return fn(BinOp(expr.op, map_expr(expr.lhs, fn), map_expr(expr.rhs, fn)))
    if isinstance(expr, UnOp):
        return fn(UnOp(expr.op, map_expr(expr.operand, fn)))
    if isinstance(expr, Load):
        return fn(Load(map_expr(expr.array, fn), map_expr(expr.index, fn)))
    if isinstance(expr, Call):
        return fn(Call(expr.func, tuple(map_expr(a, fn) for a in expr.args)))
    if isinstance(expr, Ternary):
        return fn(
            Ternary(
                map_expr(expr.cond, fn),
                map_expr(expr.if_true, fn),
                map_expr(expr.if_false, fn),
            )
        )
    raise TypeError(f"not an expression: {expr!r}")


def free_vars(expr: Expr) -> set:
    """Return the set of variable names referenced by ``expr``."""
    if isinstance(expr, Var):
        return {expr.name}
    out: set = set()
    for child in expr_children(expr):
        out |= free_vars(child)
    return out


def substitute(expr: Expr, mapping) -> Expr:
    """Replace every ``Var`` whose name appears in ``mapping`` by its image.

    ``mapping`` maps variable names to replacement expressions.
    """

    def repl(node: Expr) -> Expr:
        if isinstance(node, Var) and node.name in mapping:
            return mapping[node.name]
        return node

    return map_expr(expr, repl)
