"""Runtime support for generated conversion code.

Generated routines are plain Python functions over numpy arrays.  They may
call the small set of helpers defined here (the paper's generated C likewise
calls a tiny runtime, e.g. ``prefix_sum`` in Figure 11).  ``compile_source``
turns printed IR into a callable with the helpers in scope.

The second half of this module is the **chunk runtime** behind the chunked
conversion executor (:mod:`repro.convert.chunked`): a :class:`WorkerPool`
that splits a nonzero stream into contiguous chunks and runs them on a
thread pool, plus ``chunked_*`` mirrors of the bulk helpers above.  Every
mirror is *exact* — ``chunked_bincount`` sums per-chunk histograms (a
bincount is additive over concatenation), ``chunked_group_ranks`` adds the
per-key counts of earlier chunks to chunk-local ranks, and
``chunked_yield_positions`` recognizes sorted parent streams (contiguous
chunks of a lexicographic gather are often sorted runs) and replaces the
global sort with run arithmetic — so the chunked executor is bit-identical
to the serial vector backend by construction, not by luck.
"""

from __future__ import annotations

import linecache
import itertools
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


def prefix_sum(array: np.ndarray, n: int) -> None:
    """In-place exclusive-to-inclusive prefix sum over ``array[:n]``.

    On entry ``array[0] == 0`` and ``array[k]`` for ``1 <= k < n`` holds the
    number of entries allocated to position ``k - 1``; on exit ``array[k]``
    is the offset of position ``k``'s segment.  This is the finalize step of
    unsequenced edge insertion (Figure 11, ``unseq_finalize_edges``).
    """
    np.cumsum(array[:n], out=array[:n])


def trim(array: np.ndarray, n: int) -> np.ndarray:
    """Shrink an over-allocated array to its used prefix (e.g. DIA's perm,
    allocated for every possible diagonal but holding only K entries)."""
    return array[:n]


def fill(array: np.ndarray, value) -> None:
    """Fill an array with a constant (the -1 init of dedup lookup tables)."""
    array.fill(value)


def next_pow2(n: int) -> int:
    """Smallest power of two >= max(n, 2) (hash table widths)."""
    width = 2
    while width < n:
        width *= 2
    return width


def stable_order(keys: np.ndarray) -> np.ndarray:
    """Permutation sorting ``keys`` ascending, ties in original order.

    The vector backend's replacement for sequenced coordinate insertion:
    applying the returned permutation to the gathered nonzero streams
    replays the scalar routine's insertion order exactly.  Small
    non-negative keys (the common case — level coordinates) take a fast
    path that packs ``(key, index)`` into one int64 and sorts with
    numpy's unstable introsort, which beats ``np.argsort(kind="stable")``
    by ~8x; anything else falls back to the stable argsort.
    """
    n = keys.shape[0]
    if n and n < (1 << 32) and keys.min() >= 0 and keys.max() < (1 << 31):
        packed = (keys.astype(np.int64) << np.int64(32)) | np.arange(n, dtype=np.int64)
        packed.sort()
        return packed & np.int64(0xFFFFFFFF)
    return np.argsort(keys, kind="stable")


def _sorted_boundary(keys: np.ndarray):
    """Stable sort of ``keys`` plus the group-start mask of the sorted run:
    ``boundary[t]`` is True where ``keys[order][t]`` starts a new key group."""
    n = keys.shape[0]
    order = stable_order(keys)
    sorted_keys = keys[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
    return order, boundary


def group_ranks(keys: np.ndarray) -> np.ndarray:
    """Rank of each element within its equal-key group, in original order.

    ``group_ranks([3, 1, 3, 1, 1]) == [0, 0, 1, 1, 2]``.  This is the bulk
    form of the sequenced ``yield_pos`` bump (``pos[p]++``) and of the
    remapping counters of Section 4.2: a nonzero's rank equals the number
    of previously iterated nonzeros sharing its key, regardless of whether
    the scalar backend realizes the counter as an array or a register.
    """
    n = keys.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    order, boundary = _sorted_boundary(keys)
    starts = np.flatnonzero(boundary)
    sizes = np.diff(np.append(starts, n))
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = np.arange(n, dtype=np.int64) - np.repeat(starts, sizes)
    return ranks


def unique_first(keys: np.ndarray) -> np.ndarray:
    """Indices of the first occurrence of each distinct key, ascending.

    The bulk form of the deduplication lookup table of Section 6.2: the
    returned indices select, in iteration order, the nonzeros that trigger
    a fresh ``yield_pos`` insertion (e.g. the first nonzero of each BCSR
    block); later duplicates reuse the first occurrence's position.
    """
    if keys.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    order, boundary = _sorted_boundary(keys)
    return np.sort(order[boundary])


def hashed_bulk_insert(table, base, home, coord, width) -> np.ndarray:
    """Bulk open-addressing insertion, replaying sequential probe order.

    The bulk form of the hashed level's ``get_pos`` probe loop.  ``table``
    is a freshly initialized ``crd`` array (every slot ``-1``); ``base``,
    ``home`` and ``coord`` are aligned per-nonzero streams — the parent's
    table offset (``parent_pos * width``; a scalar ``0`` at the root), the
    starting slot ``(coord - lo) % width``, and the coordinate to insert.
    Fills ``table`` and returns each nonzero's position, **bit-identically
    to the scalar loop** inserting one nonzero at a time in stream order.

    Rounds of priority claiming: every unplaced nonzero probes its
    current slot simultaneously; a contested slot goes to the earliest
    nonzero in stream order, which may *steal* the slot from an
    already-placed later nonzero (the evictee re-enters probing at that
    same slot, exactly where the sequential loop would have found it
    occupied).  A nonzero finding its own coordinate owned by an earlier
    nonzero takes that position — the idempotent duplicate insert of the
    scalar probe.  Losers advance one slot only when blocked by an
    earlier-priority owner with a different coordinate.  Because
    priorities are total and a settled earlier nonzero is never evicted
    by a later one, the fixpoint is the sequential first-come-first-
    served placement; a safety cap (pathological probe chains) replays
    the scalar loop directly.
    """
    width = int(width)
    coord = np.asarray(coord, dtype=np.int64)
    n = int(coord.shape[0])
    out = np.empty(n, dtype=np.int64)
    if n == 0:
        return out
    base = np.broadcast_to(np.asarray(base, dtype=np.int64), (n,))
    home = np.asarray(home, dtype=np.int64)
    slot = home.copy()
    owner = np.full(table.shape[0], -1, dtype=np.int64)
    # 0 = probing, 1 = placed (may be evicted), 2 = done (duplicate)
    state = np.zeros(n, dtype=np.int8)
    items = np.arange(n, dtype=np.int64)
    for _ in range(2 * width + 64):
        active = items[state == 0]
        if active.size == 0:
            break
        pos = base[active] + slot[active]
        occ = owner[pos]
        dup = (table[pos] == coord[active]) & (occ >= 0) & (occ < active)
        done = active[dup]
        out[done] = pos[dup]
        state[done] = 2
        rest = active[~dup]
        if rest.size:
            rpos = pos[~dup]
            claim = np.full(table.shape[0], n, dtype=np.int64)
            np.minimum.at(claim, rpos, rest)
            occ_r = owner[rpos]
            take = (claim[rpos] == rest) & ((occ_r < 0) | (occ_r > rest))
            tpos = rpos[take]
            titem = rest[take]
            evicted = owner[tpos]
            owner[tpos] = titem
            table[tpos] = coord[titem]
            out[titem] = tpos
            state[titem] = 1
            state[evicted[evicted >= 0]] = 0
            # a stolen slot also invalidates duplicates that settled on
            # its previous owner: they re-probe from that same slot
            if tpos.size:
                undone = (state == 2) & np.isin(out, tpos)
                state[undone] = 0
            lose = rest[~take]
            if lose.size:
                lpos = base[lose] + slot[lose]
                blocker = owner[lpos]
                step = (
                    (blocker >= 0)
                    & (blocker < lose)
                    & (table[lpos] != coord[lose])
                )
                stepped = lose[step]
                slot[stepped] = (slot[stepped] + 1) % width
    else:
        table[:] = -1
        for i in range(n):
            s = int(home[i])
            p = int(base[i]) + s
            while table[p] >= 0 and table[p] != coord[i]:
                s = (s + 1) % width
                p = int(base[i]) + s
            table[p] = coord[i]
            out[i] = p
    return out


# ----------------------------------------------------------------------
# chunk runtime (repro.convert.chunked)

#: Default minimum chunk length: below this, splitting a stream costs more
#: in dispatch than the per-chunk passes save.
DEFAULT_CHUNK_GRAIN = 1 << 16


class WorkerPool:
    """A chunk executor: contiguous stream chunks on a thread pool.

    ``workers`` bounds both the thread count and the number of chunks a
    stream is split into; ``grain`` is the minimum chunk length (streams
    shorter than ``2 * grain`` run as one chunk).  The underlying
    :class:`~concurrent.futures.ThreadPoolExecutor` is created lazily on
    the first multi-chunk :meth:`map` — a 1-worker pool never starts a
    thread — and numpy releases the GIL in the bulk kernels the chunks
    run (sort, bincount, take/put), so chunks genuinely overlap on
    multi-core hosts.  Instances are owned by the
    :class:`~repro.convert.engine.ConversionEngine` (see
    ``engine.worker_pool()``); ``shutdown()`` joins the threads.

    Example::

        pool = WorkerPool(workers=4)
        pool.bounds(10)        # [(0, 10)] — below the grain, one chunk
        pool.map(lambda lo, hi: work(lo, hi), pool.bounds(n))
    """

    def __init__(self, workers: Optional[int] = None,
                 grain: int = DEFAULT_CHUNK_GRAIN) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = max(1, int(workers))
        self.grain = max(1, int(grain))
        self._executor: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    def bounds(self, n: int) -> List[Tuple[int, int]]:
        """Contiguous chunk bounds ``[(lo, hi), ...]`` covering ``[0, n)``.

        At most ``workers`` chunks, each at least ``grain`` long (so a
        short stream is one chunk); an empty stream has no chunks.
        """
        if n <= 0:
            return []
        nchunks = min(self.workers, max(1, n // self.grain))
        if nchunks <= 1:
            return [(0, n)]
        edges = [(c * n) // nchunks for c in range(nchunks + 1)]
        return list(zip(edges[:-1], edges[1:]))

    def map(self, fn: Callable, chunks: Sequence[Tuple[int, int]]) -> List:
        """Run ``fn(lo, hi)`` for every chunk; results in chunk order.

        Single-chunk work (and 1-worker pools) runs inline on the calling
        thread — the serial path never pays for thread dispatch.
        """
        if len(chunks) <= 1 or self.workers == 1:
            return [fn(lo, hi) for lo, hi in chunks]
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-chunk",
                )
            executor = self._executor
        return list(executor.map(lambda b: fn(*b), chunks))

    def shutdown(self) -> None:
        """Join the pool threads (the pool stays usable; threads restart
        lazily on the next multi-chunk map)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WorkerPool workers={self.workers} grain={self.grain}>"


#: Pool used when generated code receives ``_pool=None``: one worker, one
#: chunk — the chunked helpers then reduce to their serial definitions.
_SERIAL_POOL = WorkerPool(workers=1)


def _as_pool(pool: Optional[WorkerPool]) -> WorkerPool:
    return pool if pool is not None else _SERIAL_POOL


def _is_monotone(keys: np.ndarray) -> bool:
    """True if ``keys`` is nondecreasing (comparison, not diff: no overflow)."""
    return keys.shape[0] <= 1 or bool((keys[1:] >= keys[:-1]).all())


def _chunks_monotone(keys: np.ndarray, pool: WorkerPool,
                     chunks: Sequence[Tuple[int, int]]) -> bool:
    """Whole-stream monotonicity via per-chunk checks (chunks overlap one
    element backwards so boundaries are covered)."""
    return all(
        pool.map(lambda lo, hi: _is_monotone(keys[max(lo - 1, 0):hi]), chunks)
    )


def _runs(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(starts, sizes) of the equal-key runs of a *sorted* key stream."""
    n = keys.shape[0]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.not_equal(keys[1:], keys[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    return starts, np.diff(np.append(starts, n))


def chunked_bincount(keys: np.ndarray, minlength: int = 0,
                     pool: Optional[WorkerPool] = None) -> np.ndarray:
    """Exactly ``np.bincount(keys, minlength=minlength)``, one histogram
    per chunk summed — a bincount is additive over concatenation, so the
    merge is the identity the chunked executor's count queries rely on."""
    pool = _as_pool(pool)
    chunks = pool.bounds(keys.shape[0])
    if len(chunks) <= 1:
        return np.bincount(keys, minlength=minlength)
    parts = pool.map(
        lambda lo, hi: np.bincount(keys[lo:hi], minlength=minlength), chunks
    )
    out = np.zeros(max(part.shape[0] for part in parts), dtype=parts[0].dtype)
    for part in parts:
        out[: part.shape[0]] += part
    return out


def _local_rank_counts(keys: np.ndarray):
    """Chunk-local phase of ``chunked_group_ranks``: (local ranks, sorted
    distinct keys, counts per distinct key).  Sorted chunks take the
    run-arithmetic path; the rest pay one sort (the same sort the serial
    helper pays, but over the chunk only)."""
    n = keys.shape[0]
    if _is_monotone(keys):
        starts, sizes = _runs(keys)
        ranks = np.arange(n, dtype=np.int64) - np.repeat(starts, sizes)
        return ranks, keys[starts], sizes
    order, boundary = _sorted_boundary(keys)
    starts = np.flatnonzero(boundary)
    sizes = np.diff(np.append(starts, n))
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = np.arange(n, dtype=np.int64) - np.repeat(starts, sizes)
    return ranks, keys[order][starts], sizes


def chunked_group_ranks(keys: np.ndarray,
                        pool: Optional[WorkerPool] = None) -> np.ndarray:
    """Exactly :func:`group_ranks`, computed per chunk with an offset merge.

    A nonzero's global rank is its chunk-local rank plus the number of
    same-key nonzeros in earlier chunks, so the merge is a per-key
    exclusive running count across chunks — the rank analogue of summing
    per-chunk bincounts.  A fully sorted stream (contiguous gathers of
    lexicographic sources often are) skips the sort entirely: ranks are
    run arithmetic.  Small key spaces merge through one counts array;
    anything else merges through a sorted vocabulary.
    """
    keys = np.asarray(keys)
    n = keys.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    pool = _as_pool(pool)
    chunks = pool.bounds(n)
    if _chunks_monotone(keys, pool, chunks):
        starts, sizes = _runs(keys)
        return np.arange(n, dtype=np.int64) - np.repeat(starts, sizes)
    return _group_ranks_unsorted(keys, pool, chunks)


def _group_ranks_unsorted(keys: np.ndarray, pool: WorkerPool,
                          chunks: Sequence[Tuple[int, int]]) -> np.ndarray:
    """The unsorted path of :func:`chunked_group_ranks` (monotonicity
    already checked by the caller): per-chunk local ranks + offset merge."""
    n = keys.shape[0]
    if len(chunks) <= 1:
        return group_ranks(keys)
    parts = pool.map(lambda lo, hi: _local_rank_counts(keys[lo:hi]), chunks)
    out = np.empty(n, dtype=np.int64)
    kmin = min(int(u[0]) for _, u, _ in parts if u.size)
    kmax = max(int(u[-1]) for _, u, _ in parts if u.size)
    if kmin >= 0 and kmax + 1 <= max(4 * n, 1 << 16):
        # dense merge: per-chunk base = running per-key counts, snapshot
        # at chunk granularity so the element-wise adds run in parallel
        running = np.zeros(kmax + 1, dtype=np.int64)
        bases = []
        for _, uniques, counts in parts:
            bases.append(running.copy())
            running[uniques] += counts
        index_of = {bounds: c for c, bounds in enumerate(chunks)}

        def apply(lo: int, hi: int) -> None:
            c = index_of[(lo, hi)]
            out[lo:hi] = parts[c][0] + bases[c][keys[lo:hi]]

        pool.map(apply, chunks)
    else:
        # sparse merge: counts keyed by a sorted vocabulary
        vocab = np.unique(np.concatenate([u for _, u, _ in parts]))
        running = np.zeros(vocab.shape[0], dtype=np.int64)
        for (lo, hi), (ranks, uniques, counts) in zip(chunks, parts):
            out[lo:hi] = ranks + running[np.searchsorted(vocab, keys[lo:hi])]
            running[np.searchsorted(vocab, uniques)] += counts
    return out


def chunked_unique_first(keys: np.ndarray,
                         pool: Optional[WorkerPool] = None) -> np.ndarray:
    """Exactly :func:`unique_first`: chunk-local first occurrences, merged
    by keeping only keys unseen in earlier chunks (first-chunk-wins is
    first-occurrence order, and per-chunk results are index-ascending, so
    the concatenation is already sorted)."""
    keys = np.asarray(keys)
    n = keys.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    pool = _as_pool(pool)
    chunks = pool.bounds(n)
    if _chunks_monotone(keys, pool, chunks):
        return _runs(keys)[0]
    if len(chunks) <= 1:
        return unique_first(keys)
    # sparse key spaces fall back to the serial helper — gate *before*
    # spending the per-chunk pass (min/max of all keys bounds the
    # first-occurrence keys exactly)
    kmin, kmax = int(keys.min()), int(keys.max())
    if kmin < 0 or kmax + 1 > max(4 * n, 1 << 16):
        return unique_first(keys)
    parts = pool.map(
        lambda lo, hi: unique_first(keys[lo:hi]) + lo, chunks
    )
    seen = np.zeros(kmax + 1, dtype=bool)
    fresh_parts = []
    for firsts in parts:
        first_keys = keys[firsts]
        fresh = ~seen[first_keys]
        fresh_parts.append(firsts[fresh])
        seen[first_keys[fresh]] = True
    return np.concatenate(fresh_parts)


def chunked_yield_positions(pos: np.ndarray, parent: np.ndarray,
                            pool: Optional[WorkerPool] = None) -> np.ndarray:
    """Exactly ``pos[parent] + group_ranks(parent)`` — the bulk sequenced
    ``yield_pos`` of the vector backend — with the chunked executor's two
    structural fast paths:

    * a sorted parent stream (checked per chunk) yields positions by run
      arithmetic instead of a global sort;
    * when each run's edge offset equals its start index (a source already
      laid out in destination order, e.g. canonical COO scattering into
      CSR rows), the positions are literally ``arange`` — detected on the
      run starts only, so the check costs O(runs), not O(nnz).
    """
    parent = np.asarray(parent)
    n = parent.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    pool = _as_pool(pool)
    chunks = pool.bounds(n)
    if _chunks_monotone(parent, pool, chunks):
        starts, sizes = _runs(parent)
        base = pos[parent[starts]]
        if np.array_equal(base, starts):
            return np.arange(n, dtype=np.int64)
        return np.repeat(base - starts, sizes) + np.arange(n, dtype=np.int64)
    # monotonicity is already decided — go straight to the unsorted path
    # rather than re-scanning through chunked_group_ranks
    return pos[parent] + _group_ranks_unsorted(parent, pool, chunks)


def _chunked_ufunc_at(ufunc, merge, dst: np.ndarray, index: np.ndarray,
                      values, pool: WorkerPool,
                      chunks: Sequence[Tuple[int, int]]) -> None:
    """Shared core of ``chunked_add_at``/``chunked_maximum_at``: one
    partial reduction array per chunk (initialized from ``dst`` so the
    reduction identity is whatever the kernel allocated), merged by key
    with ``merge`` — exact because the reduction is associative,
    commutative and exact on the integer dtypes the generated analyses
    use."""
    aligned = (
        isinstance(values, np.ndarray)
        and values.ndim >= 1
        and values.shape[0] == index.shape[0]
    )

    def partial(lo: int, hi: int) -> np.ndarray:
        part = dst.copy()
        ufunc.at(part, index[lo:hi], values[lo:hi] if aligned else values)
        return part

    parts = pool.map(partial, chunks)
    base = dst.copy()
    for part in parts:
        # each partial already folded dst's initial contents once; undo
        # the duplicate so the merge counts them exactly once
        merge(dst, part, base, out=dst)


def _merge_add(dst, part, base, out):
    np.add(dst, part - base, out=out)


def _merge_maximum(dst, part, base, out):
    np.maximum(dst, part, out=out)


def chunked_add_at(dst: np.ndarray, index: np.ndarray, values,
                   pool: Optional[WorkerPool] = None) -> None:
    """Exactly ``np.add.at(dst, index, values)`` — the serial prefix pass
    of variable-width ``+=`` analyses — computed as per-chunk partial
    histograms summed by key.  Only exact-sum integer destinations take
    the parallel path: float accumulation depends on summation order, and
    numpy forbids ``-`` (the merge's dedup step) on booleans — both run
    the serial ufunc, so the chunked executor stays bit-identical by
    construction."""
    pool = _as_pool(pool)
    chunks = pool.bounds(index.shape[0])
    if len(chunks) <= 1 or dst.dtype.kind not in "iu":
        np.add.at(dst, index, values)
        return
    _chunked_ufunc_at(np.add, _merge_add, dst, index, values, pool, chunks)


def chunked_maximum_at(dst: np.ndarray, index: np.ndarray, values,
                       pool: Optional[WorkerPool] = None) -> None:
    """Exactly ``np.maximum.at(dst, index, values)`` — the serial prefix
    pass of ``max=`` analyses (e.g. skyline row widths) — computed as
    per-chunk partial maxima merged by key.  Maximum is exact on every
    dtype, so every multi-chunk stream takes the parallel path."""
    pool = _as_pool(pool)
    chunks = pool.bounds(index.shape[0])
    if len(chunks) <= 1:
        np.maximum.at(dst, index, values)
        return
    _chunked_ufunc_at(
        np.maximum, _merge_maximum, dst, index, values, pool, chunks
    )


def chunked_scatter(dst: np.ndarray, index: np.ndarray, values,
                    pool: Optional[WorkerPool] = None) -> None:
    """``dst[index] = values`` executed per chunk (the payload scatter of
    the chunked executor).  Only emitted for position streams whose
    duplicate indices — if any — carry equal values (yield/locate
    positions, dedup-shared slots), so chunk order cannot change the
    outcome and the parallel scatter stays bit-identical."""
    pool = _as_pool(pool)
    chunks = pool.bounds(index.shape[0])
    if len(chunks) <= 1:
        dst[index] = values
        return
    aligned = (
        isinstance(values, np.ndarray)
        and values.ndim >= 1
        and values.shape[0] == index.shape[0]
    )
    if aligned:
        pool.map(lambda lo, hi: dst.__setitem__(index[lo:hi], values[lo:hi]),
                 chunks)
    else:
        pool.map(lambda lo, hi: dst.__setitem__(index[lo:hi], values), chunks)


_counter = itertools.count()


def compile_source(
    source: str,
    func_name: str,
    extra_globals: Optional[Dict[str, object]] = None,
) -> Callable:
    """Compile generated Python ``source`` and return the named function.

    The source is registered with :mod:`linecache` under a synthetic file
    name so tracebacks raised from generated code show the generated lines.
    The returned callable carries the source on a ``__source__`` attribute,
    which the examples print to show the generated routines.
    """
    filename = f"<repro-generated-{next(_counter)}>"
    namespace: Dict[str, object] = {
        "np": np,
        "prefix_sum": prefix_sum,
        "min": min,
        "max": max,
        "trim": trim,
        "fill": fill,
        "next_pow2": next_pow2,
        "stable_order": stable_order,
        "group_ranks": group_ranks,
        "unique_first": unique_first,
        "hashed_bulk_insert": hashed_bulk_insert,
        "chunked_bincount": chunked_bincount,
        "chunked_group_ranks": chunked_group_ranks,
        "chunked_unique_first": chunked_unique_first,
        "chunked_yield_positions": chunked_yield_positions,
        "chunked_scatter": chunked_scatter,
        "chunked_add_at": chunked_add_at,
        "chunked_maximum_at": chunked_maximum_at,
    }
    if extra_globals:
        namespace.update(extra_globals)
    linecache.cache[filename] = (
        len(source),
        None,
        [line + "\n" for line in source.splitlines()],
        filename,
    )
    code = compile(source, filename, "exec")
    exec(code, namespace)
    func = namespace[func_name]
    func.__source__ = source  # type: ignore[attr-defined]
    return func


# ----------------------------------------------------------------------
# stream runtime (repro.convert.streamed)
#
# The chunked executor above merges *concurrent* chunk partials inside
# one in-memory call.  The streaming executor replays the same chunk
# decomposition *sequentially* over a file that is never materialized,
# so its helpers carry their merge state across chunks instead: a
# per-key count table stands in for "ranks of earlier chunks", a seen
# table for "first chunk wins".  Each helper is the exact sequential
# unrolling of its chunked_* mirror, so a streamed kernel stays
# bit-identical to the serial vector backend.  Carried tables are dense
# over the key space actually seen (attribute-query keys are dimension
# products), so state stays O(dimensions), never O(nnz).


class _GrowableTable:
    """A dense int64 table over non-negative keys, grown on demand."""

    def __init__(self, fill_value: int = 0) -> None:
        self._fill = fill_value
        self._table = np.full(0, fill_value, dtype=np.int64)

    def reserve(self, upper: int) -> np.ndarray:
        if upper > self._table.shape[0]:
            grown = np.full(max(upper, 2 * self._table.shape[0], 1024),
                            self._fill, dtype=np.int64)
            grown[: self._table.shape[0]] = self._table
            self._table = grown
        return self._table


class StreamState:
    """Carried per-site state of one streaming pass over a source.

    The streaming executor rewrites stateful kernel sites (``group_ranks``,
    ``unique_first``, stream-positional ``np.arange`` and attribute-query
    folds) into calls on one ``StreamState`` per pass; a site id keys the
    state so a pass may replay several independent sites.  A fresh state
    per pass is what makes replayed remap statements deterministic.
    """

    def __init__(self) -> None:
        self._sites: Dict[int, object] = {}

    # -- stateful mirrors of the bulk helpers ---------------------------
    def group_ranks(self, site: int, keys: np.ndarray) -> np.ndarray:
        """``group_ranks`` over the whole stream: chunk-local ranks plus
        the carried per-key count of earlier chunks."""
        counts = self._sites.setdefault(site, _GrowableTable())
        if keys.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        upper = int(keys.max()) + 1
        table = counts.reserve(upper)
        ranks = group_ranks(keys) + table[keys]
        table[:upper] += np.bincount(keys, minlength=upper)[:upper]
        return ranks

    def unique_first(self, site: int, keys: np.ndarray) -> np.ndarray:
        """``unique_first`` over the whole stream, as chunk-local indices:
        the ascending in-chunk indices of keys no earlier chunk saw.
        Chunk concatenation of ``x[first]`` gathers therefore equals the
        global gather, because global first occurrences are ascending."""
        seen = self._sites.setdefault(site, _GrowableTable())
        if keys.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        table = seen.reserve(int(keys.max()) + 1)
        local = unique_first(keys)
        fresh = local[table[keys[local]] == 0]
        table[keys[fresh]] = 1
        return fresh

    def arange_like(self, site: int, stream: np.ndarray,
                    dtype=np.int64) -> np.ndarray:
        """``np.arange(stream.shape[0])`` with global stream positions."""
        base = self._sites.get(site, 0)
        self._sites[site] = base + stream.shape[0]
        return np.arange(base, base + stream.shape[0], dtype=dtype)

    def arange_span(self, site: int, length: int,
                    dtype=np.int64) -> np.ndarray:
        """``np.arange(lo, hi)`` over the gathered stream positions."""
        base = self._sites.get(site, 0)
        self._sites[site] = base + int(length)
        return np.arange(base, base + int(length), dtype=dtype)

    # -- attribute-query folds ------------------------------------------
    def fold_sum(self, site: int, partial: np.ndarray) -> np.ndarray:
        """Fold an additive per-chunk histogram (``np.bincount``)."""
        total = self._sites.get(site)
        if total is None:
            total = np.zeros(0, dtype=partial.dtype)
        if partial.shape[0] > total.shape[0]:
            grown = np.zeros(partial.shape[0], dtype=partial.dtype)
            grown[: total.shape[0]] = total
            total = grown
        total[: partial.shape[0]] += partial
        self._sites[site] = total
        return total

    def fold_result(self, site: int) -> np.ndarray:
        """The accumulated fold of ``site`` (zeros-length if never fed)."""
        total = self._sites.get(site)
        return total if total is not None else np.zeros(0, dtype=np.int64)
