"""Runtime support for generated conversion code.

Generated routines are plain Python functions over numpy arrays.  They may
call the small set of helpers defined here (the paper's generated C likewise
calls a tiny runtime, e.g. ``prefix_sum`` in Figure 11).  ``compile_source``
turns printed IR into a callable with the helpers in scope.
"""

from __future__ import annotations

import linecache
import itertools
from typing import Callable, Dict, Optional

import numpy as np


def prefix_sum(array: np.ndarray, n: int) -> None:
    """In-place exclusive-to-inclusive prefix sum over ``array[:n]``.

    On entry ``array[0] == 0`` and ``array[k]`` for ``1 <= k < n`` holds the
    number of entries allocated to position ``k - 1``; on exit ``array[k]``
    is the offset of position ``k``'s segment.  This is the finalize step of
    unsequenced edge insertion (Figure 11, ``unseq_finalize_edges``).
    """
    np.cumsum(array[:n], out=array[:n])


def trim(array: np.ndarray, n: int) -> np.ndarray:
    """Shrink an over-allocated array to its used prefix (e.g. DIA's perm,
    allocated for every possible diagonal but holding only K entries)."""
    return array[:n]


def fill(array: np.ndarray, value) -> None:
    """Fill an array with a constant (the -1 init of dedup lookup tables)."""
    array.fill(value)


def next_pow2(n: int) -> int:
    """Smallest power of two >= max(n, 2) (hash table widths)."""
    width = 2
    while width < n:
        width *= 2
    return width


def stable_order(keys: np.ndarray) -> np.ndarray:
    """Permutation sorting ``keys`` ascending, ties in original order.

    The vector backend's replacement for sequenced coordinate insertion:
    applying the returned permutation to the gathered nonzero streams
    replays the scalar routine's insertion order exactly.  Small
    non-negative keys (the common case — level coordinates) take a fast
    path that packs ``(key, index)`` into one int64 and sorts with
    numpy's unstable introsort, which beats ``np.argsort(kind="stable")``
    by ~8x; anything else falls back to the stable argsort.
    """
    n = keys.shape[0]
    if n and n < (1 << 32) and keys.min() >= 0 and keys.max() < (1 << 31):
        packed = (keys.astype(np.int64) << np.int64(32)) | np.arange(n, dtype=np.int64)
        packed.sort()
        return packed & np.int64(0xFFFFFFFF)
    return np.argsort(keys, kind="stable")


def _sorted_boundary(keys: np.ndarray):
    """Stable sort of ``keys`` plus the group-start mask of the sorted run:
    ``boundary[t]`` is True where ``keys[order][t]`` starts a new key group."""
    n = keys.shape[0]
    order = stable_order(keys)
    sorted_keys = keys[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
    return order, boundary


def group_ranks(keys: np.ndarray) -> np.ndarray:
    """Rank of each element within its equal-key group, in original order.

    ``group_ranks([3, 1, 3, 1, 1]) == [0, 0, 1, 1, 2]``.  This is the bulk
    form of the sequenced ``yield_pos`` bump (``pos[p]++``) and of the
    remapping counters of Section 4.2: a nonzero's rank equals the number
    of previously iterated nonzeros sharing its key, regardless of whether
    the scalar backend realizes the counter as an array or a register.
    """
    n = keys.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    order, boundary = _sorted_boundary(keys)
    starts = np.flatnonzero(boundary)
    sizes = np.diff(np.append(starts, n))
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = np.arange(n, dtype=np.int64) - np.repeat(starts, sizes)
    return ranks


def unique_first(keys: np.ndarray) -> np.ndarray:
    """Indices of the first occurrence of each distinct key, ascending.

    The bulk form of the deduplication lookup table of Section 6.2: the
    returned indices select, in iteration order, the nonzeros that trigger
    a fresh ``yield_pos`` insertion (e.g. the first nonzero of each BCSR
    block); later duplicates reuse the first occurrence's position.
    """
    if keys.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    order, boundary = _sorted_boundary(keys)
    return np.sort(order[boundary])


_counter = itertools.count()


def compile_source(
    source: str,
    func_name: str,
    extra_globals: Optional[Dict[str, object]] = None,
) -> Callable:
    """Compile generated Python ``source`` and return the named function.

    The source is registered with :mod:`linecache` under a synthetic file
    name so tracebacks raised from generated code show the generated lines.
    The returned callable carries the source on a ``__source__`` attribute,
    which the examples print to show the generated routines.
    """
    filename = f"<repro-generated-{next(_counter)}>"
    namespace: Dict[str, object] = {
        "np": np,
        "prefix_sum": prefix_sum,
        "min": min,
        "max": max,
        "trim": trim,
        "fill": fill,
        "next_pow2": next_pow2,
        "stable_order": stable_order,
        "group_ranks": group_ranks,
        "unique_first": unique_first,
    }
    if extra_globals:
        namespace.update(extra_globals)
    linecache.cache[filename] = (
        len(source),
        None,
        [line + "\n" for line in source.splitlines()],
        filename,
    )
    code = compile(source, filename, "exec")
    exec(code, namespace)
    func = namespace[func_name]
    func.__source__ = source  # type: ignore[attr-defined]
    return func
