"""Native (C) lowering of the conversion IR: emit, build, bind.

The third lowering backend.  Where :mod:`repro.ir.printer` prints the
per-level conversion IR as Python loops and :mod:`repro.ir.vector`
re-derives it as bulk numpy, this module walks the *same* scalar
:class:`~repro.ir.nodes.FuncDef` — attribute-query passes, coordinate
remapping, the two-pass count/scatter shape — and prints it as a
self-contained C translation unit, then compiles it with the host
compiler into a shared object loaded through :mod:`ctypes`.

Three pieces live here, deliberately independent of the planner so the
IR layer stays self-contained:

* :func:`emit_c` — the C printer.  Fixed calling convention (every
  scalar is ``int64_t``, every values array ``double``)::

      int64_t <name>(int64_t n_workers,
                     void **in_arrays, const int64_t *in_scalars,
                     void **out_arrays, int64_t *out_lens,
                     int64_t *out_scalars);

  Input arrays/scalars arrive in the kernel's existing parameter order,
  outputs leave in its ``Return`` order (arrays and metadata each
  packed densely).  The routine returns non-zero only on allocation
  failure; output arrays are malloc'd by the kernel and owned by the
  caller, who releases them through the exported ``repro_native_free``.
  Embarrassingly parallel loops — analysis counting passes and
  injective init/scatter loops — get ``#pragma omp parallel for`` (with
  ``omp atomic`` on commutative integer count bumps, so results stay
  bit-identical at any worker count); loops with loop-carried state
  (prefix sums, sequenced scatters) stay serial.  Constructs the
  printer cannot translate raise :class:`NativeUnsupported`.

* :func:`detect_toolchain` — memoized compiler probe (honours ``$CC``),
  returning a :class:`Toolchain` whose ``fingerprint`` keys the kernel
  cache: a record built by one compiler is never loaded under another.

* :func:`build_shared` / :func:`load_kernel` — compile to a ``.so``
  (atomically: the compiler writes a unique temp name which is
  ``os.replace``d into place, so concurrent builds of the same kernel
  never clobber each other) and bind the entry point through ctypes
  behind a wrapper with the same calling convention as the generated
  Python kernels (``func(*args) -> value or tuple``), plus an
  ``n_workers=`` keyword that sets the OpenMP team size.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .nodes import (
    Alloc,
    Assign,
    AugAssign,
    AugStore,
    BinOp,
    Block,
    Call,
    Comment,
    Const,
    Expr,
    ExprStmt,
    For,
    FuncDef,
    If,
    Load,
    Pass,
    Return,
    Stmt,
    Store,
    Ternary,
    UnOp,
    Var,
    While,
    free_vars,
)


class NativeUnsupported(Exception):
    """The scalar plan uses a construct the C emitter cannot translate."""


class NativeBuildError(RuntimeError):
    """The host compiler failed to build a generated translation unit."""


#: Loop trip count below which a parallel region is not worth forking
#: (the ``if()`` clause on every emitted ``parallel for``).
_OMP_MIN_TRIP = 4096

#: C type spellings of the two-letter internal type codes.
_CTYPE = {"i": "int64_t", "f": "double"}

#: Names the generated kernel may not use for its own variables (they
#: would shadow the ABI parameters or the runtime helpers).
_RESERVED = frozenset(
    {
        "n_workers", "in_arrays", "in_scalars", "out_arrays", "out_lens",
        "out_scalars", "repro_par", "repro_alloc", "repro_native_free",
        "repro_floordiv",
        "repro_floormod", "repro_min_i", "repro_max_i", "repro_min_f",
        "repro_max_f", "repro_next_pow2",
        # C keywords a sanitized IR name could collide with
        "auto", "break", "case", "char", "const", "continue", "default",
        "do", "double", "else", "enum", "extern", "float", "for", "goto",
        "if", "inline", "int", "long", "register", "restrict", "return",
        "short", "signed", "sizeof", "static", "struct", "switch",
        "typedef", "union", "unsigned", "void", "volatile", "while",
    }
)

_PREAMBLE = """\
#include <stdint.h>
#include <stdlib.h>
#ifdef _OPENMP
#include <omp.h>
#endif

#define REPRO_EXPORT __attribute__((visibility("default")))

static void *repro_alloc(int64_t count, size_t width, int zero) {
    size_t n = (size_t)(count > 0 ? count : 1) * width;
    return zero ? calloc(1, n) : malloc(n);
}

REPRO_EXPORT void repro_native_free(void *p) { free(p); }

/* Python floor semantics for // and % on signed operands. */
static inline int64_t repro_floordiv(int64_t a, int64_t b) {
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) q -= 1;
    return q;
}

static inline int64_t repro_floormod(int64_t a, int64_t b) {
    int64_t r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) r += b;
    return r;
}

static inline int64_t repro_min_i(int64_t a, int64_t b) { return a < b ? a : b; }
static inline int64_t repro_max_i(int64_t a, int64_t b) { return a > b ? a : b; }
static inline double repro_min_f(double a, double b) { return a < b ? a : b; }
static inline double repro_max_f(double a, double b) { return a > b ? a : b; }

static inline int64_t repro_next_pow2(int64_t n) {
    int64_t width = 2;
    while (width < n) width *= 2;
    return width;
}
"""


# ---------------------------------------------------------------------------
# the C printer
# ---------------------------------------------------------------------------


class _CEmitter:
    """Prints one scalar-IR :class:`FuncDef` as a C translation unit.

    ``params`` / ``outputs`` are the kernel's calling convention as the
    planner records it: ``(side, level, name)`` triples aligned with
    ``func.params`` and the final ``Return``'s values respectively
    (``level == -1`` marks the float64 values array; everything else is
    ``int64``).
    """

    def __init__(
        self,
        func: FuncDef,
        params: Sequence[Tuple[str, int, str]],
        outputs: Sequence[Tuple[str, int, str]],
    ) -> None:
        if len(params) != len(func.params):
            raise NativeUnsupported("calling convention does not match params")
        self.func = func
        self.params = list(params)
        self.outputs = list(outputs)
        self.lines: List[str] = []
        self.indent = 1
        #: array name -> element type code ("i" / "f")
        self.arrays: Dict[str, str] = {}
        #: scalar name -> type code
        self.scalars: Dict[str, str] = {}
        #: Alloc'd array name -> its length variable name
        self.lengths: Dict[str, str] = {}
        #: trim-alias name -> owning Alloc'd array name
        self.alias_root: Dict[str, str] = {}
        #: Alloc targets, in first-allocation order (for cleanup)
        self.alloc_order: List[str] = []
        self._alloc_counts: Dict[str, int] = {}
        #: loop vars that are also plain assignment targets: they must be
        #: declared at function scope (Python loop vars outlive the loop)
        self.shared_loop_vars: Set[str] = set()
        self._tmp = 0
        self._returned = False

    # -- small helpers --------------------------------------------------
    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def fresh(self, stem: str) -> str:
        self._tmp += 1
        return f"_{stem}{self._tmp}"

    def _root(self, name: str) -> str:
        while name in self.alias_root:
            name = self.alias_root[name]
        return name

    def _length_of(self, name: str) -> str:
        length = self.lengths.get(name)
        if length is None:
            raise NativeUnsupported(
                f"array {name!r} has no tracked length (runtime call on a "
                "parameter array)"
            )
        return length

    # -- pre-pass: classify every name ----------------------------------
    def _prepass(self) -> None:
        for (side, level, _), name in zip(self.params, self.func.params):
            if name in _RESERVED:
                raise NativeUnsupported(f"parameter name {name!r} is reserved")
            if side == "src_array":
                self.arrays[name] = "f" if level == -1 else "i"
            else:  # src_meta / dim
                self.scalars[name] = "i"
        assigned: Set[str] = set()
        loop_vars: Set[str] = set()

        def scan(stmt: Stmt) -> None:
            if isinstance(stmt, Block):
                for child in stmt.stmts:
                    scan(child)
            elif isinstance(stmt, Alloc):
                name = stmt.target.name
                if name in _RESERVED:
                    raise NativeUnsupported(f"name {name!r} is reserved")
                if stmt.dtype not in ("int64", "float64", "bool"):
                    raise NativeUnsupported(f"alloc dtype {stmt.dtype!r}")
                self.arrays[name] = "f" if stmt.dtype == "float64" else "i"
                self.lengths[name] = f"{name}_len"
                self._alloc_counts[name] = self._alloc_counts.get(name, 0) + 1
                if name not in self.alloc_order:
                    self.alloc_order.append(name)
            elif isinstance(stmt, Assign):
                name = stmt.target.name
                if name in _RESERVED:
                    raise NativeUnsupported(f"name {name!r} is reserved")
                if isinstance(stmt.value, Call) and stmt.value.func == "trim":
                    src = stmt.value.args[0]
                    if not isinstance(src, Var) or src.name not in self.arrays:
                        raise NativeUnsupported("trim of a non-array value")
                    self.arrays[name] = self.arrays[src.name]
                    self.lengths[name] = f"{name}_len"
                    if name != src.name:
                        self.alias_root[name] = src.name
                else:
                    assigned.add(name)
                    if name not in self.scalars:
                        self.scalars[name] = self._expr_type(stmt.value)
            elif isinstance(stmt, AugAssign):
                name = stmt.target.name
                assigned.add(name)
                if name not in self.scalars:
                    self.scalars[name] = self._expr_type(stmt.value)
            elif isinstance(stmt, For):
                name = stmt.var.name
                if name in _RESERVED:
                    raise NativeUnsupported(f"name {name!r} is reserved")
                loop_vars.add(name)
                self.scalars.setdefault(name, "i")
                scan(stmt.body)
            elif isinstance(stmt, (While,)):
                scan(stmt.body)
            elif isinstance(stmt, If):
                scan(stmt.then)
                if stmt.orelse is not None:
                    scan(stmt.orelse)
            # Store/AugStore/Comment/Pass/ExprStmt/Return bind no names

        scan(self.func.body)
        self.shared_loop_vars = loop_vars & assigned
        overlap = set(self.arrays) & set(self.scalars)
        if overlap:
            raise NativeUnsupported(f"names used as array and scalar: {overlap}")

    def _expr_type(self, expr: Expr) -> str:
        """Infer "i" (int64) or "f" (double) for a value expression."""
        if isinstance(expr, Var):
            if expr.name in self.arrays:
                raise NativeUnsupported(f"array {expr.name!r} used as a value")
            return self.scalars.get(expr.name, "i")
        if isinstance(expr, Const):
            return "f" if isinstance(expr.value, float) else "i"
        if isinstance(expr, BinOp):
            if expr.op in ("<", "<=", ">", ">=", "==", "!="):
                return "i"
            lhs, rhs = self._expr_type(expr.lhs), self._expr_type(expr.rhs)
            if expr.op in ("//", "%", "<<", ">>", "&", "|", "^"):
                if "f" in (lhs, rhs):
                    raise NativeUnsupported(f"float operand to {expr.op!r}")
                return "i"
            if expr.op == "/":
                raise NativeUnsupported("true division has no int64 lowering")
            return "f" if "f" in (lhs, rhs) else "i"
        if isinstance(expr, UnOp):
            return "i" if expr.op == "not" else self._expr_type(expr.operand)
        if isinstance(expr, Load):
            if not isinstance(expr.array, Var):
                raise NativeUnsupported("computed array expressions")
            if expr.array.name not in self.arrays:
                raise NativeUnsupported(f"load from unknown array {expr.array}")
            return self.arrays[expr.array.name]
        if isinstance(expr, Call):
            if expr.func in ("min", "max"):
                types = {self._expr_type(a) for a in expr.args}
                return "f" if "f" in types else "i"
            if expr.func == "next_pow2":
                return "i"
            raise NativeUnsupported(f"call to {expr.func!r} in value position")
        if isinstance(expr, Ternary):
            types = {
                self._expr_type(expr.if_true), self._expr_type(expr.if_false)
            }
            return "f" if "f" in types else "i"
        raise NativeUnsupported(f"cannot type {expr!r}")

    # -- expression printing --------------------------------------------
    def cexpr(self, expr: Expr, as_bool: bool = False) -> str:
        """Print an expression; ``as_bool`` marks condition context, where
        ``and``/``or`` lower to ``&&``/``||`` instead of Python's
        value-returning short-circuit forms."""
        if isinstance(expr, Var):
            if expr.name in self.arrays:
                raise NativeUnsupported(f"array {expr.name!r} used as a value")
            return expr.name
        if isinstance(expr, Const):
            value = expr.value
            if isinstance(value, bool):
                return "1" if value else "0"
            if isinstance(value, int):
                return f"{value}LL" if abs(value) > 2**31 else str(value)
            text = repr(float(value))
            return text if ("." in text or "e" in text or "n" in text) else text + ".0"
        if isinstance(expr, BinOp):
            if expr.op in ("and", "or"):
                lhs = self.cexpr(expr.lhs, as_bool)
                rhs = self.cexpr(expr.rhs, as_bool)
                if as_bool:
                    c_op = "&&" if expr.op == "and" else "||"
                    return f"(({lhs}) {c_op} ({rhs}))"
                # Python's value semantics: `a or b` is a if truthy else b
                if expr.op == "or":
                    return f"(({lhs}) ? ({lhs}) : ({rhs}))"
                return f"(({lhs}) ? ({rhs}) : ({lhs}))"
            lhs = self.cexpr(expr.lhs)
            rhs = self.cexpr(expr.rhs)
            if expr.op == "//":
                self._expr_type(expr)  # reject float operands
                return f"repro_floordiv({lhs}, {rhs})"
            if expr.op == "%":
                self._expr_type(expr)
                return f"repro_floormod({lhs}, {rhs})"
            if expr.op == "/":
                raise NativeUnsupported("true division has no int64 lowering")
            return f"({lhs} {expr.op} {rhs})"
        if isinstance(expr, UnOp):
            operand = self.cexpr(expr.operand, as_bool and expr.op == "not")
            op = "!" if expr.op == "not" else expr.op
            return f"({op}({operand}))"
        if isinstance(expr, Load):
            array = expr.array
            if not isinstance(array, Var) or array.name not in self.arrays:
                raise NativeUnsupported(f"load from unknown array {array!r}")
            return f"{array.name}[{self.cexpr(expr.index)}]"
        if isinstance(expr, Call):
            if expr.func in ("min", "max"):
                suffix = "f" if self._expr_type(expr) == "f" else "i"
                printed = [self.cexpr(a) for a in expr.args]
                out = printed[0]
                for arg in printed[1:]:  # fold n-ary min/max pairwise
                    out = f"repro_{expr.func}_{suffix}({out}, {arg})"
                return out
            if expr.func == "next_pow2":
                return f"repro_next_pow2({self.cexpr(expr.args[0])})"
            raise NativeUnsupported(f"call to {expr.func!r} in value position")
        if isinstance(expr, Ternary):
            return (
                f"(({self.cexpr(expr.cond, as_bool=True)}) ? "
                f"({self.cexpr(expr.if_true)}) : "
                f"({self.cexpr(expr.if_false)}))"
            )
        raise NativeUnsupported(f"cannot print {expr!r}")

    # -- parallelism analysis -------------------------------------------
    def _simple_affine(self, index: Expr, var: str) -> bool:
        """True when ``index`` is injective in ``var`` by construction:
        the loop variable itself, optionally offset by a var-free term.
        (Deliberately conservative — a scaled index could collapse when
        the runtime scale is zero, so only offsets qualify.)"""
        if isinstance(index, Var):
            return index.name == var
        if isinstance(index, BinOp) and index.op in ("+", "-"):
            in_lhs = var in free_vars(index.lhs)
            in_rhs = var in free_vars(index.rhs)
            if in_lhs and not in_rhs:
                return self._simple_affine(index.lhs, var)
            if in_rhs and not in_lhs and index.op == "+":
                return self._simple_affine(index.rhs, var)
        return False

    def _parallel_info(self, loop: For) -> Optional[List[str]]:
        """If ``loop`` is safely parallelizable, return the scalars its
        body assigns (the OpenMP ``private`` list); else ``None``.

        Sound by construction: every statement must be a pure scalar
        assignment whose reads are assigned-before-read within the
        iteration, a store through an index injective in the loop
        variable, a commutative integer ``+=`` bump (emitted atomic), or
        a nested counted loop of the same shape.  Anything else —
        loop-carried scalars, prefix sums, sequenced scatters, while
        loops, allocation — keeps the loop serial.
        """
        body_assigned: Set[str] = set()
        loaded: Set[str] = set()
        stored: Dict[str, List[Expr]] = {}
        atomics: Set[str] = set()

        def collect(stmt: Stmt) -> bool:
            if isinstance(stmt, Block):
                return all(collect(child) for child in stmt.stmts)
            if isinstance(stmt, (Comment, Pass)):
                return True
            if isinstance(stmt, Assign):
                if isinstance(stmt.value, Call):
                    return False
                body_assigned.add(stmt.target.name)
                self._collect_loads(stmt.value, loaded)
                return True
            if isinstance(stmt, Store):
                if not isinstance(stmt.array, Var):
                    return False
                stored.setdefault(stmt.array.name, []).append(stmt.index)
                self._collect_loads(stmt.index, loaded)
                self._collect_loads(stmt.value, loaded)
                return True
            if isinstance(stmt, AugStore):
                if (
                    stmt.op != "+"
                    or not isinstance(stmt.array, Var)
                    or self.arrays.get(stmt.array.name) != "i"
                ):
                    return False
                atomics.add(stmt.array.name)
                self._collect_loads(stmt.index, loaded)
                self._collect_loads(stmt.value, loaded)
                return True
            if isinstance(stmt, If):
                self._collect_loads(stmt.cond, loaded)
                if not collect(stmt.then):
                    return False
                return stmt.orelse is None or collect(stmt.orelse)
            if isinstance(stmt, For):
                body_assigned.add(stmt.var.name)
                self._collect_loads(stmt.lo, loaded)
                self._collect_loads(stmt.hi, loaded)
                return collect(stmt.body)
            return False  # While, Alloc, AugAssign, ExprStmt, Return

        if not collect(loop.body):
            return None
        # array role separation: a written array is never read, a plain
        # store never mixes with an atomic bump
        if (set(stored) | atomics) & loaded or set(stored) & atomics:
            return None
        for name, indices in stored.items():
            if not all(self._simple_affine(idx, loop.var.name) for idx in indices):
                return None
        # every scalar read inside an iteration must have been assigned
        # earlier in that same iteration (no loop-carried values)
        if not self._reads_follow_writes(loop.body, {loop.var.name},
                                         body_assigned):
            return None
        # only function-scope scalars need an explicit private() entry;
        # nested loop variables are declared in their for-init and are
        # automatically private
        privates = sorted(
            name for name in body_assigned if not self._is_loop_only(name)
        )
        if loop.var.name in self.shared_loop_vars:
            privates.append(loop.var.name)
        return privates

    def _collect_loads(self, expr: Expr, out: Set[str]) -> None:
        if isinstance(expr, Load) and isinstance(expr.array, Var):
            out.add(expr.array.name)
            self._collect_loads(expr.index, out)
            return
        from .nodes import expr_children

        for child in expr_children(expr):
            self._collect_loads(child, out)

    def _reads_follow_writes(
        self, stmt: Stmt, assigned: Set[str], body_assigned: Set[str]
    ) -> bool:
        """Linear walk: every read of a body-assigned scalar must be
        preceded (in the same iteration) by its assignment."""

        def reads_ok(expr: Expr, assigned: Set[str]) -> bool:
            for name in free_vars(expr):
                if name in body_assigned and name not in assigned:
                    return False
            return True

        def walk(stmt: Stmt, assigned: Set[str]) -> Optional[Set[str]]:
            if isinstance(stmt, Block):
                for child in stmt.stmts:
                    result = walk(child, assigned)
                    if result is None:
                        return None
                    assigned = result
                return assigned
            if isinstance(stmt, (Comment, Pass)):
                return assigned
            if isinstance(stmt, Assign):
                if not reads_ok(stmt.value, assigned):
                    return None
                return assigned | {stmt.target.name}
            if isinstance(stmt, (Store, AugStore)):
                if reads_ok(stmt.index, assigned) and reads_ok(
                    stmt.value, assigned
                ):
                    return assigned
                return None
            if isinstance(stmt, If):
                if not reads_ok(stmt.cond, assigned):
                    return None
                then = walk(stmt.then, set(assigned))
                if then is None:
                    return None
                if stmt.orelse is None:
                    return assigned
                orelse = walk(stmt.orelse, set(assigned))
                if orelse is None:
                    return None
                return then & orelse
            if isinstance(stmt, For):
                if not (reads_ok(stmt.lo, assigned) and reads_ok(stmt.hi, assigned)):
                    return None
                inner = walk(stmt.body, assigned | {stmt.var.name})
                if inner is None:
                    return None
                return assigned  # zero-trip loops assign nothing
            return None

        return walk(stmt, set(assigned)) is not None

    # -- statement printing ---------------------------------------------
    def cstmt(self, stmt: Stmt, mode: str) -> None:
        """Print one statement.  ``mode`` is ``"auto"`` (may open new
        parallel regions), ``"par"`` (inside a parallel region: count
        bumps need ``omp atomic``) or ``"ser"`` (the serial twin of a
        parallelized loop: no atomics, no nested regions)."""
        if isinstance(stmt, Block):
            for child in stmt.stmts:
                self.cstmt(child, mode)
        elif isinstance(stmt, Comment):
            for line in stmt.text.splitlines():
                self.emit(f"/* {line} */")
        elif isinstance(stmt, Pass):
            self.emit(";")
        elif isinstance(stmt, Assign):
            if isinstance(stmt.value, Call) and stmt.value.func == "trim":
                src = stmt.value.args[0]
                length = self.cexpr(stmt.value.args[1])
                assert isinstance(src, Var)
                self._length_of(src.name)  # trim requires a tracked length
                if stmt.target.name != src.name:
                    self.emit(f"{stmt.target.name} = {src.name};")
                self.emit(f"{stmt.target.name}_len = {length};")
            else:
                self.emit(f"{stmt.target.name} = {self.cexpr(stmt.value)};")
        elif isinstance(stmt, AugAssign):
            name = stmt.target.name
            if stmt.op in ("max", "min"):
                suffix = "f" if self.scalars.get(name) == "f" else "i"
                self.emit(
                    f"{name} = repro_{stmt.op}_{suffix}"
                    f"({name}, {self.cexpr(stmt.value)});"
                )
            elif stmt.op == "or":
                value = self.cexpr(stmt.value)
                self.emit(f"{name} = ({name}) ? ({name}) : ({value});")
            elif stmt.op in ("//", "%"):
                helper = "repro_floordiv" if stmt.op == "//" else "repro_floormod"
                self.emit(f"{name} = {helper}({name}, {self.cexpr(stmt.value)});")
            elif stmt.op in ("+", "-", "*", "&", "|", "^", "<<", ">>"):
                self.emit(f"{name} {stmt.op}= {self.cexpr(stmt.value)};")
            else:
                raise NativeUnsupported(f"augmented op {stmt.op!r}")
        elif isinstance(stmt, Store):
            target = self._store_target(stmt.array, stmt.index)
            self.emit(f"{target} = {self.cexpr(stmt.value)};")
        elif isinstance(stmt, AugStore):
            target = self._store_target(stmt.array, stmt.index)
            if stmt.op in ("max", "min"):
                assert isinstance(stmt.array, Var)
                suffix = "f" if self.arrays[stmt.array.name] == "f" else "i"
                self.emit(
                    f"{target} = repro_{stmt.op}_{suffix}"
                    f"({target}, {self.cexpr(stmt.value)});"
                )
            elif stmt.op == "or":
                value = self.cexpr(stmt.value)
                self.emit(f"{target} = ({target}) ? ({target}) : ({value});")
            elif stmt.op in ("+", "-", "*"):
                if mode == "par" and stmt.op == "+":
                    self.emit("#pragma omp atomic")
                self.emit(f"{target} {stmt.op}= {self.cexpr(stmt.value)};")
            else:
                raise NativeUnsupported(f"augmented store op {stmt.op!r}")
        elif isinstance(stmt, For):
            self._emit_for(stmt, mode)
        elif isinstance(stmt, While):
            self.emit(f"while ({self.cexpr(stmt.cond, as_bool=True)}) {{")
            self.indent += 1
            self.cstmt(stmt.body, mode)
            self.indent -= 1
            self.emit("}")
        elif isinstance(stmt, If):
            self.emit(f"if ({self.cexpr(stmt.cond, as_bool=True)}) {{")
            self.indent += 1
            self.cstmt(stmt.then, mode)
            self.indent -= 1
            if stmt.orelse is not None:
                self.emit("} else {")
                self.indent += 1
                self.cstmt(stmt.orelse, mode)
                self.indent -= 1
            self.emit("}")
        elif isinstance(stmt, Alloc):
            self._emit_alloc(stmt, mode)
        elif isinstance(stmt, ExprStmt):
            self._emit_effect_call(stmt.expr)
        elif isinstance(stmt, Return):
            self._emit_return(stmt)
        else:
            raise NativeUnsupported(f"cannot print {stmt!r}")

    def _store_target(self, array: Expr, index: Expr) -> str:
        if not isinstance(array, Var) or array.name not in self.arrays:
            raise NativeUnsupported(f"store into unknown array {array!r}")
        return f"{array.name}[{self.cexpr(index)}]"

    def _emit_for(self, loop: For, mode: str) -> None:
        var = loop.var.name
        lo, hi = self.cexpr(loop.lo), self.cexpr(loop.hi)
        privates = self._parallel_info(loop) if mode == "auto" else None
        decl = "" if var in self.shared_loop_vars else "int64_t "
        header = f"for ({decl}{var} = {lo}; {var} < {hi}; ++{var}) {{"
        if privates is None:
            self.emit(header)
            self.indent += 1
            self.cstmt(loop.body, mode)
            self.indent -= 1
            self.emit("}")
            return
        # Two copies of the loop, chosen by the runtime team size: the
        # OpenMP version pays for atomics only when threads can actually
        # race; the serial twin is the plain loop (an unconditional
        # `omp atomic` would cost a locked add per nonzero even on one
        # thread, which is exactly the scipy-vs-us margin).
        clause = f" private({', '.join(privates)})" if privates else ""
        self.emit("#ifdef _OPENMP")
        self.emit(f"if (repro_par && ({hi}) - ({lo}) >= {_OMP_MIN_TRIP}) {{")
        self.indent += 1
        self.emit(f"#pragma omp parallel for{clause}")
        self.emit(header)
        self.indent += 1
        self.cstmt(loop.body, "par")
        self.indent -= 1
        self.emit("}")
        self.indent -= 1
        self.emit("} else")
        self.emit("#endif")
        self.emit("{")
        self.indent += 1
        self.emit(header)
        self.indent += 1
        self.cstmt(loop.body, "ser")
        self.indent -= 1
        self.emit("}")
        self.indent -= 1
        self.emit("}")

    def _emit_alloc(self, stmt: Alloc, mode: str) -> None:
        if mode == "par":
            raise NativeUnsupported("allocation inside a parallel region")
        name = stmt.target.name
        ctype = _CTYPE[self.arrays[name]]
        zero = 1 if stmt.init == "zeros" else 0
        if self._alloc_counts.get(name, 0) > 1:
            self.emit(f"if ({name}) {{ free({name}); {name} = NULL; }}")
        self.emit(f"{name}_len = {self.cexpr(stmt.size)};")
        self.emit(
            f"{name} = ({ctype} *)repro_alloc({name}_len, "
            f"sizeof({ctype}), {zero});"
        )
        self.emit(f"if (!{name}) goto fail;")

    def _emit_effect_call(self, expr: Expr) -> None:
        if not isinstance(expr, Call):
            raise NativeUnsupported(f"expression statement {expr!r}")
        if expr.func == "fill":
            array = expr.args[0]
            if not isinstance(array, Var):
                raise NativeUnsupported("fill of a computed array")
            length = self._length_of(array.name)
            value = self.cexpr(expr.args[1])
            counter = self.fresh("i")
            self.emit(
                f"for (int64_t {counter} = 0; {counter} < {length}; "
                f"++{counter}) {array.name}[{counter}] = {value};"
            )
            return
        if expr.func == "prefix_sum":
            array = expr.args[0]
            if not isinstance(array, Var) or array.name not in self.arrays:
                raise NativeUnsupported("prefix_sum of a computed array")
            length = self.cexpr(expr.args[1])
            counter = self.fresh("i")
            self.emit(
                f"for (int64_t {counter} = 1; {counter} < ({length}); "
                f"++{counter}) {array.name}[{counter}] += "
                f"{array.name}[{counter} - 1];"
            )
            return
        raise NativeUnsupported(f"runtime call {expr.func!r}")

    def _emit_return(self, stmt: Return) -> None:
        if len(stmt.values) != len(self.outputs):
            raise NativeUnsupported("return arity does not match outputs")
        kept: Set[str] = set()
        array_slot = 0
        scalar_slot = 0
        for (side, _, _), value in zip(self.outputs, stmt.values):
            if side == "dst_array":
                if not isinstance(value, Var) or value.name not in self.arrays:
                    raise NativeUnsupported(f"returned array {value!r}")
                name = value.name
                self.emit(f"out_arrays[{array_slot}] = (void *){name};")
                self.emit(f"out_lens[{array_slot}] = {self._length_of(name)};")
                kept.add(self._root(name))
                array_slot += 1
            else:
                self.emit(f"out_scalars[{scalar_slot}] = {self.cexpr(value)};")
                scalar_slot += 1
        for name in self.alloc_order:
            if name not in kept:
                self.emit(f"free({name});")
        self.emit("return 0;")
        self._returned = True

    # -- whole translation unit -----------------------------------------
    def translation_unit(self) -> str:
        self._prepass()
        out: List[str] = [_PREAMBLE]
        if self.func.docstring:
            out.append("/*")
            for line in self.func.docstring.splitlines() or [""]:
                out.append(f" * {line}".rstrip())
            out.append(" */")
        out.append(
            f"REPRO_EXPORT int64_t {self.func.name}(\n"
            "    int64_t n_workers, void **in_arrays,\n"
            "    const int64_t *in_scalars, void **out_arrays,\n"
            "    int64_t *out_lens, int64_t *out_scalars)\n{"
        )
        self.lines = []
        self.emit("int repro_par = 0;")
        self.emit("#ifdef _OPENMP")
        self.emit("if (n_workers > 0) omp_set_num_threads((int)n_workers);")
        self.emit("repro_par = (n_workers != 1) && (omp_get_max_threads() > 1);")
        self.emit("#else")
        self.emit("(void)n_workers;")
        self.emit("#endif")
        self.emit("(void)repro_par;")
        self.emit("(void)out_scalars;")
        array_slot = 0
        scalar_slot = 0
        for (side, level, _), name in zip(self.params, self.func.params):
            if side == "src_array":
                ctype = _CTYPE["f" if level == -1 else "i"]
                self.emit(
                    f"{ctype} *{name} = ({ctype} *)in_arrays[{array_slot}];"
                )
                array_slot += 1
            else:
                self.emit(f"int64_t {name} = in_scalars[{scalar_slot}];")
                scalar_slot += 1
        if array_slot == 0:
            self.emit("(void)in_arrays;")
        if scalar_slot == 0:
            self.emit("(void)in_scalars;")
        for name in self.alloc_order:
            ctype = _CTYPE[self.arrays[name]]
            self.emit(f"{ctype} *{name} = NULL;")
            self.emit(f"int64_t {name}_len = 0;")
        for name in sorted(self.alias_root):
            ctype = _CTYPE[self.arrays[name]]
            self.emit(f"{ctype} *{name} = NULL;")
            self.emit(f"int64_t {name}_len = 0;")
            self.emit(f"(void){name}; (void){name}_len;")
        declared_scalars = sorted(
            name
            for name, code in self.scalars.items()
            if name not in set(self.func.params)
            and (name in self.shared_loop_vars or not self._is_loop_only(name))
        )
        for name in declared_scalars:
            ctype = _CTYPE[self.scalars[name]]
            init = "0.0" if self.scalars[name] == "f" else "0"
            self.emit(f"{ctype} {name} = {init};")
        self.cstmt(self.func.body, mode="auto")
        if not self._returned:
            raise NativeUnsupported("kernel body has no return")
        if self.alloc_order:
            self.lines.append("fail:")
            for name in self.alloc_order:
                self.emit(f"free({name});")
            self.emit("return 1;")
        out.extend(self.lines)
        out.append("}")
        return "\n".join(out) + "\n"

    def _is_loop_only(self, name: str) -> bool:
        """Scalars that only ever appear as For variables are declared in
        their for-init (making them OpenMP-private for free)."""
        loop_only = getattr(self, "_loop_only_memo", None)
        if loop_only is None:
            loop_vars: Set[str] = set()
            assigned: Set[str] = set()

            def scan(stmt: Stmt) -> None:
                if isinstance(stmt, Block):
                    for child in stmt.stmts:
                        scan(child)
                elif isinstance(stmt, For):
                    loop_vars.add(stmt.var.name)
                    scan(stmt.body)
                elif isinstance(stmt, (Assign, AugAssign)):
                    assigned.add(stmt.target.name)
                elif isinstance(stmt, While):
                    scan(stmt.body)
                elif isinstance(stmt, If):
                    scan(stmt.then)
                    if stmt.orelse is not None:
                        scan(stmt.orelse)

            scan(self.func.body)
            loop_only = loop_vars - assigned
            self._loop_only_memo = loop_only
        return name in loop_only


def emit_c(
    func: FuncDef,
    params: Sequence[Tuple[str, int, str]],
    outputs: Sequence[Tuple[str, int, str]],
) -> str:
    """Print a scalar-IR kernel as a self-contained C translation unit.

    Raises :class:`NativeUnsupported` when the kernel uses a construct
    the C printer cannot translate (callers treat that pair as not
    native-capable and fall back to the Python backends).
    """
    return _CEmitter(func, params, outputs).translation_unit()


# ---------------------------------------------------------------------------
# toolchain detection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Toolchain:
    """A working host C compiler and the flags the backend builds with.

    ``fingerprint`` digests the resolved compiler path, its version
    banner and the OpenMP verdict; it joins every native kernel-cache
    key so records built by one compiler are never loaded under another
    (a stale-ABI ``.so`` is a cache miss, not a crash).
    """

    cc: str
    flags: Tuple[str, ...]
    openmp: bool
    fingerprint: str


_BASE_FLAGS = ("-O2", "-fPIC", "-shared", "-w")

_TOOLCHAINS: Dict[Optional[str], Optional[Toolchain]] = {}
_TOOLCHAIN_LOCK = threading.Lock()

_PROBE_SOURCE = "int repro_probe(int x) { return x + 1; }\n"
_OMP_PROBE_SOURCE = (
    "#include <omp.h>\n"
    "int repro_probe(void) { return omp_get_max_threads(); }\n"
)


def _try_compile(cc: str, flags: Sequence[str], source: str,
                 workdir: str, stem: str) -> bool:
    c_path = os.path.join(workdir, f"{stem}.c")
    so_path = os.path.join(workdir, f"{stem}.so")
    with open(c_path, "w") as handle:
        handle.write(source)
    try:
        result = subprocess.run(
            [cc, *flags, "-o", so_path, c_path],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            timeout=60,
        )
    except (OSError, subprocess.SubprocessError):
        return False
    return result.returncode == 0 and os.path.exists(so_path)


def detect_toolchain() -> Optional[Toolchain]:
    """Probe for a working C compiler (memoized per ``$CC`` value).

    ``$CC`` pins the compiler when set (``CC=/bin/false`` is the
    supported way to simulate a host without one); otherwise ``cc``,
    ``gcc`` and ``clang`` are tried in order.  Returns ``None`` when no
    candidate can build a shared object — callers degrade to the Python
    backends.
    """
    env_cc = os.environ.get("CC") or None
    with _TOOLCHAIN_LOCK:
        if env_cc in _TOOLCHAINS:
            return _TOOLCHAINS[env_cc]
    candidates = [env_cc] if env_cc else ["cc", "gcc", "clang"]
    toolchain: Optional[Toolchain] = None
    for cc in candidates:
        resolved = shutil.which(cc)
        if resolved is None:
            continue
        with tempfile.TemporaryDirectory(prefix="repro-cc-probe-") as workdir:
            if not _try_compile(resolved, _BASE_FLAGS, _PROBE_SOURCE,
                                workdir, "probe"):
                continue
            openmp = _try_compile(
                resolved, (*_BASE_FLAGS, "-fopenmp"), _OMP_PROBE_SOURCE,
                workdir, "omp",
            )
        flags = _BASE_FLAGS + (("-fopenmp",) if openmp else ())
        try:
            banner = subprocess.run(
                [resolved, "--version"],
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                timeout=15,
            ).stdout.splitlines()[:1]
        except (OSError, subprocess.SubprocessError, IndexError):
            banner = []
        version = banner[0].decode("utf-8", "replace") if banner else "?"
        fingerprint = hashlib.sha256(
            repr((resolved, version, flags)).encode()
        ).hexdigest()[:16]
        toolchain = Toolchain(
            cc=resolved, flags=flags, openmp=openmp, fingerprint=fingerprint
        )
        break
    with _TOOLCHAIN_LOCK:
        _TOOLCHAINS[env_cc] = toolchain
    return toolchain


def _clear_toolchain_cache() -> None:
    """Drop memoized probes (tests that flip ``$CC`` mid-process)."""
    with _TOOLCHAIN_LOCK:
        _TOOLCHAINS.clear()


# ---------------------------------------------------------------------------
# building and binding
# ---------------------------------------------------------------------------


def build_shared(source: str, so_path: str, toolchain: Toolchain) -> None:
    """Compile ``source`` into ``so_path``, atomically.

    The compiler writes to unique temporary names (pid + thread id) in
    the destination directory, and the finished ``.so`` (and its ``.c``
    sibling, kept for inspection) are moved into place with
    ``os.replace`` — concurrent builds of the same kernel from two
    engines or threads each produce a complete artifact and the last
    rename wins, mirroring the kernel-cache record writes.
    """
    directory = os.path.dirname(so_path) or "."
    stem = f"{so_path}.tmp.{os.getpid()}.{threading.get_ident()}"
    tmp_c = f"{stem}.c"
    tmp_so = f"{stem}.so"
    os.makedirs(directory, exist_ok=True)
    try:
        with open(tmp_c, "w") as handle:
            handle.write(source)
        result = subprocess.run(
            [toolchain.cc, *toolchain.flags, "-o", tmp_so, tmp_c],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            timeout=300,
        )
        if result.returncode != 0 or not os.path.exists(tmp_so):
            detail = result.stdout.decode("utf-8", "replace").strip()
            raise NativeBuildError(
                f"{toolchain.cc} failed to build the native kernel "
                f"(exit {result.returncode}):\n{detail[:2000]}"
            )
        base = so_path[:-3] if so_path.endswith(".so") else so_path
        os.replace(tmp_c, base + ".c")
        os.replace(tmp_so, so_path)
    except (OSError, subprocess.SubprocessError) as exc:
        raise NativeBuildError(f"native build failed: {exc}") from exc
    finally:
        for leftover in (tmp_c, tmp_so):
            try:
                os.unlink(leftover)
            except OSError:
                pass


_ENTRY_ARGTYPES = [
    ctypes.c_int64,
    ctypes.POINTER(ctypes.c_void_p),
    ctypes.POINTER(ctypes.c_int64),
    ctypes.POINTER(ctypes.c_void_p),
    ctypes.POINTER(ctypes.c_int64),
    ctypes.POINTER(ctypes.c_int64),
]


def load_kernel(
    so_path: str,
    entry_name: str,
    params: Sequence[Tuple[str, int, str]],
    outputs: Sequence[Tuple[str, int, str]],
):
    """Bind a built kernel; returns ``func(*args, n_workers=0)``.

    The wrapper speaks the generated-Python calling convention — one
    positional argument per kernel parameter, returning the kernel's
    value (or tuple of values) in ``Return`` order — so the engine's
    :class:`~repro.convert.engine.CompiledConversion` machinery runs it
    unchanged.  Output arrays are wrapped zero-copy over the C-malloc'd
    buffers; a finalizer hands each buffer back to the library's
    ``repro_native_free`` when the last numpy view dies.

    Raises ``OSError`` when the shared object cannot be loaded (e.g. a
    truncated cache file) — callers rebuild from source.
    """
    lib = ctypes.CDLL(so_path)
    entry = getattr(lib, entry_name)
    entry.restype = ctypes.c_int64
    entry.argtypes = _ENTRY_ARGTYPES
    release = lib.repro_native_free
    release.restype = None
    release.argtypes = [ctypes.c_void_p]

    param_kinds = [
        ("array", np.float64 if level == -1 else np.int64)
        if side == "src_array"
        else ("scalar", None)
        for side, level, _ in params
    ]
    output_kinds = [
        ("array", np.float64 if level == -1 else np.int64)
        if side == "dst_array"
        else ("scalar", None)
        for side, level, _ in outputs
    ]
    n_in_arrays = sum(1 for kind, _ in param_kinds if kind == "array")
    n_in_scalars = len(param_kinds) - n_in_arrays
    n_out_arrays = sum(1 for kind, _ in output_kinds if kind == "array")
    n_out_scalars = len(output_kinds) - n_out_arrays

    def func(*args, n_workers: int = 0):
        if len(args) != len(param_kinds):
            raise TypeError(
                f"{entry_name} takes {len(param_kinds)} arguments, "
                f"got {len(args)}"
            )
        in_arrays = (ctypes.c_void_p * max(n_in_arrays, 1))()
        in_scalars = (ctypes.c_int64 * max(n_in_scalars, 1))()
        keepalive = []
        array_slot = 0
        scalar_slot = 0
        for (kind, dtype), value in zip(param_kinds, args):
            if kind == "array":
                array = np.ascontiguousarray(value, dtype=dtype)
                keepalive.append(array)
                in_arrays[array_slot] = array.ctypes.data
                array_slot += 1
            else:
                in_scalars[scalar_slot] = int(value)
                scalar_slot += 1
        out_arrays = (ctypes.c_void_p * max(n_out_arrays, 1))()
        out_lens = (ctypes.c_int64 * max(n_out_arrays, 1))()
        out_scalars = (ctypes.c_int64 * max(n_out_scalars, 1))()
        status = entry(
            ctypes.c_int64(int(n_workers)), in_arrays, in_scalars,
            out_arrays, out_lens, out_scalars,
        )
        if status != 0:
            raise MemoryError(
                f"native kernel {entry_name} failed to allocate"
            )
        results = []
        array_slot = 0
        scalar_slot = 0
        for kind, dtype in output_kinds:
            if kind == "array":
                ptr = out_arrays[array_slot]
                length = int(out_lens[array_slot])
                array_slot += 1
                nbytes = length * np.dtype(dtype).itemsize
                buffer = (ctypes.c_byte * nbytes).from_address(ptr)
                weakref.finalize(buffer, release, ptr)
                results.append(np.frombuffer(buffer, dtype=dtype))
            else:
                results.append(int(out_scalars[scalar_slot]))
                scalar_slot += 1
        del keepalive
        return tuple(results) if len(results) != 1 else results[0]

    func.__name__ = entry_name
    func._native_lib = lib  # keep the dlopen handle alive with the wrapper
    return func
