"""Imperative IR: nodes, builders, printer, simplifier and runtime.

This package is the target language of every code generator in the library
(coordinate remapping, attribute queries, assembly).  See
:mod:`repro.ir.nodes` for the node vocabulary.
"""

from .nodes import (
    Alloc,
    Assign,
    AugAssign,
    AugStore,
    BinOp,
    Block,
    Call,
    Comment,
    Const,
    Expr,
    ExprStmt,
    For,
    FuncDef,
    If,
    Load,
    Node,
    Pass,
    Return,
    Stmt,
    Store,
    Ternary,
    UnOp,
    Var,
    While,
    expr_children,
    free_vars,
    map_expr,
    substitute,
)
from .printer import print_expr, print_func, print_stmt
from .runtime import compile_source, prefix_sum, stable_order
from .simplify import simplify_expr, simplify_stmt
from . import builder

__all__ = [
    "Alloc", "Assign", "AugAssign", "AugStore", "BinOp", "Block", "Call",
    "Comment", "Const", "Expr", "ExprStmt", "For", "FuncDef", "If", "Load",
    "Node", "Pass", "Return", "Stmt", "Store", "Ternary", "UnOp", "Var",
    "While", "expr_children", "free_vars", "map_expr", "substitute",
    "print_expr", "print_func", "print_stmt", "compile_source", "prefix_sum",
    "simplify_expr", "simplify_stmt", "stable_order", "builder",
]
