"""Vectorized numpy lowering backend: per-level IR lowering to bulk ops.

The scalar backend (:mod:`repro.convert.planner`) lowers the conversion IR
to per-nonzero Python loops — faithful to the paper's generated C, but
orders of magnitude slower than numpy's bulk operations on this substrate.
This module is a *second* lowering of the very same plan: instead of
pattern-matching whole formats, it walks the identical structure the
scalar planner walks — source iteration, attribute queries, coordinate
remapping, per-level destination assembly — and asks each *level format*
for the bulk-numpy mirror of its scalar level functions
(:class:`repro.levels.base.Level`'s ``vector_*`` facet):

* **gather** — every source level expands a frontier of enumerated paths
  by its children (``np.repeat`` ragged expansion for compressed/banded
  segments, ``arange``/``tile`` products for dense/sliced/squeezed,
  plain loads for singleton/offset), reproducing the scalar loop nest's
  depth-first order exactly; padded sources drop explicit zeros with one
  mask, like the scalar nonzero guard;
* **analysis** — the optimized attribute-query plans
  (:class:`repro.cin.lower.QueryPlan`) compile to bulk ``np.bincount`` /
  ``np.add.at`` / ``np.maximum.at`` / reshape-reduction passes
  (:class:`repro.cin.compile.VectorQueryCompiler`) over the gathered
  coordinate streams;
* **remap** — destination coordinates evaluate elementwise over the
  canonical coordinate arrays; remapping counters (Section 4.2) become
  :func:`repro.ir.runtime.group_ranks` over their key streams;
* **scatter** — each destination level assembles itself top-down:
  ``cumsum`` edge insertion over query counts, ``locate``-style levels
  reuse their scalar ``get_pos`` arithmetic elementwise, and ``yield``
  levels replace the sequenced position bump with a stable group-rank
  (plus :func:`repro.ir.runtime.unique_first` for deduplicated levels
  like BCSR's block map), replaying the scalar routine's insertion order
  bit for bit.

Because every per-level emitter reproduces its scalar counterpart's
effect exactly, both backends produce **bit-identical output arrays** for
every vectorizable pair — including BCSR, DCSR, CSF/COO3, HiCOO and
skyline, none of which the old format-recognition backend handled;
``tests/convert/test_backends.py`` asserts this.  Formats containing a
level without the vector facet, hashed *sources* (slot gathers stay
scalar; hashed destinations assemble in bulk via
:func:`repro.ir.runtime.hashed_bulk_insert`), and non-default
:class:`~repro.convert.planner.PlanOptions` report as not vectorizable,
and the planner falls back to the scalar backend.

Like the scalar backend, the emitted routine is plain Python source
(inspectable via ``.source``) compiled by
:func:`repro.ir.runtime.compile_source`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from . import builder as b
from .nodes import Block, Const, Expr, For, If, Load, Stmt, Var, While
from .printer import print_expr, print_stmt
from .simplify import simplify_expr

# NOTE: imports from repro.convert / repro.cin live inside functions:
# repro.convert imports this module at package-init time, so module-level
# imports here would be circular.

#: Backend identifiers used in cache keys and the public ``backend=`` option.
SCALAR = "scalar"
VECTOR = "vector"


class VectorLoweringError(ValueError):
    """Raised when a nominally capable pair fails to vector-lower; the
    planner catches it and falls back to the scalar backend."""


def vectorizable(src_format, dst_format, options=None) -> bool:
    """True if the (src, dst) pair lowers through the vector backend.

    The decision is delegated to the level formats: every level of both
    formats must implement the vector-emission protocol
    (``Level.vector_capable``).  There is no per-format allowlist — a
    user-defined format vectorizes iff its levels do.  Non-default
    :class:`~repro.convert.planner.PlanOptions` force the scalar backend:
    the options select *scalar code shapes* (unsequenced edges, counter
    arrays, ...) that have no bulk-operation counterpart.
    """
    from ..convert.planner import PlanOptions

    options = options or PlanOptions()
    if options.key() != PlanOptions().key():
        return False
    if src_format.inverse is None:
        return False
    return all(
        level.vector_gather_capable for level in src_format.levels
    ) and all(level.vector_capable for level in dst_format.levels)


# ----------------------------------------------------------------------
# emission context


def _has_control_flow(stmt: Stmt) -> bool:
    if isinstance(stmt, (For, While, If)):
        return True
    if isinstance(stmt, Block):
        return any(_has_control_flow(child) for child in stmt.stmts)
    return False


class VectorEmitter:
    """Accumulates the generated numpy source, one line per bulk op.

    Also carries the per-nonzero context the destination levels need while
    scattering: ``nnz`` (source-order nonzero count expression),
    ``parent_size`` (assembled size of the parent level) and ``dedup``
    (whether the current level requires Section 6.2 deduplication).
    """

    def __init__(self, ctx) -> None:
        self.ctx = ctx
        self.ng = ctx.ng
        self.lines: List[str] = []
        #: expression (source text) for the number of gathered nonzeros
        self.nnz: str = "0"
        #: assembled size of the parent level during scattering
        self.parent_size: Expr = Const(1)
        #: True while emitting positions of a level that needs dedup
        self.dedup: bool = False

    # -- lines ---------------------------------------------------------------
    def emit(self, line: str) -> None:
        self.lines.append(line)

    def comment(self, text: str) -> None:
        self.lines.append(f"# {text}")

    def fresh(self, prefix: str) -> str:
        return self.ng.fresh(prefix)

    def assign(self, prefix: str, rhs: str) -> Var:
        """Emit ``<fresh name> = rhs`` and return the new variable."""
        var = Var(self.ng.fresh(prefix))
        self.emit(f"{var.name} = {rhs}")
        return var

    def bind(self, prefix: str, expr: Expr) -> Var:
        """Materialize ``expr`` as a variable (no-op for plain variables)."""
        expr = simplify_expr(expr)
        if isinstance(expr, Var):
            return expr
        return self.assign(prefix, print_expr(expr))

    def atom(self, expr) -> str:
        """Print an expression, parenthesized unless atomic (for safe
        embedding inside larger generated expressions)."""
        if isinstance(expr, str):
            return expr
        expr = simplify_expr(expr)
        text = print_expr(expr)
        if isinstance(expr, (Var, Const, Load)):
            return text
        return f"({text})"

    def emit_straightline(self, stmts) -> None:
        """Print scalar-IR statements verbatim; they vectorize elementwise
        as long as they are straight-line code (no loops/branches)."""
        from ..levels.base import LevelFunctionError

        for stmt in stmts:
            if _has_control_flow(stmt):
                raise LevelFunctionError(
                    "scalar emission contains control flow; the level must "
                    "override its vector emitter"
                )
            for line in print_stmt(stmt).splitlines():
                self.emit(line)

    # -- shared assembly helper ----------------------------------------------
    def emit_edges_from_counts(self, pos_arr: Var, counts: Var, parent_size: Expr) -> None:
        """``pos = [0, cumsum(counts)...]`` — bulk sequenced edge insertion."""
        size = simplify_expr(b.add(parent_size, 1))
        self.emit(f"{pos_arr.name} = np.zeros({self.atom(size)}, dtype=np.int64)")
        self.emit(f"np.cumsum({counts.name}, out={pos_arr.name}[1:])")


class Frontier:
    """Bulk iteration state over a coordinate hierarchy.

    One entry per enumerated path through the visited levels, in the
    exact depth-first order of the scalar loop nest.  ``coords`` holds
    one coordinate array per visited level.  Positions are *not*
    materialized: every level visits its full position space in order,
    so the frontier's positions are always the contiguous range
    ``[lo, hi)`` — position gathers degrade to slices (``crd[lo:hi]``,
    ``vals[lo:hi]``) and only consumers that need explicit position
    values (banded's derived coordinate, prefix width passes) call
    :meth:`pos_array`.
    """

    def __init__(self, em: VectorEmitter) -> None:
        self.em = em
        #: position range bounds, as printable scalar expressions
        self.lo: str = "0"
        self.hi: str = "1"
        self.coords: List[Var] = []

    # -- position range ------------------------------------------------------
    def count(self) -> str:
        """Number of paths, as a printable scalar expression."""
        if self.lo == "0":
            return self.hi
        return f"({self.hi} - {self.lo})"

    def at_root(self) -> bool:
        return self.lo == "0" and self.hi == "1"

    def lo_plus1(self) -> str:
        return "1" if self.lo == "0" else f"{self.lo} + 1"

    def hi_plus1(self) -> str:
        return f"{self.hi} + 1"

    def pos_array(self, name: str = "p") -> Var:
        """Materialize the positions as an explicit int64 array."""
        return self.em.assign(
            name, f"np.arange({self.lo}, {self.hi}, dtype=np.int64)"
        )

    def slice(self, array: str) -> str:
        """Gather ``array`` at the frontier's positions (a slice)."""
        return f"{array}[{self.lo}:{self.hi}]"

    def rebound(self, lo: str, hi: str, prefix: str = "lo") -> None:
        """Set new position bounds, binding non-atomic expressions to
        scalar variables so downstream slices stay readable."""
        self.lo = "0" if lo == "0" else self.em.assign(prefix, lo).name
        self.hi = self.em.assign("hi" if prefix == "lo" else prefix, hi).name

    # -- expansion -----------------------------------------------------------
    def repeat_coords(self, factor: str) -> None:
        """Expand ancestor coordinate arrays (``factor``: int or reps
        array); duplicate names (derived-coordinate aliases) expand once."""
        seen = set()
        for coord in self.coords:
            if coord.name in seen:
                continue
            seen.add(coord.name)
            self.em.emit(f"{coord.name} = np.repeat({coord.name}, {factor})")

    def expand_fixed(self, size: Expr, slot_name: str) -> Var:
        """Expand every path by ``size`` consecutive children; returns the
        child-slot array (``0..size-1`` per parent, parent-major)."""
        em = self.em
        size_s = em.atom(size)
        if self.at_root():
            slot = em.assign(slot_name, f"np.arange({size_s}, dtype=np.int64)")
            self.lo, self.hi = "0", size_s
            return slot
        slot = em.assign(
            slot_name,
            f"np.tile(np.arange({size_s}, dtype=np.int64), {self.count()})",
        )
        self.repeat_coords(size_s)
        lo = "0" if self.lo == "0" else f"{self.lo} * {size_s}"
        self.rebound(lo, f"{self.hi} * {size_s}")
        return slot

    def expand_segments(self, pos_arr: str) -> None:
        """Expand each path by its ``pos`` segment (compressed/banded):
        children of the contiguous parent range ``[lo, hi)`` tile the
        contiguous child range ``[pos[lo], pos[hi])``."""
        if self.coords:
            reps = self.em.assign(
                "ln",
                f"{pos_arr}[{self.lo_plus1()}:{self.hi_plus1()}]"
                f" - {pos_arr}[{self.lo}:{self.hi}]",
            )
            self.repeat_coords(reps.name)
        self.rebound(f"{pos_arr}[{self.lo}]", f"{pos_arr}[{self.hi}]")


# ----------------------------------------------------------------------
# gather: source (or assembled-destination-prefix) levels -> streams


def _gather_src(em: VectorEmitter, nlevels: int) -> Frontier:
    """Enumerate stored paths of the first ``nlevels`` source levels."""
    frontier = Frontier(em)
    for k in range(nlevels):
        em.ctx.src_format.levels[k].vector_iterate(em, em.ctx.src, k, frontier)
    return frontier


def _gather_dst_parents(em: VectorEmitter, nlevels: int) -> Frontier:
    """Enumerate positions/coordinates of assembled destination levels
    ``0..nlevels-1`` (the edge-insertion parent loop, Section 6)."""
    ctx = em.ctx
    frontier = Frontier(em)
    for k in range(nlevels):
        ctx.dst_format.levels[k].vector_iterate(em, ctx.dst, k, frontier)
        # Implicit levels iterate shifted coordinates [0, extent); unshift
        # so query handles see true coordinates (mirrors the scalar
        # parent loop).
        lo = simplify_expr(ctx.dst_dim_lo(k))
        if not (isinstance(lo, Const) and lo.value == 0):
            coord = frontier.coords[k]
            em.emit(f"{coord.name} = {coord.name} + {em.atom(lo)}")
    return frontier


def _prefix_pass(em: VectorEmitter, nlevels: int):
    """Source-prefix iteration plus composed widths (simplify-width-count):
    returns the prefix frontier and the per-path width expression."""
    ctx = em.ctx
    frontier = _gather_src(em, nlevels)
    start: Expr = Const(0) if frontier.at_root() else frontier.pos_array()
    end: Expr = simplify_expr(b.add(start, 1))
    for k in range(nlevels, len(ctx.src_format.levels)):
        start, end = ctx.src_format.levels[k].vector_width_step(
            em, ctx.src, k, start, end
        )
    return frontier, simplify_expr(b.sub(end, start))


def _gather_nonzeros(em: VectorEmitter):
    """Gather the full source: canonical coordinate arrays plus the value
    stream, in scalar iteration order, explicit zeros dropped."""
    from ..remap.lower import lower_remap

    ctx = em.ctx
    frontier = _gather_src(em, ctx.src_format.nlevels)
    vals = ctx.src_vals()
    val = em.assign("val", frontier.slice(vals.name))

    inverse = ctx.src_format.inverse
    env = dict(zip(inverse.src_vars, frontier.coords))
    lowered = lower_remap(inverse, env, ctx.src_format.param_exprs(), {}, ctx.ng)
    em.emit_straightline(lowered.prelude)
    canonical: List[Var] = []
    for name, expr in zip(ctx.canonical_names, lowered.coord_exprs):
        canonical.append(em.bind(name, expr))

    skip_zeros = ctx.src_format.padded
    if skip_zeros:
        keep = em.assign("keep", f"np.flatnonzero({val.name})")
        filtered = []
        for var in canonical + [val]:
            if var.name not in filtered:
                filtered.append(var.name)
        for name in filtered:
            em.emit(f"{name} = {name}[{keep.name}]")
    em.nnz = f"{val.name}.shape[0]"
    return canonical, val


# ----------------------------------------------------------------------
# remap: destination coordinates + vectorized counters


def _counter_env(em: VectorEmitter, canonical: List[Var]) -> Dict:
    """Counter value streams: a nonzero's counter equals its rank among
    same-key nonzeros in iteration order (Section 4.2), which is
    ``group_ranks`` over the linearized key stream — one semantics
    covering both the scalar backend's array and register realizations."""
    ctx = em.ctx
    env: Dict = {}
    for counter in ctx.dst_format.remap.counters():
        if counter.over:
            index: Expr = Const(0)
            for var in counter.over:
                coord = canonical[ctx.canonical_names.index(var)]
                index = b.add(b.mul(index, ctx.canonical_dim_size(var)), coord)
            key = em.bind("ckey", index)
            env[counter] = em.assign("k", f"group_ranks({key.name})")
        else:
            env[counter] = em.assign("k", f"np.arange({em.nnz}, dtype=np.int64)")
    return env


def _dst_coords(em: VectorEmitter, canonical: List[Var], counter_env) -> List[Var]:
    from ..remap.lower import lower_remap

    ctx = em.ctx
    env = dict(zip(ctx.canonical_names, canonical))
    lowered = lower_remap(
        ctx.dst_format.remap, env, ctx.dst_format.param_exprs(), counter_env, ctx.ng
    )
    em.emit_straightline(lowered.prelude)
    coords: List[Var] = []
    for d, expr in enumerate(lowered.coord_exprs):
        coords.append(em.bind(em.ctx.dst.coord_name(d), expr))
    return coords


# ----------------------------------------------------------------------
# scatter: per-level destination assembly


def _scatter(em: VectorEmitter, coords: List[Var], val: Var) -> None:
    from ..convert.planner import needs_dedup

    ctx = em.ctx
    parent: Optional[Var] = None
    parent_size: Expr = Const(1)
    for k, level in enumerate(ctx.dst_format.levels):
        em.parent_size = parent_size
        if level.has_edges:
            parents = _gather_dst_parents(em, k) if k else None
            level.vector_edges(em, ctx.dst, k, parents, parent_size)
        level.vector_init_coords(em, ctx.dst, k, parent_size)
        level.vector_init_pos(em, ctx.dst, k, parent_size)
        stmts, size_expr = level.emit_get_size(ctx.dst, k, parent_size)
        if stmts:
            raise VectorLoweringError(
                f"level {k} get_size does not vectorize"
            )
        size_var = em.bind(f"szB{k + 1}", size_expr)
        em.dedup = needs_dedup(ctx.dst_format, ctx.canonical_names, k)
        parent = level.vector_pos(em, ctx.dst, k, parent, coords)
        em.dedup = False
        level.vector_insert_coord(em, ctx.dst, k, parent, coords)
        parent_size = size_var
    if parent is None:
        raise VectorLoweringError("destination stores no positions")
    vals = ctx.dst_vals()
    init = "zeros" if ctx.dst_format.padded else "empty"
    em.emit(f"{vals.name} = np.{init}({em.atom(parent_size)}, dtype=np.float64)")
    em.emit(f"{vals.name}[{parent.name}] = {val.name}")


# ----------------------------------------------------------------------
# driver


def plan_vector(src_format, dst_format, options=None):
    """Plan a conversion through the vector backend.

    Returns a :class:`~repro.convert.planner.GeneratedConversion` with
    ``backend == "vector"``, or ``None`` when the pair is not
    vectorizable (the planner then falls back to the scalar backend).
    """
    from ..cin.compile import VectorQueryCompiler
    from ..cin.transforms import QueryCompileError
    from ..convert.context import ConversionContext
    from ..convert.planner import GeneratedConversion, PlanOptions, _sanitize
    from ..levels.base import LevelFunctionError

    options = options or PlanOptions()
    if not vectorizable(src_format, dst_format, options):
        return None

    ctx = ConversionContext(src_format, dst_format)
    em = VectorEmitter(ctx)
    try:
        em.comment("gather: source nonzeros in scalar iteration order")
        canonical, val = _gather_nonzeros(em)

        nlevels = dst_format.nlevels
        level_specs = [
            (k, spec)
            for k, level in enumerate(dst_format.levels)
            for spec in level.queries(k, nlevels)
        ]
        if level_specs:
            em.comment("analysis: attribute queries (Section 5, bulk passes)")
            compiler = VectorQueryCompiler(
                ctx, em, canonical, lambda n: _prefix_pass(em, n)
            )
            compiler.compile(level_specs)

        em.comment(f"remap: destination coordinates ({dst_format.remap})")
        counter_env = _counter_env(em, canonical)
        coords = _dst_coords(em, canonical, counter_env)

        em.comment("assembly: per-level edge insertion and bulk coordinate insertion")
        _scatter(em, coords, val)
    except (LevelFunctionError, QueryCompileError, VectorLoweringError):
        return None

    name = f"convert_{_sanitize(src_format.name)}_to_{_sanitize(dst_format.name)}__vector"
    outputs = ctx.output_list()
    params = [var.name for _, var in ctx.param_list()]
    lines = [
        f"def {name}({', '.join(params)}):",
        f'    """Convert a {src_format.name} tensor to {dst_format.name} '
        "with bulk numpy operations",
        "",
        "    Generated by repro.ir.vector (per-level lowering; coordinate "
        f"remapping: {dst_format.remap}).",
        '    """',
    ]
    lines += [f"    {line}" for line in em.lines]
    lines.append(f"    return {', '.join(var.name for _, var in outputs)}")
    source = "\n".join(lines)

    return GeneratedConversion(
        func=None,
        source=source,
        func_name=name,
        params=[key for key, _ in ctx.param_list()],
        outputs=[key for key, _ in outputs],
        src_format=src_format,
        dst_format=dst_format,
        backend=VECTOR,
    )
