"""Vectorized numpy lowering backend for conversion routines.

The scalar backend (:mod:`repro.convert.planner`) lowers the conversion IR
to per-nonzero Python loops — faithful to the paper's generated C, but
orders of magnitude slower than numpy's bulk operations on this substrate.
This module is a *second* lowering: for the paper's evaluated matrix
formats (COO, CSR, CSC, DIA, ELL) it compiles the same conversion —
source iteration, coordinate remapping, destination assembly — to bulk
numpy operations:

* **gather** — the source's stored nonzeros are materialized as three
  streams ``row``/``col``/``val`` in exactly the scalar backend's
  iteration order (``np.repeat`` over ``pos`` deltas for compressed
  levels, ``np.nonzero`` masks for padded DIA/ELL slots);
* **scatter** — the destination is assembled with bulk equivalents of the
  paper's assembly phases: ``np.bincount`` + ``np.cumsum`` for attribute
  queries and edge insertion, a stable sort permutation
  (:func:`repro.ir.runtime.stable_order`) in place of sequenced
  coordinate insertion (stability reproduces the scalar routine's
  within-group source order bit for bit), ``np.unique``
  + ``np.searchsorted`` for DIA's diagonal map, and masked scatters for
  the padded DIA/ELL value arrays.

Because the stable permutation replays the exact insertion order of the
scalar routine, both backends produce **bit-identical output arrays**;
``tests/convert/test_backends.py`` asserts this over the full pair
matrix.  Formats outside the recognized structural patterns (BCSR, CSF,
hash, skyline, ...) and non-default :class:`PlanOptions` report as not
vectorizable, and the planner falls back to the scalar backend.

Like the scalar backend, the emitted routine is plain Python source
(inspectable via ``.source``) compiled by
:func:`repro.ir.runtime.compile_source`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

# NOTE: imports from repro.convert live inside functions: repro.convert
# imports this module at package-init time, so a module-level import here
# would be circular.

#: Backend identifiers used in cache keys and the public ``backend=`` option.
SCALAR = "scalar"
VECTOR = "vector"


def _structural_key(fmt) -> Tuple:
    """Structural identity of a format, ignoring its display name.

    Memoized on the (immutable) format instance: backend resolution runs
    on every ``convert()`` call, including kernel-cache hits, and the key
    derivation would otherwise dominate the hot-path lookup.
    """
    key = getattr(fmt, "_structural_key_memo", None)
    if key is None:
        key = (
            str(fmt.remap),
            str(fmt.inverse),
            tuple(level.signature() for level in fmt.levels),
            tuple(sorted(fmt.params.items())),
        )
        object.__setattr__(fmt, "_structural_key_memo", key)  # frozen dataclass
    return key


#: Structural key -> pattern name for the five vectorizable library
#: formats, built once on first use (module import would be circular).
_PATTERNS: Dict[Tuple, str] = {}

#: Memoized classification per structural key (formats are immutable).
_KIND_CACHE: Dict[Tuple, Optional[str]] = {}


def _kind(fmt) -> Optional[str]:
    """Classify ``fmt`` as one of the vectorizable patterns, or ``None``.

    Matching is structural (remap + inverse + level signatures), so a
    user-defined format with CSR's exact structure vectorizes too.
    """
    if not _PATTERNS:
        from ..formats import library

        for name in ("COO", "CSR", "CSC", "DIA", "ELL"):
            _PATTERNS[_structural_key(getattr(library, name))] = name.lower()
    key = _structural_key(fmt)
    if key not in _KIND_CACHE:
        _KIND_CACHE[key] = _PATTERNS.get(key)
    return _KIND_CACHE[key]


def vectorizable(src_format, dst_format, options=None) -> bool:
    """True if the (src, dst) pair lowers through the vector backend.

    Non-default :class:`~repro.convert.planner.PlanOptions` force the
    scalar backend: the options select *scalar code shapes* (unsequenced
    edges, counter arrays, ...) that have no bulk-operation counterpart.
    """
    from ..convert.planner import PlanOptions

    options = options or PlanOptions()
    if options.key() != PlanOptions().key():
        return False
    return _kind(src_format) is not None and _kind(dst_format) is not None


# ----------------------------------------------------------------------
# gather: source nonzeros -> row/col/val streams in scalar iteration order


def _gather_coo(ctx) -> List[str]:
    pos = ctx.src_array(0, "pos").name
    crd0 = ctx.src_array(0, "crd").name
    crd1 = ctx.src_array(1, "crd").name
    vals = ctx.src_vals().name
    return [
        f"lo = {pos}[0]",
        f"hi = {pos}[1]",
        f"row = {crd0}[lo:hi]",
        f"col = {crd1}[lo:hi]",
        f"val = {vals}[lo:hi]",
    ]


def _gather_csr(ctx) -> List[str]:
    pos = ctx.src_array(1, "pos").name
    crd = ctx.src_array(1, "crd").name
    vals = ctx.src_vals().name
    return [
        f"nnz = {pos}[N1]",
        f"row = np.repeat(np.arange(N1, dtype=np.int64), np.diff({pos}[:N1 + 1]))",
        f"col = {crd}[:nnz]",
        f"val = {vals}[:nnz]",
    ]


def _gather_csc(ctx) -> List[str]:
    pos = ctx.src_array(1, "pos").name
    crd = ctx.src_array(1, "crd").name
    vals = ctx.src_vals().name
    return [
        f"nnz = {pos}[N2]",
        f"col = np.repeat(np.arange(N2, dtype=np.int64), np.diff({pos}[:N2 + 1]))",
        f"row = {crd}[:nnz]",
        f"val = {vals}[:nnz]",
    ]


def _gather_dia(ctx) -> List[str]:
    perm = ctx.src_array(0, "perm").name
    count = ctx.src_meta(0, "K").name
    vals = ctx.src_vals().name
    # np.nonzero walks the (diagonal, row) grid in C order — the exact
    # order of the scalar squeezed/dense loop nest, zeros skipped like the
    # scalar padded-source guard.
    return [
        f"grid = {vals}[:{count} * N1].reshape({count}, N1)",
        "dd, row = np.nonzero(grid)",
        f"col = {perm}[dd] + row",
        "val = grid[dd, row]",
    ]


def _gather_ell(ctx) -> List[str]:
    count = ctx.src_meta(0, "K").name
    crd = ctx.src_array(2, "crd").name
    vals = ctx.src_vals().name
    return [
        f"grid = {vals}[:{count} * N1].reshape({count}, N1)",
        "kk, row = np.nonzero(grid)",
        f"col = {crd}[:{count} * N1].reshape({count}, N1)[kk, row]",
        "val = grid[kk, row]",
    ]


# ----------------------------------------------------------------------
# scatter: row/col/val streams -> destination arrays


def _scatter_coo(ctx) -> List[str]:
    pos = ctx.dst_array(0, "pos").name
    crd0 = ctx.dst_array(0, "crd").name
    crd1 = ctx.dst_array(1, "crd").name
    vals = ctx.dst_vals().name
    return [
        f"{pos} = np.array([0, row.shape[0]], dtype=np.int64)",
        f"{crd0} = np.array(row, dtype=np.int64)",
        f"{crd1} = np.array(col, dtype=np.int64)",
        f"{vals} = np.array(val, dtype=np.float64)",
    ]


def _scatter_compressed(ctx, key: str, store: str, extent: str) -> List[str]:
    """CSR/CSC assembly: counting sort by ``key``, stable in source order."""
    pos = ctx.dst_array(1, "pos").name
    crd = ctx.dst_array(1, "crd").name
    vals = ctx.dst_vals().name
    return [
        f"{pos} = np.zeros({extent} + 1, dtype=np.int64)",
        f"np.cumsum(np.bincount({key}, minlength={extent}), out={pos}[1:])",
        f"order = stable_order({key})",
        f"{crd} = {store}[order].astype(np.int64, copy=False)",
        f"{vals} = val[order].astype(np.float64, copy=False)",
    ]


def _scatter_csr(ctx) -> List[str]:
    return _scatter_compressed(ctx, "row", "col", "N1")


def _scatter_csc(ctx) -> List[str]:
    return _scatter_compressed(ctx, "col", "row", "N2")


def _scatter_dia(ctx) -> List[str]:
    perm = ctx.dst_array(0, "perm").name
    count = ctx.dst_meta(0, "K").name
    vals = ctx.dst_vals().name
    return [
        "off = col - row",
        f"{perm} = np.unique(off).astype(np.int64, copy=False)",
        f"{count} = {perm}.shape[0]",
        f"{vals} = np.zeros({count} * N1, dtype=np.float64)",
        f"{vals}[np.searchsorted({perm}, off) * N1 + row] = val",
    ]


def _scatter_ell(ctx) -> List[str]:
    count = ctx.dst_meta(0, "K").name
    crd = ctx.dst_array(2, "crd").name
    vals = ctx.dst_vals().name
    # slot = each nonzero's rank within its row in source order — the bulk
    # form of the remapping counter #i (Section 4.2).
    return [
        "counts = np.bincount(row, minlength=N1)",
        f"{count} = int(counts.max()) if counts.size else 0",
        "order = stable_order(row)",
        "slot = np.empty(row.shape[0], dtype=np.int64)",
        "slot[order] = np.arange(row.shape[0], dtype=np.int64)"
        " - np.repeat(np.cumsum(counts) - counts, counts)",
        "lin = slot * N1 + row",
        f"{crd} = np.zeros({count} * N1, dtype=np.int64)",
        f"{vals} = np.zeros({count} * N1, dtype=np.float64)",
        f"{crd}[lin] = col",
        f"{vals}[lin] = val",
    ]


_GATHER: Dict[str, Callable] = {
    "coo": _gather_coo,
    "csr": _gather_csr,
    "csc": _gather_csc,
    "dia": _gather_dia,
    "ell": _gather_ell,
}

_SCATTER: Dict[str, Callable] = {
    "coo": _scatter_coo,
    "csr": _scatter_csr,
    "csc": _scatter_csc,
    "dia": _scatter_dia,
    "ell": _scatter_ell,
}


def plan_vector(src_format, dst_format, options=None):
    """Plan a conversion through the vector backend.

    Returns a :class:`~repro.convert.planner.GeneratedConversion` with
    ``backend == "vector"``, or ``None`` when the pair is not
    vectorizable (the planner then falls back to the scalar backend).
    """
    from ..convert.context import ConversionContext
    from ..convert.planner import GeneratedConversion, PlanOptions, _sanitize

    options = options or PlanOptions()
    src_kind = _kind(src_format)
    dst_kind = _kind(dst_format)
    if src_kind is None or dst_kind is None or options.key() != PlanOptions().key():
        return None

    ctx = ConversionContext(src_format, dst_format)
    gather = _GATHER[src_kind](ctx)
    scatter = _SCATTER[dst_kind](ctx)
    outputs = ctx.output_list()

    name = f"convert_{_sanitize(src_format.name)}_to_{_sanitize(dst_format.name)}__vector"
    params = [var.name for _, var in ctx.param_list()]
    lines = [
        f"def {name}({', '.join(params)}):",
        f'    """Convert a {src_format.name} tensor to {dst_format.name} '
        "with bulk numpy operations",
        "",
        "    Generated by repro.ir.vector (coordinate remapping: "
        f"{dst_format.remap}).",
        '    """',
        "    # gather: source nonzeros in scalar iteration order",
    ]
    lines += [f"    {line}" for line in gather]
    lines.append("    # scatter: bulk assembly of the destination")
    lines += [f"    {line}" for line in scatter]
    lines.append(f"    return {', '.join(var.name for _, var in outputs)}")
    source = "\n".join(lines)

    return GeneratedConversion(
        func=None,
        source=source,
        func_name=name,
        params=[key for key, _ in ctx.param_list()],
        outputs=[key for key, _ in outputs],
        src_format=src_format,
        dst_format=dst_format,
        backend=VECTOR,
    )
