"""Printing IR trees to Python source code.

The printer produces readable, PEP 8-ish Python: minimal parentheses via a
precedence table, four-space indentation and ``#`` comments that label the
conversion phases exactly as the colored regions in Figure 6 of the paper.
"""

from __future__ import annotations

from typing import List

from .nodes import (
    Alloc,
    Assign,
    AugAssign,
    AugStore,
    BinOp,
    Block,
    Call,
    Comment,
    Const,
    Expr,
    ExprStmt,
    For,
    FuncDef,
    If,
    Load,
    Pass,
    Return,
    Stmt,
    Store,
    Ternary,
    UnOp,
    Var,
    While,
)

# Python operator precedence (higher binds tighter).
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "not": 3,
    "<": 5, "<=": 5, ">": 5, ">=": 5, "==": 5, "!=": 5,
    "|": 6,
    "^": 7,
    "&": 8,
    "<<": 9, ">>": 9,
    "+": 10, "-": 10,
    "*": 11, "/": 11, "//": 11, "%": 11,
    "unary": 12,
    "atom": 20,
}

# Operators where ``a op (b op c)`` differs from ``(a op b) op c``; the right
# operand must be parenthesized when it has the same precedence.
_NON_ASSOC_RIGHT = {"-", "/", "//", "%", "<<", ">>"}


def _prec(expr: Expr) -> int:
    if isinstance(expr, BinOp):
        return _PRECEDENCE[expr.op]
    if isinstance(expr, UnOp):
        return _PRECEDENCE["not"] if expr.op == "not" else _PRECEDENCE["unary"]
    if isinstance(expr, Ternary):
        return 0
    return _PRECEDENCE["atom"]


def print_expr(expr: Expr) -> str:
    """Render an expression to Python source."""
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Const):
        if isinstance(expr.value, bool):
            return "True" if expr.value else "False"
        return repr(expr.value)
    if isinstance(expr, BinOp):
        me = _PRECEDENCE[expr.op]
        lhs = print_expr(expr.lhs)
        if _prec(expr.lhs) < me:
            lhs = f"({lhs})"
        rhs = print_expr(expr.rhs)
        rhs_prec = _prec(expr.rhs)
        if rhs_prec < me or (rhs_prec == me and expr.op in _NON_ASSOC_RIGHT):
            rhs = f"({rhs})"
        # Nested comparisons would chain in Python (a < b < c); force parens.
        if expr.op in ("<", "<=", ">", ">=", "==", "!="):
            if isinstance(expr.lhs, BinOp) and _prec(expr.lhs) == me:
                lhs = f"({lhs})"
            if isinstance(expr.rhs, BinOp) and _prec(expr.rhs) == me:
                rhs = f"({rhs})"
        return f"{lhs} {expr.op} {rhs}"
    if isinstance(expr, UnOp):
        operand = print_expr(expr.operand)
        if _prec(expr.operand) < _prec(expr):
            operand = f"({operand})"
        if expr.op == "not":
            return f"not {operand}"
        return f"{expr.op}{operand}"
    if isinstance(expr, Load):
        array = print_expr(expr.array)
        if _prec(expr.array) < _PRECEDENCE["atom"]:
            array = f"({array})"
        return f"{array}[{print_expr(expr.index)}]"
    if isinstance(expr, Call):
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, Ternary):
        return (
            f"({print_expr(expr.if_true)} if {print_expr(expr.cond)}"
            f" else {print_expr(expr.if_false)})"
        )
    raise TypeError(f"cannot print {expr!r}")


_DTYPE_ALLOC = {
    "zeros": "np.zeros",
    "empty": "np.empty",
}


class _Printer:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def stmt(self, node: Stmt) -> None:
        if isinstance(node, Block):
            if not node.stmts:
                self.emit("pass")
                return
            for child in node.stmts:
                self.stmt(child)
        elif isinstance(node, Comment):
            for line in node.text.splitlines():
                self.emit(f"# {line}")
        elif isinstance(node, Pass):
            self.emit("pass")
        elif isinstance(node, Assign):
            self.emit(f"{node.target.name} = {print_expr(node.value)}")
        elif isinstance(node, AugAssign):
            if node.op in ("max", "min"):
                self.emit(
                    f"{node.target.name} = {node.op}"
                    f"({node.target.name}, {print_expr(node.value)})"
                )
            else:
                self.emit(f"{node.target.name} {node.op}= {print_expr(node.value)}")
        elif isinstance(node, Store):
            self.emit(
                f"{print_expr(node.array)}[{print_expr(node.index)}]"
                f" = {print_expr(node.value)}"
            )
        elif isinstance(node, AugStore):
            target = f"{print_expr(node.array)}[{print_expr(node.index)}]"
            if node.op in ("max", "min"):
                self.emit(f"{target} = {node.op}({target}, {print_expr(node.value)})")
            elif node.op == "or":
                self.emit(f"{target} = {target} or {print_expr(node.value)}")
            else:
                self.emit(f"{target} {node.op}= {print_expr(node.value)}")
        elif isinstance(node, For):
            lo, hi = print_expr(node.lo), print_expr(node.hi)
            rng = f"range({hi})" if lo == "0" else f"range({lo}, {hi})"
            self.emit(f"for {node.var.name} in {rng}:")
            self.indent += 1
            self.stmt(node.body)
            self.indent -= 1
        elif isinstance(node, While):
            self.emit(f"while {print_expr(node.cond)}:")
            self.indent += 1
            self.stmt(node.body)
            self.indent -= 1
        elif isinstance(node, If):
            self.emit(f"if {print_expr(node.cond)}:")
            self.indent += 1
            self.stmt(node.then)
            self.indent -= 1
            if node.orelse is not None:
                self.emit("else:")
                self.indent += 1
                self.stmt(node.orelse)
                self.indent -= 1
        elif isinstance(node, Alloc):
            fn = _DTYPE_ALLOC[node.init]
            self.emit(
                f"{node.target.name} = {fn}({print_expr(node.size)},"
                f" dtype=np.{node.dtype})"
            )
        elif isinstance(node, ExprStmt):
            self.emit(print_expr(node.expr))
        elif isinstance(node, Return):
            if not node.values:
                self.emit("return")
            else:
                self.emit("return " + ", ".join(print_expr(v) for v in node.values))
        else:
            raise TypeError(f"cannot print {node!r}")


def print_stmt(node: Stmt) -> str:
    """Render a statement (or block) to Python source."""
    printer = _Printer()
    printer.stmt(node)
    return "\n".join(printer.lines)


def print_func(func: FuncDef) -> str:
    """Render a function definition to Python source."""
    printer = _Printer()
    printer.emit(f"def {func.name}({', '.join(func.params)}):")
    printer.indent += 1
    if func.docstring:
        doc = func.docstring.replace('"""', r"\"\"\"")
        printer.emit(f'"""{doc}"""')
    printer.stmt(func.body)
    printer.indent -= 1
    return "\n".join(printer.lines)
