"""Concrete index notation for attribute queries (Section 5.2, Table 1)."""

from .compile import QueryCompiler
from .lower import QueryPlan, lower_query
from .nodes import (
    CinStatement,
    DenseSpace,
    KeyDim,
    KeySrc,
    SrcNonzeros,
    SrcPrefix,
    VConst,
    VCoordMax,
    VCoordMin,
    VLoad,
    VWidth,
)
from .transforms import ConversionInfo, QueryCompileError, optimize_plan

__all__ = [
    "CinStatement", "ConversionInfo", "DenseSpace", "KeyDim", "KeySrc",
    "QueryCompileError", "QueryCompiler", "QueryPlan", "SrcNonzeros",
    "SrcPrefix", "VConst", "VCoordMax", "VCoordMin", "VLoad", "VWidth",
    "lower_query", "optimize_plan",
]
