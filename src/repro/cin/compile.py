"""Compiling optimized CIN query plans to imperative IR (and to numpy).

The :class:`QueryCompiler` takes the attribute queries every destination
level requires, lowers them to canonical CIN (:mod:`repro.cin.lower`),
optimizes them with the Table 1 rules (:mod:`repro.cin.transforms`), and
emits the analysis phase of the conversion routine:

* one fused pass over the source tensor's nonzeros for all statements
  with a :class:`SrcNonzeros` domain (e.g. histograms, ``nz`` bit sets);
* loops over source level *prefixes* with dynamically computed widths for
  statements the simplify-width-count rule rewrote (e.g. CSR row lengths
  from ``pos``);
* dense reduction loops over materialized temporaries (e.g. the max over
  a row-count histogram for COO→ELL).

:class:`VectorQueryCompiler` compiles the *same* optimized plans to bulk
numpy passes for the vector backend (:mod:`repro.ir.vector`): histogram
reductions become ``np.bincount``/``np.add.at``, extrema become
``np.maximum.at``/``.max(initial=0)``, assignments become fancy-index
scatters, and dense reductions become reshape + axis reductions — so
every query an optimized plan can express vectorizes without per-format
special cases.

Results are registered on the conversion context as
:class:`~repro.convert.context.QueryResultHandle` objects for the assembly
phase to consume.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..convert.context import ConversionContext, QueryResultHandle
from ..convert.iterate import SourceLoopEmitter
from ..ir import builder as b
from ..ir.nodes import (
    Alloc,
    Assign,
    AugAssign,
    AugStore,
    Const,
    Expr,
    For,
    If,
    Load,
    Stmt,
    Store,
    Var,
)
from ..ir.simplify import simplify_expr
from ..query.spec import QuerySpec
from ..remap.lower import lower_rexpr
from .lower import QueryPlan, lower_query
from .nodes import (
    CinStatement,
    DenseSpace,
    Key,
    KeySrc,
    SrcNonzeros,
    SrcPrefix,
    VConst,
    VCoordMax,
    VCoordMin,
)
from .transforms import ConversionInfo, QueryCompileError, optimize_plan


class QueryCompiler:
    """Generates the analysis phase for a set of per-level queries."""

    def __init__(self, ctx: ConversionContext, disable_width_count: bool = False) -> None:
        self.ctx = ctx
        self.info = ConversionInfo(ctx.src_format, ctx.dst_format.remap)
        self.info.disable_width_count = disable_width_count
        self.emitter = SourceLoopEmitter(ctx)
        #: result name -> (keys, var, is_scalar)
        self.results: Dict[str, Tuple[Tuple[Key, ...], Var, bool]] = {}

    # ------------------------------------------------------------------
    def compile(
        self, level_specs: Sequence[Tuple[int, QuerySpec]]
    ) -> List[Stmt]:
        """Lower, optimize and emit all queries; register their handles."""
        plans: List[Tuple[int, QueryPlan]] = []
        for level, spec in level_specs:
            result = self.ctx.ng.fresh(f"q{level + 1}_{spec.label}")
            temp = self.ctx.ng.fresh("W")
            plan = optimize_plan(
                lower_query(spec, result, temp), self.info, self.ctx.ng
            )
            plans.append((level, plan))

        statements = [stmt for _, plan in plans for stmt in plan.statements]

        out: List[Stmt] = []
        for stmt in statements:
            out.extend(self._declare(stmt))

        src_stmts = [s for s in statements if isinstance(s.domain, SrcNonzeros)]
        if src_stmts:
            out.append(self._emit_src_pass(src_stmts))

        prefixes = sorted({s.domain.nlevels for s in statements
                           if isinstance(s.domain, SrcPrefix)})
        for nlevels in prefixes:
            group = [s for s in statements
                     if isinstance(s.domain, SrcPrefix) and s.domain.nlevels == nlevels]
            out.append(self._emit_prefix_pass(nlevels, group))

        for stmt in statements:
            if isinstance(stmt.domain, DenseSpace):
                out.append(self._emit_dense_pass(stmt))

        for level, plan in plans:
            keys, var, is_scalar = self.results[plan.result_name]
            handle = QueryResultHandle(self.ctx, keys, var, is_scalar, plan.decode)
            self.ctx.register_query(level, plan.spec.label, handle)
        return out

    # -- storage ---------------------------------------------------------------
    def _declare(self, stmt: CinStatement) -> List[Stmt]:
        if stmt.result in self.results:
            return []
        var = Var(self.ctx.ng.reserve(stmt.result))
        is_scalar = not stmt.keys
        self.results[stmt.result] = (stmt.keys, var, is_scalar)
        if is_scalar:
            return [Assign(var, Const(0))]
        size: Expr = Const(1)
        for key in stmt.keys:
            size = b.mul(size, self.ctx.key_extent(key))
        return [Alloc(var, simplify_expr(size), "int64", "zeros")]

    def _target_update(self, stmt: CinStatement, index: Expr, value: Expr) -> Stmt:
        keys, var, is_scalar = self.results[stmt.result]
        op = {"=": None, "+=": "+", "max=": "max"}.get(stmt.op, "unsupported")
        if op == "unsupported":
            raise QueryCompileError(f"operator {stmt.op!r} survived optimization")
        if is_scalar:
            return Assign(var, value) if op is None else AugAssign(var, op, value)
        if op is None:
            return Store(var, index, value)
        return AugStore(var, index, op, value)

    def _result_index(self, stmt: CinStatement, env: Dict[Key, Expr]) -> Expr:
        index: Expr = Const(0)
        for key in stmt.keys:
            index = b.add(b.mul(index, self.ctx.key_extent(key)), env[key])
        return simplify_expr(index)

    # -- source-nonzeros pass ------------------------------------------------
    def _dim_expr(self, dim: int, canonical: Sequence[Expr]) -> Expr:
        """Destination coordinate ``dim`` as a function of canonical coords."""
        coord = self.ctx.dst_format.remap.dst_coords[dim]
        env = dict(zip(self.ctx.canonical_names, canonical))
        for binding in coord.lets:
            env[binding.name] = lower_rexpr(
                binding.value, env, self.ctx.dst_format.param_exprs(), {}
            )
        return simplify_expr(
            lower_rexpr(coord.expr, env, self.ctx.dst_format.param_exprs(), {})
        )

    def _key_value(self, key: Key, canonical: Sequence[Expr]) -> Expr:
        """Shifted key coordinate for result indexing."""
        if isinstance(key, KeySrc):
            return canonical[self.ctx.canonical_names.index(key.var)]
        raw = self._dim_expr(key.dim, canonical)
        return simplify_expr(b.sub(raw, self.ctx.dst_dim_lo(key.dim)))

    def _value_expr(self, stmt: CinStatement, canonical: Sequence[Expr]) -> Expr:
        value = stmt.value
        if isinstance(value, VConst):
            return Const(value.value)
        if isinstance(value, VCoordMax):
            coord = self._dim_expr(value.dim, canonical)
            return simplify_expr(
                b.add(b.sub(coord, self.ctx.dst_dim_lo(value.dim)), 1)
            )
        if isinstance(value, VCoordMin):
            coord = self._dim_expr(value.dim, canonical)
            return simplify_expr(
                b.add(b.sub(self.ctx.dst_dim_hi(value.dim), coord), 1)
            )
        raise QueryCompileError(f"value {value} not valid in a source pass")

    def _emit_src_pass(self, stmts: List[CinStatement]) -> Stmt:
        def body(canonical, leaf_pos, level_coords):
            updates: List[Stmt] = []
            for stmt in stmts:
                env = {key: self._key_value(key, canonical) for key in stmt.keys}
                index = self._result_index(stmt, env)
                updates.append(
                    self._target_update(stmt, index, self._value_expr(stmt, canonical))
                )
            return b.block(updates)

        return self.emitter.emit(body)

    # -- prefix (width) pass ----------------------------------------------------
    def _emit_prefix_pass(self, nlevels: int, stmts: List[CinStatement]) -> Stmt:
        def body(level_coords, last_pos):
            width_stmts, width = self.emitter.emit_width(nlevels, last_pos)
            updates: List[Stmt] = list(width_stmts)
            if isinstance(width, Const):
                # e.g. COO prefix passes where every stored path counts 1
                width_var: Expr = width
            else:
                # Bind the width to a local so the generated code reads like
                # Figure 6b ("ncols = A_pos[i+1] - A_pos[i]").
                width_var = Var(self.ctx.ng.fresh("width"))
                updates.append(Assign(width_var, width))
            canonical_env: Dict[str, Expr] = {}
            for lvl, coord in enumerate(level_coords):
                var = self.ctx.src_level_var[lvl]
                if var is not None:
                    canonical_env[var] = coord
            for stmt in stmts:
                env: Dict[Key, Expr] = {}
                for key in stmt.keys:
                    name = self.info.key_var(key)
                    env[key] = canonical_env[name]
                index = self._result_index(stmt, env)
                scale = stmt.value.scale
                value = width_var if scale == 1 else b.mul(width_var, scale)
                updates.append(self._target_update(stmt, index, value))
            return b.block(updates)

        return self.emitter.emit_prefix(nlevels, body)

    # -- shared helpers (also used by the vector compiler) ---------------------
    def _size_expr(self, keys: Tuple[Key, ...]) -> Expr:
        size: Expr = Const(1)
        for key in keys:
            size = b.mul(size, self.ctx.key_extent(key))
        return simplify_expr(size)

    # -- dense reduction pass -----------------------------------------------
    def _emit_dense_pass(self, stmt: CinStatement) -> Stmt:
        domain_keys = stmt.domain.keys
        source_keys, source_var, source_scalar = self.results[stmt.value.temp]
        loop_vars = {key: Var(self.ctx.ng.fresh("i")) for key in domain_keys}

        env: Dict[Key, Expr] = dict(loop_vars)
        read_index: Expr = Const(0)
        for key in source_keys:
            read_index = b.add(b.mul(read_index, self.ctx.key_extent(key)), env[key])
        read = source_var if source_scalar else Load(source_var, simplify_expr(read_index))

        result_index = self._result_index(stmt, env)
        if stmt.value.bool_map:
            update: Stmt = If(
                b.ne(read, 0), self._target_update(stmt, result_index, Const(1))
            )
        else:
            update = self._target_update(stmt, result_index, read)

        for key in reversed(domain_keys):
            update = For(loop_vars[key], Const(0), self.ctx.key_extent(key), update)
        return update


class VectorQueryCompiler(QueryCompiler):
    """Compiles optimized query plans to bulk numpy passes.

    Consumes the very same :class:`~repro.cin.lower.QueryPlan` statements
    as the scalar compiler — lowered and Table 1-optimized identically —
    but emits one bulk operation per statement instead of loop nests.
    Construction needs the gathered per-nonzero canonical coordinate
    arrays (``canonical``, one int64 array variable per canonical
    dimension, in scalar iteration order) and a ``prefix_pass`` callback
    (supplied by :mod:`repro.ir.vector`) that enumerates a source level
    prefix and composes the remaining levels' widths.
    """

    def __init__(self, ctx, em, canonical, prefix_pass) -> None:
        super().__init__(ctx)
        self.em = em
        self.canonical = list(canonical)
        self.prefix_pass = prefix_pass

    # ------------------------------------------------------------------
    def compile(
        self, level_specs: Sequence[Tuple[int, QuerySpec]]
    ) -> List[Stmt]:
        plans: List[Tuple[int, QueryPlan]] = []
        for level, spec in level_specs:
            result = self.ctx.ng.fresh(f"q{level + 1}_{spec.label}")
            temp = self.ctx.ng.fresh("W")
            plan = optimize_plan(
                lower_query(spec, result, temp), self.info, self.ctx.ng
            )
            plans.append((level, plan))

        statements = [stmt for _, plan in plans for stmt in plan.statements]
        for stmt in statements:
            self._vector_declare(stmt)

        for stmt in statements:
            if isinstance(stmt.domain, SrcNonzeros):
                self._vector_src(stmt)

        prefixes = sorted({s.domain.nlevels for s in statements
                           if isinstance(s.domain, SrcPrefix)})
        for nlevels in prefixes:
            group = [s for s in statements
                     if isinstance(s.domain, SrcPrefix) and s.domain.nlevels == nlevels]
            self._vector_prefix(nlevels, group)

        for stmt in statements:
            if isinstance(stmt.domain, DenseSpace):
                self._vector_dense(stmt)

        for level, plan in plans:
            keys, var, is_scalar = self.results[plan.result_name]
            handle = QueryResultHandle(self.ctx, keys, var, is_scalar, plan.decode)
            self.ctx.register_query(level, plan.spec.label, handle)
        return []

    # ------------------------------------------------------------------
    def _vector_declare(self, stmt: CinStatement) -> None:
        # registry only: every result is fully produced by one bulk pass
        if stmt.result not in self.results:
            var = Var(self.ctx.ng.reserve(stmt.result))
            self.results[stmt.result] = (stmt.keys, var, not stmt.keys)

    def _vector_src(self, stmt: CinStatement) -> None:
        """One bulk reduction over the gathered nonzero streams."""
        em = self.em
        keys, var, _ = self.results[stmt.result]
        if keys:
            env = {key: self._key_value(key, self.canonical) for key in keys}
            index = em.bind("qi", self._result_index(stmt, env))
            size = em.atom(self._size_expr(keys))
        if stmt.op == "=" and isinstance(stmt.value, VConst):
            if not keys:
                em.emit(f"{var.name} = {stmt.value.value}")
            else:
                em.emit(f"{var.name} = np.zeros({size}, dtype=np.int64)")
                em.emit(f"{var.name}[{index.name}] = {stmt.value.value}")
        elif stmt.op == "+=" and isinstance(stmt.value, VConst):
            scale = "" if stmt.value.value == 1 else f" * {stmt.value.value}"
            if not keys:
                em.emit(f"{var.name} = {em.nnz}{scale}")
            else:
                em.emit(
                    f"{var.name} = np.bincount({index.name},"
                    f" minlength={size}){scale}"
                )
        elif stmt.op == "max=":
            value = em.bind("qv", self._value_expr(stmt, self.canonical))
            if not keys:
                em.emit(f"{var.name} = int({value.name}.max(initial=0))")
            else:
                em.emit(f"{var.name} = np.zeros({size}, dtype=np.int64)")
                em.emit(f"np.maximum.at({var.name}, {index.name}, {value.name})")
        else:
            raise QueryCompileError(
                f"operator {stmt.op!r} on {stmt.value} survived optimization"
            )

    def _vector_prefix(self, nlevels: int, stmts: List[CinStatement]) -> None:
        """One prefix enumeration with composed widths (the bulk mirror of
        the scalar prefix pass)."""
        em = self.em
        frontier, width = self.prefix_pass(nlevels)
        width_var = None if isinstance(width, Const) else em.bind("width", width)
        canonical_env: Dict[str, Expr] = {}
        for lvl, coord in enumerate(frontier.coords):
            var_name = self.ctx.src_level_var[lvl]
            if var_name is not None:
                canonical_env[var_name] = coord
        for stmt in stmts:
            keys, var, _ = self.results[stmt.result]
            scale = stmt.value.scale
            if keys:
                env = {
                    key: canonical_env[self.info.key_var(key)] for key in stmt.keys
                }
                index = em.bind("qi", self._result_index(stmt, env))
                size = em.atom(self._size_expr(keys))
            if width_var is None:
                value = str(width.value * scale)
            else:
                value = width_var.name if scale == 1 else f"{width_var.name} * {scale}"
            if stmt.op == "=":
                if not keys:
                    em.emit(f"{var.name} = int({value})")
                else:
                    em.emit(f"{var.name} = np.zeros({size}, dtype=np.int64)")
                    em.emit(f"{var.name}[{index.name}] = {value}")
            elif stmt.op == "+=" and width_var is None:
                # constant width: the pass degenerates to a histogram
                scaled = "" if width.value * scale == 1 else f" * {width.value * scale}"
                em.emit(
                    f"{var.name} = np.bincount({index.name},"
                    f" minlength={size}){scaled}"
                )
            elif stmt.op == "+=":
                em.emit(f"{var.name} = np.zeros({size}, dtype=np.int64)")
                em.emit(f"np.add.at({var.name}, {index.name}, {value})")
            elif stmt.op == "max=":
                # e.g. ELL's K: the counter histogram inlined to row widths
                if not keys and width_var is None:
                    em.emit(f"{var.name} = max(int({value}), 0)")
                elif not keys:
                    em.emit(f"{var.name} = int(np.max({value}, initial=0))")
                else:
                    em.emit(f"{var.name} = np.zeros({size}, dtype=np.int64)")
                    em.emit(f"np.maximum.at({var.name}, {index.name}, {value})")
            else:
                raise QueryCompileError(
                    f"operator {stmt.op!r} not valid in a prefix pass"
                )

    def _vector_dense(self, stmt: CinStatement) -> None:
        """Dense reduction of a temporary: reshape + axis reduction.

        Valid because the optimizer only emits dense consumers whose
        result keys are a prefix of the temporary's keys (``count``'s
        group-by, or the scalar extremum of counter histograms)."""
        em = self.em
        keys, var, _ = self.results[stmt.result]
        domain_keys = stmt.domain.keys
        src_keys, src_var, src_scalar = self.results[stmt.value.temp]
        if src_keys != domain_keys or keys != domain_keys[: len(keys)] or src_scalar:
            raise QueryCompileError(
                "dense reduction must reduce an array temporary over a key prefix"
            )
        if keys:
            shape = (
                f"{em.atom(self._size_expr(keys))},"
                f" {em.atom(self._size_expr(domain_keys[len(keys):]))}"
            )
            grid = f"{src_var.name}.reshape({shape})"
        if stmt.value.bool_map and stmt.op == "+=":
            if not keys:
                em.emit(f"{var.name} = int(np.count_nonzero({src_var.name}))")
            else:
                em.emit(f"{var.name} = np.count_nonzero({grid}, axis=1)")
        elif stmt.op == "max=" and not stmt.value.bool_map:
            if not keys:
                em.emit(f"{var.name} = int({src_var.name}.max(initial=0))")
            else:
                em.emit(f"{var.name} = {grid}.max(axis=1, initial=0)")
        elif stmt.op == "+=" and not stmt.value.bool_map:
            if not keys:
                em.emit(f"{var.name} = int({src_var.name}.sum())")
            else:
                em.emit(f"{var.name} = {grid}.sum(axis=1)")
        else:
            raise QueryCompileError(
                f"operator {stmt.op!r} not valid in a dense reduction"
            )
