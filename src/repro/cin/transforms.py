"""The attribute query optimizations of Table 1.

Each transformation rewrites :class:`~repro.cin.lower.QueryPlan` statements
in place, checking the preconditions Table 1 states:

* **reduction-to-assign** — a reduction whose result cell is written at
  most once becomes a plain assignment.  Two instances arise here:
  idempotent ``or= const``, and ``+=`` whose keys cover every iterated
  index variable injectively.
* **inline-temporary** — a temporary defined by an assignment is inlined
  into its (single) consumer.
* **simplify-width-count** — counting stored paths below a level prefix is
  replaced by dynamically computed level widths (``pos[i+1] - pos[i]``),
  valid only when the remaining levels store no explicit zeros.
* **counter-to-histogram** — extrema of counter coordinates become a
  histogram over the counter's key followed by a dense max-reduction.

The driver (:func:`optimize_plan`) applies the rules eagerly to a fixed
point, mirroring Section 5.2's "iteratively and eagerly apply".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..formats.format import Format
from ..ir.builder import NameGenerator
from ..remap.ast import RCounter, Remap, RVar
from .lower import QueryPlan
from .nodes import (
    CinStatement,
    DenseSpace,
    Key,
    KeySrc,
    SrcNonzeros,
    SrcPrefix,
    VConst,
    VCoordMax,
    VCoordMin,
    VLoad,
    VWidth,
)


class QueryCompileError(ValueError):
    """Raised when a query cannot be compiled for the given conversion."""


@dataclass
class ConversionInfo:
    """Static facts about a (source format, destination remap) pair that
    the transformation preconditions consult."""

    src_format: Format
    dst_remap: Remap
    #: ablation switch: disable the simplify-width-count rule (A2)
    disable_width_count: bool = False

    def __post_init__(self) -> None:
        inverse = self.src_format.inverse
        if inverse is None:
            raise QueryCompileError(
                f"{self.src_format.name} cannot be a conversion source "
                "(no inverse mapping)"
            )
        # canonical var -> source level index whose coordinate it is, when
        # the inverse mapping is a bare variable (identity-like dims).
        self.canonical_level: Dict[str, int] = {}
        level_vars = inverse.src_vars
        for d, coord in enumerate(inverse.dst_coords):
            if not coord.lets and isinstance(coord.expr, RVar):
                level = level_vars.index(coord.expr.name)
                self.canonical_level[self.dst_remap.src_vars[d]] = level

    # -- helpers -------------------------------------------------------------
    def dim_bare_var(self, dim: int) -> Optional[str]:
        """Canonical variable if destination dim ``dim`` maps it directly."""
        coord = self.dst_remap.dst_coords[dim]
        if not coord.lets and isinstance(coord.expr, RVar):
            return coord.expr.name
        return None

    def dim_counter(self, dim: int) -> Optional[RCounter]:
        """The counter if destination dim ``dim`` is a counter coordinate."""
        coord = self.dst_remap.dst_coords[dim]
        expr = coord.expr
        env = {binding.name: binding.value for binding in coord.lets}
        while isinstance(expr, RVar) and expr.name in env:
            expr = env[expr.name]
        return expr if isinstance(expr, RCounter) else None

    def key_var(self, key: Key) -> Optional[str]:
        """Canonical variable a result key denotes (None if computed)."""
        if isinstance(key, KeySrc):
            return key.var
        return self.dim_bare_var(key.dim)

    def keys_cover_sources(self, keys: Tuple[Key, ...]) -> bool:
        """True if the key expressions jointly determine every canonical
        source variable, so distinct nonzeros occupy distinct result cells.

        Recognizes bare variables and div/mod decompositions
        (``v/C`` together with ``v%C`` recover ``v``), which covers the
        blocked formats' remappings."""
        exprs = []
        for key in keys:
            if isinstance(key, KeySrc):
                exprs.append(RVar(key.var))
            else:
                coord = self.dst_remap.dst_coords[key.dim]
                env = {b.name: b.value for b in coord.lets}
                expr = coord.expr
                while isinstance(expr, RVar) and expr.name in env:
                    expr = env[expr.name]
                exprs.append(expr)
        from ..remap.ast import RBinOp

        for var in self.dst_remap.src_vars:
            if RVar(var) in exprs:
                continue
            divisors = {
                e.rhs for e in exprs
                if isinstance(e, RBinOp) and e.op == "/" and e.lhs == RVar(var)
            }
            moduli = {
                e.rhs for e in exprs
                if isinstance(e, RBinOp) and e.op == "%" and e.lhs == RVar(var)
            }
            if not divisors & moduli:
                return False
        return True

    def prefix_of_levels(self, vars_needed) -> Optional[int]:
        """Smallest m such that source levels 0..m-1 produce exactly
        ``vars_needed`` as their coordinates, or None."""
        needed = set(vars_needed)
        have = set()
        levels = self.src_format.levels
        by_level = {lvl: var for var, lvl in self.canonical_level.items()}
        for m in range(len(levels) + 1):
            if have == needed:
                return m
            if m == len(levels) or m not in by_level:
                return None
            have.add(by_level[m])
        return None

    def remaining_levels_pure(self, m: int) -> bool:
        """True if levels m.. store only nonzeros in position-contiguous
        ranges (the simplify-width-count precondition)."""
        if self.src_format.padded:
            return False
        for level in self.src_format.levels[m:]:
            if level.name not in ("compressed", "singleton"):
                return False
            if level.stores_explicit_zeros:
                return False
        return True

    def prefix_unique(self, m: int) -> bool:
        """True if every position of the level-m prefix is visited once."""
        return all(level.unique for level in self.src_format.levels[:m])


# ---------------------------------------------------------------------------
# individual rules — each returns True if it changed the plan
# ---------------------------------------------------------------------------


def apply_counter_to_histogram(
    plan: QueryPlan, info: ConversionInfo, ng: NameGenerator
) -> bool:
    for idx, stmt in enumerate(plan.statements):
        if not isinstance(stmt.value, (VCoordMax, VCoordMin)):
            continue
        counter = info.dim_counter(stmt.value.dim)
        if counter is None:
            continue
        if isinstance(stmt.value, VCoordMin):
            raise QueryCompileError("min over a counter dimension is not supported")
        if stmt.keys:
            raise QueryCompileError(
                "grouped extrema over counter dimensions are not supported"
            )
        temp = ng.fresh("W")
        keys = tuple(KeySrc(var) for var in counter.over)
        producer = CinStatement(temp, keys, "+=", SrcNonzeros(), VConst(1))
        consumer = CinStatement(
            stmt.result, stmt.keys, "max=", DenseSpace(keys), VLoad(temp)
        )
        plan.statements[idx:idx + 1] = [producer, consumer]
        return True
    return False


def apply_reduction_to_assign(plan: QueryPlan, info: ConversionInfo) -> bool:
    changed = False
    for idx, stmt in enumerate(plan.statements):
        if stmt.op == "or=" and isinstance(stmt.value, VConst):
            # Boolean OR of a constant is idempotent: assignment is safe
            # regardless of how many times a cell is visited.
            plan.statements[idx] = replace(stmt, op="=")
            changed = True
        elif (
            stmt.op == "+="
            and isinstance(stmt.domain, SrcNonzeros)
            and isinstance(stmt.value, VConst)
        ):
            if info.keys_cover_sources(stmt.keys):
                plan.statements[idx] = replace(stmt, op="=")
                changed = True
        elif (
            stmt.op == "+="
            and isinstance(stmt.domain, SrcPrefix)
            and isinstance(stmt.value, VWidth)
            and info.prefix_unique(stmt.domain.nlevels)
        ):
            plan.statements[idx] = replace(stmt, op="=")
            changed = True
    return changed


def apply_simplify_width_count(plan: QueryPlan, info: ConversionInfo) -> bool:
    if info.disable_width_count:
        return False
    for idx, stmt in enumerate(plan.statements):
        if not (
            isinstance(stmt.domain, SrcNonzeros)
            and isinstance(stmt.value, VConst)
            and stmt.op in ("+=", "=")
        ):
            continue
        key_vars = [info.key_var(k) for k in stmt.keys]
        if None in key_vars or len(set(key_vars)) != len(key_vars):
            continue
        prefix = info.prefix_of_levels(key_vars)
        if prefix is None or prefix >= len(info.src_format.levels):
            continue
        if not info.remaining_levels_pure(prefix):
            continue
        # "=" over full nonzeros is only reachable when keys cover all
        # vars, in which case nothing remains to sum; require "+=".
        if stmt.op == "=":
            continue
        plan.statements[idx] = replace(
            stmt, domain=SrcPrefix(prefix), value=VWidth(stmt.value.value)
        )
        return True
    return False


def apply_inline_temporary(plan: QueryPlan, info: ConversionInfo) -> bool:
    for pidx, producer in enumerate(plan.statements):
        if producer.op != "=":
            continue
        readers = [
            (cidx, stmt)
            for cidx, stmt in enumerate(plan.statements)
            if isinstance(stmt.value, VLoad) and stmt.value.temp == producer.result
        ]
        writers = [
            stmt
            for stmt in plan.statements
            if stmt.result == producer.result and stmt is not producer
        ]
        if len(readers) != 1 or writers:
            continue
        cidx, consumer = readers[0]
        if consumer.domain != DenseSpace(producer.keys):
            continue
        # Inlining replaces the consumer's dense iteration over W's index
        # space with the producer's iteration, so every W cell must be
        # written at most once there — otherwise multiply-written cells
        # (e.g. BCSR blocks holding several nonzeros) would be counted
        # repeatedly.
        if isinstance(producer.domain, SrcNonzeros):
            if not info.keys_cover_sources(producer.keys):
                continue
        elif isinstance(producer.domain, SrcPrefix):
            if not info.prefix_unique(producer.domain.nlevels):
                continue
        if consumer.value.bool_map:
            if not isinstance(producer.value, VConst):
                continue
            value = VConst(1 if producer.value.value else 0)
        else:
            value = producer.value
        plan.statements[cidx] = replace(consumer, domain=producer.domain, value=value)
        del plan.statements[pidx]
        return True
    return False


def optimize_plan(
    plan: QueryPlan, info: ConversionInfo, ng: NameGenerator
) -> QueryPlan:
    """Eagerly apply all Table 1 rules to a fixed point (Section 5.2)."""
    # Counter coordinates cannot be evaluated pointwise, so histogram
    # rewriting must succeed first when one is present.
    while apply_counter_to_histogram(plan, info, ng):
        pass
    for _ in range(20):
        changed = apply_reduction_to_assign(plan, info)
        changed |= apply_inline_temporary(plan, info)
        changed |= apply_simplify_width_count(plan, info)
        if not changed:
            return plan
    return plan
