"""Concrete index notation (CIN) for attribute query computations.

Section 5.2 lowers attribute queries to concrete index notation statements
of the shape ``∀j1..jn  Q[i1..im] ⊕= map(B[j1..jn], e)`` (possibly with
``where``-bound temporaries), then optimizes them with the rewrite rules of
Table 1.  This module defines the statement representation; it captures
exactly the statement forms those rules produce and consume:

* iteration domains: all nonzeros of the source tensor
  (:class:`SrcNonzeros`), a prefix of the source's levels
  (:class:`SrcPrefix`, produced by *simplify-width-count*), or the dense
  index space of a temporary (:class:`DenseSpace`);
* values: constants, shifted coordinates (for ``max``/``min``), dynamic
  level widths (``pos[p+1]-pos[p]``), or reads of temporaries.

Result/temporary index keys are either remapped destination dimensions
(:class:`KeyDim`) or canonical source index variables (:class:`KeySrc`,
used by histograms over counter keys).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union


# ---------------------------------------------------------------------------
# keys
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KeyDim:
    """Index key: remapped destination dimension ``dim``."""

    dim: int

    def __str__(self) -> str:
        return f"i{self.dim + 1}"


@dataclass(frozen=True)
class KeySrc:
    """Index key: canonical source index variable (e.g. counter keys)."""

    var: str

    def __str__(self) -> str:
        return self.var


Key = Union[KeyDim, KeySrc]


# ---------------------------------------------------------------------------
# iteration domains
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SrcNonzeros:
    """∀ j1..jn over every nonzero of the source tensor."""

    def __str__(self) -> str:
        return "∀nz(B)"


@dataclass(frozen=True)
class SrcPrefix:
    """∀ over the first ``nlevels`` levels of the source only.

    Produced by *simplify-width-count*: the remaining levels' contribution
    is summarized by a :class:`VWidth` value instead of being iterated.
    """

    nlevels: int

    def __str__(self) -> str:
        return f"∀lvl<{self.nlevels}(B)"


@dataclass(frozen=True)
class DenseSpace:
    """∀ over the dense index space spanned by ``keys`` (a temporary's)."""

    keys: Tuple[Key, ...]

    def __str__(self) -> str:
        return "∀dense(" + ",".join(str(k) for k in self.keys) + ")"


Domain = Union[SrcNonzeros, SrcPrefix, DenseSpace]


# ---------------------------------------------------------------------------
# values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VConst:
    """A constant contribution (``map(B, c)``)."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class VCoordMax:
    """``i_dim - s + 1`` where ``s`` is the dimension's smallest coordinate
    — the shifted value of the canonical ``max`` lowering, guaranteeing
    positive contributions so zero-initialization is safe (Section 5.2)."""

    dim: int

    def __str__(self) -> str:
        return f"i{self.dim + 1} - lo + 1"


@dataclass(frozen=True)
class VCoordMin:
    """``-i_dim + t + 1`` where ``t`` is the dimension's largest coordinate
    — the shifted/negated value of the canonical ``min`` lowering."""

    dim: int

    def __str__(self) -> str:
        return f"hi - i{self.dim + 1} + 1"


@dataclass(frozen=True)
class VWidth:
    """``scale`` × (number of stored paths below the current prefix
    position) — the dynamically computed ``B'`` of simplify-width-count."""

    scale: int = 1

    def __str__(self) -> str:
        return "width" if self.scale == 1 else f"width * {self.scale}"


@dataclass(frozen=True)
class VLoad:
    """Read a temporary.  With ``bool_map`` the read is ``map(W, 1)``
    (contributes 1 where W is nonzero); otherwise the raw value."""

    temp: str
    bool_map: bool = False

    def __str__(self) -> str:
        return f"map({self.temp}, 1)" if self.bool_map else self.temp


Value = Union[VConst, VCoordMax, VCoordMin, VWidth, VLoad]


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

#: reduction operators of the canonical forms (Section 5.2):
#: ``=`` assignment, ``+=`` sum, ``or=`` boolean OR (the paper's ``|=``),
#: ``max=`` max-reduction.
OPS = ("=", "+=", "or=", "max=")


@dataclass(frozen=True)
class CinStatement:
    """``∀<domain>  result[keys] op= value``."""

    result: str
    keys: Tuple[Key, ...]
    op: str
    domain: Domain
    value: Value

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"unknown reduction operator {self.op!r}")

    def __str__(self) -> str:
        keys = ",".join(str(k) for k in self.keys)
        index = f"[{keys}]" if keys else ""
        return f"{self.domain}  {self.result}{index} {self.op} {self.value}"
