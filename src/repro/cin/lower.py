"""Lowering attribute queries to canonical concrete index notation.

Implements the canonical forms of Section 5.2:

* ``id``     → ``∀nz  Q[g] |= map(B, 1)``
* ``count``  → ``(∀dense W-space  Q[g] += map(W, 1)) where
  (∀nz  W[g+args] |= map(B, 1))``
* ``max``    → ``∀nz  Q'[g] max= map(B, i - s + 1)``
* ``min``    → ``∀nz  Q'[g] max= map(B, -i + t + 1)``

``max``/``min`` results are stored shifted (``Q'``); :class:`QueryPlan`
records how to decode them back (Section 5.2's ``Q ≡ Q' + s - 1`` and
``Q ≡ -Q' + t + 1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..query.spec import QuerySpec
from .nodes import (
    CinStatement,
    DenseSpace,
    KeyDim,
    SrcNonzeros,
    VConst,
    VCoordMax,
    VCoordMin,
    VLoad,
)


@dataclass
class QueryPlan:
    """A query's CIN statements plus result decoding metadata.

    ``statements`` are in dependency order; the last one defines
    ``result_name``.  ``decode`` is ``None`` for direct results, or
    ``("max", dim)`` / ``("min", dim)`` for shifted extremum results.
    """

    spec: QuerySpec
    statements: List[CinStatement]
    result_name: str
    decode: Optional[Tuple[str, int]] = None

    def describe(self) -> str:
        """Human-readable canonical/optimized form (used in docs/tests)."""
        return "\n".join(str(stmt) for stmt in self.statements)


def lower_query(spec: QuerySpec, result_name: str, temp_name: str) -> QueryPlan:
    """Lower one :class:`QuerySpec` to its canonical CIN form.

    ``result_name`` names the final result tensor; ``temp_name`` is used
    for the ``where``-bound temporary of ``count`` queries.
    """
    group = tuple(KeyDim(d) for d in spec.group_by)
    if spec.aggr == "id":
        return QueryPlan(
            spec,
            [CinStatement(result_name, group, "or=", SrcNonzeros(), VConst(1))],
            result_name,
        )
    if spec.aggr == "count":
        keys = group + tuple(KeyDim(d) for d in spec.args)
        producer = CinStatement(temp_name, keys, "or=", SrcNonzeros(), VConst(1))
        consumer = CinStatement(
            result_name, group, "+=", DenseSpace(keys), VLoad(temp_name, bool_map=True)
        )
        return QueryPlan(spec, [producer, consumer], result_name)
    if spec.aggr == "max":
        stmt = CinStatement(
            result_name, group, "max=", SrcNonzeros(), VCoordMax(spec.args[0])
        )
        return QueryPlan(spec, [stmt], result_name, decode=("max", spec.args[0]))
    if spec.aggr == "min":
        stmt = CinStatement(
            result_name, group, "max=", SrcNonzeros(), VCoordMin(spec.args[0])
        )
        return QueryPlan(spec, [stmt], result_name, decode=("min", spec.args[0]))
    raise ValueError(f"unknown aggregation {spec.aggr!r}")
