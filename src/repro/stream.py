"""Out-of-core conversion: :func:`convert_file` and friends.

This is the public face of the streaming subsystem.  It wires together

* the bounded-memory source readers (:mod:`repro.io.stream`),
* the pass-scheduled streaming executor
  (:mod:`repro.convert.streamed`), and
* memmap-backed destination storage (:mod:`repro.storage.memmap`)

so a tensor that never fits in memory can still be converted with the
same generated kernels — bit-identically to the in-memory
``engine.convert`` path (``tests/stream`` asserts this property over
every chunkable pair).

The destination directory is produced atomically: all level arrays are
written into a ``<out_dir>.tmp.<pid>`` sibling and renamed into place
only after the manifest is durable, mirroring the kernel-cache and
native-``.so`` write pattern — a failed or interrupted conversion never
leaves a partial result behind.
"""

from __future__ import annotations

import os
import resource
import shutil
import time
from dataclasses import dataclass
from typing import Tuple

from .convert.streamed import plan_streamed
from .formats import get_format, parse_format_spec
from .io.stream import DEFAULT_CHUNK_NNZ, StreamError, open_stream
from .storage.memmap import MemmapStore, load_arrays
from .storage.tensor import Tensor

__all__ = ["StreamResult", "convert_file", "load_result", "source_format_for"]


def source_format_for(order: int):
    """The coordinate source format matching a stream's order."""
    if order == 2:
        return get_format("COO")
    if order == 3:
        return get_format("COO3")
    raise StreamError(
        f"no coordinate source format for order-{order} streams "
        "(supported: 2, 3)"
    )


def peak_rss_bytes() -> int:
    """This process's lifetime peak resident set size, in bytes.

    Prefers ``VmHWM`` from ``/proc/self/status``: unlike ``ru_maxrss``
    (which survives ``execve`` and so reports the *forking parent's*
    resident set when this process was spawned from a large one — e.g.
    the benchmark harness), the high-water mark belongs to this
    process's own address space.
    """
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):  # pragma: no cover
        pass
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024


@dataclass
class StreamResult:
    """Outcome of one :func:`convert_file` run.

    ``source_bytes`` is what materializing the source in memory would
    cost (``nnz * 8 * (order + 1)``: int64 coordinates plus float64
    values) — the yardstick the peak-RSS acceptance gate is measured
    against.  ``peak_rss_bytes`` is the process-lifetime high-water
    mark, so it includes whatever ran before the conversion; benchmarks
    wanting a clean number run the conversion in a fresh process
    (:mod:`repro.bench.stream` does).
    """

    out_dir: str
    dst_format: str
    dims: Tuple[int, ...]
    nnz: int
    chunk_nnz: int
    passes: int
    chunks: int
    source_bytes: int
    peak_rss_bytes: int
    elapsed_seconds: float

    def load(self, mode: str = "r") -> Tensor:
        """Open the result as a (memmap-backed) :class:`Tensor`."""
        return load_result(self.out_dir, mode=mode)


def convert_file(
    src_path,
    dst_spec,
    out_dir,
    *,
    chunk_nnz: int = DEFAULT_CHUNK_NNZ,
    engine=None,
    overwrite: bool = False,
) -> StreamResult:
    """Convert the coordinate stream at ``src_path`` into ``out_dir``.

    ``src_path`` is a Matrix Market file (plain or ``.gz``) or a binary
    coordinate stream (:func:`repro.io.stream.write_stream`); it is read
    in ``chunk_nnz``-sized chunks and never materialized.  ``dst_spec``
    is any format spec string (or :class:`Format`) the chunked executor
    supports.  The destination level arrays land as memmap-backed files
    under ``out_dir`` with a ``manifest.json`` (see
    :mod:`repro.storage.memmap`); ``overwrite=True`` replaces an
    existing directory, otherwise one is an error.

    Peak memory is O(dimensions + chunk): source chunks are bounded,
    destination pages are dropped from the resident set as each chunk's
    scatters retire.  Raises :class:`~repro.io.stream.StreamError` for
    unstreamable pairs and malformed sources; on any failure the
    temporary directory is removed and ``out_dir`` is left untouched.
    """
    dst_format = (
        parse_format_spec(dst_spec) if isinstance(dst_spec, str) else dst_spec
    )
    out_dir = os.fspath(out_dir)
    if os.path.exists(out_dir):
        if not overwrite:
            raise StreamError(
                f"{out_dir}: output directory exists (pass overwrite=True)"
            )
    reader = open_stream(src_path, chunk_nnz=chunk_nnz)
    src_format = source_format_for(reader.order)
    plan = plan_streamed(src_format, dst_format)
    if plan is None:
        raise StreamError(
            f"{src_format.name} -> {dst_format.name} is not streamable "
            "(the pair has no chunked lowering)"
        )
    started = time.perf_counter()
    tmp_dir = f"{out_dir}.tmp.{os.getpid()}"
    store = MemmapStore(tmp_dir)
    try:
        plan.execute(reader, store)
        store.finalize(
            format=dst_format.name,
            dims=list(reader.dims),
            nnz=reader.nnz,
            source=os.fspath(src_path),
            chunk_nnz=int(chunk_nnz),
            passes=plan.passes,
        )
        if os.path.exists(out_dir):
            shutil.rmtree(out_dir)
        os.replace(tmp_dir, out_dir)
    except BaseException:
        shutil.rmtree(tmp_dir, ignore_errors=True)
        raise
    elapsed = time.perf_counter() - started
    if engine is not None:
        engine._record_conversion((src_format.name, dst_format.name),
                                  routed=False)
    return StreamResult(
        out_dir=out_dir,
        dst_format=dst_format.name,
        dims=tuple(reader.dims),
        nnz=reader.nnz,
        chunk_nnz=int(chunk_nnz),
        passes=plan.passes,
        chunks=plan.passes * max(1, -(-reader.nnz // int(chunk_nnz))),
        source_bytes=reader.nnz * 8 * (reader.order + 1),
        peak_rss_bytes=peak_rss_bytes(),
        elapsed_seconds=elapsed,
    )


def load_result(out_dir, mode: str = "r") -> Tensor:
    """Load a :func:`convert_file` output directory as a :class:`Tensor`.

    Arrays come back memmap-backed (read-only by default), so loading a
    bigger-than-RAM result does not materialize it; pass ``mode="r+"``
    for in-place mutation.
    """
    out_dir = os.fspath(out_dir)
    try:
        manifest, values = load_arrays(out_dir, mode=mode)
    except FileNotFoundError as exc:
        raise StreamError(f"{out_dir}: not a conversion result ({exc})") from exc
    fmt = parse_format_spec(manifest["format"])
    arrays = {}
    meta = {}
    vals = None
    for name, entry in manifest["entries"].items():
        level, part = int(entry["level"]), entry["part"]
        if entry["kind"] == "scalar":
            meta[(level, part)] = int(values[name])
        elif level == -1:
            vals = values[name]
        else:
            arrays[(level, part)] = values[name]
    if vals is None:
        raise StreamError(f"{out_dir}: manifest has no values array")
    return Tensor(fmt, tuple(manifest["dims"]), arrays, meta, vals)
