"""Lowering coordinate remappings to imperative IR (Section 4.2).

Pure arithmetic/bitwise destination coordinates are inlined directly into
the emitted loop body; ``let`` bindings become local variable assignments;
counters are *not* lowered here — the conversion planner allocates counter
storage (an array, or a scalar register when the counter's key is iterated
in order) and passes the IR variable holding each counter's fetched value
via ``counter_env``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..ir import builder as b
from ..ir.builder import NameGenerator
from ..ir.nodes import Assign, Expr, Stmt, Var
from ..ir.simplify import simplify_expr
from .ast import RBinOp, RConst, RCounter, Remap, RExpr, RParam, RVar

#: remap operator -> IR operator (``/`` is floor division).
_OP_MAP = {
    "+": "+", "-": "-", "*": "*", "/": "//", "%": "%",
    "<<": "<<", ">>": ">>", "&": "&", "|": "|", "^": "^",
}


class RemapLoweringError(ValueError):
    """Raised when a remap expression cannot be lowered (e.g. an unbound
    variable, or a counter with no entry in ``counter_env``)."""


def lower_rexpr(
    expr: RExpr,
    env: Dict[str, Expr],
    params: Dict[str, Expr],
    counter_env: Dict[RCounter, Expr],
) -> Expr:
    """Translate a remap expression to an IR expression.

    ``env`` binds source index variables and in-scope ``let`` variables to IR
    expressions; ``params`` binds format parameters; ``counter_env`` binds
    counters to the IR variables that hold their fetched values.
    """
    if isinstance(expr, RConst):
        return b.const(expr.value)
    if isinstance(expr, RVar):
        if expr.name not in env:
            raise RemapLoweringError(f"unbound index variable {expr.name!r}")
        return env[expr.name]
    if isinstance(expr, RParam):
        if expr.name not in params:
            raise RemapLoweringError(f"unbound format parameter {expr.name!r}")
        return params[expr.name]
    if isinstance(expr, RCounter):
        if expr not in counter_env:
            raise RemapLoweringError(f"counter {expr} was not set up by the planner")
        return counter_env[expr]
    if isinstance(expr, RBinOp):
        return b.to_expr(
            simplify_expr(
                b.__dict__[
                    {
                        "+": "add", "-": "sub", "*": "mul", "/": "floordiv",
                        "%": "mod", "<<": "shl", ">>": "shr", "&": "bitand",
                        "|": "bitor", "^": "bitxor",
                    }[expr.op]
                ](
                    lower_rexpr(expr.lhs, env, params, counter_env),
                    lower_rexpr(expr.rhs, env, params, counter_env),
                )
            )
        )
    raise TypeError(f"not a remap expression: {expr!r}")


@dataclass
class LoweredRemap:
    """Result of lowering all destination coordinates of a remapping.

    ``prelude`` holds ``let``-binding assignments that must precede any use
    of ``coord_exprs``; ``coord_exprs`` gives one IR expression per
    destination dimension.
    """

    prelude: List[Stmt]
    coord_exprs: List[Expr]


def lower_remap(
    remap: Remap,
    coord_env: Dict[str, Expr],
    params: Dict[str, Expr],
    counter_env: Dict[RCounter, Expr],
    namegen: NameGenerator,
) -> LoweredRemap:
    """Lower every destination coordinate of ``remap``.

    ``coord_env`` maps each source index variable to the IR expression that
    holds its value in the surrounding loop nest.
    """
    prelude: List[Stmt] = []
    exprs: List[Expr] = []
    from ..ir.nodes import Const

    for coord in remap.dst_coords:
        env = dict(coord_env)
        for binding in coord.lets:
            value = lower_rexpr(binding.value, env, params, counter_env)
            if isinstance(value, (Var, Const)):
                # Aliasing an existing variable/constant needs no copy
                # (e.g. ELL's ``k = #i in k`` reuses the counter register).
                env[binding.name] = value
                continue
            local = Var(namegen.fresh(binding.name))
            prelude.append(Assign(local, value))
            env[binding.name] = local
        exprs.append(simplify_expr(lower_rexpr(coord.expr, env, params, counter_env)))
    return LoweredRemap(prelude, exprs)
