"""AST for coordinate remapping notation (Section 4, Figure 8).

A remap statement ``(i,j) -> (j-i, i, j)`` describes how every component of
a canonical input tensor maps to a component of a higher-order remapped
tensor whose *lexicographic* coordinate order equals the storage order of
some target format.  The AST mirrors the grammar of Figure 8:

* source side: a tuple of index variables;
* destination side: one entry per remapped dimension, each a chain of
  ``let`` bindings terminated by an integer expression over index
  variables, ``let`` variables, constants, and counters (``#i``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


class RExpr:
    """Base class of remap index expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class RVar(RExpr):
    """A reference to a source index variable or a ``let``-bound variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class RConst(RExpr):
    """An integer literal."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class RParam(RExpr):
    """A named format parameter (e.g. the block size ``M`` of BCSR).

    Parameters are free identifiers on the right-hand side of a remapping
    that are neither source index variables nor ``let``-bound.  Their values
    are supplied by the format instance at code-generation time.
    """

    name: str

    def __str__(self) -> str:
        return self.name


#: Remap binary operators in precedence order (Figure 8): ``|`` < ``^`` <
#: ``&`` < shifts < additive < multiplicative.
R_BINARY_OPS = ("|", "^", "&", "<<", ">>", "+", "-", "*", "/", "%")


@dataclass(frozen=True)
class RBinOp(RExpr):
    """A binary operation.  ``/`` is integer (floor) division."""

    op: str
    lhs: RExpr
    rhs: RExpr

    def __post_init__(self) -> None:
        if self.op not in R_BINARY_OPS:
            raise ValueError(f"unknown remap operator {self.op!r}")

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class RCounter(RExpr):
    """A counter ``#i1 i2 ...`` (``ivar_counter`` in Figure 8).

    The counter's value for a nonzero is the number of previously iterated
    nonzeros that share the same values of the listed index variables; an
    empty tuple counts globally.  Counters make remappings like ELL's
    ``(i,j) -> (#i, i, j)`` expressible (Figure 9).
    """

    over: Tuple[str, ...]

    def __str__(self) -> str:
        return "#" + " ".join(self.over)


@dataclass(frozen=True)
class LetBinding:
    """One ``var = expr in`` binding inside a destination entry."""

    name: str
    value: RExpr


@dataclass(frozen=True)
class DstCoord:
    """A destination coordinate: ``let``-bindings plus the final expression."""

    lets: Tuple[LetBinding, ...]
    expr: RExpr

    def __str__(self) -> str:
        prefix = "".join(f"{b.name}={b.value} in " for b in self.lets)
        return prefix + str(self.expr)


@dataclass(frozen=True)
class Remap:
    """A complete remap statement ``(src...) -> (dst...)``."""

    src_vars: Tuple[str, ...]
    dst_coords: Tuple[DstCoord, ...]

    @property
    def src_order(self) -> int:
        """Number of canonical (source) dimensions."""
        return len(self.src_vars)

    @property
    def dst_order(self) -> int:
        """Number of remapped (destination) dimensions."""
        return len(self.dst_coords)

    def __str__(self) -> str:
        src = ", ".join(self.src_vars)
        dst = ", ".join(str(c) for c in self.dst_coords)
        return f"({src}) -> ({dst})"

    def counters(self) -> Tuple[RCounter, ...]:
        """Return the distinct counters used anywhere in the remapping."""
        seen = []
        for coord in self.dst_coords:
            for binding in coord.lets:
                _collect_counters(binding.value, seen)
            _collect_counters(coord.expr, seen)
        return tuple(seen)

    def params(self) -> Tuple[str, ...]:
        """Return the names of free format parameters (e.g. BCSR's ``M``)."""
        names: list = []
        for coord in self.dst_coords:
            bound = set(self.src_vars)
            for binding in coord.lets:
                _collect_params(binding.value, bound, names)
                bound.add(binding.name)
            _collect_params(coord.expr, bound, names)
        return tuple(names)

    def is_identity(self) -> bool:
        """True if the remapping maps every tensor to itself."""
        if self.dst_order != self.src_order:
            return False
        return all(
            not coord.lets and coord.expr == RVar(name)
            for coord, name in zip(self.dst_coords, self.src_vars)
        )


def _collect_counters(expr: RExpr, seen: list) -> None:
    if isinstance(expr, RCounter):
        if expr not in seen:
            seen.append(expr)
    elif isinstance(expr, RBinOp):
        _collect_counters(expr.lhs, seen)
        _collect_counters(expr.rhs, seen)


def _collect_params(expr: RExpr, bound: set, names: list) -> None:
    if isinstance(expr, RParam) and expr.name not in names:
        names.append(expr.name)
    elif isinstance(expr, RVar) and expr.name not in bound and expr.name not in names:
        # Parser already classifies free names as RParam, but be permissive
        # with hand-built ASTs.
        names.append(expr.name)
    elif isinstance(expr, RBinOp):
        _collect_params(expr.lhs, bound, names)
        _collect_params(expr.rhs, bound, names)


def identity_remap(order: int) -> Remap:
    """Build the identity remapping on ``order`` dimensions.

    Index variables are named ``i1..iN`` for tensors of order > 2 and
    ``i, j`` / ``i, j, k`` for the common low orders, matching the paper's
    notation.
    """
    names = default_index_names(order)
    return Remap(
        tuple(names),
        tuple(DstCoord((), RVar(name)) for name in names),
    )


def default_index_names(order: int) -> Tuple[str, ...]:
    """Canonical index-variable names: ``i, j, k`` then ``i1..iN``."""
    if order <= 3:
        return ("i", "j", "k")[:order]
    return tuple(f"i{d + 1}" for d in range(order))
