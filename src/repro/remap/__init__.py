"""Coordinate remapping notation (Section 4 of the paper).

Public surface:

* :func:`parse_remap` — parse the concrete syntax of Figure 8;
* :class:`Remap` and friends — the AST;
* :func:`apply_remap` / :class:`CounterState` — reference evaluation;
* :class:`IntervalAnalyzer` / :func:`remapped_dim_intervals` — symbolic
  bounds of remapped dimensions;
* :func:`lower_remap` — IR lowering used by the conversion code generator.
"""

from .ast import (
    DstCoord,
    LetBinding,
    RBinOp,
    RConst,
    RCounter,
    Remap,
    RExpr,
    RParam,
    RVar,
    default_index_names,
    identity_remap,
)
from .evaluate import CounterState, apply_remap, apply_remap_once
from .interval import Interval, IntervalAnalyzer, index_interval, remapped_dim_intervals
from .lower import LoweredRemap, RemapLoweringError, lower_remap, lower_rexpr
from .parser import RemapSyntaxError, parse_remap

__all__ = [
    "DstCoord", "LetBinding", "RBinOp", "RConst", "RCounter", "Remap",
    "RExpr", "RParam", "RVar", "default_index_names", "identity_remap",
    "CounterState", "apply_remap", "apply_remap_once",
    "Interval", "IntervalAnalyzer", "index_interval", "remapped_dim_intervals",
    "LoweredRemap", "RemapLoweringError", "lower_remap", "lower_rexpr",
    "RemapSyntaxError", "parse_remap",
]
