"""Parser for coordinate remapping notation (the grammar of Figure 8).

The concrete syntax is exactly the paper's::

    (i,j) -> (j-i, i, j)                       # DIA
    (i,j) -> (i/M, j/N, i%M, j%N)              # BCSR with block parameters
    (i,j) -> (k=#i in k, i, j)                 # ELL / JAD grouping
    (i,j,k) -> (r=i/B in s=j/B in (r&1)|((s&1)<<1), i/B, j/B, i, j, k)

Identifiers on the destination side are classified as source index
variables, ``let``-bound variables, or free *format parameters*
(:class:`~repro.remap.ast.RParam`) such as block sizes.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .ast import (
    DstCoord,
    LetBinding,
    RBinOp,
    RConst,
    RCounter,
    Remap,
    RExpr,
    RParam,
    RVar,
)


class RemapSyntaxError(ValueError):
    """Raised when a remap statement does not conform to the grammar."""


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<arrow>->)|(?P<shl><<)|(?P<shr>>>)|(?P<num>\d+)"
    r"|(?P<ident>[A-Za-z_]\w*)|(?P<sym>[()=,#|^&+\-*/%]))"
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise RemapSyntaxError(f"unexpected character {text[pos]!r} at {pos}")
        pos = match.end()
        if match.lastgroup == "num":
            tokens.append(("num", match.group("num")))
        elif match.lastgroup == "ident":
            word = match.group("ident")
            tokens.append(("in", word) if word == "in" else ("ident", word))
        elif match.lastgroup == "arrow":
            tokens.append(("arrow", "->"))
        elif match.lastgroup == "shl":
            tokens.append(("op", "<<"))
        elif match.lastgroup == "shr":
            tokens.append(("op", ">>"))
        else:
            tokens.append(("op", match.group("sym")))
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0
        self.src_vars: Tuple[str, ...] = ()
        self.let_vars: set = set()

    # -- token plumbing ----------------------------------------------------
    def peek(self) -> Tuple[str, str]:
        return self.tokens[self.pos]

    def next(self) -> Tuple[str, str]:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        token_kind, token_value = self.next()
        if token_kind != kind or (value is not None and token_value != value):
            want = value or kind
            raise RemapSyntaxError(
                f"expected {want!r} but found {token_value!r} in {self.text!r}"
            )
        return token_value

    def at_op(self, *ops: str) -> bool:
        kind, value = self.peek()
        return kind == "op" and value in ops

    # -- grammar -----------------------------------------------------------
    def parse(self) -> Remap:
        src = self.parse_src_indices()
        self.src_vars = src
        self.expect("arrow")
        dst = self.parse_dst_indices()
        self.expect("eof")
        return Remap(src, dst)

    def parse_src_indices(self) -> Tuple[str, ...]:
        self.expect("op", "(")
        names = [self.expect("ident")]
        while self.at_op(","):
            self.next()
            names.append(self.expect("ident"))
        self.expect("op", ")")
        if len(set(names)) != len(names):
            raise RemapSyntaxError(f"duplicate source index variable in {self.text!r}")
        return tuple(names)

    def parse_dst_indices(self) -> Tuple[DstCoord, ...]:
        self.expect("op", "(")
        coords = [self.parse_ivar_let()]
        while self.at_op(","):
            self.next()
            coords.append(self.parse_ivar_let())
        self.expect("op", ")")
        return tuple(coords)

    def parse_ivar_let(self) -> DstCoord:
        bindings: List[LetBinding] = []
        # Lookahead: IDENT '=' starts a let binding.
        while (
            self.peek()[0] == "ident"
            and self.tokens[self.pos + 1] == ("op", "=")
        ):
            name = self.expect("ident")
            self.expect("op", "=")
            value = self.parse_ivar_expr()
            self.expect("in")
            bindings.append(LetBinding(name, value))
            self.let_vars.add(name)
        expr = self.parse_ivar_expr()
        return DstCoord(tuple(bindings), expr)

    def _binary_level(self, ops: Tuple[str, ...], parse_below) -> RExpr:
        lhs = parse_below()
        while self.at_op(*ops):
            __, op = self.next()
            lhs = RBinOp(op, lhs, parse_below())
        return lhs

    def parse_ivar_expr(self) -> RExpr:
        return self._binary_level(("|",), self.parse_ivar_xor)

    def parse_ivar_xor(self) -> RExpr:
        return self._binary_level(("^",), self.parse_ivar_and)

    def parse_ivar_and(self) -> RExpr:
        return self._binary_level(("&",), self.parse_ivar_shift)

    def parse_ivar_shift(self) -> RExpr:
        return self._binary_level(("<<", ">>"), self.parse_ivar_add)

    def parse_ivar_add(self) -> RExpr:
        return self._binary_level(("+", "-"), self.parse_ivar_mul)

    def parse_ivar_mul(self) -> RExpr:
        return self._binary_level(("*", "/", "%"), self.parse_ivar_factor)

    def parse_ivar_factor(self) -> RExpr:
        kind, value = self.peek()
        if kind == "op" and value == "(":
            self.next()
            expr = self.parse_ivar_expr()
            self.expect("op", ")")
            return expr
        if kind == "op" and value == "#":
            self.next()
            return self.parse_counter()
        if kind == "op" and value == "-":
            self.next()
            return RBinOp("-", RConst(0), self.parse_ivar_factor())
        if kind == "num":
            self.next()
            return RConst(int(value))
        if kind == "ident":
            self.next()
            if value in self.src_vars or value in self.let_vars:
                return RVar(value)
            return RParam(value)
        raise RemapSyntaxError(
            f"expected expression but found {value!r} in {self.text!r}"
        )

    def parse_counter(self) -> RCounter:
        over: List[str] = []
        while self.peek()[0] == "ident" and self.peek()[1] in self.src_vars:
            over.append(self.next()[1])
        return RCounter(tuple(over))


def parse_remap(text: str) -> Remap:
    """Parse a remap statement like ``(i,j) -> (j-i, i, j)``.

    Raises :class:`RemapSyntaxError` on malformed input.
    """
    return _Parser(text).parse()
