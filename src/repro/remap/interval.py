"""Symbolic interval analysis for remapped coordinates.

Assembling a target format requires knowing the extent of each remapped
dimension: e.g. applying ``(i,j) -> (j-i,i,j)`` to an M×N matrix produces
offsets in ``[-(M-1), N-1]``, so DIA's generated code allocates ``M+N-1``
slots and shifts by ``M-1`` (the paper's ``k + N - 1`` in Figure 6a).

Because generated routines take dimension sizes as runtime arguments, the
analysis is *symbolic*: interval endpoints are IR expressions over dimension
variables.  Endpoints that cannot be bounded statically (counters, bitwise
mixes of symbolic values) are ``None``; level formats that need static
bounds check :meth:`Interval.is_known` and raise otherwise.

All arithmetic follows Python semantics (floor division, nonnegative
``%`` for positive divisors), which coincides with C on the nonnegative
coordinates the paper manipulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..ir import builder as b
from ..ir.nodes import BinOp, Call, Const, Expr, Var
from ..ir.simplify import simplify_expr
from .ast import DstCoord, RBinOp, RConst, RCounter, Remap, RExpr, RParam, RVar


@dataclass(frozen=True)
class Interval:
    """An inclusive interval ``[lo, hi]`` with symbolic endpoints.

    ``None`` endpoints mean "unknown".  ``Interval.exact(e)`` builds the
    degenerate interval of a single value.
    """

    lo: Optional[Expr]
    hi: Optional[Expr]

    @staticmethod
    def exact(expr: Expr) -> "Interval":
        return Interval(expr, expr)

    @staticmethod
    def unknown() -> "Interval":
        return Interval(None, None)

    def is_known(self) -> bool:
        """True if both endpoints are statically known expressions."""
        return self.lo is not None and self.hi is not None

    def extent(self) -> Optional[Expr]:
        """Symbolic number of coordinates ``hi - lo + 1``, or ``None``."""
        if not self.is_known():
            return None
        return simplify_expr(b.add(b.sub(self.hi, self.lo), 1))


def index_interval(dim_size: Expr) -> Interval:
    """The interval ``[0, dim_size - 1]`` of a canonical index variable."""
    return Interval(Const(0), simplify_expr(b.sub(dim_size, 1)))


def _is_nonneg(expr: Optional[Expr], nonneg_vars: frozenset) -> bool:
    """Conservative syntactic check that ``expr`` is provably >= 0."""
    if expr is None:
        return False
    if isinstance(expr, Const):
        return expr.value >= 0
    if isinstance(expr, Var):
        return expr.name in nonneg_vars
    if isinstance(expr, BinOp):
        lhs_ok = _is_nonneg(expr.lhs, nonneg_vars)
        rhs_ok = _is_nonneg(expr.rhs, nonneg_vars)
        if expr.op in ("+", "*", "//", "<<", ">>", "&", "|", "^", "%"):
            return lhs_ok and rhs_ok
        return False
    if isinstance(expr, Call) and expr.func in ("min", "max"):
        return all(_is_nonneg(a, nonneg_vars) for a in expr.args)
    return False


def _const(expr: Optional[Expr]) -> Optional[int]:
    if isinstance(expr, Const) and isinstance(expr.value, int):
        return expr.value
    return None


class IntervalAnalyzer:
    """Computes intervals of remap expressions over symbolic dimensions."""

    def __init__(
        self,
        index_intervals: Dict[str, Interval],
        param_values: Dict[str, Expr],
        nonneg_vars=(),
    ) -> None:
        """``index_intervals`` maps source index-variable names to their
        intervals; ``param_values`` maps format-parameter names to their
        (exact) values; ``nonneg_vars`` lists variable names known to be
        nonnegative (dimension sizes).
        """
        self.env: Dict[str, Interval] = dict(index_intervals)
        self.params = dict(param_values)
        self.nonneg = frozenset(nonneg_vars)

    # -- helpers -----------------------------------------------------------
    def _simp(self, expr: Optional[Expr]) -> Optional[Expr]:
        return None if expr is None else simplify_expr(expr)

    def _nonneg(self, expr: Optional[Expr]) -> bool:
        return _is_nonneg(expr, self.nonneg)

    # -- interval combinators ----------------------------------------------
    def _add(self, a: Interval, c: Interval) -> Interval:
        lo = None if a.lo is None or c.lo is None else b.add(a.lo, c.lo)
        hi = None if a.hi is None or c.hi is None else b.add(a.hi, c.hi)
        return Interval(self._simp(lo), self._simp(hi))

    def _sub(self, a: Interval, c: Interval) -> Interval:
        lo = None if a.lo is None or c.hi is None else b.sub(a.lo, c.hi)
        hi = None if a.hi is None or c.lo is None else b.sub(a.hi, c.lo)
        return Interval(self._simp(lo), self._simp(hi))

    def _mul(self, a: Interval, c: Interval) -> Interval:
        scale = _const(c.lo) if c.lo is not None and c.lo == c.hi else None
        if scale is None and a.lo is not None and a.lo == a.hi:
            a, c = c, a
            scale = _const(c.lo) if c.lo is not None and c.lo == c.hi else None
        if scale is not None:
            if scale >= 0:
                lo = None if a.lo is None else b.mul(scale, a.lo)
                hi = None if a.hi is None else b.mul(scale, a.hi)
            else:
                lo = None if a.hi is None else b.mul(scale, a.hi)
                hi = None if a.lo is None else b.mul(scale, a.lo)
            return Interval(self._simp(lo), self._simp(hi))
        if self._nonneg(a.lo) and self._nonneg(c.lo):
            lo = None if a.lo is None or c.lo is None else b.mul(a.lo, c.lo)
            hi = None if a.hi is None or c.hi is None else b.mul(a.hi, c.hi)
            return Interval(self._simp(lo), self._simp(hi))
        if a.is_known() and c.is_known():
            combos = [
                b.mul(a.lo, c.lo), b.mul(a.lo, c.hi),
                b.mul(a.hi, c.lo), b.mul(a.hi, c.hi),
            ]
            lo = combos[0]
            hi = combos[0]
            for combo in combos[1:]:
                lo = b.minimum(lo, combo)
                hi = b.maximum(hi, combo)
            return Interval(self._simp(lo), self._simp(hi))
        return Interval.unknown()

    def _floordiv(self, a: Interval, c: Interval) -> Interval:
        divisor = _const(c.lo) if c.lo is not None and c.lo == c.hi else None
        if divisor is not None and divisor > 0:
            lo = None if a.lo is None else b.floordiv(a.lo, divisor)
            hi = None if a.hi is None else b.floordiv(a.hi, divisor)
            return Interval(self._simp(lo), self._simp(hi))
        if self._nonneg(a.lo) and self._nonneg(c.lo) and a.is_known() and c.is_known():
            # Monotone increasing in the dividend, decreasing in the divisor
            # (positive divisor assumed when its lower bound is nonneg and
            # formats never divide by zero).
            return Interval(
                self._simp(b.floordiv(a.lo, c.hi)),
                self._simp(b.floordiv(a.hi, c.lo)),
            )
        return Interval.unknown()

    def _mod(self, a: Interval, c: Interval) -> Interval:
        divisor = _const(c.lo) if c.lo is not None and c.lo == c.hi else None
        if divisor is not None and divisor > 0:
            # Python % with a positive divisor is always in [0, divisor).
            return Interval(Const(0), Const(divisor - 1))
        if c.hi is not None and self._nonneg(c.lo):
            return Interval(Const(0), self._simp(b.sub(c.hi, 1)))
        return Interval.unknown()

    def _shift(self, op: str, a: Interval, c: Interval) -> Interval:
        if not (self._nonneg(a.lo) and self._nonneg(c.lo)):
            return Interval.unknown()
        make = b.shl if op == "<<" else b.shr
        if op == "<<":
            lo = None if a.lo is None or c.lo is None else make(a.lo, c.lo)
            hi = None if a.hi is None or c.hi is None else make(a.hi, c.hi)
        else:
            lo = None if a.lo is None or c.hi is None else make(a.lo, c.hi)
            hi = None if a.hi is None or c.lo is None else make(a.hi, c.lo)
        return Interval(self._simp(lo), self._simp(hi))

    def _bitand(self, a: Interval, c: Interval) -> Interval:
        if not (self._nonneg(a.lo) and self._nonneg(c.lo)):
            return Interval.unknown()
        if a.hi is None and c.hi is None:
            return Interval(Const(0), None)
        if a.hi is None:
            return Interval(Const(0), c.hi)
        if c.hi is None:
            return Interval(Const(0), a.hi)
        return Interval(Const(0), self._simp(b.minimum(a.hi, c.hi)))

    def _bitorxor(self, a: Interval, c: Interval) -> Interval:
        if not (self._nonneg(a.lo) and self._nonneg(c.lo)):
            return Interval.unknown()
        a_hi, c_hi = _const(a.hi), _const(c.hi)
        if a_hi is not None and c_hi is not None:
            bits = max(a_hi.bit_length(), c_hi.bit_length())
            return Interval(Const(0), Const((1 << bits) - 1))
        return Interval(Const(0), None)

    # -- expression walk ----------------------------------------------------
    def interval_of(self, expr: RExpr) -> Interval:
        """Compute the interval of a remap expression."""
        if isinstance(expr, RConst):
            return Interval.exact(Const(expr.value))
        if isinstance(expr, RVar):
            if expr.name not in self.env:
                raise KeyError(f"unbound index variable {expr.name!r}")
            return self.env[expr.name]
        if isinstance(expr, RParam):
            if expr.name not in self.params:
                raise KeyError(f"unbound format parameter {expr.name!r}")
            return Interval.exact(self.params[expr.name])
        if isinstance(expr, RCounter):
            return Interval(Const(0), None)
        if isinstance(expr, RBinOp):
            lhs = self.interval_of(expr.lhs)
            rhs = self.interval_of(expr.rhs)
            dispatch = {
                "+": self._add,
                "-": self._sub,
                "*": self._mul,
                "/": self._floordiv,
                "%": self._mod,
                "&": self._bitand,
                "|": self._bitorxor,
                "^": self._bitorxor,
            }
            if expr.op in dispatch:
                return dispatch[expr.op](lhs, rhs)
            return self._shift(expr.op, lhs, rhs)
        raise TypeError(f"not a remap expression: {expr!r}")

    def coord_interval(self, coord: DstCoord) -> Interval:
        """Interval of one destination coordinate, resolving its lets."""
        saved = dict(self.env)
        try:
            for binding in coord.lets:
                self.env[binding.name] = self.interval_of(binding.value)
            return self.interval_of(coord.expr)
        finally:
            self.env = saved


def remapped_dim_intervals(
    remap: Remap,
    dim_sizes,
    param_values: Dict[str, Expr],
    nonneg_vars=(),
):
    """Intervals of every destination dimension of ``remap``.

    ``dim_sizes`` lists one symbolic size expression per *source* dimension,
    in the order of ``remap.src_vars``.
    """
    if len(dim_sizes) != remap.src_order:
        raise ValueError(
            f"remap has {remap.src_order} source dims but {len(dim_sizes)} sizes given"
        )
    nonneg = set(nonneg_vars)
    for size in dim_sizes:
        if isinstance(size, Var):
            nonneg.add(size.name)
    for value in param_values.values():
        # Format parameters (block sizes, dimensions) are positive by
        # construction, so their symbols may be assumed nonnegative.
        if isinstance(value, Var):
            nonneg.add(value.name)
    analyzer = IntervalAnalyzer(
        {
            name: index_interval(size)
            for name, size in zip(remap.src_vars, dim_sizes)
        },
        param_values,
        nonneg_vars=frozenset(nonneg),
    )
    return tuple(analyzer.coord_interval(coord) for coord in remap.dst_coords)
