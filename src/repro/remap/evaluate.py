"""Host-side (interpreted) evaluation of coordinate remappings.

This is the reference semantics used by the test oracle: it applies a
remapping nonzero by nonzero exactly as Section 4 defines it, including the
stateful counters of Figure 9.  The code generator must agree with this
evaluator on every input — a property the test suite checks exhaustively.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from .ast import RBinOp, RConst, RCounter, Remap, RExpr, RParam, RVar


class CounterState:
    """Mutable state of the counters of one remapping application.

    Each distinct counter (identified by its tuple of index variables) owns
    a table keyed by the values of those variables; fetching increments the
    entry, so the k-th nonzero sharing a key observes value ``k``
    (Section 4.2's ``counter[i]++``).
    """

    def __init__(self) -> None:
        self._tables: Dict[Tuple[str, ...], Dict[Tuple[int, ...], int]] = {}

    def fetch_and_increment(self, counter: RCounter, env: Dict[str, int]) -> int:
        """Return the current count for ``counter`` and bump it."""
        table = self._tables.setdefault(counter.over, {})
        key = tuple(env[name] for name in counter.over)
        value = table.get(key, 0)
        table[key] = value + 1
        return value

    def reset(self) -> None:
        """Clear all counters (a fresh iteration pass)."""
        self._tables.clear()


def _evaluate(expr: RExpr, env: Dict[str, int], params: Dict[str, int],
              counters: "CounterState", counter_cache: Dict[RCounter, int]) -> int:
    if isinstance(expr, RConst):
        return expr.value
    if isinstance(expr, RVar):
        return env[expr.name]
    if isinstance(expr, RParam):
        return params[expr.name]
    if isinstance(expr, RCounter):
        # A counter fetched twice while remapping the same nonzero must
        # observe the same value (it is one logical coordinate).
        if expr not in counter_cache:
            counter_cache[expr] = counters.fetch_and_increment(expr, env)
        return counter_cache[expr]
    if isinstance(expr, RBinOp):
        lhs = _evaluate(expr.lhs, env, params, counters, counter_cache)
        rhs = _evaluate(expr.rhs, env, params, counters, counter_cache)
        ops = {
            "+": lambda a, c: a + c,
            "-": lambda a, c: a - c,
            "*": lambda a, c: a * c,
            "/": lambda a, c: a // c,
            "%": lambda a, c: a % c,
            "<<": lambda a, c: a << c,
            ">>": lambda a, c: a >> c,
            "&": lambda a, c: a & c,
            "|": lambda a, c: a | c,
            "^": lambda a, c: a ^ c,
        }
        return ops[expr.op](lhs, rhs)
    raise TypeError(f"not a remap expression: {expr!r}")


def apply_remap_once(
    remap: Remap,
    coords: Sequence[int],
    params: Dict[str, int],
    counters: CounterState,
) -> Tuple[int, ...]:
    """Remap the canonical coordinates of a single nonzero.

    ``counters`` carries state across consecutive calls within one pass over
    a tensor; callers iterate nonzeros in their chosen order and the counter
    values reflect that order (Figure 9's caption makes the same caveat).
    """
    if len(coords) != remap.src_order:
        raise ValueError(
            f"expected {remap.src_order} coordinates, got {len(coords)}"
        )
    env = dict(zip(remap.src_vars, coords))
    counter_cache: Dict[RCounter, int] = {}
    out = []
    for coord in remap.dst_coords:
        local_env = dict(env)
        for binding in coord.lets:
            local_env[binding.name] = _evaluate(
                binding.value, local_env, params, counters, counter_cache
            )
        out.append(
            _evaluate(coord.expr, local_env, params, counters, counter_cache)
        )
    return tuple(out)


def apply_remap(
    remap: Remap,
    coords_list: Iterable[Sequence[int]],
    params: Optional[Dict[str, int]] = None,
) -> list:
    """Remap a whole iteration-ordered sequence of nonzero coordinates."""
    counters = CounterState()
    params = params or {}
    return [
        apply_remap_once(remap, coords, params, counters)
        for coords in coords_list
    ]
