"""The conversion engine: caching, policy, routing and telemetry.

:class:`ConversionEngine` is the production entry point of the library.
It owns everything the old module-level functions kept in hidden globals:

* a **thread-safe, LRU-bounded kernel cache** (generated + compiled
  routines, keyed structurally so renamed format twins share kernels) and
  a converter cache (keyed by exact format signatures), with exact
  telemetry via :meth:`cache_stats`;
* the **default policy** — :class:`~repro.convert.planner.PlanOptions`
  and lowering backend — applied when callers do not specify one;
* **multi-hop routing** (:mod:`repro.convert.router`): ``route="auto"``
  conversions go through a cheaper intermediate when the direct pair only
  lowers to scalar loops (``HASH -> COO -> CSR``), bit-identically;
* the **worker pools** behind the chunked executor
  (:mod:`repro.convert.chunked`): ``convert(..., parallel="auto")``
  splits huge conversions into stream chunks on an engine-owned
  :class:`~repro.ir.runtime.WorkerPool` once they cross
  ``PlanOptions.parallel_threshold``; ``parallel=<int>`` forces a worker
  count, ``parallel=None`` stays serial;
* **per-pair conversion counters** and :meth:`warmup` precompilation.

The module-level :func:`repro.convert.convert` / ``make_converter`` /
``generated_source`` remain stable shims over a process-wide default
engine (:func:`default_engine`), so existing callers see no change.

Typical use::

    engine = ConversionEngine(capacity=256)
    engine.warmup([("COO", "CSR"), ("CSR", "CSC")])
    csr = engine.convert(tensor, "CSR")
    big = engine.convert(huge, "CSR", parallel=8)   # chunked executor
    print(engine.route("HASH", "CSR").explain())
    print(engine.cache_stats())
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from ..formats.format import Format
from ..formats.registry import FormatSpec, get_format
from ..ir.runtime import WorkerPool, compile_source
from ..storage.tensor import Tensor
# Import order matters: .planner pulls in repro.cin, whose compiler module
# in turn imports .context — importing .context first would hit it
# partially initialized (the long-standing cin <-> convert import cycle).
from .planner import (
    BACKENDS,
    GeneratedConversion,
    PlanOptions,
    plan_conversion,
    resolve_backend,
    structural_key,
)
from .context import PlanError
from .router import (
    DEFAULT_ROUTE_NNZ,
    ConversionRoute,
    CostModel,
    bridge_for,
    check_route,
    find_route,
    rebind_endpoints,
)

#: Accepted values of the ``route=`` option.
ROUTE_MODES = ("auto", "direct")

#: ``parallel=`` values besides worker counts: ``"auto"`` (threshold
#: policy), ``None``/``"off"`` (serial).
PARALLEL_MODES = ("auto", "off")


@dataclass
class CompiledConversion:
    """A ready-to-run conversion routine for a (source, target) format pair."""

    generated: GeneratedConversion
    func: Callable

    @property
    def source(self) -> str:
        """The generated Python source code of the routine."""
        return self.generated.source

    @property
    def backend(self) -> str:
        """The lowering backend that produced the routine."""
        return self.generated.backend

    @property
    def src_format(self) -> Format:
        return self.generated.src_format

    @property
    def dst_format(self) -> Format:
        return self.generated.dst_format

    # ------------------------------------------------------------------
    def arguments(self, tensor: Tensor) -> List:
        """Marshal a source tensor into the generated function's arguments."""
        args = []
        for side, k, name in self.generated.params:
            if side == "src_array":
                args.append(tensor.vals if k == -1 else tensor.array(k, name))
            elif side == "src_meta":
                args.append(tensor.meta(k, name))
            else:  # dimension size
                args.append(tensor.dims[k])
        return args

    def _check_source(self, tensor: Tensor) -> None:
        if structural_key(tensor.format) != structural_key(self.src_format):
            raise ValueError(
                f"converter expects {self.src_format.name}, got {tensor.format.name}"
            )

    def _build_result(self, tensor: Tensor, results) -> Tensor:
        """Assemble the destination tensor from the routine's return tuple."""
        if not isinstance(results, tuple):
            results = (results,)
        arrays: Dict[Tuple[int, str], np.ndarray] = {}
        meta: Dict[Tuple[int, str], int] = {}
        vals = None
        for (side, k, name), value in zip(self.generated.outputs, results):
            if side == "dst_array" and k == -1:
                vals = value
            elif side == "dst_array":
                arrays[(k, name)] = value
            else:
                meta[(k, name)] = int(value)
        if vals is None:
            raise RuntimeError("generated routine returned no values array")
        return Tensor(self.dst_format, tensor.dims, arrays, meta, vals)

    def __call__(self, tensor: Tensor) -> Tensor:
        """Convert ``tensor`` (must be structurally in the source format)."""
        self._check_source(tensor)
        return self._build_result(tensor, self.func(*self.arguments(tensor)))


class ConversionEngine:
    """Owns conversion caches, policy, routing and telemetry.

    Parameters
    ----------
    capacity:
        LRU bound for the kernel cache *and* the converter cache (each
        holds at most ``capacity`` entries; least recently used entries
        are evicted and transparently recompiled on re-request).
    options:
        Default :class:`PlanOptions` applied when a call passes none.
    backend:
        Default lowering backend policy (``"auto"``, ``"scalar"``,
        ``"vector"``).
    cost_model:
        Routing :class:`~repro.convert.router.CostModel`; defaults to the
        bench-seeded constants.
    workers:
        Worker count of the default chunk pool (``parallel="auto"``);
        defaults to the host CPU count.  Explicit ``parallel=<int>``
        requests get a pool of exactly that size regardless.
    """

    def __init__(
        self,
        capacity: int = 512,
        options: Optional[PlanOptions] = None,
        backend: str = "auto",
        cost_model: Optional[CostModel] = None,
        workers: Optional[int] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if backend not in BACKENDS:
            raise PlanError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.capacity = capacity
        self.options = options or PlanOptions()
        self.backend = backend
        self.cost_model = cost_model or CostModel()
        self.workers = max(1, int(workers if workers is not None
                                  else (os.cpu_count() or 1)))
        #: chunk pools by worker count, created lazily (threads start on
        #: first multi-chunk use); see :meth:`worker_pool`.
        self._pools: Dict[int, WorkerPool] = {}
        #: pairs an explicit ``parallel=<int>`` request already warned
        #: about (non-chunkable pairs run the standard paths instead).
        self._parallel_warned: set = set()
        self._lock = threading.RLock()
        #: kernel keys currently compiling (kernel_key -> done event):
        #: concurrent requests for the same pair wait on the event instead
        #: of compiling twice, and cache hits never wait behind a compile.
        self._inflight: Dict[Tuple, threading.Event] = {}
        self._kernels: "OrderedDict[Tuple, Tuple[GeneratedConversion, Callable]]" = (
            OrderedDict()
        )
        self._converters: "OrderedDict[Tuple, CompiledConversion]" = OrderedDict()
        self._routes: Dict[Tuple, ConversionRoute] = {}
        self._pair_counts: Dict[Tuple[str, str], int] = {}
        self._stats = {
            "requests": 0,
            "hits": 0,
            "misses": 0,
            "kernel_hits": 0,
            "compiles": 0,
            "compile_seconds": 0.0,
            "evictions": 0,
            "converter_evictions": 0,
            "conversions": 0,
            "routed_conversions": 0,
            "parallel_conversions": 0,
        }

    # -- policy helpers -------------------------------------------------
    def _effective(
        self, options: Optional[PlanOptions], backend: Optional[str]
    ) -> Tuple[PlanOptions, str]:
        return options or self.options, backend or self.backend

    # -- compilation & caching ------------------------------------------
    def make_converter(
        self,
        src_format: FormatSpec,
        dst_format: FormatSpec,
        options: Optional[PlanOptions] = None,
        backend: Optional[str] = None,
    ) -> CompiledConversion:
        """Generate (or fetch from cache) the routine for a format pair.

        Formats may be given as objects or registry spec strings.  Kernels
        are cached per (structural format key, plan options, resolved
        backend) — renamed structural twins share one routine — and both
        caches are LRU-bounded at the engine's ``capacity``.  Compilation
        happens *outside* the engine lock behind a per-kernel in-flight
        event: concurrent requests for the same pair never compile twice,
        and cache hits for other pairs never stall behind a compile.

        Example::

            conv = engine.make_converter("COO", "CSR")
            csr = conv(coo_tensor)
        """
        src_format = get_format(src_format)
        dst_format = get_format(dst_format)
        options, backend = self._effective(options, backend)
        resolved = resolve_backend(src_format, dst_format, options, backend)
        return self._lookup_or_build(
            src_format, dst_format, options, resolved, CompiledConversion
        )

    def make_chunked(
        self,
        src_format: FormatSpec,
        dst_format: FormatSpec,
        options: Optional[PlanOptions] = None,
    ) -> Optional["ChunkedConversion"]:
        """The chunked (chunk-parallel) routine for a format pair, or
        ``None`` when the pair has no chunked form (scalar-only pairs).

        Chunked kernels are AST rewrites of the vector kernels
        (:mod:`repro.convert.chunked`) and are cached exactly like them,
        under the ``"chunked"`` backend tag.  The returned
        :class:`~repro.convert.chunked.ChunkedConversion` takes the
        tensor plus a :class:`~repro.ir.runtime.WorkerPool`::

            conv = engine.make_chunked("COO", "CSR")
            out = conv(tensor, engine.worker_pool(4))
        """
        from .chunked import ChunkedConversion, chunkable

        src_format = get_format(src_format)
        dst_format = get_format(dst_format)
        options, _ = self._effective(options, None)
        if not chunkable(src_format, dst_format, options):
            return None
        return self._lookup_or_build(
            src_format, dst_format, options, "chunked", ChunkedConversion
        )

    def _lookup_or_build(
        self,
        src_format: Format,
        dst_format: Format,
        options: PlanOptions,
        resolved: str,
        cls: type,
    ) -> CompiledConversion:
        key = (
            src_format.signature(),
            dst_format.signature(),
            options.key(),
            resolved,
        )
        with self._lock:
            self._stats["requests"] += 1
            converter = self._converters.get(key)
            if converter is not None:
                self._stats["hits"] += 1
                self._converters.move_to_end(key)
                return converter
            self._stats["misses"] += 1
        kernel_key = (
            structural_key(src_format),
            structural_key(dst_format),
            options.key(),
            resolved,
        )
        entry = self._obtain_kernel(kernel_key, src_format, dst_format,
                                    options, resolved)
        generated, func = entry
        if (
            generated.src_format is not src_format
            or generated.dst_format is not dst_format
        ):
            generated = replace(
                generated, src_format=src_format, dst_format=dst_format
            )
        converter = cls(generated, func)
        with self._lock:
            # another thread may have built the same converter while we
            # compiled; keep the first one so callers share the object
            existing = self._converters.get(key)
            if existing is not None:
                self._converters.move_to_end(key)
                return existing
            self._converters[key] = converter
            while len(self._converters) > self.capacity:
                self._converters.popitem(last=False)
                self._stats["converter_evictions"] += 1
        return converter

    def _obtain_kernel(
        self,
        kernel_key: Tuple,
        src_format: Format,
        dst_format: Format,
        options: PlanOptions,
        resolved: str,
    ) -> Tuple[GeneratedConversion, Callable]:
        """Fetch or compile the kernel for ``kernel_key``, compiling at
        most once across concurrent callers (in-flight event pattern)."""
        while True:
            with self._lock:
                entry = self._kernels.get(kernel_key)
                if entry is not None:
                    self._stats["kernel_hits"] += 1
                    self._kernels.move_to_end(kernel_key)
                    return entry
                event = self._inflight.get(kernel_key)
                if event is None:
                    event = threading.Event()
                    self._inflight[kernel_key] = event
                    compiling = True
                else:
                    compiling = False
            if not compiling:
                # someone else is compiling this kernel: wait without
                # holding the lock, then re-check (it may also have been
                # evicted again under a tiny capacity — then we compile)
                event.wait()
                continue
            try:
                started = time.perf_counter()
                if resolved == "chunked":
                    from .chunked import plan_chunked

                    generated = plan_chunked(src_format, dst_format, options)
                    if generated is None:
                        raise PlanError(
                            f"{src_format.name} -> {dst_format.name} has no "
                            "chunked lowering (the pair is not vectorizable)"
                        )
                else:
                    generated = plan_conversion(
                        src_format, dst_format, options, resolved
                    )
                func = compile_source(generated.source, generated.func_name)
                elapsed = time.perf_counter() - started
                entry = (generated, func)
                with self._lock:
                    self._stats["compile_seconds"] += elapsed
                    self._stats["compiles"] += 1
                    self._kernels[kernel_key] = entry
                    self._kernels.move_to_end(kernel_key)
                    while len(self._kernels) > self.capacity:
                        self._kernels.popitem(last=False)
                        self._stats["evictions"] += 1
                return entry
            finally:
                with self._lock:
                    self._inflight.pop(kernel_key, None)
                event.set()

    def generated_source(
        self,
        src_format: FormatSpec,
        dst_format: FormatSpec,
        backend: str = "scalar",
        options: Optional[PlanOptions] = None,
    ) -> str:
        """The Python source of the generated conversion routine."""
        return self.make_converter(src_format, dst_format, options, backend).source

    def warmup(
        self,
        pairs: Iterable[Tuple[FormatSpec, FormatSpec]],
        options: Optional[PlanOptions] = None,
        backend: Optional[str] = None,
        routes: bool = True,
        parallel: bool = False,
    ) -> int:
        """Precompile the converters for ``pairs``.

        Each pair is ``(src, dst)`` where either side is a
        :class:`~repro.formats.format.Format` **or a registry spec
        string** — ``warmup([("COO", "CSR"), ("BCSR8x8", "CSR")])`` works
        like every other entry point; specs are resolved once up front so
        an unknown name fails fast, before anything compiles.

        With ``routes=True`` (default) the auto-route of each pair is
        resolved too and its generated hops are compiled, so the first
        routed conversion pays no compile either; ``parallel=True`` also
        compiles the chunked kernels of chunkable pairs (the ones
        ``convert(..., parallel=...)`` would run).  Returns the number of
        pairs warmed.

        Example::

            engine.warmup([("COO", "CSR"), ("HASH", "CSR")], parallel=True)
        """
        resolved = [(get_format(src), get_format(dst)) for src, dst in pairs]
        for src, dst in resolved:
            self.make_converter(src, dst, options, backend)
            if routes:
                route = self.route(src, dst, options=options)
                for hop in route.hops:
                    if hop.kind != "bridge":
                        self.make_converter(hop.src, hop.dst, options, hop.kind)
            if parallel:
                self.make_chunked(src, dst, options)
        return len(resolved)

    # -- parallel execution ---------------------------------------------
    def worker_pool(self, workers: Optional[int] = None) -> WorkerPool:
        """The engine-owned chunk pool for ``workers`` threads.

        Pools are created lazily, cached per worker count (``None``: the
        engine's default ``workers``), and shared by every conversion the
        engine runs — the engine owns the threads, not the call sites.
        :meth:`shutdown` joins them.
        """
        workers = self.workers if workers is None else max(1, int(workers))
        with self._lock:
            pool = self._pools.get(workers)
            if pool is None:
                pool = WorkerPool(workers)
                self._pools[workers] = pool
        return pool

    def shutdown(self) -> None:
        """Join all chunk-pool threads (pools restart lazily on reuse)."""
        with self._lock:
            pools = list(self._pools.values())
        for pool in pools:
            pool.shutdown()

    def _parallel_workers(
        self,
        parallel: Union[str, int, None],
        nnz: int,
        options: PlanOptions,
        backend: str,
    ) -> int:
        """Resolve a ``parallel=`` request to a worker count (0: serial).

        ``"auto"`` engages the engine's default pool once the tensor
        crosses ``options.parallel_threshold`` and the engine has a
        multi-worker pool (``workers`` defaults to the host CPU count, so
        single-core hosts never self-engage); an explicit int always
        engages with exactly that many workers, even ``1`` (useful to
        compare the chunked path against the serial kernel).
        """
        if parallel is None or parallel == "off":
            return 0
        if isinstance(parallel, bool):
            raise ValueError("parallel expects 'auto', 'off', None or an int")
        if isinstance(parallel, int):
            if parallel < 1:
                raise ValueError(f"parallel worker count must be >= 1, got {parallel}")
            return parallel
        if parallel != "auto":
            raise ValueError(
                f"unknown parallel mode {parallel!r}; expected one of "
                f"{PARALLEL_MODES} or a worker count"
            )
        if backend not in ("auto", "vector"):
            return 0  # an explicit scalar request keeps the scalar path
        if nnz < options.parallel_threshold:
            return 0
        return self.workers if self.workers > 1 else 0

    # -- routing --------------------------------------------------------
    def route(
        self,
        src_format: FormatSpec,
        dst_format: FormatSpec,
        options: Optional[PlanOptions] = None,
        nnz: Optional[int] = None,
        workers: int = 0,
    ) -> ConversionRoute:
        """The cost-optimal conversion route for a pair.

        ``nnz`` is the expected stored-component count (defaults to
        ``DEFAULT_ROUTE_NNZ``); tiny tensors route direct because per-hop
        overhead dominates.  ``workers > 1`` plans for chunk-parallel
        execution: vectorizable hops are costed at the cost model's
        chunked throughput instead of the serial vector rate.  Routes are
        cached per (structural pair, options, nnz magnitude, parallel
        flag); a cache entry produced for a renamed structural twin is
        re-tagged with the requested formats.

        Example::

            engine.route("HASH", "CSR").explain()
        """
        src_format = get_format(src_format)
        dst_format = get_format(dst_format)
        options = options or self.options
        nnz = DEFAULT_ROUTE_NNZ if nnz is None else int(nnz)
        key = (
            structural_key(src_format),
            structural_key(dst_format),
            options.key(),
            max(nnz, 1).bit_length(),
            workers > 1,
        )
        with self._lock:
            route = self._routes.get(key)
        if route is None:
            route = find_route(
                src_format,
                dst_format,
                options=options,
                cost_model=self.cost_model,
                nnz=nnz,
                workers=workers,
            )
            with self._lock:
                self._routes[key] = route
        if (
            route.src.signature() != src_format.signature()
            or route.dst.signature() != dst_format.signature()
        ):
            route = rebind_endpoints(route, src_format, dst_format)
        return route

    def convert_via(self, route: ConversionRoute, tensor: Tensor,
                    workers: int = 0) -> Tensor:
        """Execute an explicit route on ``tensor``.

        With ``workers > 0`` the generated hops that have a chunked form
        run on the engine's chunk pool (bridges are single bulk passes
        and stay as they are) — a routed huge conversion parallelizes hop
        by hop.
        """
        check_route(route)
        if structural_key(tensor.format) != structural_key(route.src):
            raise ValueError(
                f"route starts at {route.src.name}, got {tensor.format.name}"
            )
        for hop in route.hops:
            if hop.kind == "bridge":
                bridge = bridge_for(hop.src)
                if bridge is None:
                    raise PlanError(f"no bridge registered for {hop.src.name}")
                tensor = bridge[1](tensor)
                continue
            if workers and hop.kind == "vector":
                chunked = self.make_chunked(hop.src, hop.dst, route.options)
                if chunked is not None:
                    tensor = chunked(tensor, self.worker_pool(workers))
                    continue
            tensor = self.make_converter(
                hop.src, hop.dst, route.options, hop.kind
            )(tensor)
        return tensor

    # -- conversion -----------------------------------------------------
    def convert(
        self,
        tensor: Tensor,
        dst_format: FormatSpec,
        options: Optional[PlanOptions] = None,
        backend: Optional[str] = None,
        route: Union[str, ConversionRoute, None] = "auto",
        parallel: Union[str, int, None] = "auto",
    ) -> Tensor:
        """Convert ``tensor`` to ``dst_format`` (object or spec string).

        ``route="auto"`` (default) considers multi-hop routing when the
        requested backend policy is ``"auto"``: if a cheaper path through
        an intermediate exists (scalar-only pairs at bulk sizes), it is
        taken — the result is bit-identical to the direct conversion.
        ``route="direct"`` always converts directly.  A
        :class:`ConversionRoute` instance is executed as given after
        checking it actually ends at ``dst_format`` (an explicit route
        carries its own per-hop backends and plan options, so the
        ``options``/``backend`` arguments do not apply to it).

        ``parallel`` selects the chunked executor
        (:mod:`repro.convert.chunked`) for vectorizable pairs:
        ``"auto"`` (default) engages it once ``tensor`` has at least
        ``PlanOptions.parallel_threshold`` stored components and the host
        is multi-core; an ``int`` forces a worker count at any size;
        ``None``/``"off"`` stays serial.  Chunked results are
        bit-identical to the serial vector backend; pairs without a
        chunked form (hashed levels, non-default options) fall back to
        the standard paths — warning once per pair when the worker count
        was explicit.
        """
        dst_format = get_format(dst_format)
        src_format = tensor.format
        options, backend = self._effective(options, backend)
        pair = (src_format.name, dst_format.name)
        workers = self._parallel_workers(
            parallel, tensor.nnz_stored, options, backend
        )
        if isinstance(route, ConversionRoute):
            # validates both endpoints structurally and re-tags renamed
            # twins, so the result comes back in the requested format
            aligned = rebind_endpoints(route, src_format, dst_format)
            self._record_conversion(pair, routed=True)
            return self.convert_via(aligned, tensor, workers=workers)
        if route not in (None, *ROUTE_MODES):
            raise ValueError(
                f"unknown route mode {route!r}; expected one of {ROUTE_MODES} "
                "or a ConversionRoute"
            )
        if workers:
            chunked = self.make_chunked(src_format, dst_format, options)
            if chunked is not None:
                self._record_conversion(pair, routed=False, parallel=True)
                return chunked(tensor, self.worker_pool(workers))
            if isinstance(parallel, int) and pair not in self._parallel_warned:
                self._parallel_warned.add(pair)
                warnings.warn(
                    f"no chunked lowering for {pair[0]}->{pair[1]} (the pair "
                    "is not vectorizable); running the standard conversion "
                    "paths",
                    RuntimeWarning,
                    stacklevel=2,
                )
        if route == "auto" and backend == "auto":
            found = self.route(
                src_format, dst_format, options=options,
                nnz=tensor.nnz_stored, workers=workers,
            )
            if found.beats_direct:
                self._record_conversion(pair, routed=True)
                return self.convert_via(found, tensor, workers=workers)
        self._record_conversion(pair, routed=False)
        return self.make_converter(src_format, dst_format, options, backend)(tensor)

    def _record_conversion(self, pair: Tuple[str, str], routed: bool,
                           parallel: bool = False) -> None:
        with self._lock:
            self._stats["conversions"] += 1
            if routed:
                self._stats["routed_conversions"] += 1
            if parallel:
                self._stats["parallel_conversions"] += 1
            self._pair_counts[pair] = self._pair_counts.get(pair, 0) + 1

    # -- telemetry ------------------------------------------------------
    def cache_stats(self) -> Dict[str, float]:
        """Exact cache/telemetry counters (a snapshot copy).

        ``requests`` counts converter lookups; ``hits``/``misses`` split
        them at the converter cache; ``kernel_hits`` are misses served by
        a structurally-shared kernel; ``compiles`` are actual plan+compile
        runs with their total ``compile_seconds``; ``evictions`` /
        ``converter_evictions`` count LRU drops; ``conversions`` /
        ``routed_conversions`` / ``parallel_conversions`` count executed
        conversions (and how many ran routed / on the chunked executor).
        """
        with self._lock:
            stats = dict(self._stats)
            stats["size"] = len(self._kernels)
            stats["converter_size"] = len(self._converters)
            stats["capacity"] = self.capacity
        return stats

    def pair_counts(self) -> Dict[Tuple[str, str], int]:
        """Executed conversions per (source name, destination name)."""
        with self._lock:
            return dict(self._pair_counts)

    def clear_cache(self) -> None:
        """Drop all cached kernels, converters and routes (stats remain)."""
        with self._lock:
            self._kernels.clear()
            self._converters.clear()
            self._routes.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.cache_stats()
        return (
            f"<ConversionEngine kernels={stats['size']}/{self.capacity} "
            f"hits={stats['hits']} misses={stats['misses']} "
            f"conversions={stats['conversions']}>"
        )


# ----------------------------------------------------------------------
# the process-wide default engine (behind the module-level shims)

_DEFAULT_ENGINE: Optional[ConversionEngine] = None
_DEFAULT_LOCK = threading.Lock()


def default_engine() -> ConversionEngine:
    """The process-wide engine behind ``repro.convert.convert`` et al."""
    global _DEFAULT_ENGINE
    with _DEFAULT_LOCK:
        if _DEFAULT_ENGINE is None:
            _DEFAULT_ENGINE = ConversionEngine()
        return _DEFAULT_ENGINE


def set_default_engine(engine: ConversionEngine) -> Optional[ConversionEngine]:
    """Replace the default engine; returns the previous one (if any)."""
    global _DEFAULT_ENGINE
    with _DEFAULT_LOCK:
        previous, _DEFAULT_ENGINE = _DEFAULT_ENGINE, engine
    return previous
