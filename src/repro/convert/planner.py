"""The conversion planner / code generator (Sections 3 and 6.2).

Given a source and a destination format, the planner emits one Python
function that performs the conversion in the paper's three logical phases:

1. **analysis** — the destination levels' attribute queries, compiled by
   :class:`~repro.cin.compile.QueryCompiler` (coordinate remapping is
   *fused* into this pass: remapped coordinates are recomputed rather than
   materialized, like Figure 6a);
2. **edge insertion + initialization** — per level, top-down: sequenced
   edge insertion when the result's parent levels are iterated in order
   (the default — unsequenced insertion plus a parallel-friendly
   ``prefix_sum`` finalize is available as an option and ablation),
   then ``init_coords``/``init_{get|yield}_pos`` and the ``get_size``
   chain;
3. **coordinate insertion** — one pass over the source applying the
   destination's coordinate remapping (with counter arrays or scalar
   counter registers per Section 4.2) and chaining
   ``get_pos``/``yield_pos`` through the levels, storing coordinates and
   values; followed by ``finalize_yield_pos`` fix-ups.

On-the-fly deduplication (Section 6.2's "emits logic to perform
deduplication") is generated for unique ``yield_pos`` levels whose
destination prefix does not injectively determine a nonzero — e.g. BCSR's
block-column level, where many nonzeros share one block.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..cin.compile import QueryCompiler
from ..formats.format import Format
from ..ir import builder as b
from ..ir.nodes import (
    Alloc,
    Assign,
    AugAssign,
    Block,
    Comment,
    Const,
    Expr,
    ExprStmt,
    FuncDef,
    If,
    Load,
    Return,
    Stmt,
    Store,
    Var,
)
from ..ir.printer import print_func
from ..ir.simplify import simplify_expr, simplify_stmt
from ..remap.ast import RVar
from ..remap.lower import lower_remap
from .context import ConversionContext, PlanError
from .iterate import CounterPlan, SourceLoopEmitter


@dataclass
class PlanOptions:
    """Code-generation options (defaults match the paper's generated code).

    ``force_unsequenced_edges`` switches edge insertion to the
    unsequenced variant (``calloc`` + per-parent counts + ``prefix_sum``)
    even where sequenced insertion applies — used by the ablation bench.
    ``skip_src_zeros`` overrides the explicit-zero guard on the source
    (defaults to guarding padded sources only).
    ``force_counter_arrays`` disables the scalar-counter-register
    optimization of Section 4.2 (ablation A1).
    ``disable_width_count`` turns off the simplify-width-count rewrite of
    Table 1, forcing analyses back to nonzero passes (ablation A2).
    ``parallel_threshold`` is the stored-component count above which
    ``convert(..., parallel="auto")`` engages the chunked executor
    (:mod:`repro.convert.chunked`); it tunes *execution*, not code
    generation, so it is deliberately **not** part of :meth:`key` — two
    engines differing only in threshold share every cached kernel.
    """

    force_unsequenced_edges: bool = False
    skip_src_zeros: Optional[bool] = None
    force_counter_arrays: bool = False
    disable_width_count: bool = False
    parallel_threshold: int = 1 << 20

    def key(self) -> Tuple:
        """Cache-key tuple of the codegen-affecting options only."""
        return (
            self.force_unsequenced_edges,
            self.skip_src_zeros,
            self.force_counter_arrays,
            self.disable_width_count,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot (every option, including the
        execution-only ``parallel_threshold``)."""
        return {
            "force_unsequenced_edges": self.force_unsequenced_edges,
            "skip_src_zeros": self.skip_src_zeros,
            "force_counter_arrays": self.force_counter_arrays,
            "disable_width_count": self.disable_width_count,
            "parallel_threshold": self.parallel_threshold,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PlanOptions":
        """Inverse of :meth:`to_dict`; unknown keys (from a newer schema)
        are ignored so old readers can still replay new plans."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in dict(data).items() if k in known})


@dataclass
class GeneratedConversion:
    """A generated conversion routine plus its calling convention.

    ``func`` is the routine's IR (scalar backend only; the vector backend
    emits numpy source directly and leaves it ``None``).  ``backend``
    names the lowering that produced the routine — ``"scalar"`` for the
    per-nonzero loop nests of this module, ``"vector"`` for the bulk
    numpy lowering of :mod:`repro.ir.vector`.
    """

    func: Optional[FuncDef]
    source: str
    func_name: str
    params: List[Tuple[str, int, str]]
    outputs: List[Tuple[str, int, str]]
    src_format: Format
    dst_format: Format
    backend: str = "scalar"


#: Valid values of the public ``backend=`` option.
BACKENDS = ("auto", "scalar", "vector", "native")


def _validate_backend(backend: str) -> str:
    backend = backend or "auto"
    if backend not in BACKENDS:
        raise PlanError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    return backend


def structural_key(fmt: Format) -> Tuple:
    """Structural identity of a format, ignoring its display name.

    This is the kernel-cache key component: two formats with the same
    remapping, inverse, level signatures and parameters share one
    generated routine regardless of how they are named.  Memoized on the
    (immutable) format instance: backend resolution runs on every
    ``convert()`` call, including kernel-cache hits, and the key
    derivation would otherwise dominate the hot-path lookup.
    """
    key = getattr(fmt, "_structural_key_memo", None)
    if key is None:
        key = (
            str(fmt.remap),
            str(fmt.inverse),
            tuple(level.signature() for level in fmt.levels),
            tuple(sorted(fmt.params.items())),
        )
        object.__setattr__(fmt, "_structural_key_memo", key)  # frozen dataclass
    return key


def needs_dedup(dst_format: Format, canonical_names: Sequence[str], k: int) -> bool:
    """True if destination level ``k`` requires on-the-fly deduplication
    (Section 6.2): a unique ``yield_pos`` level whose destination prefix
    does not injectively determine a nonzero — e.g. BCSR's block-column
    level, where many nonzeros share one block.  Shared by both lowering
    backends."""
    level = dst_format.levels[k]
    if level.pos_kind != "yield" or not level.unique:
        return False
    bare = set()
    for coord in dst_format.remap.dst_coords[: k + 1]:
        if not coord.lets and isinstance(coord.expr, RVar):
            bare.add(coord.expr.name)
    return not bare >= set(canonical_names)


#: Memoized vector-capability per (structural pair, options) — consulted on
#: every convert() call.
_CAPABLE_CACHE: Dict[Tuple, bool] = {}

#: Pairs an explicit ``backend="vector"`` request already warned about.
_FALLBACK_WARNED: Set[Tuple] = set()


def resolve_backend(
    src_format: Format,
    dst_format: Format,
    options: Optional[PlanOptions] = None,
    backend: str = "auto",
) -> str:
    """Pick the lowering backend for a (src, dst) format pair.

    ``"auto"`` (and ``None``) selects the vector backend whenever every
    level of both formats implements the vector-emission protocol
    (``Level.vector_capable``) under default plan options, and falls back
    to ``"scalar"`` otherwise — there is no per-format allowlist.  An
    explicit ``"vector"`` request also falls back for non-vectorizable
    pairs (every pair stays convertible), warning once per pair;
    ``"scalar"`` always lowers to loops.  ``"native"`` resolves to the
    compiled C backend when the pair's scalar plan lowers to C
    (:func:`repro.convert.native.native_capable`) and falls back to the
    auto resolution otherwise, warning once per pair.  (Toolchain
    availability is the *engine's* concern — resolution here is pure so
    ``codegen --backend native`` works on compiler-less hosts.)
    """
    if _validate_backend(backend) == "scalar":
        return "scalar"
    options = options or PlanOptions()
    key = (structural_key(src_format), structural_key(dst_format), options.key())
    if backend == "native":
        from .native import native_capable

        if native_capable(src_format, dst_format, options):
            return "native"
        native_key = key + ("native",)
        if native_key not in _FALLBACK_WARNED:
            _FALLBACK_WARNED.add(native_key)
            warnings.warn(
                f"native backend unavailable for {src_format.name}->"
                f"{dst_format.name} (the scalar plan uses a construct the "
                "C emitter cannot translate); falling back to "
                "auto resolution",
                RuntimeWarning,
                stacklevel=3,
            )
        backend = "auto"
    if key not in _CAPABLE_CACHE:
        from ..ir.vector import vectorizable

        _CAPABLE_CACHE[key] = vectorizable(src_format, dst_format, options)
    if _CAPABLE_CACHE[key]:
        return "vector"
    if backend == "vector" and key not in _FALLBACK_WARNED:
        _FALLBACK_WARNED.add(key)
        if options.key() != PlanOptions().key():
            reason = "non-default plan options select scalar code shapes"
        else:
            reason = "a level format does not implement the vector-emission protocol"
        warnings.warn(
            f"vector backend unavailable for {src_format.name}->"
            f"{dst_format.name} ({reason}); falling back to scalar",
            RuntimeWarning,
            stacklevel=3,
        )
    return "scalar"


def plan_conversion(
    src_format: Format,
    dst_format: Format,
    options: Optional[PlanOptions] = None,
    backend: str = "auto",
) -> GeneratedConversion:
    """Plan one conversion routine through the resolved backend.

    ``plan_vector`` itself reports non-vectorizable pairs by returning
    ``None``, so resolution is not repeated here — callers that already
    ran :func:`resolve_backend` (the kernel cache) pay for it once.
    ``"native"`` requests must already be resolved (the engine resolves
    before planning); an incapable pair raises ``NativeUnsupported``
    rather than silently changing backend.
    """
    backend = _validate_backend(backend)
    if backend == "native":
        from .native import plan_native

        return plan_native(src_format, dst_format, options)
    if backend != "scalar":
        from ..ir.vector import plan_vector

        generated = plan_vector(src_format, dst_format, options)
        if generated is not None:
            return generated
    return ConversionPlanner(src_format, dst_format, options).plan()


def _sanitize(name: str) -> str:
    return "".join(ch if ch.isalnum() else "_" for ch in name)


class ConversionPlanner:
    """Plans and emits one conversion routine."""

    def __init__(
        self,
        src_format: Format,
        dst_format: Format,
        options: Optional[PlanOptions] = None,
    ) -> None:
        self.options = options or PlanOptions()
        self.ctx = ConversionContext(src_format, dst_format)
        self.src_format = src_format
        self.dst_format = dst_format
        self._check_supported()

    def _check_supported(self) -> None:
        # Staged (multi-group) assembly handles edge insertion below
        # explicitly stored parent coordinates; nothing further to check
        # here — unsupported sources fail in the emitters with clear errors.
        pass

    def _groups(self) -> List[List[int]]:
        """Partition destination levels into assembly groups.

        A new group starts before level ``k`` when ``k`` needs edge
        insertion and some earlier level stores coordinates explicitly:
        the edge-insertion parent loop then traverses those stored
        coordinates, so they must be inserted by an earlier pass
        (Section 6.2's "adjacent levels can be assembled together as long
        as only the parent level requires a separate edge insertion
        phase").  All the paper's evaluated formats form a single group;
        CSF-style targets split (e.g. [dense, compressed | compressed]).
        """
        levels = self.dst_format.levels
        groups: List[List[int]] = [[]]
        for k, level in enumerate(levels):
            if level.has_edges and any(
                levels[j].explicit_coords for j in range(k)
            ) and groups[-1]:
                groups.append([])
            groups[-1].append(k)
        return groups

    def _value_expr(self, src_vals: Var, leaf_pos: Expr) -> Expr:
        """The value stored for each nonzero during coordinate insertion.

        Fused compute kernels (:mod:`repro.compute`) override this to
        rewrite the value stream in flight — e.g. ``scale`` stores
        ``alpha * val`` — without duplicating the assembly emitters.
        """
        return Load(src_vals, leaf_pos)

    # ------------------------------------------------------------------
    def plan(self) -> GeneratedConversion:
        ctx = self.ctx
        stmts: List[Stmt] = []

        # Phase 1: analysis ------------------------------------------------
        nlevels = self.dst_format.nlevels
        level_specs = [
            (k, spec)
            for k, level in enumerate(self.dst_format.levels)
            for spec in level.queries(k, nlevels)
        ]
        if level_specs:
            stmts.append(Comment("analysis: attribute queries (Section 5)"))
            compiler = QueryCompiler(ctx, self.options.disable_width_count)
            stmts.extend(compiler.compile(level_specs))

        # Phases 2+3: per assembly group, edge insertion & initialization
        # followed by a coordinate-insertion pass over the source.  The
        # paper's evaluated formats always form one group; CSF-style
        # targets run one staged pass per group, carrying each nonzero's
        # group-boundary position in a memo array.
        groups = self._groups()
        memo_in: Optional[Var] = None
        sizes: List[Expr] = []
        size: Expr = Const(1)
        for group_index, group in enumerate(groups):
            last_group = group_index == len(groups) - 1
            stmts.append(
                Comment(
                    "assembly: edge insertion and initialization (Section 6)"
                    if len(groups) == 1
                    else f"assembly group {group_index + 1}: levels "
                    f"{group[0] + 1}..{group[-1] + 1}"
                )
            )
            for k in group:
                level = self.dst_format.levels[k]
                if level.has_edges:
                    stmts.extend(self._emit_edges(k, level, size))
                stmts.extend(level.emit_init_coords(ctx.dst, k, size))
                stmts.extend(level.emit_init_pos(ctx.dst, k, size))
                get_stmts, size_expr = level.emit_get_size(ctx.dst, k, size)
                stmts.extend(get_stmts)
                size_var = Var(ctx.ng.fresh(f"szB{k + 1}"))
                stmts.append(Assign(size_var, simplify_expr(size_expr)))
                sizes.append(size_var)
                size = size_var
            memo_out: Optional[Var] = None
            if last_group:
                vals = ctx.dst_vals()
                init = "zeros" if self.dst_format.padded else "empty"
                stmts.append(Alloc(vals, size, "float64", init))
            else:
                memo_out = Var(ctx.ng.fresh(f"memo{group_index + 1}"))
                emitter = SourceLoopEmitter(ctx)
                stmts.append(
                    Alloc(memo_out, emitter.emit_total_paths(), "int64", "empty")
                )
            stmts.append(Comment("assembly: coordinate insertion"))
            stmts.extend(
                self._emit_insertion(
                    sizes, group, memo_in=memo_in, memo_out=memo_out
                )
            )
            for k in group:
                parent_size = sizes[k - 1] if k > 0 else Const(1)
                stmts.extend(
                    self.dst_format.levels[k].emit_finalize_pos(
                        ctx.dst, k, parent_size
                    )
                )
            memo_in = memo_out

        stmts.append(Return([var for _, var in ctx.output_list()]))

        body = simplify_stmt(Block(tuple(stmts)))
        name = f"convert_{_sanitize(self.src_format.name)}_to_{_sanitize(self.dst_format.name)}"
        params = [var.name for _, var in ctx.param_list()]
        func = FuncDef(
            name,
            tuple(params),
            body if isinstance(body, Block) else Block((body,)),
            docstring=(
                f"Convert a {self.src_format.name} tensor to "
                f"{self.dst_format.name}.  Generated by repro.convert "
                "(coordinate remapping: "
                f"{self.dst_format.remap})."
            ),
        )
        return GeneratedConversion(
            func=func,
            source=print_func(func),
            func_name=name,
            params=[key for key, _ in ctx.param_list()],
            outputs=[key for key, _ in ctx.output_list()],
            src_format=self.src_format,
            dst_format=self.dst_format,
        )

    # ------------------------------------------------------------------
    def _emit_edges(self, k: int, level, parent_size: Expr) -> List[Stmt]:
        ctx = self.ctx
        # Sequenced insertion requires visiting parent positions in order;
        # the parent loop below enumerates the (implicit) parent levels in
        # order, so sequenced insertion always applies unless the ablation
        # option forces the unsequenced variant.
        sequenced = not self.options.force_unsequenced_edges
        out: List[Stmt] = []
        if sequenced:
            out.extend(level.emit_seq_init_edges(ctx.dst, k, parent_size))
            insert = level.emit_seq_insert_edges
        else:
            out.extend(level.emit_unseq_init_edges(ctx.dst, k, parent_size))
            insert = level.emit_unseq_insert_edges

        def body(parent_pos: Expr, coords: List[Expr]) -> Stmt:
            return b.block(insert(ctx.dst, k, parent_pos, coords))

        out.append(self._emit_parent_loop(k, body))
        if not sequenced:
            out.extend(level.emit_unseq_finalize_edges(ctx.dst, k, parent_size))
        return out

    def _emit_parent_loop(self, k: int, body) -> Stmt:
        """Iterate positions/coordinates of result levels ``0..k-1``."""
        ctx = self.ctx
        levels = self.dst_format.levels

        def rec(j: int, parent_pos: Expr, coords: List[Expr]) -> Stmt:
            if j == k:
                return body(parent_pos, coords)

            def level_body(pos: Expr, coord: Expr) -> Stmt:
                # Implicit levels iterate shifted coordinates [0, extent);
                # unshift so query handles see true coordinates.
                unshifted = simplify_expr(b.add(coord, ctx.dst_dim_lo(j)))
                return rec(j + 1, pos, coords + [unshifted])

            return levels[j].emit_iteration(ctx.dst, j, parent_pos, coords, level_body)

        return rec(0, Const(0), [])

    # ------------------------------------------------------------------
    def _needs_dedup(self, k: int) -> bool:
        return needs_dedup(self.dst_format, self.ctx.canonical_names, k)

    def _emit_insertion(
        self,
        sizes: Sequence[Expr],
        group: Sequence[int],
        memo_in: Optional[Var] = None,
        memo_out: Optional[Var] = None,
    ) -> List[Stmt]:
        """One coordinate-insertion pass over the source for ``group``.

        ``memo_in`` (for groups after the first) supplies each nonzero's
        position in the previous group's last level; ``memo_out`` (for
        non-final groups) records this group's last-level positions for
        the next pass.  Both passes iterate the source identically, so a
        running source index keeps the memo entries aligned.
        """
        ctx = self.ctx
        emitter = SourceLoopEmitter(ctx)
        counters = CounterPlan(
            ctx, self.dst_format.remap, self.options.force_counter_arrays
        )
        out: List[Stmt] = list(counters.init_stmts())

        # dedup lookup tables (Section 6.2): BCSR's block map, or the
        # fiber map of CSF's middle level
        dedup_tables: Dict[int, Var] = {}
        for k in group:
            if self._needs_dedup(k):
                table = Var(ctx.ng.fresh(f"B{k + 1}_lookup"))
                parent_size = sizes[k - 1] if k > 0 else Const(1)
                table_size = simplify_expr(
                    b.mul(parent_size, ctx.dst_dim_extent(k))
                )
                out.append(Alloc(table, table_size, "int64", "empty"))
                out.append(ExprStmt(b.call("fill", table, -1)))
                dedup_tables[k] = table

        src_index: Optional[Var] = None
        if memo_in is not None or memo_out is not None:
            src_index = Var(ctx.ng.fresh("src_idx"))
            out.append(Assign(src_index, Const(0)))

        is_final = group[-1] == self.dst_format.nlevels - 1
        vals_out = ctx.dst_vals() if is_final else None
        src_vals = ctx.src_vals() if is_final else None

        def body(canonical: List[Expr], leaf_pos: Expr, level_coords) -> Stmt:
            fetch_stmts, counter_env = counters.fetch(canonical)
            lowered = lower_remap(
                self.dst_format.remap,
                dict(zip(ctx.canonical_names, canonical)),
                self.dst_format.param_exprs(),
                counter_env,
                ctx.ng,
            )
            inner: List[Stmt] = fetch_stmts + lowered.prelude
            coords = lowered.coord_exprs
            parent_pos: Expr = (
                Const(0) if memo_in is None else Load(memo_in, src_index)
            )
            for k in group:
                level = self.dst_format.levels[k]
                pos_stmts, pos = level.emit_pos(ctx.dst, k, parent_pos, coords)
                if not isinstance(pos, (Var, Const)):
                    # bind computed positions once (Figure 6b's pB2)
                    pos_var = Var(ctx.ng.fresh(f"pB{k + 1}"))
                    pos_stmts = list(pos_stmts) + [Assign(pos_var, pos)]
                    pos = pos_var
                if k in dedup_tables:
                    index = simplify_expr(
                        b.add(
                            b.mul(parent_pos, ctx.dst_dim_extent(k)),
                            b.sub(coords[k], ctx.dst_dim_lo(k)),
                        )
                    )
                    if not (pos_stmts and isinstance(pos, Var)):
                        raise PlanError(
                            f"level {k} cannot combine dedup with computed positions"
                        )
                    inner.append(Assign(pos, Load(dedup_tables[k], index)))
                    first_insert = pos_stmts + [
                        Store(dedup_tables[k], index, pos)
                    ] + level.emit_insert_coord(ctx.dst, k, pos, coords)
                    inner.append(If(b.lt(pos, 0), b.block(first_insert)))
                else:
                    inner.extend(pos_stmts)
                    inner.extend(level.emit_insert_coord(ctx.dst, k, pos, coords))
                parent_pos = pos
            if vals_out is not None:
                inner.append(
                    Store(vals_out, parent_pos, self._value_expr(src_vals, leaf_pos))
                )
            if memo_out is not None:
                inner.append(Store(memo_out, src_index, parent_pos))
            if src_index is not None:
                inner.append(AugAssign(src_index, "+", Const(1)))
            return b.block(inner)

        out.append(
            emitter.emit(
                body,
                level_prologue=counters.level_prologues(),
                skip_zeros=self.options.skip_src_zeros,
            )
        )
        return out
