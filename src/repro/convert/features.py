"""Cheap structural features of a stored tensor, used by the router.

The cost of a conversion is data-dependent: the chunked runtime has a
sorted-run fast path, and scipy's COO compressors canonicalize (sort
within rows) so they are only bit-identical to the generated kernels
when the coordinate stream is already sorted.  :func:`sample_features`
computes a tiny vector of such facts with vectorized numpy passes —
O(nnz) but a few milliseconds even at 10M entries — and memoizes it on
the tensor instance so planning, runtime predicate rechecks, and
repeated conversions of the same tensor pay the cost once.

``sortedness`` is exact, not sampled: a converter predicate like
``features.sortedness >= 1.0`` guards *bit-identity*, and a sampled
check could admit a converter on a stream whose unsampled tail is out
of order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "StructuralFeatures",
    "default_features",
    "sample_features",
]

_CACHE_ATTR = "_repro_feature_cache"


@dataclass(frozen=True)
class StructuralFeatures:
    """Structural facts about one stored tensor.

    ``nnz`` — stored components (including padding zeros).
    ``sortedness`` — exact fraction of adjacent stored components that
    are in nondecreasing lexicographic coordinate order (pos-array
    segment boundaries reset the comparison, so a CSR tensor with
    ordered rows scores 1.0).  1.0 for empty/singleton streams.
    ``density`` — nnz over the product of the canonical dimensions.
    ``row_skew`` — max-over-mean of per-slice component counts under
    the outermost partition (1.0 when perfectly balanced or unknown).
    """

    nnz: int
    sortedness: float
    density: float
    row_skew: float

    def key(self) -> Tuple:
        """Quantized form for route-cache keys: coarse buckets so jitter
        in the raw numbers cannot fragment the cache, but the facts that
        change converter admission/cost (is the stream fully sorted, how
        sorted, how skewed) still distinguish entries."""
        skew = max(self.row_skew, 1.0)
        return (
            self.sortedness >= 1.0,
            int(self.sortedness * 8),
            min(int(skew).bit_length(), 8),
        )

    def to_dict(self) -> dict:
        return {
            "nnz": int(self.nnz),
            "sortedness": float(self.sortedness),
            "density": float(self.density),
            "row_skew": float(self.row_skew),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StructuralFeatures":
        return cls(
            nnz=int(data["nnz"]),
            sortedness=float(data["sortedness"]),
            density=float(data["density"]),
            row_skew=float(data["row_skew"]),
        )

    def describe(self) -> str:
        return (
            f"nnz={self.nnz} sortedness={self.sortedness:.3f} "
            f"density={self.density:.2e} row_skew={self.row_skew:.2f}"
        )


def default_features(nnz: int) -> StructuralFeatures:
    """Optimistic features for planning without a tensor in hand
    (``engine.plan(src, dst, nnz=...)``): a sorted, balanced stream.
    Predicated converters admitted on this basis are re-checked against
    the actual tensor at execution time and fall back to the generated
    kernel when the real stream disagrees."""
    return StructuralFeatures(
        nnz=int(nnz), sortedness=1.0, density=0.0, row_skew=1.0
    )


def _leaf_streams(tensor) -> list:
    """Coordinate arrays aligned with the stored-component stream, in
    level order — together they spell each component's coordinates."""
    nnz = tensor.nnz_stored
    streams = []
    for (level, name), arr in sorted(tensor.arrays.items()):
        if name == "crd" and len(arr) == nnz:
            streams.append(arr)
    return streams


def _segment_resets(tensor, nnz: int) -> Optional[np.ndarray]:
    """Interior boundaries of the finest pos partition of the stream.

    Adjacent components on either side of a boundary belong to
    different parent slices, so their coordinate comparison resets.
    """
    best = None
    for (level, name), arr in sorted(tensor.arrays.items()):
        if name == "pos" and len(arr) >= 2 and int(arr[-1]) == nnz:
            best = arr  # keep the innermost (deepest level) partition
    if best is None:
        return None
    interior = np.asarray(best[1:-1], dtype=np.int64)
    interior = interior[(interior > 0) & (interior < nnz)]
    return interior if len(interior) else None


def _sortedness(tensor, nnz: int) -> float:
    streams = _leaf_streams(tensor)
    if nnz < 2 or not streams:
        return 1.0
    # Lexicographic adjacent-pair comparison across the streams: the
    # first stream where a pair differs decides its order.
    decided = np.zeros(nnz - 1, dtype=bool)
    in_order = np.ones(nnz - 1, dtype=bool)
    invalid = np.zeros(nnz, dtype=bool)
    for crd in streams:
        crd = np.asarray(crd)
        delta = np.diff(crd)
        fresh = (~decided) & (delta != 0)
        in_order[fresh] = delta[fresh] > 0
        decided |= fresh
        invalid |= crd < 0  # hashed empty slots carry -1 sentinels
    if invalid.any():
        # Pairs touching an empty slot are not a meaningful ordering
        # signal; count them as unsorted so predicates stay conservative.
        in_order &= ~(invalid[1:] | invalid[:-1])
    resets = _segment_resets(tensor, nnz)
    if resets is not None:
        in_order[resets - 1] = True
    return float(np.count_nonzero(in_order)) / (nnz - 1)


def _row_skew(tensor, nnz: int) -> float:
    if nnz == 0:
        return 0.0
    counts = None
    for (level, name), arr in sorted(tensor.arrays.items()):
        if name == "pos" and len(arr) > 2 and int(arr[-1]) == nnz:
            counts = np.diff(np.asarray(arr, dtype=np.int64))
            break
    if counts is None:
        streams = _leaf_streams(tensor)
        if streams:
            top = np.asarray(streams[0])
            top = top[top >= 0]
            if len(top):
                counts = np.bincount(top)
    if counts is None or not len(counts):
        return 1.0
    mean = counts.mean()
    if mean <= 0:
        return 1.0
    return float(counts.max() / mean)


def sample_features(tensor) -> StructuralFeatures:
    """Measure :class:`StructuralFeatures` for ``tensor``, memoized on
    the instance.  The memo is keyed by the identities of the tensor's
    component arrays, so rebinding different arrays invalidates it —
    but mutating an array *in place* does not; callers that rewrite
    coordinate arrays in place should drop ``_repro_feature_cache``.
    """
    token = (
        tuple(id(arr) for _, arr in sorted(tensor.arrays.items())),
        id(tensor.vals),
    )
    cached = getattr(tensor, _CACHE_ATTR, None)
    if cached is not None and cached[0] == token:
        return cached[1]
    nnz = tensor.nnz_stored
    size = 1
    for dim in tensor.dims:
        size *= int(dim)
    features = StructuralFeatures(
        nnz=nnz,
        sortedness=_sortedness(tensor, nnz),
        density=(nnz / size) if size else 0.0,
        row_skew=_row_skew(tensor, nnz),
    )
    try:
        setattr(tensor, _CACHE_ATTR, (token, features))
    except AttributeError:  # pragma: no cover - exotic tensor subclasses
        pass
    return features
