"""Shared code-generation context for one conversion routine.

The :class:`ConversionContext` owns naming, the parameter/output
registries, destination dimension bounds, and attribute query results.  It
exposes two facades matching the interfaces level formats expect:
:class:`SrcView` (iteration context over the source tensor, prefix ``A``)
and :class:`DstView` (assembly context for the result, prefix ``B``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cin.nodes import Key, KeyDim
from ..formats.format import Format, FormatError
from ..ir import builder as b
from ..ir.builder import NameGenerator
from ..ir.nodes import Const, Expr, Load, Var
from ..ir.simplify import simplify_expr


class PlanError(FormatError):
    """Raised when a conversion cannot be planned for the given formats."""


@dataclass
class QueryResultHandle:
    """Access to one computed attribute query result.

    Levels index results with destination coordinates via :meth:`at`
    (which shifts by each key dimension's lower bound and applies the
    ``max``/``min`` decoding of Section 5.2), or with a pre-shifted linear
    coordinate via :meth:`at_shifted` (used by the squeezed level's
    coordinate-order scan).
    """

    ctx: "ConversionContext"
    keys: Tuple[Key, ...]
    var: Var
    is_scalar: bool
    decode: Optional[Tuple[str, int]] = None

    def _decode(self, expr: Expr) -> Expr:
        if self.decode is None:
            return expr
        kind, dim = self.decode
        if kind == "max":
            # Q == Q' + s - 1 where s is the smallest coordinate.
            return simplify_expr(b.sub(b.add(expr, self.ctx.dst_dim_lo(dim)), 1))
        # Q == -Q' + t + 1 where t is the largest coordinate.
        return simplify_expr(b.add(b.sub(self.ctx.dst_dim_hi(dim), expr), 1))

    def raw_index(self, env: Dict[Key, Expr]) -> Expr:
        """Linearized (already shifted) index for the given key values."""
        index: Expr = Const(0)
        for key in self.keys:
            index = b.add(b.mul(index, self.ctx.key_extent(key)), env[key])
        return simplify_expr(index)

    def at(self, dst_coords: Sequence[Expr]) -> Expr:
        """Value for the subtensor at the given destination coordinates."""
        if self.is_scalar:
            return self._decode(self.var)
        env = {}
        for key in self.keys:
            if not isinstance(key, KeyDim):
                raise PlanError("level queries must be keyed by destination dims")
            env[key] = simplify_expr(
                b.sub(dst_coords[key.dim], self.ctx.dst_dim_lo(key.dim))
            )
        return self._decode(Load(self.var, self.raw_index(env)))

    def at_shifted(self, linear: Expr) -> Expr:
        """Value at a pre-shifted linear index (single-key results)."""
        if self.is_scalar or len(self.keys) != 1:
            raise PlanError("at_shifted requires a single-key array result")
        return self._decode(Load(self.var, linear))


class ConversionContext:
    """State shared by all code generators of one conversion."""

    def __init__(self, src_format: Format, dst_format: Format) -> None:
        if src_format.order != dst_format.order:
            raise PlanError(
                f"cannot convert order-{src_format.order} {src_format.name} "
                f"to order-{dst_format.order} {dst_format.name}"
            )
        if src_format.inverse is None:
            raise PlanError(f"{src_format.name} has no inverse mapping (not a source)")
        self.src_format = src_format
        self.dst_format = dst_format
        self.ng = NameGenerator()
        #: canonical index-variable names (the destination remap's source side)
        self.canonical_names: Tuple[str, ...] = dst_format.remap.src_vars
        self.order = src_format.order

        # symbolic canonical dimension sizes N1..Nr — always parameters
        self.dim_params: List[Var] = [Var(f"N{d + 1}") for d in range(self.order)]
        for var in self.dim_params:
            self.ng.reserve(var.name)

        # parameter/output registries: insertion-ordered
        self.src_params: Dict[Tuple[str, int, str], Var] = {}
        self.outputs: Dict[Tuple[str, int, str], Var] = {}

        self._src_intervals = src_format.dim_intervals()
        self._dst_intervals = dst_format.dim_intervals()

        self.queries: Dict[Tuple[int, str], QueryResultHandle] = {}
        self.scratch: Dict[object, Var] = {}

        self.src = SrcView(self)
        self.dst = DstView(self)

        # canonical var name of each source level coordinate (or None)
        from ..remap.ast import RVar

        inverse = src_format.inverse
        self.src_level_var: List[Optional[str]] = [None] * src_format.nlevels
        for d, coord in enumerate(inverse.dst_coords):
            if not coord.lets and isinstance(coord.expr, RVar):
                level = inverse.src_vars.index(coord.expr.name)
                self.src_level_var[level] = self.canonical_names[d]

    # -- parameters & outputs ------------------------------------------------
    def _register(self, registry, side: str, k: int, name: str) -> Var:
        key = (side, k, name)
        if key not in registry:
            prefix = "A" if side.startswith("src") else "B"
            suffix = name if name == "vals" else f"{k + 1}_{name}"
            var = Var(f"{prefix}_{suffix}" if name == "vals" else f"{prefix}{suffix}")
            self.ng.reserve(var.name)
            registry[key] = var
        return registry[key]

    def src_array(self, k: int, name: str) -> Var:
        return self._register(self.src_params, "src_array", k, name)

    def src_meta(self, k: int, name: str) -> Var:
        return self._register(self.src_params, "src_meta", k, name)

    def src_vals(self) -> Var:
        return self._register(self.src_params, "src_array", -1, "vals")

    def dst_array(self, k: int, name: str) -> Var:
        return self._register(self.outputs, "dst_array", k, name)

    def dst_meta(self, k: int, name: str) -> Var:
        return self._register(self.outputs, "dst_meta", k, name)

    def dst_vals(self) -> Var:
        return self._register(self.outputs, "dst_array", -1, "vals")

    def param_list(self) -> List[Tuple[Tuple[str, int, str], Var]]:
        """Function parameters: source arrays/meta then dimension sizes."""
        params = list(self.src_params.items())
        params += [
            (("dim", d, ""), var) for d, var in enumerate(self.dim_params)
        ]
        return params

    def output_list(self) -> List[Tuple[Tuple[str, int, str], Var]]:
        return list(self.outputs.items())

    # -- dimension bounds -----------------------------------------------------
    def canonical_dim_size(self, var_name: str) -> Var:
        """Size of the canonical dimension indexed by ``var_name``."""
        return self.dim_params[self.canonical_names.index(var_name)]

    def _interval(self, intervals, k: int, what: str, side: str):
        interval = intervals[k]
        value = getattr(interval, what) if what != "extent" else interval.extent()
        if value is None:
            raise PlanError(
                f"{side} dimension {k} has no static {what} (data-dependent); "
                "only levels that size themselves from attribute queries may "
                "store it"
            )
        return value

    def dst_dim_lo(self, k: int) -> Expr:
        return self._interval(self._dst_intervals, k, "lo", "destination")

    def dst_dim_hi(self, k: int) -> Expr:
        return self._interval(self._dst_intervals, k, "hi", "destination")

    def dst_dim_extent(self, k: int) -> Expr:
        return self._interval(self._dst_intervals, k, "extent", "destination")

    def src_dim_extent(self, k: int) -> Expr:
        return self._interval(self._src_intervals, k, "extent", "source")

    def key_extent(self, key: Key) -> Expr:
        """Extent of a query result key (dst dim or canonical src var)."""
        if isinstance(key, KeyDim):
            return self.dst_dim_extent(key.dim)
        return self.canonical_dim_size(key.var)

    def key_lo(self, key: Key) -> Expr:
        if isinstance(key, KeyDim):
            return self.dst_dim_lo(key.dim)
        return Const(0)

    # -- query registry ---------------------------------------------------------
    def register_query(
        self, level: int, label: str, handle: QueryResultHandle
    ) -> None:
        self.queries[(level, label)] = handle

    def query(self, level: int, label: str) -> QueryResultHandle:
        if (level, label) not in self.queries:
            raise PlanError(f"query {label!r} for level {level} was not computed")
        return self.queries[(level, label)]


class SrcView:
    """Iteration-context facade over the source tensor (prefix ``A``)."""

    def __init__(self, ctx: ConversionContext) -> None:
        self._ctx = ctx
        self.ng = ctx.ng

    def array(self, k: int, name: str) -> Var:
        return self._ctx.src_array(k, name)

    def meta(self, k: int, name: str) -> Var:
        return self._ctx.src_meta(k, name)

    def dim_size(self, k: int) -> Expr:
        return self._ctx.src_dim_extent(k)

    def coord_name(self, k: int) -> str:
        var = self._ctx.src_level_var[k]
        return var if var is not None else f"c{k + 1}"


class DstView:
    """Assembly-context facade for the result tensor (prefix ``B``).

    Also implements the iteration-context interface so already-assembled
    result levels can be traversed (edge-insertion parent loops).
    """

    def __init__(self, ctx: ConversionContext) -> None:
        self._ctx = ctx
        self.ng = ctx.ng
        self.scratch = ctx.scratch
        self._zero_init = ctx.dst_format.padded

    def array(self, k: int, name: str) -> Var:
        return self._ctx.dst_array(k, name)

    def meta(self, k: int, name: str) -> Var:
        return self._ctx.dst_meta(k, name)

    def meta_var(self, k: int, name: str) -> Var:
        return self._ctx.dst_meta(k, name)

    def dim_lo(self, k: int) -> Expr:
        return self._ctx.dst_dim_lo(k)

    def dim_hi(self, k: int) -> Expr:
        return self._ctx.dst_dim_hi(k)

    def dim_extent(self, k: int) -> Expr:
        return self._ctx.dst_dim_extent(k)

    def dim_size(self, k: int) -> Expr:
        return self._ctx.dst_dim_extent(k)

    def coord_name(self, k: int) -> str:
        return f"i{k + 1}"

    def needs_zero_init(self, k: int) -> bool:
        return self._zero_init

    def query(self, k: int, label: str) -> QueryResultHandle:
        return self._ctx.query(k, label)
