"""Competing converters: multiple registered implementations per edge.

The code generator gives every (src, dst) pair a scalar and (usually) a
vector lowering, and bridges cover bulk extractions — but they are not
necessarily the fastest implementation available on a given host.  This
module lets any callable compete for an edge::

    from repro.convert import register_converter

    def my_coo_to_csr(tensor, dst):          # returns a Tensor in dst
        ...

    register_converter("COO", "CSR", my_coo_to_csr,
                       filter=lambda f: f.sortedness >= 1.0,
                       weight=1.0, name="my-coo-csr")

Registered converters are keyed *structurally* (renamed twins share
them).  At planning time the router prices every admitted competitor —
the generated kernel, the bridge, and each registered converter whose
``filter`` accepts the tensor's :class:`~repro.convert.features.
StructuralFeatures` — and the cheapest ``cost * weight`` wins (ties
break on lower weight, then name, so selection is deterministic).  At
execution time the engine re-checks the winner's predicate against the
actual tensor and falls back to the generated kernel when it refuses,
so bit-identity never depends on a planning-time guess.

When scipy is importable, four scipy-delegated converters register
themselves for the matrix compression edges.  They are **predicated on
exact bit-identity**: scipy's COO compressors canonicalize (sort column
indices within each row), so they only compete when the coordinate
stream is already fully sorted; the CSR<->CSC transposes are stable
counting sorts that preserve stream order and explicit zeros, so they
compete unconditionally.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..formats.format import Format, FormatError
from ..formats.registry import FormatSpec, get_format
from ..storage.tensor import Tensor
from .features import StructuralFeatures
from .planner import structural_key

__all__ = [
    "Converter",
    "converter_named",
    "converters_for",
    "register_converter",
    "run_converter",
    "scipy_available",
    "unregister_converter",
]

#: Converter callables take ``(tensor, dst_format)`` and return a
#: :class:`Tensor` stored in ``dst_format`` (or a structural twin; the
#: runner retags).  Filters take :class:`StructuralFeatures` -> bool.
ConverterFunc = Callable[[Tensor, Format], Tensor]
ConverterFilter = Callable[[StructuralFeatures], bool]


@dataclass(frozen=True)
class Converter:
    """One registered implementation competing for a conversion edge.

    ``weight`` scales the cost model's estimate when ranking competitors
    (< 1 favours, > 1 penalizes); ``filter`` is an optional admission
    predicate over the tensor's structural features — a converter whose
    predicate refuses never runs, and the generated kernel takes over.
    """

    name: str
    src: Format
    dst: Format
    func: ConverterFunc = field(repr=False, compare=False)
    filter: Optional[ConverterFilter] = field(
        default=None, repr=False, compare=False
    )
    weight: float = 1.0

    def admits(self, features: Optional[StructuralFeatures]) -> bool:
        """Whether this converter may run for a tensor with ``features``
        (``None`` — e.g. planning without a tensor — admits predicated
        converters optimistically; execution re-checks)."""
        if self.filter is None or features is None:
            return True
        return bool(self.filter(features))


_LOCK = threading.Lock()
#: (structural src key, structural dst key) -> {name: Converter}
_CONVERTERS: Dict[Tuple, Dict[str, Converter]] = {}
#: bumped by every successful register/unregister; engines fold it into
#: their route-cache key so cached routes never outlive the registry
#: state they were planned against
_REGISTRY_VERSION = 0


def registry_version() -> int:
    """Monotonic counter advanced by each register/unregister call."""
    with _LOCK:
        return _REGISTRY_VERSION


def _pair_key(src: Format, dst: Format) -> Tuple:
    return (structural_key(src), structural_key(dst))


def register_converter(
    src: FormatSpec,
    dst: FormatSpec,
    func: ConverterFunc,
    *,
    filter: Optional[ConverterFilter] = None,
    weight: float = 1.0,
    name: Optional[str] = None,
) -> Converter:
    """Register ``func`` as a competing converter for ``src -> dst``.

    ``src``/``dst`` are :class:`Format` objects or registry spec strings
    (``"CSR"``, ``"BCSR4x4"``...).  ``func(tensor, dst_format)`` must
    return the converted tensor **bit-identical to the direct scalar
    conversion** for every tensor its ``filter`` admits — the router
    freely substitutes it for the generated kernel.  Returns the
    :class:`Converter` record; registering a second converter under the
    same ``name`` for the same structural pair raises ``ValueError``
    (unregister the old one first).
    """
    src = get_format(src)
    dst = get_format(dst)
    if not callable(func):
        raise TypeError(f"converter func must be callable, got {func!r}")
    if filter is not None and not callable(filter):
        raise TypeError(f"converter filter must be callable, got {filter!r}")
    try:
        weight = float(weight)
    except (TypeError, ValueError):
        raise ValueError(f"converter weight must be a number, got {weight!r}")
    if not weight > 0.0:
        raise ValueError(f"converter weight must be > 0, got {weight!r}")
    label = name or getattr(func, "__name__", None) or "converter"
    converter = Converter(
        name=str(label), src=src, dst=dst, func=func, filter=filter,
        weight=weight,
    )
    key = _pair_key(src, dst)
    with _LOCK:
        table = _CONVERTERS.setdefault(key, {})
        if converter.name in table:
            raise ValueError(
                f"a converter named {converter.name!r} is already "
                f"registered for {src.name} -> {dst.name}"
            )
        table[converter.name] = converter
        global _REGISTRY_VERSION
        _REGISTRY_VERSION += 1
    return converter


def unregister_converter(src: FormatSpec, dst: FormatSpec, name: str) -> bool:
    """Remove the converter ``name`` from ``src -> dst``; True if it
    existed.  Replayed plans pinned to a removed converter fail loudly."""
    key = _pair_key(get_format(src), get_format(dst))
    with _LOCK:
        table = _CONVERTERS.get(key)
        if not table or name not in table:
            return False
        del table[name]
        if not table:
            del _CONVERTERS[key]
        global _REGISTRY_VERSION
        _REGISTRY_VERSION += 1
        return True


def converters_for(src: FormatSpec, dst: FormatSpec) -> Tuple[Converter, ...]:
    """The registered competitors for ``src -> dst``, sorted by name."""
    key = _pair_key(get_format(src), get_format(dst))
    with _LOCK:
        table = _CONVERTERS.get(key, {})
        return tuple(table[name] for name in sorted(table))


def converter_named(
    src: FormatSpec, dst: FormatSpec, name: str
) -> Optional[Converter]:
    """Look up one registered converter by name, or ``None``."""
    key = _pair_key(get_format(src), get_format(dst))
    with _LOCK:
        table = _CONVERTERS.get(key, {})
        return table.get(name)


def run_converter(converter: Converter, tensor: Tensor, dst: Format) -> Tensor:
    """Execute ``converter`` and retag the result with the exact ``dst``
    the caller asked for (structural twins share registrations)."""
    out = converter.func(tensor, dst)
    if not isinstance(out, Tensor):
        raise FormatError(
            f"converter {converter.name!r} returned {type(out).__name__}, "
            "not a Tensor"
        )
    if out.format is not dst:
        if structural_key(out.format) != structural_key(dst):
            raise FormatError(
                f"converter {converter.name!r} returned a "
                f"{out.format.name} tensor, which is not structurally "
                f"{dst.name}"
            )
        out = Tensor(dst, out.dims, out.arrays, out.metadata, out.vals)
    return out


# ----------------------------------------------------------------------
# scipy-delegated builtins (registered only when scipy is importable)


def scipy_available() -> bool:
    """Whether ``scipy.sparse`` imports on this host."""
    try:
        import scipy.sparse  # noqa: F401
    except ImportError:
        return False
    return True


def _sparse():
    import scipy.sparse

    return scipy.sparse


def _sparsetools():
    """scipy's compiled conversion kernels, or ``None`` to use the
    public matrix API.

    The public constructors downcast int64 indices to int32 (and the
    generated kernels use int64 throughout), so delegating through
    ``coo_matrix(...).tocsr()`` pays a copy on the way in and a cast on
    the way out — ~40% overhead at 1M nnz.  The underlying kernels are
    dtype-templated and fill caller-allocated arrays, so calling them
    directly stays int64 end to end; the attribute check degrades to the
    public path on scipy versions that reshuffle the private module.
    """
    try:
        from scipy.sparse import _sparsetools
    except ImportError:  # pragma: no cover - very old scipy layouts
        return None
    if hasattr(_sparsetools, "coo_tocsr") and hasattr(
        _sparsetools, "csr_tocsc"
    ):
        return _sparsetools
    return None  # pragma: no cover - very old scipy layouts


def _as_compressed_tensor(matrix, dst: Format, dims) -> Tensor:
    """Wrap a scipy CSR/CSC matrix as a (dense, compressed) tensor.

    scipy emits int32 index arrays on most hosts; the generated kernels
    use int64 throughout, so cast for bit-identity of dtypes too.
    """
    arrays = {
        (1, "pos"): np.asarray(matrix.indptr, dtype=np.int64),
        (1, "crd"): np.asarray(matrix.indices, dtype=np.int64),
    }
    vals = np.asarray(matrix.data, dtype=np.float64)
    return Tensor(dst, dims, arrays, {}, vals)


def _compress_coo(tensor: Tensor, dst: Format, by_column: bool) -> Tensor:
    """COO -> CSR/CSC through scipy's compiled counting sort.

    ``coo_tocsr`` is stable (within-slice stream order survives), so on
    the fully sorted streams the admission predicate requires, the
    result is bit-identical to the generated kernels.
    """
    rows = np.ascontiguousarray(tensor.array(0, "crd"), dtype=np.int64)
    cols = np.ascontiguousarray(tensor.array(1, "crd"), dtype=np.int64)
    vals = np.ascontiguousarray(tensor.vals, dtype=np.float64)
    if by_column:
        rows, cols = cols, rows
    outer = tensor.dims[1] if by_column else tensor.dims[0]
    inner = tensor.dims[0] if by_column else tensor.dims[1]
    tools = _sparsetools()
    if tools is not None:
        nnz = len(vals)
        pos = np.zeros(outer + 1, dtype=np.int64)
        crd = np.empty(nnz, dtype=np.int64)
        out = np.empty(nnz, dtype=np.float64)
        tools.coo_tocsr(outer, inner, nnz, rows, cols, vals, pos, crd, out)
        return Tensor(
            dst, tensor.dims, {(1, "pos"): pos, (1, "crd"): crd}, {}, out
        )
    sparse = _sparse()
    coo = sparse.coo_matrix((vals, (rows, cols)), shape=(outer, inner))
    return _as_compressed_tensor(coo.tocsr(), dst, tensor.dims)


def _transpose_compressed(tensor: Tensor, dst: Format, from_rows: bool) -> Tensor:
    """CSR <-> CSC through scipy's compiled stable counting sort."""
    pos = np.ascontiguousarray(tensor.array(1, "pos"), dtype=np.int64)
    crd = np.ascontiguousarray(tensor.array(1, "crd"), dtype=np.int64)
    vals = np.ascontiguousarray(tensor.vals, dtype=np.float64)
    # csr_tocsc is symmetric: a CSC is the CSR of the transpose, so the
    # same kernel handles both directions with the dims swapped.
    outer = tensor.dims[0] if from_rows else tensor.dims[1]
    inner = tensor.dims[1] if from_rows else tensor.dims[0]
    tools = _sparsetools()
    if tools is not None:
        nnz = len(vals)
        dst_pos = np.zeros(inner + 1, dtype=np.int64)
        dst_crd = np.empty(nnz, dtype=np.int64)
        out = np.empty(nnz, dtype=np.float64)
        tools.csr_tocsc(outer, inner, pos, crd, vals, dst_pos, dst_crd, out)
        return Tensor(
            dst, tensor.dims,
            {(1, "pos"): dst_pos, (1, "crd"): dst_crd}, {}, out,
        )
    sparse = _sparse()
    matrix = sparse.csr_matrix((vals, crd, pos), shape=(outer, inner))
    return _as_compressed_tensor(matrix.tocsc(), dst, tensor.dims)


def _scipy_coo_to_csr(tensor: Tensor, dst: Format) -> Tensor:
    return _compress_coo(tensor, dst, by_column=False)


def _scipy_coo_to_csc(tensor: Tensor, dst: Format) -> Tensor:
    return _compress_coo(tensor, dst, by_column=True)


def _scipy_csr_to_csc(tensor: Tensor, dst: Format) -> Tensor:
    return _transpose_compressed(tensor, dst, from_rows=True)


def _scipy_csc_to_csr(tensor: Tensor, dst: Format) -> Tensor:
    return _transpose_compressed(tensor, dst, from_rows=False)


def _stream_is_sorted(features: StructuralFeatures) -> bool:
    # scipy's COO compressors canonicalize (sort within rows); they are
    # bit-identical to the generated kernels only when the coordinate
    # stream is already *exactly* sorted.
    return features.sortedness >= 1.0


def _register_builtin_converters() -> None:
    if not scipy_available():
        return
    from ..formats.library import COO, CSC, CSR

    register_converter(
        COO, CSR, _scipy_coo_to_csr,
        filter=_stream_is_sorted, name="scipy-coo-csr",
    )
    register_converter(
        COO, CSC, _scipy_coo_to_csc,
        filter=_stream_is_sorted, name="scipy-coo-csc",
    )
    # CSR<->CSC in scipy are stable counting sorts: stream order and
    # explicit zeros survive, so no structural predicate is needed.
    register_converter(CSR, CSC, _scipy_csr_to_csc, name="scipy-csr-csc")
    register_converter(CSC, CSR, _scipy_csc_to_csr, name="scipy-csc-csr")


_register_builtin_converters()
