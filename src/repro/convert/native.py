"""The native (compiled C) conversion backend's planner seam.

Thin glue between the planner and :mod:`repro.ir.native`: plan the
scalar IR for a pair, print it as C, and wrap the bound kernel in the
engine's converter protocol.  Planning (IR + C emission) is pure and
toolchain-free — ``repro codegen --backend native`` and plan-JSON
``sources()`` work on hosts with no compiler; only the engine's build
step needs one.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from ..formats.format import Format
from ..ir.native import NativeUnsupported, emit_c
from .engine import CompiledConversion
from .planner import (
    ConversionPlanner,
    GeneratedConversion,
    PlanOptions,
    structural_key,
)

#: Memoized native plans (or the NativeUnsupported verdict) per
#: (structural pair, options key) — capability checks run on every
#: route/convert call, and planning re-runs the full scalar planner.
_NATIVE_PLAN_CACHE: Dict[Tuple, object] = {}
_NATIVE_PLAN_LOCK = threading.Lock()


def _plan_key(
    src_format: Format, dst_format: Format, options: PlanOptions
) -> Tuple:
    return (
        structural_key(src_format),
        structural_key(dst_format),
        options.key(),
    )


def plan_native(
    src_format: Format,
    dst_format: Format,
    options: Optional[PlanOptions] = None,
) -> GeneratedConversion:
    """Plan one conversion and lower it to C.

    Returns a :class:`GeneratedConversion` whose ``source`` is a C
    translation unit and whose ``func`` is ``None`` (binding happens in
    the engine after the build).  Raises :class:`NativeUnsupported` when
    the pair's scalar plan uses a construct the C emitter cannot
    translate.  Memoized per (structural pair, options).
    """
    options = options or PlanOptions()
    key = _plan_key(src_format, dst_format, options)
    with _NATIVE_PLAN_LOCK:
        cached = _NATIVE_PLAN_CACHE.get(key)
    if cached is None:
        scalar = ConversionPlanner(src_format, dst_format, options).plan()
        try:
            source = emit_c(scalar.func, scalar.params, scalar.outputs)
        except NativeUnsupported as exc:
            cached = NativeUnsupported(str(exc))
        else:
            cached = GeneratedConversion(
                func=None,
                source=source,
                func_name=scalar.func_name,
                params=scalar.params,
                outputs=scalar.outputs,
                src_format=src_format,
                dst_format=dst_format,
                backend="native",
            )
        with _NATIVE_PLAN_LOCK:
            cached = _NATIVE_PLAN_CACHE.setdefault(key, cached)
    if isinstance(cached, NativeUnsupported):
        raise NativeUnsupported(str(cached))
    generated = cached
    if (
        generated.src_format is not src_format
        or generated.dst_format is not dst_format
    ):
        # structural twins share the plan; rebind the display formats
        generated = GeneratedConversion(
            func=None,
            source=generated.source,
            func_name=generated.func_name,
            params=generated.params,
            outputs=generated.outputs,
            src_format=src_format,
            dst_format=dst_format,
            backend="native",
        )
    return generated


def native_capable(
    src_format: Format,
    dst_format: Format,
    options: Optional[PlanOptions] = None,
) -> bool:
    """True when the pair's scalar plan lowers to C (shares the plan memo
    with :func:`plan_native`, so a positive check does the planning work
    exactly once)."""
    try:
        plan_native(src_format, dst_format, options)
    except NativeUnsupported:
        return False
    return True


class NativeConversion(CompiledConversion):
    """A bound native kernel behind the engine's converter protocol.

    ``self.func`` is the ctypes wrapper from
    :func:`repro.ir.native.load_kernel`; it accepts the same positional
    arguments as the generated Python kernels plus an ``n_workers``
    keyword that sets the OpenMP team size (``0`` leaves the runtime
    default).
    """

    def __call__(self, tensor, workers: int = 0):
        self._check_source(tensor)
        return self._build_result(
            tensor, self.func(*self.arguments(tensor), n_workers=workers)
        )
