"""Randomized differential verification of generated conversion routines.

``verify_conversion`` runs a generated routine against the host-side
oracle (reference builders + interpreted coordinate-hierarchy traversal)
on randomized inputs, including the adversarial shapes that break sparse
code in practice: empty tensors, single rows/columns, dense blocks,
duplicate-free random scatter.  Used by the test suite and exposed via
``python -m repro verify``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..formats.format import Format, FormatError
from ..storage.build import reference_build
from .api import make_converter
from .planner import PlanOptions


class VerificationError(AssertionError):
    """Raised when a generated routine disagrees with the oracle."""


def _random_problem(rng: random.Random, order: int, max_dim: int):
    dims = tuple(rng.randint(1, max_dim) for _ in range(order))
    capacity = 1
    for d in dims:
        capacity *= d
    style = rng.random()
    if style < 0.1:
        count = 0
    elif style < 0.25:
        count = capacity  # fully dense
    else:
        count = rng.randint(1, capacity)
    cells = rng.sample(
        [tuple(idx) for idx in _all_indices(dims)], min(count, capacity)
    )
    vals = [round(rng.uniform(0.5, 9.5), 4) for _ in cells]
    return dims, cells, vals


def _all_indices(dims) -> List[Tuple[int, ...]]:
    out = [()]
    for d in dims:
        out = [idx + (x,) for idx in out for x in range(d)]
    return out


def verify_conversion(
    src_format: Format,
    dst_format: Format,
    trials: int = 25,
    max_dim: int = 10,
    seed: int = 0,
    options: Optional[PlanOptions] = None,
    backend: str = "auto",
) -> int:
    """Differentially test ``src_format`` → ``dst_format``.

    Returns the number of inputs checked; raises
    :class:`VerificationError` with a reproducer description on the first
    disagreement.  Inputs incompatible with the source format (e.g.
    non-lower-triangular data for skyline) are skipped.  ``backend``
    selects the lowering under test (``"scalar"``, ``"vector"``, or
    ``"auto"``).
    """
    converter = make_converter(src_format, dst_format, options, backend)
    rng = random.Random(seed)
    checked = 0
    for trial in range(trials):
        dims, cells, vals = _random_problem(rng, src_format.order, max_dim)
        try:
            tensor = reference_build(src_format, dims, cells, vals)
        except FormatError:
            continue  # input not representable in the source format
        want = dict(zip(cells, vals))
        try:
            out = converter(tensor)
            out.check()
            got = out.to_coo()
        except Exception as exc:  # noqa: BLE001 - reported with reproducer
            raise VerificationError(
                f"{src_format.name}->{dst_format.name} crashed on trial "
                f"{trial}: dims={dims} cells={cells}: {exc}"
            ) from exc
        if got != want:
            missing = {c: v for c, v in want.items() if got.get(c) != v}
            extra = {c: v for c, v in got.items() if c not in want}
            raise VerificationError(
                f"{src_format.name}->{dst_format.name} wrong on trial {trial}: "
                f"dims={dims}, {len(missing)} missing/wrong {sorted(missing)[:4]}, "
                f"{len(extra)} extra {sorted(extra)[:4]}"
            )
        checked += 1
    return checked


def verify_all_pairs(
    formats: List[Format],
    trials: int = 10,
    max_dim: int = 8,
    seed: int = 0,
    backend: str = "auto",
):
    """Verify every ordered pair; returns [(src, dst, inputs checked)]."""
    report = []
    for src in formats:
        for dst in formats:
            if src.order != dst.order:
                continue
            checked = verify_conversion(src, dst, trials, max_dim, seed, backend=backend)
            report.append((src.name, dst.name, checked))
    return report
