"""Conversion engine: planner, code generation, public API (Sections 3, 6)."""

from .api import CompiledConversion, convert, generated_source, make_converter, plan
from .chunked import ChunkedConversion, chunkable, plan_chunked
from .context import ConversionContext, PlanError, QueryResultHandle
from .engine import ConversionEngine, default_engine, set_default_engine
from .plan import PLAN_SCHEMA, CompiledPlan, ConversionPlan
from .planner import (
    BACKENDS,
    ConversionPlanner,
    GeneratedConversion,
    PlanOptions,
    plan_conversion,
    resolve_backend,
)
from .router import (
    ConversionRoute,
    CostModel,
    Hop,
    bridge_for,
    find_route,
    rebind_endpoints,
    register_bridge,
)
from .verify import VerificationError, verify_all_pairs, verify_conversion

__all__ = [
    "BACKENDS",
    "PLAN_SCHEMA",
    "ChunkedConversion",
    "CompiledConversion",
    "CompiledPlan",
    "ConversionContext",
    "ConversionEngine",
    "ConversionPlan",
    "ConversionPlanner",
    "ConversionRoute",
    "CostModel",
    "GeneratedConversion",
    "Hop",
    "PlanError",
    "PlanOptions",
    "QueryResultHandle",
    "VerificationError",
    "bridge_for",
    "chunkable",
    "convert",
    "default_engine",
    "find_route",
    "generated_source",
    "make_converter",
    "plan",
    "plan_chunked",
    "plan_conversion",
    "rebind_endpoints",
    "register_bridge",
    "resolve_backend",
    "set_default_engine",
    "verify_all_pairs",
    "verify_conversion",
]
