"""Conversion engine: planner, code generation, public API (Sections 3, 6)."""

from .api import CompiledConversion, convert, generated_source, make_converter
from .context import ConversionContext, PlanError, QueryResultHandle
from .planner import (
    BACKENDS,
    ConversionPlanner,
    GeneratedConversion,
    PlanOptions,
    plan_conversion,
    resolve_backend,
)
from .verify import VerificationError, verify_all_pairs, verify_conversion

__all__ = [
    "BACKENDS",
    "CompiledConversion",
    "ConversionContext",
    "ConversionPlanner",
    "GeneratedConversion",
    "PlanError",
    "PlanOptions",
    "QueryResultHandle",
    "VerificationError",
    "plan_conversion",
    "resolve_backend",
    "verify_all_pairs",
    "verify_conversion",
    "convert",
    "generated_source",
    "make_converter",
]
