"""Conversion engine: planner, code generation, public API (Sections 3, 6)."""

from .api import CompiledConversion, convert, generated_source, make_converter
from .context import ConversionContext, PlanError, QueryResultHandle
from .planner import ConversionPlanner, GeneratedConversion, PlanOptions
from .verify import VerificationError, verify_all_pairs, verify_conversion

__all__ = [
    "CompiledConversion",
    "ConversionContext",
    "ConversionPlanner",
    "GeneratedConversion",
    "PlanError",
    "PlanOptions",
    "QueryResultHandle",
    "VerificationError",
    "verify_all_pairs",
    "verify_conversion",
    "convert",
    "generated_source",
    "make_converter",
]
