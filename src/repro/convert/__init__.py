"""Conversion engine: planner, code generation, public API (Sections 3, 6)."""

from .api import CompiledConversion, convert, generated_source, make_converter, plan
from .chunked import ChunkedConversion, chunkable, plan_chunked
from .context import ConversionContext, PlanError, QueryResultHandle
from .converters import (
    Converter,
    converter_named,
    converters_for,
    register_converter,
    run_converter,
    scipy_available,
    unregister_converter,
)
from .engine import ConversionEngine, default_engine, set_default_engine
from .features import StructuralFeatures, default_features, sample_features
from .plan import PLAN_SCHEMA, CompiledPlan, ConversionPlan
from .planner import (
    BACKENDS,
    ConversionPlanner,
    GeneratedConversion,
    PlanOptions,
    plan_conversion,
    resolve_backend,
)
from .request import ConversionRequest
from .router import (
    ConversionRoute,
    CostModel,
    EdgeCandidate,
    Hop,
    bridge_for,
    edge_candidates,
    find_route,
    longest_cached_prefix,
    rebind_endpoints,
    register_bridge,
    route_checkpoints,
)
from .streamed import (
    StreamedConversion,
    StreamPlanError,
    plan_streamed,
    streamable,
)
from .verify import VerificationError, verify_all_pairs, verify_conversion

__all__ = [
    "BACKENDS",
    "PLAN_SCHEMA",
    "ChunkedConversion",
    "CompiledConversion",
    "CompiledPlan",
    "ConversionContext",
    "ConversionEngine",
    "ConversionPlan",
    "ConversionPlanner",
    "ConversionRequest",
    "ConversionRoute",
    "Converter",
    "CostModel",
    "EdgeCandidate",
    "GeneratedConversion",
    "Hop",
    "PlanError",
    "PlanOptions",
    "QueryResultHandle",
    "StreamPlanError",
    "StreamedConversion",
    "StructuralFeatures",
    "VerificationError",
    "bridge_for",
    "chunkable",
    "convert",
    "converter_named",
    "converters_for",
    "default_engine",
    "default_features",
    "edge_candidates",
    "find_route",
    "generated_source",
    "longest_cached_prefix",
    "make_converter",
    "plan",
    "plan_chunked",
    "plan_conversion",
    "plan_streamed",
    "rebind_endpoints",
    "register_bridge",
    "register_converter",
    "resolve_backend",
    "route_checkpoints",
    "streamable",
    "run_converter",
    "sample_features",
    "scipy_available",
    "set_default_engine",
    "unregister_converter",
    "verify_all_pairs",
    "verify_conversion",
]
