"""Multi-hop conversion routing over the format graph.

Direct conversions between some pairs only lower to the scalar backend —
today that is every pair touching a hashed level.  Rather than silently
running a per-nonzero Python loop, the engine can *route* the conversion
through an intermediate format whose hops are bulk numpy operations::

    HASH -> COO -> CSR        # bridge extraction, then a vectorized hop
    ^^^^^^^^^^^    ^^^^^^
    bulk mask/gather over     generated vector
    the hash table            conversion routine

Routing is cost-driven: :class:`CostModel` holds per-nonzero throughput
estimates for each hop kind, seeded from the ``BENCH_*.json`` backend
reports the CI smoke publishes (see :meth:`CostModel.from_bench_report`).
:func:`find_route` runs Dijkstra over the registered formats and returns a
:class:`ConversionRoute` whose ``explain()`` transcript shows the decision.

Routed execution is **bit-identical** to the direct scalar conversion:
bridge extractions replay the scalar loop's iteration order exactly, and
the vector backend is bit-identical to scalar by construction; the test
suite asserts equality for every multi-hop pair.
"""

from __future__ import annotations

import heapq
import json
import os
import threading
import warnings
from dataclasses import dataclass, field, replace
from statistics import median
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..formats.format import Format, FormatError
from ..formats.registry import FormatSpec, available_formats, get_format
from ..storage.tensor import Tensor
from .converters import converters_for
from .features import StructuralFeatures
from .planner import PlanOptions, resolve_backend, structural_key

#: Hop kinds, in the cost model's vocabulary.  ``scalar``, ``vector``
#: and ``native`` are the generated-code backends (``native`` is the
#: compiled-C backend); ``bridge`` is a registered bulk extraction
#: (below); ``external`` is a registered competing converter (see
#: :mod:`repro.convert.converters`) — its cost-table rows are keyed
#: ``"external:<name>"`` per converter.
HOP_KINDS = ("scalar", "vector", "native", "bridge", "external")

#: Reference nonzero count used when no tensor is at hand (``engine.route``
#: without ``nnz``): large enough that throughput, not per-hop overhead,
#: dominates the decision.
DEFAULT_ROUTE_NNZ = 100_000


#: Provenance labels of a cost estimate.
SEEDED = "seeded"
MEASURED = "measured"

#: Schema version of persisted cost-model files (``CostModel.save``).
COST_MODEL_SCHEMA = 1

#: EWMA smoothing factor for measured per-nonzero rates: each observation
#: contributes a quarter, so one outlier conversion cannot flip a route.
EWMA_ALPHA = 0.25

#: Relative drift of a measured rate that republishes it (bumping
#: :attr:`CostModel.version` so engines drop their cached routes).
PUBLISH_DRIFT = 0.25


@dataclass
class CostModel:
    """Per-hop conversion cost estimates, linear in the stored size.

    The *seeded* defaults come from the repository's CI
    ``BENCH_smoke.json`` reports (scalar loops run ~1.5 µs per stored
    component on the GitHub runners; the vector backend ~40 ns at 100k+
    nnz; the chunked executor ~20 ns at 1M+ nnz — sorted-run detection
    plus thread overlap).  ``hop_overhead`` charges each hop's fixed cost
    (dispatch, array allocation, tensor marshalling) so short routes win
    ties and tiny tensors stay direct.

    On top of the seeds the model keeps a **measured** table: the engine
    records the wall time of every executed hop (:meth:`observe`) into a
    per-kind EWMA of the per-nonzero rate.  Once a kind has at least
    ``min_observations`` recordings, :meth:`cost` prefers the measured
    rate over the seeded one — routing decisions then reflect *this*
    host, not the CI runners — and ``ConversionRoute.explain()`` labels
    each edge ``seeded`` or ``measured``.  Models persist to JSON
    (:meth:`save` / :meth:`load`; ``load`` also accepts a ``BENCH_*.json``
    backend report and seeds from it).
    """

    scalar_per_nnz: float = 1.5e-6
    vector_per_nnz: float = 4.0e-8
    bridge_per_nnz: float = 2.0e-8
    chunked_per_nnz: float = 2.0e-8
    #: The compiled-C backend streams nonzeros with no interpreter or
    #: numpy dispatch in the loop; the seed sits below chunked (one
    #: compiled pass beats thread-overlapped numpy at the reference
    #: sizes — see ``BENCH_native.json``).
    native_per_nnz: float = 1.2e-8
    hop_overhead: float = 5.0e-5
    #: Seeded rate/overhead of registered external converters (the scipy
    #: delegates, or user registrations without measured history).  The
    #: rate sits between chunked and vector — external implementations
    #: beat the serial vector kernel on bulk streams but not the
    #: chunk-parallel executor — and the overhead charges the tensor
    #: marshalling at the library boundary, which keeps tiny tensors on
    #: the generated kernels.
    external_per_nnz: float = 2.2e-8
    external_overhead: float = 2.0e-4
    #: Fused convert-and-compute hops (:mod:`repro.compute`): one pass
    #: that gathers the source and folds the consuming op, skipping the
    #: intermediate's assembly.  Seeded slightly above the vector
    #: conversion rate (the gather plus the op's reduction); the
    #: ``compute`` kind prices the op alone over an already-materialized
    #: tensor.  Seeds never *select* fusion: the fusion planner requires
    #: ``min_observations`` measured ``fused`` timings before it will
    #: prefer a fused hop (see ``ConversionEngine.plan_compute``).
    fused_per_nnz: float = 5.0e-8
    compute_per_nnz: float = 2.5e-8
    #: Observations of a kind required before measured rates take over.
    min_observations: int = 3
    #: Smallest hop size (stored components) worth recording: below this,
    #: fixed per-call overhead dominates and extrapolating a per-nonzero
    #: rate from it would wildly misprice bulk conversions.
    min_nnz: int = 4096
    #: Measured per-kind state, restored by :meth:`load` — normally left
    #: to default and filled through :meth:`observe`.
    measured: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        #: rates as last seen by consumers; drift beyond PUBLISH_DRIFT
        #: bumps ``version`` (route caches key on it).  Only entries that
        #: already crossed ``min_observations`` count as published — a
        #: restored sub-threshold entry must still bump the version when
        #: it later reaches the threshold (cost_detail flips provenance
        #: at that point, so cached routes must be re-planned).
        self._published: Dict[str, float] = {
            kind: entry["rate"]
            for kind, entry in self.measured.items()
            if entry.get("count", 0) >= self.min_observations
        }
        self._version = 0

    # -- measured rates --------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic counter of *meaningful* measured-rate changes.

        Bumped when a kind first reaches ``min_observations`` and
        whenever its EWMA rate drifts more than ``PUBLISH_DRIFT`` from
        the last published value.  The engine keys its route cache on
        this, so routes are re-planned exactly when measurements could
        change them.
        """
        with self._lock:
            return self._version

    @staticmethod
    def effective_kind(kind: str, workers: int = 1) -> str:
        """The cost-table row a hop charges: ``vector`` hops executed
        chunk-parallel charge (and record) the ``chunked`` rate."""
        if kind == "chunked" or (kind == "vector" and workers > 1):
            return "chunked"
        return kind

    def _overhead(self, key: str) -> float:
        """Fixed per-hop cost of an effective kind: external converters
        pay the marshalling overhead, everything else the hop overhead."""
        return (
            self.external_overhead
            if key.startswith("external")
            else self.hop_overhead
        )

    def observe(self, kind: str, nnz: int, workers: int = 1,
                seconds: float = 0.0) -> None:
        """Record the measured wall time of one executed hop.

        ``kind`` is the hop kind (``scalar``/``vector``/``bridge``/
        ``chunked``); a ``vector`` hop that ran chunk-parallel
        (``workers > 1``) records under ``chunked``.  The per-nonzero
        rate (after subtracting the fixed ``hop_overhead``) feeds a
        per-kind EWMA; degenerate observations are ignored — fewer than
        ``min_nnz`` stored components, non-positive time, or a hop faster
        than ``hop_overhead`` (such timings carry no throughput signal,
        and recording them as a zero rate would pin the measured cost of
        arbitrarily large hops at the fixed overhead).
        """
        key = self.effective_kind(kind, workers)
        overhead = self._overhead(key)
        if nnz < max(self.min_nnz, 1) or seconds <= overhead:
            return
        rate = (seconds - overhead) / nnz
        with self._lock:
            entry = self.measured.get(key)
            if entry is None:
                entry = {"rate": rate, "count": 0}
                self.measured[key] = entry
            else:
                entry["rate"] += EWMA_ALPHA * (rate - entry["rate"])
            entry["count"] += 1
            if entry["count"] < self.min_observations:
                return
            published = self._published.get(key)
            drifted = (
                published is None
                or abs(entry["rate"] - published)
                > PUBLISH_DRIFT * max(published, 1e-12)
            )
            if drifted:
                self._published[key] = entry["rate"]
                self._version += 1

    def observation_count(self, kind: str) -> int:
        """Recorded observations of ``kind`` (an effective kind)."""
        with self._lock:
            entry = self.measured.get(kind)
            return int(entry["count"]) if entry else 0

    def _measured_rate(self, kind: str) -> Optional[float]:
        with self._lock:
            entry = self.measured.get(kind)
            if entry is None or entry["count"] < self.min_observations:
                return None
            return float(entry["rate"])

    # -- estimates -------------------------------------------------------
    def cost(self, kind: str, nnz: int, workers: int = 1,
             features: Optional[StructuralFeatures] = None) -> float:
        """Estimated seconds for one hop of ``kind`` over ``nnz`` components.

        ``workers > 1`` plans for chunk-parallel execution: vectorizable
        hops (``"vector"`` or the explicit ``"chunked"`` kind) are costed
        at the chunked throughput — this is how the router weighs routes
        when the engine converts with ``parallel=`` engaged.  Kinds with
        at least ``min_observations`` recorded timings use the measured
        rate (see :meth:`cost_detail` for the provenance).  ``kind`` may
        be ``"external:<name>"`` for a registered converter (seeded at
        the shared external rate, measured per converter).
        """
        return self.cost_detail(kind, nnz, workers, features)[0]

    def cost_detail(self, kind: str, nnz: int, workers: int = 1,
                    features: Optional[StructuralFeatures] = None,
                    ) -> Tuple[float, str]:
        """``(estimated seconds, provenance)`` for one hop — provenance is
        ``"measured"`` when the kind's measured EWMA rate is trusted
        (enough observations), ``"seeded"`` otherwise.  ``features``
        refines seeded estimates with structural facts about the tensor:
        the chunked executor's sorted-run fast path degrades on shuffled
        streams, so its seeded rate is penalized as sortedness drops.
        """
        key = self.effective_kind(kind, workers)
        overhead = self._overhead(key)
        rate = self._measured_rate(key)
        if rate is not None:
            return rate * max(int(nnz), 0) + overhead, MEASURED
        if key.startswith("external"):
            per_nnz = self.external_per_nnz
        else:
            per_nnz = {
                "scalar": self.scalar_per_nnz,
                "vector": self.vector_per_nnz,
                "bridge": self.bridge_per_nnz,
                "chunked": self.chunked_per_nnz,
                "native": self.native_per_nnz,
                "fused": self.fused_per_nnz,
                "compute": self.compute_per_nnz,
            }[key]
        if key == "chunked" and features is not None:
            sortedness = min(max(features.sortedness, 0.0), 1.0)
            per_nnz *= 1.0 + 1.7 * (1.0 - sortedness)
        return per_nnz * max(int(nnz), 0) + overhead, SEEDED

    # -- persistence -----------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serializable snapshot (seeds + measured table)."""
        with self._lock:
            measured = {
                kind: dict(entry) for kind, entry in self.measured.items()
            }
        return {
            "schema": COST_MODEL_SCHEMA,
            "kind": "repro-cost-model",
            "seeded": {
                "scalar_per_nnz": self.scalar_per_nnz,
                "vector_per_nnz": self.vector_per_nnz,
                "bridge_per_nnz": self.bridge_per_nnz,
                "chunked_per_nnz": self.chunked_per_nnz,
                "native_per_nnz": self.native_per_nnz,
                "hop_overhead": self.hop_overhead,
                "external_per_nnz": self.external_per_nnz,
                "external_overhead": self.external_overhead,
                "fused_per_nnz": self.fused_per_nnz,
                "compute_per_nnz": self.compute_per_nnz,
            },
            "min_observations": self.min_observations,
            "min_nnz": self.min_nnz,
            "measured": measured,
        }

    def save(self, path: Union[str, "os.PathLike"]) -> None:
        """Persist the model (seeds **and** measured rates) as JSON, so a
        warm process start routes with this host's measured costs.
        Missing parent directories are created (``mkdir -p`` semantics),
        so saving into a fresh state directory just works."""
        data = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        parent = os.path.dirname(os.fspath(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        tmp = f"{os.fspath(path)}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            handle.write(data + "\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: Union[str, "os.PathLike"]) -> "CostModel":
        """Load a model from ``path``.

        Accepts either a file written by :meth:`save` (seeds + measured
        table restored exactly) or a ``BENCH_*.json`` backend report
        (seeded through :meth:`from_bench_report`).  A file that is
        neither degrades to the default model with a single warning.
        """
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            warnings.warn(
                f"could not read cost model from {os.fspath(path)!r} "
                f"({exc}); using the default seeds",
                RuntimeWarning,
                stacklevel=2,
            )
            return cls()
        if isinstance(data, dict) and data.get("kind") == "repro-cost-model":
            return cls._from_saved(data, os.fspath(path))
        return cls.from_bench_report(data)

    @classmethod
    def _from_saved(cls, data: Dict, origin: str) -> "CostModel":
        try:
            seeds = data.get("seeded", {})
            model = cls(
                **{
                    name: float(seeds[name])
                    for name in (
                        "scalar_per_nnz", "vector_per_nnz", "bridge_per_nnz",
                        "chunked_per_nnz", "native_per_nnz", "hop_overhead",
                        "external_per_nnz", "external_overhead",
                        "fused_per_nnz", "compute_per_nnz",
                    )
                    if name in seeds
                },
                min_observations=int(
                    data.get("min_observations", cls.min_observations)
                ),
                min_nnz=int(data.get("min_nnz", cls.min_nnz)),
            )
            for kind, entry in dict(data.get("measured", {})).items():
                model.measured[str(kind)] = {
                    "rate": float(entry["rate"]),
                    "count": int(entry["count"]),
                }
            model.__post_init__()  # republish the restored measured rates
            return model
        except (KeyError, TypeError, ValueError) as exc:
            warnings.warn(
                f"malformed cost-model file {origin!r} ({exc}); "
                "using the default seeds",
                RuntimeWarning,
                stacklevel=3,
            )
            return cls()

    @classmethod
    def from_bench_report(cls, report: Dict) -> "CostModel":
        """Seed a model from a ``backends_json`` report (``BENCH_*.json``).

        Takes the median per-nonzero scalar, vector and parallel (chunked)
        times over every cell; bridge extraction is estimated at half the
        vector rate (it is a single mask/gather pass).  Falls back to the
        defaults for rates the report cannot support, and a malformed
        report (wrong shapes, non-numeric cells) degrades to the default
        model with a single warning instead of raising deep inside
        routing.
        """
        scalar_rates: List[float] = []
        vector_rates: List[float] = []
        parallel_rates: List[float] = []
        native_rates: List[float] = []
        scipy_rates: List[float] = []
        malformed = False
        columns = report.values() if isinstance(report, dict) else ()
        if not isinstance(report, dict):
            malformed = True
        for column in columns:
            if not isinstance(column, dict):
                malformed = True
                continue
            cells = column.get("cells", ())
            if not isinstance(cells, (list, tuple)):
                malformed = True
                continue
            for cell in cells:
                if not isinstance(cell, dict):
                    malformed = True
                    continue
                try:
                    nnz = float(cell.get("nnz") or 0)
                    if nnz <= 0:
                        continue
                    for field_name, rates in (
                        ("scalar_seconds", scalar_rates),
                        ("vector_seconds", vector_rates),
                        ("parallel_seconds", parallel_rates),
                        ("native_seconds", native_rates),
                        ("scipy_seconds", scipy_rates),
                    ):
                        seconds = cell.get(field_name)
                        if seconds:
                            rates.append(float(seconds) / nnz)
                except (TypeError, ValueError):
                    malformed = True
        if malformed:
            warnings.warn(
                "malformed BENCH report passed to CostModel.from_bench_report; "
                "ignoring the unreadable cells and keeping default seeds for "
                "any rate they would have supplied",
                RuntimeWarning,
                stacklevel=2,
            )
        model = cls()
        if scalar_rates:
            model = replace(model, scalar_per_nnz=median(scalar_rates))
        if vector_rates:
            vector = median(vector_rates)
            model = replace(
                model, vector_per_nnz=vector, bridge_per_nnz=vector / 2
            )
        if parallel_rates:
            model = replace(model, chunked_per_nnz=median(parallel_rates))
        if native_rates:
            model = replace(model, native_per_nnz=median(native_rates))
        if scipy_rates:
            # the bench's scipy baseline times the raw scipy call; the
            # registered converters additionally marshal tensors across
            # the library boundary, worth roughly 3x on bulk streams
            model = replace(model, external_per_nnz=median(scipy_rates) * 3)
        return model


# ----------------------------------------------------------------------
# extraction bridges

#: Bulk extractions for formats whose levels cannot join the generic
#: vector-emission protocol (yet): structural key of the source format ->
#: (intermediate format, extraction function).  The extraction must be
#: bit-identical to the generated scalar src->intermediate routine.
_BRIDGES: Dict[Tuple, Tuple[Format, Callable[[Tensor], Tensor]]] = {}


def register_bridge(
    src_format: Format,
    intermediate: Format,
    extract: Callable[[Tensor], Tensor],
) -> None:
    """Register a bulk extraction bridge for ``src_format`` (structurally:
    renamed twins share the bridge).  ``extract(tensor)`` must return the
    tensor in ``intermediate``, bit-identical to the generated scalar
    conversion for the same pair."""
    _BRIDGES[structural_key(src_format)] = (intermediate, extract)


def bridge_for(src_format: Format) -> Optional[Tuple[Format, Callable]]:
    """The (intermediate, extraction) bridge of ``src_format``, if any."""
    return _BRIDGES.get(structural_key(src_format))


def _hash_to_coo(tensor: Tensor) -> Tensor:
    """Bulk extraction of a (dense, hashed) table into COO.

    Replays the scalar loop's iteration order — rows ascending, slots
    ascending within each row — as one mask/gather: flat slot index order
    *is* that order.  Empty slots (``crd < 0``) and explicit zeros are
    dropped exactly as the generated guard drops them.
    """
    from ..formats.library import COO

    width = tensor.meta(1, "W")
    crd = tensor.array(1, "crd")
    vals = tensor.vals
    keep = np.flatnonzero((crd >= 0) & (vals != 0.0))
    arrays = {
        (0, "pos"): np.array([0, len(keep)], dtype=np.int64),
        (0, "crd"): keep // max(width, 1),
        (1, "crd"): crd[keep],
    }
    return Tensor(COO, tensor.dims, arrays, {}, vals[keep])


def _register_builtin_bridges() -> None:
    from ..formats.library import COO, HASH

    register_bridge(HASH, COO, _hash_to_coo)


# ----------------------------------------------------------------------
# routes


@dataclass(frozen=True)
class Hop:
    """One edge of a conversion route.

    ``cost`` is the estimated seconds of this hop at the route's planning
    size, ``provenance`` whether the estimate came from the cost model's
    bench seeds (``"seeded"``) or from this host's own measured hop
    timings (``"measured"``).  ``converter`` names the registered
    converter that won the hop when ``kind`` is ``"external"`` — the
    plan schema pins it, so replays run the same implementation.
    """

    src: Format
    dst: Format
    kind: str  # "scalar" | "vector" | "native" | "bridge" | "chunked" | "external"
    cost: float = 0.0
    provenance: str = SEEDED
    converter: Optional[str] = None

    def __str__(self) -> str:
        label = self.kind if not self.converter else (
            f"{self.kind}:{self.converter}"
        )
        return f"{self.src.name} -> {self.dst.name} [{label}]"


@dataclass(frozen=True)
class ConversionRoute:
    """A conversion path chosen by the router.

    ``hops`` is the executed sequence; ``cost`` the estimated seconds at
    ``nnz`` stored components; ``direct_cost`` the estimate for the direct
    single-hop conversion the route was weighed against.  Calling the
    route converts a tensor (hop converters come from ``engine``, the
    default engine unless one is passed).
    """

    hops: Tuple[Hop, ...]
    cost: float
    direct_cost: float
    nnz: int
    options: PlanOptions
    #: Structural features the route was planned against (None when the
    #: route was planned from a bare nnz, without a tensor in hand).
    features: Optional[StructuralFeatures] = None

    @property
    def src(self) -> Format:
        return self.hops[0].src

    @property
    def dst(self) -> Format:
        return self.hops[-1].dst

    @property
    def is_direct(self) -> bool:
        return len(self.hops) == 1

    @property
    def beats_direct(self) -> bool:
        """True when executing this route is preferable to the plain
        direct conversion: a multi-hop path, a direct bridge extraction,
        or a direct registered converter that beat the generated kernel.
        This is *the* engage-routing predicate — the engine, the CLI
        display and the bench all consult it."""
        return not self.is_direct or self.hops[0].kind in (
            "bridge", "external"
        )

    @property
    def formats(self) -> Tuple[Format, ...]:
        """The visited formats, source first."""
        return (self.hops[0].src,) + tuple(hop.dst for hop in self.hops)

    @property
    def backend_per_hop(self) -> Tuple[str, ...]:
        """The lowering kind of every hop, in execution order."""
        return tuple(hop.kind for hop in self.hops)

    def explain(self) -> str:
        """Human-readable transcript of the routing decision."""
        path = " -> ".join(fmt.name for fmt in self.formats)
        lines = [
            f"route {self.src.name} -> {self.dst.name}: {path} "
            f"({len(self.hops)} hop{'s' if len(self.hops) != 1 else ''}, "
            f"est {self.cost * 1e3:.3f} ms at {self.nnz} stored components)"
        ]
        if self.features is not None:
            lines.append(f"  structural features: {self.features.describe()}")
        for n, hop in enumerate(self.hops, 1):
            detail = {
                "scalar": "generated per-nonzero loop nest",
                "vector": "generated bulk-numpy routine",
                "native": "generated native (compiled C) routine",
                "bridge": "bulk extraction (mask/gather, no codegen)",
                "chunked": "chunk-parallel rewrite of the vector routine",
                "external": "registered converter (external implementation)",
            }[hop.kind]
            lines.append(
                f"  {n}. {hop} {detail} "
                f"(est {hop.cost * 1e3:.3f} ms, {hop.provenance} cost)"
            )
        if self.is_direct:
            lines.append(
                "  direct conversion is the estimated optimum; no "
                "intermediate beats it"
            )
        else:
            lines.append(
                f"  chosen over the direct scalar conversion "
                f"(est {self.direct_cost * 1e3:.3f} ms): every hop is a "
                f"bulk operation, the direct pair only lowers to scalar "
                f"loops"
            )
        return "\n".join(lines)

    def __call__(self, tensor: Tensor, engine=None) -> Tensor:
        """Run the route on ``tensor`` (with ``engine``'s converter cache)."""
        if engine is None:
            from .engine import default_engine

            engine = default_engine()
        return engine.convert_via(self, tensor)

    def __str__(self) -> str:
        return " -> ".join(fmt.name for fmt in self.formats)


def _candidate_intermediates(src: Format, dst: Format) -> List[Format]:
    """Registered formats eligible as intermediates for (src, dst)."""
    skip = {structural_key(src), structural_key(dst)}
    seen = set(skip)
    out: List[Format] = []
    for fmt in available_formats().values():
        key = structural_key(fmt)
        if key in seen:
            continue
        seen.add(key)
        if fmt.order != src.order or fmt.inverse is None:
            continue
        out.append(fmt)
    return out


@dataclass(frozen=True)
class EdgeCandidate:
    """One priced competitor for a single conversion edge.

    ``rank`` is the deterministic selection key: estimated cost scaled
    by the competitor's weight, with ties broken by lower weight and
    then name, so equal-cost competitors always resolve the same way.
    Rejected candidates (``admitted=False``: their runtime predicate
    refused the tensor's features) are kept for introspection but never
    selected.
    """

    name: str
    kind: str  # "scalar" | "vector" | "native" | "bridge" | "external"
    cost: float
    provenance: str
    weight: float = 1.0
    admitted: bool = True
    converter: Optional[str] = None

    @property
    def rank(self) -> Tuple[float, float, str]:
        return (self.cost * self.weight, self.weight, self.name)

    def describe(self) -> str:
        verdict = "" if self.admitted else " (rejected by predicate)"
        return (
            f"{self.name} [{self.kind}] est {self.cost * 1e3:.3f} ms "
            f"weight {self.weight:g} ({self.provenance}){verdict}"
        )


def edge_candidates(
    src: FormatSpec,
    dst: FormatSpec,
    options: Optional[PlanOptions] = None,
    cost_model: Optional[CostModel] = None,
    nnz: Optional[int] = None,
    workers: int = 1,
    features: Optional[StructuralFeatures] = None,
    native_ok: bool = False,
) -> List[EdgeCandidate]:
    """Every competitor for the single edge ``src -> dst``, priced at
    ``nnz`` stored components and sorted best rank first (admitted
    candidates before rejected ones).

    The generated kernel is always present and always admitted — it is
    the fallback when every registered competitor's predicate refuses.
    Bridges and registered converters replay the *default* code shapes,
    so non-default :class:`PlanOptions` leave only the generated kernel.
    ``native_ok`` adds the compiled-C kernel as a competitor for pairs it
    supports, but only once the host has *measured* native timings
    (``min_observations`` recordings) — an automatic route never invokes
    the C compiler on the strength of a seed alone.
    """
    src = get_format(src)
    dst = get_format(dst)
    options = options or PlanOptions()
    model = cost_model or CostModel()
    nnz = DEFAULT_ROUTE_NNZ if nnz is None else int(nnz)
    workers = max(int(workers), 1)

    generated = resolve_backend(src, dst, options, "auto")
    cost, provenance = model.cost_detail(generated, nnz, workers, features)
    out = [
        EdgeCandidate(
            name=f"generated-{generated}", kind=generated,
            cost=cost, provenance=provenance,
        )
    ]
    if (
        native_ok
        and model.observation_count("native") >= model.min_observations
    ):
        from .native import native_capable

        if native_capable(src, dst, options):
            cost, provenance = model.cost_detail(
                "native", nnz, workers, features
            )
            out.append(
                EdgeCandidate(
                    name="generated-native", kind="native",
                    cost=cost, provenance=provenance,
                )
            )
    if options.key() == PlanOptions().key():
        bridge = bridge_for(src)
        if bridge is not None and structural_key(bridge[0]) == structural_key(dst):
            cost, provenance = model.cost_detail(
                "bridge", nnz, workers, features
            )
            out.append(
                EdgeCandidate(
                    name="bridge", kind="bridge",
                    cost=cost, provenance=provenance,
                )
            )
        for conv in converters_for(src, dst):
            cost, provenance = model.cost_detail(
                f"external:{conv.name}", nnz, workers, features
            )
            out.append(
                EdgeCandidate(
                    name=conv.name, kind="external",
                    cost=cost, provenance=provenance,
                    weight=conv.weight, admitted=conv.admits(features),
                    converter=conv.name,
                )
            )
    out.sort(key=lambda cand: (not cand.admitted,) + cand.rank)
    return out


def _edge_choice(
    src: Format,
    dst: Format,
    options: PlanOptions,
    model: CostModel,
    nnz: int,
    workers: int,
    features: Optional[StructuralFeatures],
    native_ok: bool = False,
) -> EdgeCandidate:
    """The winning competitor for one edge (the generated kernel is
    always admitted, so a winner always exists)."""
    for candidate in edge_candidates(
        src, dst, options, model, nnz, workers, features, native_ok
    ):
        if candidate.admitted:
            return candidate
    raise AssertionError("edge_candidates lost the generated kernel")


def find_route(
    src: FormatSpec,
    dst: FormatSpec,
    options: Optional[PlanOptions] = None,
    cost_model: Optional[CostModel] = None,
    nnz: Optional[int] = None,
    max_hops: int = 3,
    intermediates: Optional[Sequence[Format]] = None,
    workers: int = 0,
    features: Optional[StructuralFeatures] = None,
    native_ok: bool = False,
) -> ConversionRoute:
    """Find the cheapest conversion path from ``src`` to ``dst``.

    Runs Dijkstra over the format graph — nodes are ``src``, ``dst`` and
    the registered same-order intermediates (or an explicit
    ``intermediates`` list); edge weights come from ``cost_model`` at
    ``nnz`` stored components, each edge taking its cheapest admitted
    competitor (generated kernel, bridge, or registered converter — see
    :func:`edge_candidates`).  ``workers > 1`` plans for chunk-parallel
    execution: vector edges are costed at the model's chunked throughput
    (the engine executes those hops on its worker pool).  ``features``
    are the source tensor's structural facts: they gate predicated
    converters on the first hop and refine its cost; hops out of
    intermediate formats are judged optimistically (their predicates are
    re-checked at execution time).  Non-default :class:`PlanOptions` pin
    the route to the direct conversion: the options select scalar code
    shapes that bridges and competing converters do not honour.

    ``native_ok`` (set by the engine when a working C toolchain was
    detected) lets edges take the compiled-C kernel, subject to the
    measured-gating described in :func:`edge_candidates`.

    The direct route always exists, so the result is never empty; ties go
    to the direct conversion.
    """
    src = get_format(src)
    dst = get_format(dst)
    options = options or PlanOptions()
    model = cost_model or CostModel()
    nnz = DEFAULT_ROUTE_NNZ if nnz is None else int(nnz)
    workers = max(int(workers), 0)

    choice = _edge_choice(
        src, dst, options, model, nnz, workers or 1, features, native_ok
    )
    direct_cost = choice.cost
    direct = ConversionRoute(
        hops=(
            Hop(src, dst, choice.kind, choice.cost, choice.provenance,
                choice.converter),
        ),
        cost=direct_cost,
        direct_cost=direct_cost,
        nnz=nnz,
        options=options,
        features=features,
    )
    if (
        src.order != dst.order
        or options.key() != PlanOptions().key()
        or max_hops < 2
    ):
        return direct

    if intermediates is None:
        intermediates = _candidate_intermediates(src, dst)
    nodes: List[Format] = [src] + list(intermediates) + [dst]
    dst_index = len(nodes) - 1

    # Dijkstra with a hop budget; the graph is tiny (every registered
    # format), so the quadratic edge scan is fine.
    best: Dict[Tuple[int, int], float] = {(0, 0): 0.0}
    heap: List[Tuple[float, int, int, Tuple[Hop, ...]]] = [(0.0, 0, 0, ())]
    best_route = direct
    while heap:
        cost, node, hops_used, hops = heapq.heappop(heap)
        if cost > best.get((node, hops_used), float("inf")):
            continue
        if node == dst_index:
            if cost < best_route.cost - 1e-12:
                best_route = ConversionRoute(
                    hops=hops,
                    cost=cost,
                    direct_cost=direct_cost,
                    nnz=nnz,
                    options=options,
                    features=features,
                )
            continue
        if hops_used == max_hops:
            continue
        here = nodes[node]
        if here.inverse is None:
            continue  # cannot be a conversion source
        # Only the first hop sees the source tensor's features; later
        # hops read intermediate tensors whose structure is unknown at
        # planning time, so their predicates are judged optimistically
        # and re-checked against the actual intermediate at run time.
        hop_features = features if node == 0 else None
        for nxt in range(1, len(nodes)):
            if nxt == node:
                continue
            edge = _edge_choice(
                here, nodes[nxt], options, model, nnz, workers or 1,
                hop_features, native_ok,
            )
            step = cost + edge.cost
            state = (nxt, hops_used + 1)
            if step < best.get(state, float("inf")):
                best[state] = step
                heapq.heappush(
                    heap,
                    (
                        step,
                        nxt,
                        hops_used + 1,
                        hops + (
                            Hop(here, nodes[nxt], edge.kind, edge.cost,
                                edge.provenance, edge.converter),
                        ),
                    ),
                )
    return best_route


def rebind_endpoints(
    route: ConversionRoute, src: Format, dst: Format
) -> ConversionRoute:
    """The same route with its endpoint formats swapped for ``src``/``dst``.

    Routes are cached by *structural* pair, but results must be tagged
    with the exact (possibly renamed-twin) formats the caller asked for —
    the converter cache handles the rename per hop.  Raises ``ValueError``
    when the endpoints are not structurally identical to the route's.
    """
    if structural_key(src) != structural_key(route.src) or structural_key(
        dst
    ) != structural_key(route.dst):
        raise ValueError(
            f"route {route} does not fit the pair {src.name} -> {dst.name}"
        )
    if src is route.src and dst is route.dst:
        return route
    hops = list(route.hops)
    first = hops[0]
    hops[0] = replace(first, src=src, dst=dst if len(hops) == 1 else first.dst)
    if len(hops) > 1:
        hops[-1] = replace(hops[-1], dst=dst)
    return replace(route, hops=tuple(hops))


def check_route(route: ConversionRoute) -> None:
    """Validate a route's shape (used when callers pass explicit routes)."""
    if not route.hops:
        raise FormatError("route has no hops")
    for prev, nxt in zip(route.hops, route.hops[1:]):
        if structural_key(prev.dst) != structural_key(nxt.src):
            raise FormatError(
                f"route hops do not chain: {prev} then {nxt}"
            )


# ----------------------------------------------------------------------
# route prefixes
#
# Two routes out of the same source tensor often share their leading
# hops: HASH -> COO -> CSR and HASH -> COO -> DIA both pay the HASH ->
# COO extraction.  A layer that caches hop outputs (the serving data
# cache) can resume the second conversion at COO.  These helpers name
# the resumable boundaries of a hop sequence and find the deepest one a
# cache already holds.


def route_checkpoints(hops: Sequence[Hop]) -> Tuple[Format, ...]:
    """The formats a hop sequence materializes, in execution order.

    ``checkpoints[i]`` is the tensor format after executing ``i + 1``
    hops; the last entry is the route's destination.  Each one is a
    point another conversion sharing this prefix can resume from.
    """
    return tuple(hop.dst for hop in hops)


def longest_cached_prefix(
    hops: Sequence[Hop], is_cached: Callable[[Format], bool]
) -> int:
    """The number of leading hops a cache makes skippable.

    ``is_cached(fmt)`` answers whether the conversion's tensor is
    already materialized in ``fmt``.  Checkpoints are probed deepest
    first, so the return value ``k`` is the largest hop count whose
    output is cached: ``k == len(hops)`` means the final result is
    cached (nothing to execute), ``0 < k < len(hops)`` means execution
    can resume at ``hops[k]`` from the cached intermediate, and ``0``
    means no shared prefix — run the route in full.
    """
    for k in range(len(hops), 0, -1):
        if is_cached(hops[k - 1].dst):
            return k
    return 0


_register_builtin_bridges()
