"""The streaming conversion executor: out-of-core lowering of vector plans.

The chunked executor (:mod:`repro.convert.chunked`, PR 4) showed that
every statement of a generated vector kernel is chunk-decomposable: the
attribute queries of Section 5 fold over stream chunks (histograms are
additive, presence masks idempotent, ``maximum.at`` a max-fold), remap
expressions are elementwise, and the assembly scatters touch disjoint
destination slots.  This module points the same decomposition at a
**file** instead of an in-memory array.  Where the chunked executor runs
concurrent chunks inside one call and merges their partials, the
streaming executor *schedules the kernel itself* into alternating
phases:

* **stream sections** — maximal runs of fold/scatter statements, each
  executed as one sequential pass over the source's chunks with carried
  per-key state (:class:`~repro.ir.runtime.StreamState`, the sequential
  unrolling of the ``chunked_*`` merge helpers);
* **bridge steps** — the O(dimensions) statements between them
  (``cumsum`` edge arrays, permutation tables, destination allocation),
  executed once, with destination arrays allocated through a
  :class:`~repro.storage.memmap.MemmapStore` instead of RAM.

For the common two-level destinations this is exactly the two-pass
shape: pass 1 folds the attribute-query counts chunk by chunk, pass 2
recomputes the remap streams per chunk and scatters into memmap-backed
level arrays.  Hierarchical destinations (CSF, DCSR) get one extra pass
per dependent level — their bridge reads back a coordinate array the
previous pass produced.  Pure stream statements (remaps, position
streams) are not pinned to a pass: each section replays the slice it
needs, with fresh per-site state, so no nnz-sized intermediate is ever
materialized.  Peak memory is O(dimensions + chunk), never O(nnz).

The scheduler is an :mod:`ast` pass over the *same* generated vector
source the chunked rewriter consumes, so every chunkable pair streams
unchanged; ``tests/stream`` asserts bit-identity against the in-memory
backends over the full pair matrix.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..formats.format import Format
from ..ir.runtime import StreamState, group_ranks, unique_first
from .chunked import _ChunkRewriter, chunkable
from .planner import GeneratedConversion, PlanOptions, structural_key

__all__ = [
    "STREAMED",
    "StreamPlanError",
    "StreamedConversion",
    "plan_streamed",
    "streamable",
]

#: Backend tag of streamed plans.
STREAMED = "streamed"


class StreamPlanError(ValueError):
    """A vector kernel could not be scheduled into streaming passes."""


def streamable(src_format: Format, dst_format: Format,
               options: Optional[PlanOptions] = None) -> bool:
    """True if the pair lowers through the streaming executor.

    Streaming sources are coordinate streams, so the source must be
    COO-shaped (a single top-level position range over per-level
    coordinate arrays — what :func:`repro.io.stream.open_stream`
    yields); the destination capability is exactly the chunked
    executor's (every vectorizable pair).
    """
    if not chunkable(src_format, dst_format, options):
        return False
    try:
        _source_layout(src_format)
    except StreamPlanError:
        return False
    return True


# ----------------------------------------------------------------------
# statement records


@dataclass
class _Stmt:
    index: int
    node: ast.stmt
    kind: str                      # 'dim' | 'def' | 'fold' | 'mutate'
    reads: Set[str]
    writes: Set[str]
    mutates: Optional[str] = None
    fold_site: Optional[int] = None
    is_expr: bool = False


@dataclass
class _Section:
    """One sequential pass over the source chunks."""

    body: List[_Stmt]
    code: object = None
    fold_sites: Dict[int, str] = field(default_factory=dict)
    writes_outputs: bool = False

    @property
    def source(self) -> str:
        module = ast.Module(body=[s.node for s in self.body],
                            type_ignores=[])
        return ast.unparse(ast.fix_missing_locations(module))


def _loaded_names(node: ast.AST) -> Set[str]:
    return {
        n.id
        for n in ast.walk(node)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


def _is_np_call(node: ast.AST, attr: str) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == attr
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "np"
    )


def _source_layout(src_format: Format):
    """Map the source params of a COO-shaped format onto stream columns.

    Returns ``(order,)`` — validation only; the actual mapping happens
    positionally in :class:`_KernelScheduler` from ``generated.params``.
    """
    order = src_format.order
    if src_format.inverse is None:
        raise StreamPlanError(f"{src_format.name}: source is not invertible")
    return order


class _StreamRewriter(ast.NodeTransformer):
    """Expression rewriter: gathers to chunk columns, stateful sites to
    :class:`StreamState` calls.  One instance per kernel; site ids are
    global to the kernel and states are per-pass, so replays of the same
    site in different passes are independent."""

    def __init__(self, scheduler: "_KernelScheduler") -> None:
        self.sched = scheduler

    def _site(self) -> int:
        self.sched.site_counter += 1
        return self.sched.site_counter

    def _state_call(self, method: str, args: List[ast.expr],
                    keywords=()) -> ast.Call:
        return ast.Call(
            func=ast.Attribute(
                value=ast.Name(id="_state", ctx=ast.Load()),
                attr=method, ctx=ast.Load(),
            ),
            args=[ast.Constant(value=self._site())] + args,
            keywords=list(keywords),
        )

    def visit_Subscript(self, node: ast.Subscript) -> ast.AST:
        # gather: A1_crd[lo:hi] -> the chunk column
        if (
            isinstance(node.value, ast.Name)
            and node.value.id in self.sched.stream_cols
            and isinstance(node.ctx, ast.Load)
        ):
            sl = node.slice
            if not (
                isinstance(sl, ast.Slice)
                and sl.step is None
                and isinstance(sl.lower, ast.Name)
                and isinstance(sl.upper, ast.Name)
                and self.sched.posbound.get(sl.lower.id) == 0
                and self.sched.posbound.get(sl.upper.id) == 1
            ):
                raise StreamPlanError(
                    f"unsupported source access {ast.unparse(node)!r}: "
                    "streaming requires whole-stream gathers"
                )
            col = self.sched.stream_cols[node.value.id]
            return ast.Name(id=f"_c{col}", ctx=ast.Load())
        return self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> ast.AST:
        if node.id in self.sched.stream_cols:
            raise StreamPlanError(
                f"unsupported bare use of source array {node.id!r}"
            )
        return node

    def visit_Call(self, node: ast.Call) -> ast.AST:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("group_ranks", "unique_first")
            and len(node.args) == 1
            and self.sched.is_stream_expr(node.args[0])
        ):
            return self._state_call(node.func.id,
                                    [self.visit(node.args[0])])
        if _is_np_call(node, "arange"):
            args, kws = node.args, node.keywords
            # np.arange(x.shape[0]) over a stream -> global positions
            if (
                len(args) == 1
                and isinstance(args[0], ast.Subscript)
                and isinstance(args[0].value, ast.Attribute)
                and args[0].value.attr == "shape"
                and isinstance(args[0].value.value, ast.Name)
                and self.sched.var_class.get(args[0].value.value.id)
                == "stream"
            ):
                return self._state_call(
                    "arange_like",
                    [ast.Name(id=args[0].value.value.id, ctx=ast.Load())],
                    kws,
                )
            # np.arange(lo, hi) over the gathered positions
            if (
                len(args) == 2
                and isinstance(args[0], ast.Name)
                and isinstance(args[1], ast.Name)
                and self.sched.posbound.get(args[0].id) == 0
                and self.sched.posbound.get(args[1].id) == 1
            ):
                length = ast.Subscript(
                    value=ast.Attribute(
                        value=ast.Name(id=f"_c{self.sched.order}",
                                       ctx=ast.Load()),
                        attr="shape", ctx=ast.Load(),
                    ),
                    slice=ast.Constant(value=0), ctx=ast.Load(),
                )
                return self._state_call("arange_span", [length], kws)
        return self.generic_visit(node)


class _KernelScheduler:
    """Classifies and schedules one vector kernel into streaming phases."""

    def __init__(self, generated: GeneratedConversion) -> None:
        self.generated = generated
        tree = ast.parse(generated.source)
        func = tree.body[0]
        if not isinstance(func, ast.FunctionDef):
            raise StreamPlanError("expected a single kernel function")
        self.func = func
        self.site_counter = 0
        self.var_class: Dict[str, str] = {}
        self.posbound: Dict[str, int] = {}
        self.stream_cols: Dict[str, int] = {}
        self.pos_param: Optional[str] = None
        self.dim_params: List[Tuple[str, int]] = []
        self._bind_params()
        self.order = max(self.stream_cols.values())
        self.rewriter = _StreamRewriter(self)
        self.output_names: List[str] = []
        self.phases: List[Tuple[str, object]] = []
        self._schedule()

    # ------------------------------------------------------------------
    def _bind_params(self) -> None:
        params = self.generated.params
        args = self.func.args.args
        if len(params) != len(args):
            raise StreamPlanError("kernel signature/params mismatch")
        for arg, (side, k, name) in zip(args, params):
            if side == "src_array" and k == -1:
                self.stream_cols[arg.arg] = None  # patched below
            elif side == "src_array" and name == "crd":
                self.stream_cols[arg.arg] = k
            elif side == "src_array" and name == "pos" and k == 0:
                if self.pos_param is not None:
                    raise StreamPlanError("multiple source pos arrays")
                self.pos_param = arg.arg
                self.var_class[arg.arg] = "dim"
            elif side == "src_array" or side == "src_meta":
                raise StreamPlanError(
                    f"source is not a coordinate stream (needs {name}@{k})"
                )
            else:
                self.dim_params.append((arg.arg, k))
                self.var_class[arg.arg] = "dim"
        if self.pos_param is None:
            raise StreamPlanError("source has no top-level position range")
        order = sum(1 for c in self.stream_cols.values() if c is not None)
        for name, col in self.stream_cols.items():
            if col is None:
                self.stream_cols[name] = order  # the values column

    # ------------------------------------------------------------------
    def is_stream_expr(self, node: ast.AST) -> bool:
        for name in _loaded_names(node):
            if name in self.stream_cols:
                return True
            if self.var_class.get(name) == "stream":
                return True
        return False

    def _classify(self, index: int, node: ast.stmt) -> _Stmt:
        reads = _loaded_names(node)
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                name = target.id
                value = node.value
                if (
                    _is_np_call(value, "arange")
                    and len(value.args) == 2
                    and all(isinstance(a, ast.Name) for a in value.args)
                    and self.posbound.get(value.args[0].id) == 0
                    and self.posbound.get(value.args[1].id) == 1
                ):
                    # positions of the gathered stream: a stream def
                    self.var_class[name] = "stream"
                    return _Stmt(index, node, "def", reads, {name})
                if _is_np_call(value, "bincount") and self.is_stream_expr(value):
                    self.var_class[name] = "dim"
                    return _Stmt(index, node, "fold", reads, {name})
                if self.is_stream_expr(value):
                    if self.var_class.get(name) == "stream":
                        raise StreamPlanError(f"stream var {name!r} rebound")
                    self.var_class[name] = "stream"
                    return _Stmt(index, node, "def", reads, {name})
                self.var_class[name] = "dim"
                if (
                    isinstance(value, ast.Subscript)
                    and isinstance(value.value, ast.Name)
                    and value.value.id == self.pos_param
                    and isinstance(value.slice, ast.Constant)
                    and value.slice.value in (0, 1)
                ):
                    self.posbound[name] = value.slice.value
                return _Stmt(index, node, "dim", reads, {name})
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                array = target.value.id
                if self.is_stream_expr(target.slice) or self.is_stream_expr(
                    node.value
                ):
                    return _Stmt(index, node, "mutate", reads, set(),
                                 mutates=array)
                return _Stmt(index, node, "dim", reads, set(), mutates=array,
                             is_expr=True)  # effectful: never pruned
        if isinstance(node, ast.Expr):
            call = node.value
            ufunc = _ChunkRewriter._ufunc_at(call)
            if ufunc is not None and self.is_stream_expr(call):
                if not (call.args and isinstance(call.args[0], ast.Name)):
                    raise StreamPlanError(
                        f"unsupported ufunc.at target {ast.unparse(call)!r}"
                    )
                return _Stmt(index, node, "mutate", reads, set(),
                             mutates=call.args[0].id)
            if self.is_stream_expr(node):
                raise StreamPlanError(
                    f"unsupported stream statement {ast.unparse(node)!r}"
                )
            return _Stmt(index, node, "dim", reads, set(), is_expr=True)
        raise StreamPlanError(
            f"unsupported statement {ast.unparse(node)!r}"
        )

    # ------------------------------------------------------------------
    def _schedule(self) -> None:
        body = list(self.func.body)
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            body = body[1:]
        if not body or not isinstance(body[-1], ast.Return):
            raise StreamPlanError("kernel has no return statement")
        ret = body.pop()
        elts = (
            ret.value.elts
            if isinstance(ret.value, ast.Tuple)
            else [ret.value]
        )
        for elt in elts:
            if not isinstance(elt, ast.Name):
                raise StreamPlanError("kernel returns a non-name value")
            self.output_names.append(elt.id)
        if len(self.output_names) != len(self.generated.outputs):
            raise StreamPlanError("return arity/outputs mismatch")

        defs: Dict[str, _Stmt] = {}
        all_def_reads: Set[str] = set()
        open_section: List[_Stmt] = []
        pending: Set[str] = set()
        open_reads: Set[str] = set()

        def close() -> None:
            if not open_section:
                return
            section = self._close_section(open_section, defs)
            self.phases.append(("section", section))
            open_section.clear()
            pending.clear()
            open_reads.clear()

        for index, raw in enumerate(body):
            stmt = self._classify(index, raw)
            if stmt.kind == "def":
                stmt.node = self._rewrite(stmt)
                defs[next(iter(stmt.writes))] = stmt
                all_def_reads.update(stmt.reads)
                continue
            if stmt.kind in ("fold", "mutate"):
                stmt.node = self._rewrite(stmt)
                if stmt.kind == "fold":
                    stmt.fold_site = self._fold_site(stmt)
                open_section.append(stmt)
                pending.update(stmt.writes)
                if stmt.mutates:
                    pending.add(stmt.mutates)
                open_reads.update(stmt.reads)
                continue
            # dim statement: hoist past the open section unless it reads
            # a pending fold/mutation output or rebinds something the
            # section (or any stream def) reads.
            conflict = bool(
                (stmt.reads & pending)
                or (stmt.writes & open_reads)
                or (open_section and stmt.writes & all_def_reads)
            )
            if conflict:
                close()
            for name in stmt.reads:
                if self.var_class.get(name) == "stream":
                    raise StreamPlanError(
                        f"O(dim) statement reads stream value {name!r}: "
                        f"{ast.unparse(stmt.node)!r}"
                    )
            stmt.node = self._rewrite_dim(stmt)
            self.phases.append(("dim", stmt))
        close()
        self._prune()
        for phase, item in self.phases:
            if phase == "dim":
                item.code = compile(
                    ast.fix_missing_locations(
                        ast.Module(body=[item.node], type_ignores=[])
                    ),
                    f"<repro-streamed-dim-{item.index}>", "exec",
                )
            else:
                item.code = compile(
                    ast.fix_missing_locations(
                        ast.Module(body=[s.node for s in item.body],
                                   type_ignores=[])
                    ),
                    "<repro-streamed-pass>", "exec",
                )

    def _rewrite(self, stmt: _Stmt) -> ast.stmt:
        return self.rewriter.visit(stmt.node)

    def _fold_site(self, stmt: _Stmt) -> int:
        """Wrap a fold statement's value in ``_state.fold_sum`` and
        return the site id."""
        assert isinstance(stmt.node, ast.Assign)
        self.site_counter += 1
        site = self.site_counter
        stmt.node.value = ast.Call(
            func=ast.Attribute(
                value=ast.Name(id="_state", ctx=ast.Load()),
                attr="fold_sum", ctx=ast.Load(),
            ),
            args=[ast.Constant(value=site), stmt.node.value],
            keywords=[],
        )
        return site

    def _rewrite_dim(self, stmt: _Stmt) -> ast.stmt:
        """Redirect output-array allocation/binding into the store."""
        node = stmt.node
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id in self.output_names
        ):
            return node
        name = node.targets[0].id
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in ("empty", "zeros")
            and isinstance(value.func.value, ast.Name)
            and value.func.value.id == "np"
            and len(value.args) == 1
        ):
            node.value = ast.Call(
                func=ast.Attribute(
                    value=ast.Name(id="_out", ctx=ast.Load()),
                    attr="empty", ctx=ast.Load(),
                ),
                args=[ast.Constant(value=name), value.args[0]],
                keywords=value.keywords,
            )
        else:
            node.value = ast.Call(
                func=ast.Attribute(
                    value=ast.Name(id="_out", ctx=ast.Load()),
                    attr="adopt", ctx=ast.Load(),
                ),
                args=[ast.Constant(value=name), value],
                keywords=[],
            )
        return node

    def _close_section(self, pinned: List[_Stmt],
                       defs: Dict[str, _Stmt]) -> _Section:
        needed: Set[str] = set()
        for stmt in pinned:
            needed.update(stmt.reads)
        included: Dict[str, _Stmt] = {}
        changed = True
        while changed:
            changed = False
            for name, stmt in defs.items():
                if name in needed and name not in included:
                    included[name] = stmt
                    needed.update(stmt.reads)
                    changed = True
        body = sorted(list(included.values()) + pinned, key=lambda s: s.index)
        section = _Section(body=body)
        for stmt in pinned:
            if stmt.fold_site is not None:
                section.fold_sites[stmt.fold_site] = next(iter(stmt.writes))
            if stmt.mutates in self.output_names:
                section.writes_outputs = True
        return section

    def _prune(self) -> None:
        """Drop dead bridge statements (e.g. unused position streams that
        classified as O(dim) via their bounds)."""
        live: Set[str] = set(self.output_names)
        kept: List[Tuple[str, object]] = []
        for phase, item in reversed(self.phases):
            if phase == "section":
                for stmt in item.body:
                    live.update(stmt.reads)
                kept.append((phase, item))
                continue
            stmt = item
            needed = (
                stmt.is_expr
                or bool(stmt.writes & live)
                or (stmt.mutates is not None and stmt.mutates in live)
            )
            if needed:
                live.update(stmt.reads)
                kept.append((phase, item))
        self.phases = list(reversed(kept))


class StreamedConversion:
    """A scheduled out-of-core conversion for one destination format.

    ``passes`` is the number of sequential passes over the source the
    plan makes (two for flat destinations, one more per dependent
    hierarchy level); ``phase_sources`` exposes the scheduled code of
    every phase for inspection, like the other backends' ``.source``.
    Obtain instances from :func:`plan_streamed`; execute with a
    :class:`~repro.io.stream.CoordinateStream` and a
    :class:`~repro.storage.memmap.MemmapStore` via
    :func:`repro.stream.convert_file`.
    """

    def __init__(self, generated: GeneratedConversion,
                 scheduler: _KernelScheduler) -> None:
        self.generated = generated
        self.dst_format = generated.dst_format
        self.src_format = generated.src_format
        self._scheduler = scheduler
        self.order = scheduler.order
        self.passes = sum(
            1 for phase, _ in scheduler.phases if phase == "section"
        )

    @property
    def phase_sources(self) -> List[Tuple[str, str]]:
        out = []
        for phase, item in self._scheduler.phases:
            if phase == "dim":
                out.append(("bridge", ast.unparse(item.node)))
            else:
                out.append(("pass", item.source))
        return out

    # ------------------------------------------------------------------
    def execute(self, reader, out) -> Tuple:
        """Run the streaming phases; returns the kernel's output tuple."""
        sched = self._scheduler
        if len(reader.dims) != self.order:
            raise StreamPlanError(
                f"source order {len(reader.dims)} does not match "
                f"{self.dst_format.name} (order {self.order})"
            )
        env: Dict[str, object] = {}
        env[sched.pos_param] = np.array([0, reader.nnz], dtype=np.int64)
        for name, k in sched.dim_params:
            env[name] = int(reader.dims[k])
        g = {
            "np": np,
            "_out": out,
            "group_ranks": group_ranks,
            "unique_first": unique_first,
        }
        for phase, item in sched.phases:
            if phase == "dim":
                exec(item.code, g, env)
                name = next(iter(item.writes), None)
                if name in sched.output_names and name in out.arrays:
                    env[name] = out.arrays[name]
                continue
            state = StreamState()
            for chunk in reader.chunks():
                ns = dict(env)
                ns["_state"] = state
                for col, column in enumerate(chunk):
                    ns[f"_c{col}"] = column
                exec(item.code, g, ns)
                if item.writes_outputs:
                    out.release()
            for site, target in item.fold_sites.items():
                env[target] = state.fold_result(site)
        values = []
        for name in sched.output_names:
            if name not in env:
                raise StreamPlanError(
                    f"output {name!r} was never bound by the schedule"
                )
            values.append(env[name])
        for name, (side, k, part) in zip(sched.output_names,
                                         self.generated.outputs):
            out.set_role(name, side, k, part)
        return tuple(values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StreamedConversion -> {self.dst_format.name} "
            f"({self.passes} passes)>"
        )


_PLAN_CACHE: Dict[Tuple, StreamedConversion] = {}


def plan_streamed(src_format: Format, dst_format: Format,
                  options: Optional[PlanOptions] = None
                  ) -> Optional[StreamedConversion]:
    """Schedule a streaming conversion, or ``None`` when not streamable.

    Plans the vector kernel for the pair and schedules it into streaming
    passes (see the module docstring); results are memoized per
    structural pair and options, like the engine's kernel cache.
    """
    from ..ir.vector import plan_vector

    options = options or PlanOptions()
    key = (structural_key(src_format), structural_key(dst_format),
           options.key())
    cached = _PLAN_CACHE.get(key)
    if cached is not None:
        return cached
    if not chunkable(src_format, dst_format, options):
        return None
    generated = plan_vector(src_format, dst_format, options)
    if generated is None:
        return None
    plan = StreamedConversion(generated, _KernelScheduler(generated))
    _PLAN_CACHE[key] = plan
    return plan
