"""Source tensor iteration and counter lowering.

``SourceLoopEmitter`` generates the loop nest that visits every stored
component of the source tensor, following Chou et al.'s recursive strategy
(Section 2): each source level contributes one loop (or straight-line
binding), innermost bodies receive the canonical coordinates recovered via
the source format's inverse mapping.  Optionally it emits only a *prefix*
of the levels with a dynamically computed width of the remainder
(the ``B'`` of simplify-width-count), and skips explicit zeros of padded
sources.

``CounterPlan`` implements Section 4.2's lowering of remapping counters:
a counter array indexed by the counter's coordinates in general, or a
single scalar register when those coordinates are iterated in order (the
optimization that distinguishes Figure 6b's ``count`` from the COO
counter-array example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..ir import builder as b
from ..ir.nodes import (
    Alloc,
    Assign,
    AugAssign,
    AugStore,
    Const,
    Expr,
    If,
    Load,
    Stmt,
    Var,
)
from ..ir.simplify import simplify_expr
from ..remap.ast import RCounter, Remap
from ..remap.lower import lower_remap
from .context import ConversionContext, PlanError


class SourceLoopEmitter:
    """Generates loop nests over a conversion's source tensor."""

    def __init__(self, ctx: ConversionContext) -> None:
        self.ctx = ctx
        self.levels = ctx.src_format.levels
        self.inverse = ctx.src_format.inverse

    def canonical_exprs(self, level_coords: Sequence[Expr]) -> List[Expr]:
        """Canonical coordinates as expressions over level coordinates."""
        env = dict(zip(self.inverse.src_vars, level_coords))
        lowered = lower_remap(
            self.inverse, env, self.ctx.src_format.param_exprs(), {}, self.ctx.ng
        )
        if lowered.prelude:
            raise PlanError("inverse mappings with let bindings are not supported")
        return lowered.coord_exprs

    def emit(
        self,
        body: Callable[[List[Expr], Expr, List[Expr]], Stmt],
        level_prologue: Optional[Dict[int, Callable[[List[Expr]], List[Stmt]]]] = None,
        skip_zeros: Optional[bool] = None,
    ) -> Stmt:
        """Emit the full loop nest.

        ``body(canonical_coords, leaf_pos, level_coords)`` produces the
        innermost statement.  ``level_prologue[k]`` (if given) produces
        statements to run just before entering level ``k``'s loop — used
        for scalar counter resets.  ``skip_zeros`` wraps the body in a
        nonzero guard (defaults to whether the source stores padding).
        """
        if skip_zeros is None:
            skip_zeros = self.ctx.src_format.padded
        hooks = level_prologue or {}

        def rec(k: int, parent_pos: Expr, coords: List[Expr]) -> Stmt:
            if k == len(self.levels):
                canonical = self.canonical_exprs(coords)
                inner = body(canonical, parent_pos, coords)
                if skip_zeros:
                    vals = self.ctx.src_vals()
                    inner = If(b.ne(Load(vals, parent_pos), 0.0), inner)
                return inner

            def level_body(pos: Expr, coord: Expr) -> Stmt:
                return rec(k + 1, pos, coords + [coord])

            loop = self.levels[k].emit_iteration(
                self.ctx.src, k, parent_pos, coords, level_body
            )
            if k in hooks:
                return b.block(list(hooks[k](coords)) + [loop])
            return loop

        return rec(0, Const(0), [])

    # ------------------------------------------------------------------
    def emit_prefix(
        self,
        nlevels: int,
        body: Callable[[List[Expr], Expr], Stmt],
    ) -> Stmt:
        """Emit loops over only the first ``nlevels`` source levels.

        ``body(level_coords, last_pos)`` runs once per prefix position.
        """

        def rec(k: int, parent_pos: Expr, coords: List[Expr]) -> Stmt:
            if k == nlevels:
                return body(coords, parent_pos)

            def level_body(pos: Expr, coord: Expr) -> Stmt:
                return rec(k + 1, pos, coords + [coord])

            return self.levels[k].emit_iteration(
                self.ctx.src, k, parent_pos, coords, level_body
            )

        return rec(0, Const(0), [])

    def emit_total_paths(self) -> Expr:
        """Total number of stored paths in the source tensor.

        Range composition from the root: every level maps the position
        range contiguously (compressed/banded through ``pos``, dense and
        sliced/squeezed by scaling, singleton/offset unchanged).  Used to
        size the per-pass position memo of staged (multi-group) assembly.
        """
        end: Expr = Const(1)
        for k, level in enumerate(self.levels):
            if level.name in ("compressed", "banded"):
                end = Load(self.ctx.src_array(k, "pos"), end)
            elif level.name in ("singleton", "offset"):
                continue
            elif level.name == "dense":
                end = b.mul(end, self.ctx.src.dim_size(k))
            elif level.name in ("sliced", "squeezed"):
                end = b.mul(end, self.ctx.src_meta(k, "K"))
            elif level.name == "hashed":
                end = b.mul(end, self.ctx.src_meta(k, "W"))
            else:
                raise PlanError(
                    f"cannot size the position memo through a {level.name} level"
                )
        return simplify_expr(end)

    def emit_width(self, nlevels: int, prefix_pos: Expr) -> Tuple[List[Stmt], Expr]:
        """Width of the remaining levels below one prefix position.

        Composes position ranges level by level: a position range
        ``[s, e)`` of a parent maps to ``[pos[s], pos[e])`` through a
        compressed child and stays ``[s, e)`` through a singleton — so the
        stored-path count is reachable with two loads per compressed level
        (``pos[i+1] - pos[i]`` for CSR's single compressed level).
        """
        start: Expr = prefix_pos
        end: Expr = simplify_expr(b.add(prefix_pos, 1))
        for k in range(nlevels, len(self.levels)):
            level = self.levels[k]
            if level.name == "compressed":
                pos_arr = self.ctx.src_array(k, "pos")
                start = Load(pos_arr, start)
                end = Load(pos_arr, end)
            elif level.name == "singleton":
                continue
            else:
                raise PlanError(
                    f"cannot compute widths through a {level.name} level"
                )
        return [], simplify_expr(b.sub(end, start))


@dataclass
class _CounterImpl:
    counter: RCounter
    mode: str  # "scalar" | "array"
    storage: Var
    reset_level: int  # scalar: level index before which the register resets
    value_var: Var = None


class CounterPlan:
    """Storage and update code for the counters of one iteration pass."""

    def __init__(
        self, ctx: ConversionContext, remap: Remap, force_arrays: bool = False
    ) -> None:
        self.ctx = ctx
        self.force_arrays = force_arrays
        self.impls: List[_CounterImpl] = []
        for counter in remap.counters():
            self.impls.append(self._plan_counter(counter))

    def _plan_counter(self, counter: RCounter) -> _CounterImpl:
        ctx = self.ctx
        # The scalar-register optimization applies when the counter's key
        # variables are exactly the coordinates of an ordered, unique
        # prefix of the source's levels (Section 4.2).
        key_levels = []
        for var in counter.over:
            try:
                key_levels.append(ctx.src_level_var.index(var))
            except ValueError:
                key_levels.append(None)
        prefix_ok = (
            not self.force_arrays
            and None not in key_levels
            and sorted(key_levels) == list(range(len(key_levels)))
            and all(
                ctx.src_format.levels[lvl].ordered and ctx.src_format.levels[lvl].unique
                for lvl in key_levels
            )
        )
        if prefix_ok:
            storage = Var(ctx.ng.fresh("count"))
            return _CounterImpl(counter, "scalar", storage, len(key_levels))
        storage = Var(ctx.ng.fresh("counter"))
        return _CounterImpl(counter, "array", storage, -1)

    # -- emission hooks ------------------------------------------------------
    def init_stmts(self) -> List[Stmt]:
        """Allocations before the loop nest (counter arrays)."""
        out: List[Stmt] = []
        for impl in self.impls:
            if impl.mode == "array":
                size: Expr = Const(1)
                for var in impl.counter.over:
                    size = b.mul(size, self.ctx.canonical_dim_size(var))
                out.append(Alloc(impl.storage, simplify_expr(size), "int64", "zeros"))
        return out

    def level_prologues(self) -> Dict[int, Callable[[List[Expr]], List[Stmt]]]:
        """Scalar counter resets, keyed by the level they precede."""
        hooks: Dict[int, Callable] = {}
        resets: Dict[int, List[_CounterImpl]] = {}
        for impl in self.impls:
            if impl.mode == "scalar":
                resets.setdefault(impl.reset_level, []).append(impl)
        for level, impls in resets.items():
            hooks[level] = lambda coords, impls=impls: [
                Assign(impl.storage, Const(0)) for impl in impls
            ]
        return hooks

    def fetch(self, canonical: Sequence[Expr]) -> Tuple[List[Stmt], Dict[RCounter, Expr]]:
        """Per-nonzero fetch-and-increment; returns counter value vars."""
        stmts: List[Stmt] = []
        env: Dict[RCounter, Expr] = {}
        names = self.ctx.canonical_names
        for impl in self.impls:
            value = Var(self.ctx.ng.fresh("k"))
            if impl.mode == "scalar":
                stmts.append(Assign(value, impl.storage))
                stmts.append(AugAssign(impl.storage, "+", Const(1)))
            else:
                index: Expr = Const(0)
                for var in impl.counter.over:
                    coord = canonical[names.index(var)]
                    index = b.add(
                        b.mul(index, self.ctx.canonical_dim_size(var)), coord
                    )
                index = simplify_expr(index)
                stmts.append(Assign(value, Load(impl.storage, index)))
                stmts.append(AugStore(impl.storage, index, "+", Const(1)))
            env[impl.counter] = value
        return stmts, env
