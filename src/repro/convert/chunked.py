"""The chunked conversion executor: chunk-parallel lowering of vector plans.

The vector backend (:mod:`repro.ir.vector`) lowers a conversion plan to a
straight line of bulk numpy passes over the gathered nonzero streams.
Those passes are *segment-local*: a histogram is additive over stream
chunks, a sequenced ``yield_pos`` rank is a chunk-local rank plus the
per-key counts of earlier chunks, and the payload gather/scatter touches
disjoint destination slots per nonzero.  This module exploits that by
**rewriting the generated vector kernel** into a chunk-parallel form:

* ``np.bincount(x, minlength=m)`` → ``chunked_bincount(x, m, _pool)`` —
  one histogram per chunk, summed (the count queries of Section 5);
* ``pos[p] + group_ranks(p)`` → ``chunked_yield_positions(pos, p, _pool)``
  — the bulk sequenced ``yield_pos``: chunk-local ranks offset by earlier
  chunks' per-key counts, merged against the *global* ``cumsum`` edge
  array (which stays serial: it is the O(dimension) merge step);
* ``group_ranks(x)`` / ``unique_first(x)`` → their ``chunked_*`` mirrors
  (remapping counters, Section 6.2 dedup tables);
* ``crd[pB] = x`` / ``vals[pB] = x`` → ``chunked_scatter(...)`` — the
  payload scatter, one chunk of the position stream at a time.  Only
  ``pB*`` position streams are rewritten: their duplicate indices (if
  any: dedup-shared slots) carry equal values by construction, so chunk
  order cannot change the result.

Every replacement computes the exact same arrays (see the helper
docstrings in :mod:`repro.ir.runtime` for the per-helper argument), so a
chunked kernel is **bit-identical to the serial vector backend for every
vectorizable pair** — ``tests/convert/test_chunked.py`` asserts this over
the full pair matrix.  Chunks execute on an engine-owned
:class:`~repro.ir.runtime.WorkerPool` (numpy releases the GIL in the bulk
kernels, so chunks overlap on multi-core hosts); on top of thread
parallelism, the chunk runtime recognizes sorted parent runs — contiguous
chunks of a lexicographic gather — and replaces global sorts with run
arithmetic, which is where the single-core speedup of the ``parallel``
bench column comes from.

The rewrite is an :mod:`ast` source-to-source pass over the generated
kernel, so the chunked source stays inspectable::

    from repro.convert.chunked import plan_chunked
    print(plan_chunked(COO, CSR).source)   # ...chunked_yield_positions(...)

(Comments of the serial source are dropped by the ast round-trip.)
"""

from __future__ import annotations

import ast
import re
from dataclasses import replace
from typing import Dict, Optional

from ..formats.format import Format
from ..storage.tensor import Tensor
from .engine import CompiledConversion
from .planner import GeneratedConversion, PlanOptions

#: Backend tag of chunked kernels in cache keys and ``GeneratedConversion``.
CHUNKED = "chunked"

#: Position-stream variables (``pB2``, ``pB3_2``...) — the only scatter
#: indices the rewriter parallelizes; see the module docstring.
_POSITION_STREAM = re.compile(r"pB\d+(_\d+)?$")


def chunkable(src_format: Format, dst_format: Format,
              options: Optional[PlanOptions] = None) -> bool:
    """True if the pair lowers through the chunked executor.

    The vector backend's capability, minus hashed levels: the chunked
    kernel is a rewrite of the vector kernel, so every other vectorizable
    pair has one (a kernel with no rewritable site still runs correctly —
    it just has no parallel section).  Hashed pairs are excluded even
    though they vectorize: ``hashed_bulk_insert`` placement depends on
    the *global* nonzero order, which chunk-local replays cannot
    reproduce.  Excluded pairs (and non-default plan options) fall back
    to the standard conversion paths.
    """
    from ..ir.vector import vectorizable

    if any(
        level.name == "hashed"
        for level in (*src_format.levels, *dst_format.levels)
    ):
        return False
    return vectorizable(src_format, dst_format, options)


class _ChunkRewriter(ast.NodeTransformer):
    """AST pass turning a serial vector kernel into a chunked kernel.

    Counts the rewritten sites per kind in ``sites`` so callers (tests,
    the bench) can see whether a kernel actually has a parallel section.
    """

    def __init__(self) -> None:
        self.sites: Dict[str, int] = {
            "bincount": 0, "yield": 0, "ranks": 0, "dedup": 0, "scatter": 0,
            "add_at": 0, "maximum_at": 0,
        }

    # -- small matchers -------------------------------------------------
    @staticmethod
    def _is_call_to(node: ast.AST, name: str) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == name
        )

    @staticmethod
    def _pool_arg() -> ast.expr:
        return ast.Name(id="_pool", ctx=ast.Load())

    # -- rewrites -------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> ast.AST:
        node = self.generic_visit(node)  # rewrite calls inside first
        # payload scatter: crd[pB] = x  ->  chunked_scatter(crd, pB, x, _pool)
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Subscript)
            and isinstance(node.targets[0].value, ast.Name)
            and isinstance(node.targets[0].slice, ast.Name)
            and _POSITION_STREAM.match(node.targets[0].slice.id)
        ):
            self.sites["scatter"] += 1
            call = ast.Call(
                func=ast.Name(id="chunked_scatter", ctx=ast.Load()),
                args=[
                    ast.Name(id=node.targets[0].value.id, ctx=ast.Load()),
                    ast.Name(id=node.targets[0].slice.id, ctx=ast.Load()),
                    node.value,
                    self._pool_arg(),
                ],
                keywords=[],
            )
            return ast.Expr(value=call)
        return node

    def visit_BinOp(self, node: ast.BinOp) -> ast.AST:
        # yield positions: pos[p] + group_ranks(p)
        #   -> chunked_yield_positions(pos, p, _pool)
        if (
            isinstance(node.op, ast.Add)
            and isinstance(node.left, ast.Subscript)
            and isinstance(node.left.value, ast.Name)
            and isinstance(node.left.slice, ast.Name)
            and self._is_call_to(node.right, "group_ranks")
            and isinstance(node.right.args[0], ast.Name)
            and node.right.args[0].id == node.left.slice.id
        ):
            self.sites["yield"] += 1
            return ast.Call(
                func=ast.Name(id="chunked_yield_positions", ctx=ast.Load()),
                args=[
                    ast.Name(id=node.left.value.id, ctx=ast.Load()),
                    ast.Name(id=node.left.slice.id, ctx=ast.Load()),
                    self._pool_arg(),
                ],
                keywords=[],
            )
        return self.generic_visit(node)

    @staticmethod
    def _ufunc_at(node: ast.AST) -> Optional[str]:
        """The ufunc name of an ``np.<ufunc>.at(...)`` call, if any."""
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "at"
            and isinstance(node.func.value, ast.Attribute)
            and isinstance(node.func.value.value, ast.Name)
            and node.func.value.value.id == "np"
        ):
            return node.func.value.attr
        return None

    def visit_Call(self, node: ast.Call) -> ast.AST:
        node = self.generic_visit(node)
        # prefix passes: np.add.at / np.maximum.at over the gathered
        # streams -> per-chunk partial reductions merged by key
        ufunc = self._ufunc_at(node)
        if ufunc in ("add", "maximum"):
            self.sites[f"{ufunc}_at"] += 1
            return ast.Call(
                func=ast.Name(id=f"chunked_{ufunc}_at", ctx=ast.Load()),
                args=list(node.args) + [self._pool_arg()],
                keywords=list(node.keywords),
            )
        if self._is_call_to(node, "group_ranks"):
            self.sites["ranks"] += 1
            return ast.Call(
                func=ast.Name(id="chunked_group_ranks", ctx=ast.Load()),
                args=list(node.args) + [self._pool_arg()],
                keywords=[],
            )
        if self._is_call_to(node, "unique_first"):
            self.sites["dedup"] += 1
            return ast.Call(
                func=ast.Name(id="chunked_unique_first", ctx=ast.Load()),
                args=list(node.args) + [self._pool_arg()],
                keywords=[],
            )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "bincount"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "np"
        ):
            self.sites["bincount"] += 1
            return ast.Call(
                func=ast.Name(id="chunked_bincount", ctx=ast.Load()),
                args=list(node.args),
                keywords=list(node.keywords)
                + [ast.keyword(arg="pool", value=self._pool_arg())],
            )
        return node


def rewrite_chunked(source: str, func_name: str):
    """Rewrite a serial vector kernel's source into its chunked form.

    Returns ``(chunked source, chunked function name, sites)`` where
    ``sites`` counts the rewritten sites per kind.  The chunked function
    takes one extra trailing parameter ``_pool`` (default ``None``: the
    chunk helpers then run their single-chunk serial paths, so the kernel
    is callable exactly like the serial one).
    """
    tree = ast.parse(source)
    func = tree.body[0]
    if not isinstance(func, ast.FunctionDef) or func.name != func_name:
        raise ValueError(f"expected a single function {func_name!r}")
    rewriter = _ChunkRewriter()
    rewriter.visit(func)
    new_name = func_name.replace("__vector", "") + f"__{CHUNKED}"
    func.name = new_name
    func.args.args.append(ast.arg(arg="_pool"))
    func.args.defaults.append(ast.Constant(value=None))
    doc = ast.get_docstring(func)
    if doc is not None:
        func.body[0] = ast.Expr(
            value=ast.Constant(
                value=doc.replace(
                    "with bulk numpy operations",
                    "with chunk-parallel numpy operations",
                )
                + "\n\nChunked rewrite of the vector kernel "
                "(repro.convert.chunked); _pool is a repro.ir.runtime."
                "WorkerPool (None runs single-chunk).\n"
            )
        )
    ast.fix_missing_locations(tree)
    return ast.unparse(tree), new_name, rewriter.sites


def plan_chunked(src_format: Format, dst_format: Format,
                 options: Optional[PlanOptions] = None
                 ) -> Optional[GeneratedConversion]:
    """Plan a conversion through the chunked executor.

    Plans the vector kernel and rewrites it (see :func:`rewrite_chunked`);
    returns a :class:`~repro.convert.planner.GeneratedConversion` with
    ``backend == "chunked"``, or ``None`` when the pair is not
    :func:`chunkable` (callers then fall back to the standard paths).
    """
    from ..ir.vector import plan_vector

    if not chunkable(src_format, dst_format, options):
        return None
    generated = plan_vector(src_format, dst_format, options)
    if generated is None:
        return None
    source, name, _ = rewrite_chunked(generated.source, generated.func_name)
    return replace(
        generated, source=source, func_name=name, backend=CHUNKED
    )


class ChunkedConversion(CompiledConversion):
    """A compiled chunked routine for a (source, target) format pair.

    Calling convention matches
    :class:`~repro.convert.engine.CompiledConversion` plus an optional
    ``pool`` (a :class:`~repro.ir.runtime.WorkerPool`); with ``pool=None``
    the kernel runs its single-chunk serial paths.  Obtain instances from
    :meth:`ConversionEngine.make_chunked
    <repro.convert.engine.ConversionEngine.make_chunked>` — the engine
    caches them alongside the serial kernels::

        conv = engine.make_chunked("COO", "CSR")
        out = conv(tensor, engine.worker_pool(4))
    """

    def __call__(self, tensor: Tensor, pool=None) -> Tensor:
        """Convert ``tensor`` with chunks executed on ``pool``."""
        self._check_source(tensor)
        results = self.func(*self.arguments(tensor), _pool=pool)
        return self._build_result(tensor, results)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ChunkedConversion {self.src_format.name} -> "
            f"{self.dst_format.name}>"
        )
