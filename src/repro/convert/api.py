"""Public conversion API: plan, compile, cache and run conversion routines.

Typical use::

    from repro import convert, formats
    csr = convert(coo_tensor, formats.CSR)

``make_converter`` returns the compiled routine itself (with its generated
Python source on ``.source``) so callers can inspect the generated code or
amortize lookups in benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..formats.format import Format
from ..ir.runtime import compile_source
from ..storage.tensor import Tensor
from .planner import ConversionPlanner, GeneratedConversion, PlanOptions


@dataclass
class CompiledConversion:
    """A ready-to-run conversion routine for a (source, target) format pair."""

    generated: GeneratedConversion
    func: Callable

    @property
    def source(self) -> str:
        """The generated Python source code of the routine."""
        return self.generated.source

    @property
    def src_format(self) -> Format:
        return self.generated.src_format

    @property
    def dst_format(self) -> Format:
        return self.generated.dst_format

    # ------------------------------------------------------------------
    def arguments(self, tensor: Tensor) -> List:
        """Marshal a source tensor into the generated function's arguments."""
        args = []
        for side, k, name in self.generated.params:
            if side == "src_array":
                args.append(tensor.vals if k == -1 else tensor.array(k, name))
            elif side == "src_meta":
                args.append(tensor.meta(k, name))
            else:  # dimension size
                args.append(tensor.dims[k])
        return args

    def __call__(self, tensor: Tensor) -> Tensor:
        """Convert ``tensor`` (must be in the source format)."""
        if tensor.format.signature() != self.src_format.signature():
            raise ValueError(
                f"converter expects {self.src_format.name}, got {tensor.format.name}"
            )
        results = self.func(*self.arguments(tensor))
        if not isinstance(results, tuple):
            results = (results,)
        arrays: Dict[Tuple[int, str], np.ndarray] = {}
        meta: Dict[Tuple[int, str], int] = {}
        vals = None
        for (side, k, name), value in zip(self.generated.outputs, results):
            if side == "dst_array" and k == -1:
                vals = value
            elif side == "dst_array":
                arrays[(k, name)] = value
            else:
                meta[(k, name)] = int(value)
        if vals is None:
            raise RuntimeError("generated routine returned no values array")
        return Tensor(self.dst_format, tensor.dims, arrays, meta, vals)


_CACHE: Dict[Tuple, CompiledConversion] = {}


def make_converter(
    src_format: Format,
    dst_format: Format,
    options: PlanOptions = None,
) -> CompiledConversion:
    """Generate (or fetch from cache) the conversion routine for a format
    pair.  Generated code is cached per structural format signature, so
    e.g. every 4x4-blocked BCSR conversion shares one routine."""
    options = options or PlanOptions()
    key = (src_format.signature(), dst_format.signature(), options.key())
    if key not in _CACHE:
        generated = ConversionPlanner(src_format, dst_format, options).plan()
        func = compile_source(generated.source, generated.func_name)
        _CACHE[key] = CompiledConversion(generated, func)
    return _CACHE[key]


def convert(tensor: Tensor, dst_format: Format, options: PlanOptions = None) -> Tensor:
    """Convert ``tensor`` to ``dst_format`` with a generated routine."""
    return make_converter(tensor.format, dst_format, options)(tensor)


def generated_source(src_format: Format, dst_format: Format) -> str:
    """The Python source of the generated conversion routine (for docs,
    examples and golden tests)."""
    return make_converter(src_format, dst_format).source
