"""Public conversion API: stable module-level shims over the default engine.

Typical use::

    from repro import convert, formats
    csr = convert(coo_tensor, formats.CSR)    # or convert(coo_tensor, "CSR")

``make_converter`` returns the compiled routine itself (with its generated
Python source on ``.source``) so callers can inspect the generated code or
amortize lookups in benchmarks.

These functions delegate to the process-wide
:class:`~repro.convert.engine.ConversionEngine`
(:func:`~repro.convert.engine.default_engine`), which owns the caches,
policy, routing and telemetry.  They are kept stable for existing callers;
new code that needs its own cache bounds, default options or counters
should construct an engine directly.
"""

from __future__ import annotations

from typing import Optional, Union

from ..formats.registry import FormatSpec
from ..storage.tensor import Tensor
from .engine import CompiledConversion, default_engine
from .plan import ConversionPlan
from .planner import PlanOptions
from .router import ConversionRoute

__all__ = [
    "CompiledConversion",
    "convert",
    "generated_source",
    "make_converter",
    "plan",
]


def make_converter(
    src_format: FormatSpec,
    dst_format: FormatSpec,
    options: Optional[PlanOptions] = None,
    backend: str = "auto",
) -> CompiledConversion:
    """Generate (or fetch from the default engine's cache) the conversion
    routine for a format pair.  Formats may be objects or registry spec
    strings (``"CSR"``, ``"BCSR8x8"``...).  Generated code is cached per
    (structural format key, plan options, resolved backend) — see
    :func:`repro.convert.planner.structural_key` — so e.g. every
    4x4-blocked BCSR conversion shares one routine, and a renamed format
    with CSR's exact structure reuses the CSR kernel.

    ``backend`` selects the lowering: ``"auto"`` (default) uses the bulk
    numpy vector backend where available and falls back to the scalar
    loop backend; ``"scalar"`` / ``"vector"`` request one explicitly
    (a ``"vector"`` request still falls back for non-vectorizable pairs,
    warning once per pair).

    Example::

        conv = make_converter("COO", "CSR")
        csr = conv(coo_tensor)           # amortizes the cache lookup
        print(conv.source)               # the generated routine
    """
    return default_engine().make_converter(src_format, dst_format, options, backend)


def convert(
    tensor: Tensor,
    dst_format: FormatSpec,
    options: Optional[PlanOptions] = None,
    backend: str = "auto",
    route: Union[str, ConversionRoute, None] = None,
    parallel: Union[str, int, None] = "auto",
) -> Tensor:
    """Convert ``tensor`` to ``dst_format`` with a generated routine.

    ``route=None`` (default) applies the auto policy: the engine lets
    registered converters compete for each edge on the tensor's sampled
    structural features and takes a cheaper multi-hop path when the
    direct pair only lowers to scalar loops (e.g. ``HASH -> COO -> CSR``
    at bulk sizes) — the result is bit-identical to the direct scalar
    conversion.  ``route="direct"`` always converts in one hop, matching
    the pre-engine behaviour exactly.  Passing ``route="auto"``
    *explicitly* together with an explicit non-auto ``backend`` raises
    ``ValueError`` (the backend pins the direct conversion, so there is
    nothing for routing to decide).

    ``parallel="auto"`` (default) runs huge conversions on the chunked
    executor (:mod:`repro.convert.chunked`) once the tensor crosses
    ``PlanOptions.parallel_threshold`` stored components on a multi-core
    host; an ``int`` forces that many workers at any size, ``None`` stays
    serial.  Chunked results are bit-identical to the serial vector
    backend.

    Example::

        csr = convert(coo, "CSR")                  # auto backend + routing
        csr = convert(coo, "CSR", parallel=8)      # force the chunked path
    """
    return default_engine().convert(
        tensor, dst_format, options, backend, route, parallel
    )


def plan(
    src_format: FormatSpec,
    dst_format: FormatSpec,
    *,
    options: Optional[PlanOptions] = None,
    backend: Optional[str] = None,
    route: Union[str, ConversionRoute, None] = None,
    parallel: Union[str, int, None] = "auto",
    nnz: Optional[int] = None,
) -> ConversionPlan:
    """The default engine's conversion plan for a format pair.

    The returned :class:`~repro.convert.plan.ConversionPlan` is the
    reified decision ``convert()`` would make — inspect it
    (``explain()``, ``sources()``, ``estimated_cost()``), compile it
    ahead of time, run it, or serialize it (``to_json()``) and replay it
    in another process with ``ConversionPlan.from_json``.

    Example::

        p = plan("HASH", "CSR", nnz=1_000_000)
        print(p.explain())
        csr = p.run(tensor)
    """
    return default_engine().plan(
        src_format, dst_format, options=options, backend=backend,
        route=route, parallel=parallel, nnz=nnz,
    )


def generated_source(
    src_format: FormatSpec, dst_format: FormatSpec, backend: str = "scalar"
) -> str:
    """The Python source of the generated conversion routine (for docs,
    examples and golden tests).

    Defaults to the scalar backend — its loop nests are the paper's
    generated code and are pinned by the golden tests.  Pass
    ``backend="vector"`` to inspect the bulk numpy lowering instead.
    """
    return default_engine().generated_source(src_format, dst_format, backend)
