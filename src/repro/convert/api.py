"""Public conversion API: plan, compile, cache and run conversion routines.

Typical use::

    from repro import convert, formats
    csr = convert(coo_tensor, formats.CSR)

``make_converter`` returns the compiled routine itself (with its generated
Python source on ``.source``) so callers can inspect the generated code or
amortize lookups in benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..formats.format import Format
from ..ir.runtime import compile_source
from ..storage.tensor import Tensor
from .planner import (
    GeneratedConversion,
    PlanOptions,
    plan_conversion,
    resolve_backend,
    structural_key,
)


@dataclass
class CompiledConversion:
    """A ready-to-run conversion routine for a (source, target) format pair."""

    generated: GeneratedConversion
    func: Callable

    @property
    def source(self) -> str:
        """The generated Python source code of the routine."""
        return self.generated.source

    @property
    def backend(self) -> str:
        """The lowering backend that produced the routine."""
        return self.generated.backend

    @property
    def src_format(self) -> Format:
        return self.generated.src_format

    @property
    def dst_format(self) -> Format:
        return self.generated.dst_format

    # ------------------------------------------------------------------
    def arguments(self, tensor: Tensor) -> List:
        """Marshal a source tensor into the generated function's arguments."""
        args = []
        for side, k, name in self.generated.params:
            if side == "src_array":
                args.append(tensor.vals if k == -1 else tensor.array(k, name))
            elif side == "src_meta":
                args.append(tensor.meta(k, name))
            else:  # dimension size
                args.append(tensor.dims[k])
        return args

    def __call__(self, tensor: Tensor) -> Tensor:
        """Convert ``tensor`` (must be structurally in the source format)."""
        if structural_key(tensor.format) != structural_key(self.src_format):
            raise ValueError(
                f"converter expects {self.src_format.name}, got {tensor.format.name}"
            )
        results = self.func(*self.arguments(tensor))
        if not isinstance(results, tuple):
            results = (results,)
        arrays: Dict[Tuple[int, str], np.ndarray] = {}
        meta: Dict[Tuple[int, str], int] = {}
        vals = None
        for (side, k, name), value in zip(self.generated.outputs, results):
            if side == "dst_array" and k == -1:
                vals = value
            elif side == "dst_array":
                arrays[(k, name)] = value
            else:
                meta[(k, name)] = int(value)
        if vals is None:
            raise RuntimeError("generated routine returned no values array")
        return Tensor(self.dst_format, tensor.dims, arrays, meta, vals)


#: Compiled kernels keyed by *structural* identity: structurally-identical
#: renamed formats share one generated routine.
_KERNELS: Dict[Tuple, Tuple[GeneratedConversion, Callable]] = {}

#: Converter objects keyed by exact format signatures (so repeated calls
#: with the same format objects return the identical converter).
_CACHE: Dict[Tuple, CompiledConversion] = {}


def make_converter(
    src_format: Format,
    dst_format: Format,
    options: PlanOptions = None,
    backend: str = "auto",
) -> CompiledConversion:
    """Generate (or fetch from cache) the conversion routine for a format
    pair.  Generated code is cached per (structural format key, plan
    options, resolved backend) — see
    :func:`repro.convert.planner.structural_key` — so e.g. every
    4x4-blocked BCSR conversion shares one routine, and a renamed format
    with CSR's exact structure reuses the CSR kernel.

    ``backend`` selects the lowering: ``"auto"`` (default) uses the bulk
    numpy vector backend where available and falls back to the scalar
    loop backend; ``"scalar"`` / ``"vector"`` request one explicitly
    (a ``"vector"`` request still falls back for non-vectorizable pairs,
    warning once per pair).
    """
    options = options or PlanOptions()
    resolved = resolve_backend(src_format, dst_format, options, backend)
    key = (src_format.signature(), dst_format.signature(), options.key(), resolved)
    if key not in _CACHE:
        kernel_key = (
            structural_key(src_format),
            structural_key(dst_format),
            options.key(),
            resolved,
        )
        if kernel_key not in _KERNELS:
            generated = plan_conversion(src_format, dst_format, options, resolved)
            func = compile_source(generated.source, generated.func_name)
            _KERNELS[kernel_key] = (generated, func)
        generated, func = _KERNELS[kernel_key]
        if (
            generated.src_format is not src_format
            or generated.dst_format is not dst_format
        ):
            generated = replace(
                generated, src_format=src_format, dst_format=dst_format
            )
        _CACHE[key] = CompiledConversion(generated, func)
    return _CACHE[key]


def convert(
    tensor: Tensor,
    dst_format: Format,
    options: PlanOptions = None,
    backend: str = "auto",
) -> Tensor:
    """Convert ``tensor`` to ``dst_format`` with a generated routine."""
    return make_converter(tensor.format, dst_format, options, backend)(tensor)


def generated_source(
    src_format: Format, dst_format: Format, backend: str = "scalar"
) -> str:
    """The Python source of the generated conversion routine (for docs,
    examples and golden tests).

    Defaults to the scalar backend — its loop nests are the paper's
    generated code and are pinned by the golden tests.  Pass
    ``backend="vector"`` to inspect the bulk numpy lowering instead.
    """
    return make_converter(src_format, dst_format, backend=backend).source
