"""One validated request object behind ``convert(...)``'s knobs.

``convert``/``plan`` historically validated ``backend=``, ``route=`` and
``parallel=`` in three different places with three different error
styles, and silently preferred the backend when a caller pinned both a
backend and ``route="auto"``.  :class:`ConversionRequest` normalizes the
overlapping knobs once, with one documented message per mistake:

* ``backend`` — ``None`` (engine default), ``"auto"``, ``"scalar"``,
  ``"vector"``; anything else raises
  :class:`~repro.convert.context.PlanError`.
* ``route`` — ``None`` (unspecified: the engine's auto policy),
  ``"auto"``, ``"direct"``, or an explicit
  :class:`~repro.convert.router.ConversionRoute`; anything else raises
  ``ValueError``.  An **explicit** ``route="auto"`` together with an
  explicit non-auto backend is a contradiction (the backend pins the
  direct conversion, so there is nothing for routing to decide) and now
  raises ``ValueError`` instead of silently preferring one; omit either
  knob, or pass ``route="direct"`` to keep the pinned backend.
* ``parallel`` — ``"auto"``, ``"off"``/``None`` (serial), or a worker
  count ``>= 1``; anything else raises ``ValueError``.

Every public entry point (``engine.convert``/``engine.plan``, the
module-level shims, ``Tensor.to``, the CLI) funnels through
:meth:`ConversionRequest.build`, so the messages are consistent
everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..formats.format import Format
from ..formats.registry import FormatSpec, get_format
from .context import PlanError
from .features import StructuralFeatures
from .planner import BACKENDS, PlanOptions
from .router import DEFAULT_ROUTE_NNZ, ConversionRoute

__all__ = ["ConversionRequest"]

#: Accepted string values of the ``route=`` option (besides ``None`` and
#: an explicit :class:`ConversionRoute`).
ROUTE_MODES = ("auto", "direct")

#: ``parallel=`` values besides worker counts: ``"auto"`` (threshold
#: policy), ``None``/``"off"`` (serial).
PARALLEL_MODES = ("auto", "off")


@dataclass(frozen=True)
class ConversionRequest:
    """A fully validated, normalized conversion request.

    ``route`` is normalized (``None`` becomes ``"auto"``) with
    ``route_explicit`` recording whether the caller actually asked;
    ``parallel`` is ``"auto"``, ``0`` (serial) or a worker count.
    """

    src: Format
    dst: Format
    options: PlanOptions
    backend: str
    route: Union[str, ConversionRoute]
    route_explicit: bool
    parallel: Union[str, int]
    nnz: int
    features: Optional[StructuralFeatures] = None

    @classmethod
    def build(
        cls,
        src: FormatSpec,
        dst: FormatSpec,
        *,
        options: Optional[PlanOptions] = None,
        backend: Optional[str] = None,
        route: Union[str, ConversionRoute, None] = None,
        parallel: Union[str, int, None] = "auto",
        nnz: Optional[int] = None,
        features: Optional[StructuralFeatures] = None,
        default_options: Optional[PlanOptions] = None,
        default_backend: str = "auto",
    ) -> "ConversionRequest":
        """Validate and normalize one conversion request.

        ``default_options``/``default_backend`` are the engine's policy,
        applied when the caller passes ``None``.  See the module
        docstring for the accepted values and the error they raise.
        """
        src = get_format(src)
        dst = get_format(dst)

        backend_explicit = backend is not None
        if backend is None:
            backend = default_backend
        if backend not in BACKENDS:
            raise PlanError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )

        route_explicit = route is not None
        if route is None:
            route = "auto"
        elif not isinstance(route, ConversionRoute) and route not in ROUTE_MODES:
            raise ValueError(
                f"unknown route mode {route!r}; expected one of "
                f"{ROUTE_MODES} or a ConversionRoute"
            )
        if (
            route_explicit
            and route == "auto"
            and backend_explicit
            and backend != "auto"
        ):
            raise ValueError(
                f"backend={backend!r} conflicts with route='auto': an "
                "explicit backend pins the direct conversion, so there is "
                "nothing for routing to decide; pass route='direct' to "
                "keep the pinned backend, or omit backend to let routing "
                "choose"
            )

        if parallel is None or parallel == "off":
            parallel = 0
        elif isinstance(parallel, bool):
            raise ValueError(
                f"parallel expects one of {PARALLEL_MODES}, None or a "
                f"worker count, got {parallel!r}"
            )
        elif isinstance(parallel, int):
            if parallel < 1:
                raise ValueError(
                    f"parallel worker count must be >= 1, got {parallel}"
                )
        elif parallel != "auto":
            raise ValueError(
                f"unknown parallel mode {parallel!r}; expected one of "
                f"{PARALLEL_MODES}, None or a worker count"
            )

        if nnz is None:
            nnz = (
                features.nnz if features is not None else DEFAULT_ROUTE_NNZ
            )
        try:
            nnz = int(nnz)
        except (TypeError, ValueError):
            raise ValueError(f"nnz must be an integer, got {nnz!r}")

        return cls(
            src=src,
            dst=dst,
            options=options or default_options or PlanOptions(),
            backend=backend,
            route=route,
            route_explicit=route_explicit,
            parallel=parallel,
            nnz=nnz,
            features=features,
        )
