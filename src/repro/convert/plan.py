"""First-class conversion plans: inspect, serialize and replay conversions.

The paper's core artifact is a *generated routine*; this module makes the
plan that produces it a public object instead of an engine internal.
:meth:`ConversionEngine.plan <repro.convert.engine.ConversionEngine.plan>`
returns a :class:`ConversionPlan` — the full decision the engine would
make for a ``convert()`` call (route hops, lowering backend per hop,
chunk-parallel worker count) — which can be inspected (:meth:`~
ConversionPlan.explain`, :meth:`~ConversionPlan.sources`,
:meth:`~ConversionPlan.estimated_cost`), compiled ahead of time
(:meth:`~ConversionPlan.compile`), executed (:meth:`~ConversionPlan.run`),
and serialized (:meth:`~ConversionPlan.to_json` /
:meth:`~ConversionPlan.from_json`)::

    plan = engine.plan("COO", "CSR")
    print(plan.explain())
    csr = plan.run(coo_tensor)

    text = plan.to_json()                 # choose a plan on one host ...
    replay = ConversionPlan.from_json(text, engine=other_engine)
    csr = replay.run(coo_tensor)          # ... replay it on another

The JSON schema is versioned (:data:`PLAN_SCHEMA`) and keys every format
by its **structural key** (:func:`repro.convert.planner.structural_key`)
alongside its registry name: loading verifies the structure registered
under that name on the replaying host matches the one the plan was made
for, so a renamed or diverging registry fails loudly instead of running
the wrong kernel.  Plans pair naturally with the engine's persistent
kernel cache (``ConversionEngine(cache_dir=...)``): a replayed plan on a
warm cache directory compiles nothing.

``convert``/``make_converter`` remain the stable entry points; they are
thin shims that build and run a plan.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

from ..formats.format import Format
from ..formats.registry import UnknownFormatError, get_format
from ..storage.tensor import Tensor
from .context import PlanError
from .converters import converter_named
from .features import StructuralFeatures
from .planner import PlanOptions, structural_key
from .router import Hop

#: Version of the plan JSON schema.  Bump when the layout changes;
#: loaders reject plans from a newer schema with a clear error.
#: Schema 2 (competing converters): hop records may carry ``kind:
#: "external"`` plus a ``converter`` name pinning the registered
#: implementation, and plans may record the structural ``features`` the
#: decision was made against.  Schema-1 documents still load.  ``native``
#: hops ride on schema 2: they add an enum value, not a layout change, so
#: plans without native hops stay interchangeable with older readers
#: (which reject a native hop loudly as an unknown kind).
PLAN_SCHEMA = 2

#: Hop kinds a serialized plan may carry.
_PLAN_HOP_KINDS = (
    "scalar", "vector", "native", "bridge", "chunked", "external"
)


def key_to_json(key) -> List:
    """A structural key (nested tuples) as JSON-compatible nested lists."""
    if isinstance(key, tuple):
        return [key_to_json(item) for item in key]
    return key


def format_record(fmt: Format) -> Dict:
    """The serialized identity of a format: registry name + structural key."""
    return {
        "name": fmt.name,
        "structural_key": key_to_json(structural_key(fmt)),
    }


def resolve_format_record(record: Dict) -> Format:
    """Resolve a serialized format identity on *this* host.

    The name is looked up through the format registry (so parameterized
    specs like ``BCSR8x8`` and user-registered names resolve), then the
    registered structure is verified against the recorded structural key
    — a plan made against a different structure must not silently run.
    """
    if not isinstance(record, dict):
        raise PlanError(f"malformed plan format record: {record!r}")
    name = record.get("name")
    if not isinstance(name, str):
        raise PlanError(f"plan format record has no name: {record!r}")
    try:
        fmt = get_format(name)
    except UnknownFormatError as exc:
        raise PlanError(
            f"plan references format {name!r}, which is not registered on "
            "this host; register it (repro.formats.register_format) before "
            "loading the plan"
        ) from exc
    recorded = record.get("structural_key")
    if recorded is not None and key_to_json(structural_key(fmt)) != recorded:
        raise PlanError(
            f"format {name!r} registered on this host does not match the "
            "structure the plan was made for; the registries have diverged"
        )
    return fmt


def _hop_cost_kind(hop: Hop) -> str:
    """The cost-model row a hop charges (per-converter for externals)."""
    return f"external:{hop.converter}" if hop.kind == "external" else hop.kind


@dataclass(frozen=True)
class ConversionPlan:
    """A complete, replayable conversion decision.

    ``hops`` is the executed sequence (single direct hop, or a routed
    multi-hop path); ``options`` the :class:`PlanOptions` every generated
    hop honours; ``workers`` the chunk-pool size the plan executes with
    (``0``: serial); ``nnz`` the stored-component count the plan was
    costed at; ``routed`` whether the engine counts executions as routed
    conversions.  Instances are immutable; ``engine`` is the
    :class:`~repro.convert.engine.ConversionEngine` that compiles and
    runs the hops (``None``: the process default engine at call time).
    """

    hops: Tuple[Hop, ...]
    options: PlanOptions
    workers: int = 0
    nnz: int = 0
    routed: bool = False
    #: Structural features of the tensor the plan was decided against
    #: (None when planned from a bare nnz).
    features: Optional[StructuralFeatures] = None
    engine: Optional[object] = field(default=None, repr=False, compare=False)

    # -- structure -------------------------------------------------------
    @property
    def src(self) -> Format:
        return self.hops[0].src

    @property
    def dst(self) -> Format:
        return self.hops[-1].dst

    @property
    def is_direct(self) -> bool:
        return len(self.hops) == 1

    @property
    def formats(self) -> Tuple[Format, ...]:
        """The visited formats, source first."""
        return (self.hops[0].src,) + tuple(hop.dst for hop in self.hops)

    @property
    def backend_per_hop(self) -> Tuple[str, ...]:
        """The lowering kind of every hop, in execution order."""
        return tuple(hop.kind for hop in self.hops)

    def _engine(self):
        if self.engine is not None:
            return self.engine
        from .engine import default_engine

        return default_engine()

    # -- inspection ------------------------------------------------------
    def estimated_cost(self, nnz: Optional[int] = None,
                       workers: Optional[int] = None) -> float:
        """Estimated seconds to execute the plan on ``nnz`` stored
        components with ``workers`` chunk workers (defaults: the plan's
        own planning size and worker count).  Uses the engine's cost
        model, so measured hop timings sharpen the estimate over time."""
        nnz = self.nnz if nnz is None else int(nnz)
        workers = self.workers if workers is None else int(workers)
        model = self._engine().cost_model
        return sum(
            model.cost(_hop_cost_kind(hop), nnz, workers or 1, self.features)
            for hop in self.hops
        )

    def sources(self) -> List[Optional[str]]:
        """The generated source per hop, in execution order.

        Bridge hops are library bulk extractions and ``external`` hops
        are registered converters — neither is generated code, so their
        entry is ``None``.  A ``native`` hop shows the generated C
        translation unit (printing needs no toolchain — only executing
        does).  Looking up a Python source compiles (or disk-loads) the
        hop's kernel through the engine cache, so a plan whose sources
        were inspected is already warm.  A ``chunked`` hop whose pair has
        no chunked form on this host (a replayed plan from elsewhere)
        shows the serial vector kernel — the same fallback :meth:`run`
        executes.
        """
        engine = self._engine()
        out: List[Optional[str]] = []
        for hop in self.hops:
            if hop.kind in ("bridge", "external"):
                out.append(None)
                continue
            if hop.kind == "native":
                from .native import plan_native

                out.append(
                    plan_native(hop.src, hop.dst, self.options).source
                )
                continue
            if hop.kind == "chunked":
                chunked = engine.make_chunked(hop.src, hop.dst, self.options)
                if chunked is not None:
                    out.append(chunked.source)
                    continue
            kind = "vector" if hop.kind == "chunked" else hop.kind
            out.append(
                engine.make_converter(
                    hop.src, hop.dst, self.options, kind
                ).source
            )
        return out

    def explain(self) -> str:
        """Human-readable transcript of the plan."""
        path = " -> ".join(fmt.name for fmt in self.formats)
        lines = [
            f"plan {self.src.name} -> {self.dst.name}: {path} "
            f"({len(self.hops)} hop{'s' if len(self.hops) != 1 else ''}, "
            f"est {self.estimated_cost() * 1e3:.3f} ms at {self.nnz} "
            "stored components"
            + (f", {self.workers} chunk workers)" if self.workers else ")")
        ]
        if self.features is not None:
            lines.append(f"  structural features: {self.features.describe()}")
        detail = {
            "scalar": "generated per-nonzero loop nest",
            "vector": "generated bulk-numpy routine",
            "native": "generated native (compiled C) routine",
            "bridge": "bulk extraction (mask/gather, no codegen)",
            "chunked": "chunk-parallel rewrite of the vector routine",
        }
        model = self._engine().cost_model
        for n, hop in enumerate(self.hops, 1):
            cost, provenance = model.cost_detail(
                _hop_cost_kind(hop), self.nnz, self.workers or 1,
                self.features,
            )
            if hop.kind == "external":
                what = (
                    f"registered converter {hop.converter!r} won this edge"
                )
            else:
                what = detail[hop.kind]
            lines.append(
                f"  {n}. {hop} {what} "
                f"(est {cost * 1e3:.3f} ms, {provenance} cost)"
            )
        return "\n".join(lines)

    # -- execution -------------------------------------------------------
    def compile(self) -> "CompiledPlan":
        """Compile (or disk-load) every generated hop now and return a
        ready-to-run handle, so the first :meth:`run` pays no compile.
        Hops warm exactly what :meth:`run` will execute, including the
        serial-vector fallback for ``chunked`` hops without a chunked
        form on this host."""
        engine = self._engine()
        for hop in self.hops:
            if hop.kind in ("bridge", "external"):
                # library code, nothing to compile; an external hop whose
                # predicate refuses the tensor at run time compiles its
                # generated fallback lazily
                continue
            if hop.kind == "chunked" or (hop.kind == "vector" and self.workers):
                chunked = engine.make_chunked(hop.src, hop.dst, self.options)
                if chunked is not None:
                    continue
            kind = "vector" if hop.kind == "chunked" else hop.kind
            engine.make_converter(hop.src, hop.dst, self.options, kind)
        return CompiledPlan(self)

    def run(self, tensor: Tensor) -> Tensor:
        """Execute the plan on ``tensor`` (which must be structurally in
        the plan's source format)."""
        return self._engine().run_plan(self, tensor)

    __call__ = run

    def with_engine(self, engine) -> "ConversionPlan":
        """The same plan bound to a different engine."""
        return replace(self, engine=engine)

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serializable snapshot (versioned; see :data:`PLAN_SCHEMA`)."""
        hops = []
        for hop in self.hops:
            record = {
                "src": format_record(hop.src),
                "dst": format_record(hop.dst),
                "kind": hop.kind,
            }
            if hop.converter is not None:
                record["converter"] = hop.converter
            hops.append(record)
        data = {
            "schema": PLAN_SCHEMA,
            "kind": "repro-conversion-plan",
            "hops": hops,
            "options": self.options.to_dict(),
            "workers": self.workers,
            "nnz": self.nnz,
            "routed": self.routed,
        }
        if self.features is not None:
            data["features"] = self.features.to_dict()
        return data

    def to_json(self, indent: Optional[int] = None) -> str:
        """The plan as a JSON document (see the module docstring)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict, engine=None) -> "ConversionPlan":
        """Rebuild a plan from :meth:`to_dict` output.

        Formats resolve through this host's registry and are verified
        against the recorded structural keys; an unknown name, diverged
        structure, unknown hop kind or newer schema raises
        :class:`~repro.convert.context.PlanError`.  An ``external`` hop
        pins the registered converter that won the edge by name: loading
        fails loudly when that converter is not registered on this host
        (e.g. a scipy-delegated plan replayed where scipy is absent),
        rather than silently running a different implementation.
        """
        if not isinstance(data, dict) or "hops" not in data:
            raise PlanError("not a serialized ConversionPlan")
        schema = data.get("schema")
        if not isinstance(schema, int) or schema > PLAN_SCHEMA:
            raise PlanError(
                f"plan schema {schema!r} is newer than this reader "
                f"(supports <= {PLAN_SCHEMA}); upgrade to load it"
            )
        hop_records = data["hops"]
        if not isinstance(hop_records, list):
            raise PlanError(f"plan hops must be a list, got {hop_records!r}")
        hops: List[Hop] = []
        for record in hop_records:
            if not isinstance(record, dict):
                raise PlanError(f"malformed plan hop record: {record!r}")
            kind = record.get("kind")
            if kind not in _PLAN_HOP_KINDS:
                raise PlanError(f"unknown plan hop kind {kind!r}")
            src = resolve_format_record(record.get("src", {}))
            dst = resolve_format_record(record.get("dst", {}))
            converter = record.get("converter")
            if kind == "external":
                if not isinstance(converter, str):
                    raise PlanError(
                        f"external plan hop {src.name} -> {dst.name} does "
                        "not name its converter"
                    )
                if converter_named(src, dst, converter) is None:
                    raise PlanError(
                        f"plan pins converter {converter!r} for "
                        f"{src.name} -> {dst.name}, which is not registered "
                        "on this host; register it (repro.convert."
                        "register_converter) before loading the plan"
                    )
            hops.append(
                Hop(
                    src=src,
                    dst=dst,
                    kind=kind,
                    converter=converter if kind == "external" else None,
                )
            )
        if not hops:
            raise PlanError("plan has no hops")
        for prev, nxt in zip(hops, hops[1:]):
            if structural_key(prev.dst) != structural_key(nxt.src):
                raise PlanError(f"plan hops do not chain: {prev} then {nxt}")
        try:
            options = PlanOptions.from_dict(data.get("options", {}))
            workers = int(data.get("workers", 0))
            nnz = int(data.get("nnz", 0))
            recorded = data.get("features")
            features = (
                StructuralFeatures.from_dict(recorded)
                if isinstance(recorded, dict)
                else None
            )
        except (TypeError, ValueError, KeyError) as exc:
            raise PlanError(f"malformed plan fields: {exc}") from exc
        return cls(
            hops=tuple(hops),
            options=options,
            workers=workers,
            nnz=nnz,
            routed=bool(data.get("routed", len(hops) > 1)),
            features=features,
            engine=engine,
        )

    @classmethod
    def from_json(cls, text: Union[str, bytes, Dict],
                  engine=None) -> "ConversionPlan":
        """Rebuild a plan from :meth:`to_json` output (or an already
        parsed dict), bound to ``engine`` (default: the process engine)."""
        if isinstance(text, (str, bytes)):
            try:
                data = json.loads(text)
            except ValueError as exc:
                raise PlanError(f"plan JSON does not parse: {exc}") from exc
        else:
            data = text
        return cls.from_dict(data, engine=engine)

    def __str__(self) -> str:
        return " -> ".join(fmt.name for fmt in self.formats)


class CompiledPlan:
    """A plan whose generated hops are all compiled and cached.

    Returned by :meth:`ConversionPlan.compile`; calling it converts a
    tensor with zero compile work left (every kernel sits in the engine
    cache — and, with ``cache_dir`` set, on disk for the next process)::

        runner = engine.plan("COO", "CSR").compile()
        csr = runner(coo_tensor)
    """

    def __init__(self, plan: ConversionPlan) -> None:
        self.plan = plan

    @property
    def src_format(self) -> Format:
        return self.plan.src

    @property
    def dst_format(self) -> Format:
        return self.plan.dst

    @property
    def backend_per_hop(self) -> Tuple[str, ...]:
        return self.plan.backend_per_hop

    def sources(self) -> List[Optional[str]]:
        """Generated source per hop (``None`` for bridge hops)."""
        return self.plan.sources()

    def __call__(self, tensor: Tensor) -> Tensor:
        return self.plan.run(tensor)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CompiledPlan {self.plan.src.name} -> {self.plan.dst.name} "
            f"hops={len(self.plan.hops)}>"
        )


