"""Command-line interface.

Usage::

    python -m repro formats                     # list registered formats
    python -m repro codegen CSR DIA             # print the generated routine
    python -m repro codegen COO CSR --backend chunked   # chunk-parallel form
    python -m repro codegen COO CSR --backend native    # compiled-C form
    python -m repro plan HASH CSR               # show the conversion plan
    python -m repro plan HASH CSR --json --save plan.json   # serialize it
    python -m repro plan --load plan.json       # replay a saved plan
    python -m repro convert in.mtx --to DIA     # convert a Matrix Market file
    python -m repro convert in.mtx --to CSR --parallel 8   # chunked executor
    python -m repro convert in.mtx --to CSR --cache-dir .kernels  # warm starts
    python -m repro route HASH CSR --explain    # show the conversion route
    python -m repro stats in.mtx                # attribute-query statistics
    python -m repro verify COO CSR --trials 50  # differential verification

Formats are given as registry spec strings — any registered name
(``CSR``, ``HASH``...) or a parameterized family instance (``BCSR8x8``,
``HICOO4``).  (The evaluation harness lives under ``python -m repro.bench``.)
"""

from __future__ import annotations

import argparse
import time

from .convert import (
    ConversionEngine,
    ConversionPlan,
    default_engine,
    generated_source,
)
from .convert.context import PlanError
from .convert.verify import verify_conversion
from .formats import UnknownFormatError, available_formats, get_format
from .io import read_tensor
from .query import evaluate_query, parse_queries
from .remap import apply_remap, parse_remap


def _format_arg(spec: str):
    """Resolve a CLI format spec, turning lookup failures into exit codes."""
    try:
        return get_format(spec)
    except UnknownFormatError as exc:
        raise SystemExit(str(exc)) from exc


def _cmd_formats(_args) -> None:
    for name, fmt in sorted(available_formats().items()):
        levels = ", ".join(level.signature() for level in fmt.levels)
        print(f"{name:6s} remap: {fmt.remap}   levels: [{levels}]")
    print("BCSR<MxN> and HICOO<B> are parameterized (e.g. BCSR4x4, HICOO8).")


def _cmd_codegen(args) -> None:
    src_fmt, dst_fmt = _format_arg(args.src), _format_arg(args.dst)
    if args.backend == "native":
        # print the C translation unit directly — emission is pure, so
        # this works on hosts without a C toolchain
        from .convert.native import plan_native
        from .ir.native import NativeUnsupported

        try:
            print(plan_native(src_fmt, dst_fmt).source)
        except NativeUnsupported as exc:
            raise SystemExit(
                f"{src_fmt.name} -> {dst_fmt.name} has no native lowering: "
                f"{exc}"
            ) from exc
        return
    if args.backend == "chunked":
        chunked = default_engine().make_chunked(src_fmt, dst_fmt)
        if chunked is None:
            raise SystemExit(
                f"{src_fmt.name} -> {dst_fmt.name} has no chunked lowering "
                "(the pair is not vectorizable)"
            )
        print(chunked.source)
        return
    print(generated_source(src_fmt, dst_fmt, backend=args.backend))


def _parallel_arg(spec: str):
    """Resolve a CLI ``--parallel`` value (auto/off/worker count)."""
    if spec == "auto":
        return "auto"
    if spec == "off":
        return None
    try:
        workers = int(spec)
    except ValueError:
        raise SystemExit(
            f"--parallel expects 'auto', 'off' or a worker count, got {spec!r}"
        ) from None
    if workers < 1:
        raise SystemExit(f"--parallel worker count must be >= 1, got {workers}")
    return workers


def _cmd_plan(args) -> None:
    engine = (
        ConversionEngine(cache_dir=args.cache_dir)
        if args.cache_dir
        else default_engine()
    )
    if args.load:
        if args.src or args.dst or args.nnz is not None or args.backend:
            raise SystemExit(
                "--load replays the stored plan as-is; it cannot be "
                "combined with SRC/DST, --nnz or --backend"
            )
        try:
            with open(args.load) as handle:
                plan = ConversionPlan.from_json(handle.read(), engine=engine)
        except (OSError, PlanError) as exc:
            raise SystemExit(f"cannot load plan: {exc}") from exc
    else:
        if not (args.src and args.dst):
            raise SystemExit("plan needs SRC and DST (or --load FILE)")
        plan = engine.plan(
            _format_arg(args.src),
            _format_arg(args.dst),
            nnz=args.nnz,
            backend=args.backend,
        )
    if args.save:
        with open(args.save, "w") as handle:
            handle.write(plan.to_json(indent=2) + "\n")
        print(f"wrote {args.save}")
    if args.json:
        print(plan.to_json(indent=2))
    else:
        print(plan.explain())
    if args.show_code:
        for hop, source in zip(plan.hops, plan.sources()):
            if source is not None:
                print("\n" + source)
            elif hop.kind == "external":
                print(f"\n# {hop}: registered converter "
                      f"{hop.converter!r}, no generated source")
            else:
                print(f"\n# {hop}: bulk extraction, no generated source")


def _cmd_convert(args) -> None:
    src_fmt = _format_arg(args.source_format)
    dst_fmt = _format_arg(args.to)
    parallel = _parallel_arg(args.parallel)
    tensor = read_tensor(args.input, src_fmt)
    engine = (
        ConversionEngine(cache_dir=args.cache_dir)
        if args.cache_dir
        else default_engine()
    )
    # Routing engages only under the auto policies (mirrors engine.convert):
    # an explicit backend request always runs the direct conversion.
    route = None
    if args.route in (None, "auto") and args.backend == "auto":
        found = engine.route(src_fmt, dst_fmt, nnz=tensor.nnz_stored)
        if found.beats_direct:
            route = found
    parallel_before = engine.cache_stats()["parallel_conversions"]
    start = time.perf_counter()
    try:
        out = engine.convert(tensor, dst_fmt, backend=args.backend,
                             route=args.route, parallel=parallel)
    except (ValueError, PlanError) as exc:
        raise SystemExit(str(exc)) from exc
    elapsed = (time.perf_counter() - start) * 1e3
    parallel_ran = engine.cache_stats()["parallel_conversions"] > parallel_before
    out.check()
    print(
        f"{args.input}: {tensor.dims[0]}x{tensor.dims[1]}, {tensor.nnz} nonzeros"
    )
    print(f"{src_fmt.name} -> {dst_fmt.name} in {elapsed:.2f} ms (generated routine)")
    if parallel_ran:
        print("  chunked executor: ran chunk-parallel")
    elif route is not None:
        print(f"  routed: {route}")
    for (k, name), array in sorted(out.arrays.items()):
        print(f"  B{k + 1}_{name}: {len(array)} entries")
    for (k, name), value in sorted(out.metadata.items()):
        print(f"  B{k + 1}_{name} = {value}")
    print(f"  B_vals: {len(out.vals)} entries ({out.nnz} nonzero)")
    if args.cache_dir:
        stats = engine.cache_stats()
        print(
            f"  kernel cache {args.cache_dir}: "
            f"{stats['disk_hits']} disk hit(s), "
            f"{stats['disk_writes']} write(s), "
            f"{stats['compiles']} compile(s)"
        )
    if args.show_code:
        if parallel_ran:
            print("\n" + engine.make_chunked(src_fmt, dst_fmt).source)
        elif route is not None:
            # show what actually ran: the generated source of every
            # codegen hop (bridges and registered converters are library
            # calls, not generated code)
            for hop in route.hops:
                if hop.kind == "bridge":
                    print(f"\n# {hop}: bulk extraction, no generated source")
                elif hop.kind == "external":
                    print(f"\n# {hop}: registered converter "
                          f"{hop.converter!r}, no generated source")
                else:
                    print("\n" + engine.make_converter(
                        hop.src, hop.dst, backend=hop.kind
                    ).source)
        else:
            print("\n" + engine.make_converter(
                src_fmt, dst_fmt, backend=args.backend
            ).source)


def _cmd_route(args) -> None:
    src_fmt = _format_arg(args.src)
    dst_fmt = _format_arg(args.dst)
    engine = default_engine()
    route = engine.route(src_fmt, dst_fmt, nnz=args.nnz)
    if args.explain:
        print(route.explain())
        # competitor table: every implementation that was priced for each
        # hop's edge, best rank first, with its admission verdict
        for hop in route.hops:
            print(f"competitors for {hop.src.name} -> {hop.dst.name}:")
            for cand in engine.converters(hop.src, hop.dst, nnz=route.nnz):
                print(f"  {cand.describe()}")
    else:
        hops = ", ".join(route.backend_per_hop)
        print(f"{route} ({hops})")


def _cmd_stats(args) -> None:
    tensor = read_tensor(args.input)
    dims, coords = tensor.dims, list(tensor.to_coo())
    per_row = evaluate_query(
        parse_queries("select [i] -> count(j) as n", dim_names=["i", "j"])[0],
        coords,
    )
    remapped = apply_remap(parse_remap("(i,j) -> (j-i, i, j)"), coords)
    diagonals = evaluate_query(
        parse_queries("select [k] -> id() as ne", dim_names=["k", "i", "j"])[0],
        remapped,
    )
    print(f"{args.input}: {dims[0]}x{dims[1]}, {len(coords)} nonzeros")
    print(f"nonzero diagonals : {len(diagonals)}")
    print(f"max nnz per row   : {max(per_row.values()) if per_row else 0}")
    dia_pad = 1 - len(coords) / (len(diagonals) * dims[0]) if diagonals else 0.0
    print(f"DIA padding       : {dia_pad:.1%}")


def _cmd_verify(args) -> None:
    src_fmt = _format_arg(args.src)
    dst_fmt = _format_arg(args.dst)
    checked = verify_conversion(
        src_fmt,
        dst_fmt,
        trials=args.trials,
        max_dim=args.max_dim,
        seed=args.seed,
        backend=args.backend,
    )
    print(f"{src_fmt.name} -> {dst_fmt.name}: OK on {checked} randomized inputs")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("formats", help="list registered formats")

    codegen = sub.add_parser("codegen", help="print a generated routine")
    codegen.add_argument("src")
    codegen.add_argument("dst")
    codegen.add_argument("--backend",
                         choices=["auto", "scalar", "vector", "chunked",
                                  "native"],
                         default="scalar",
                         help="lowering backend (default: scalar, the paper's loops)")

    plan = sub.add_parser(
        "plan", help="show, save or replay the conversion plan for a pair"
    )
    plan.add_argument("src", nargs="?", default=None)
    plan.add_argument("dst", nargs="?", default=None)
    plan.add_argument("--json", action="store_true",
                      help="print the plan as JSON instead of the transcript")
    plan.add_argument("--save", metavar="FILE", default=None,
                      help="write the plan JSON to FILE")
    plan.add_argument("--load", metavar="FILE", default=None,
                      help="load a plan from FILE instead of planning SRC DST")
    plan.add_argument("--nnz", type=int, default=None,
                      help="stored-component count the plan is costed at "
                           "(default: bulk sizes)")
    plan.add_argument("--backend",
                      choices=["auto", "scalar", "vector", "native"],
                      default=None, help="lowering backend policy")
    plan.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="persistent kernel cache directory the plan's "
                           "engine compiles into / loads from")
    plan.add_argument("--show-code", action="store_true",
                      help="also print the generated source of every hop")

    convert = sub.add_parser("convert", help="convert a Matrix Market file")
    convert.add_argument("input")
    convert.add_argument("--from", dest="source_format", default="COO")
    convert.add_argument("--to", required=True)
    convert.add_argument("--show-code", action="store_true")
    convert.add_argument("--backend",
                         choices=["auto", "scalar", "vector", "native"],
                         default="auto",
                         help="lowering backend (default: auto)")
    convert.add_argument("--route", choices=["auto", "direct"], default=None,
                         help="multi-hop routing policy (default: auto; an "
                              "explicit --route auto conflicts with an "
                              "explicit non-auto --backend)")
    convert.add_argument("--parallel", default="auto", metavar="auto|off|N",
                         help="chunked executor: 'auto' (size threshold), "
                              "'off', or a worker count (default: auto)")
    convert.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="persistent kernel cache: compiled kernels are "
                              "written here and loaded on the next run, so "
                              "warm starts compile nothing")

    route = sub.add_parser("route", help="show the conversion route for a pair")
    route.add_argument("src")
    route.add_argument("dst")
    route.add_argument("--explain", action="store_true",
                       help="print the full routing transcript")
    route.add_argument("--nnz", type=int, default=None,
                       help="expected stored-component count the cost model "
                            "plans for (default: bulk sizes)")

    stats = sub.add_parser("stats", help="attribute-query statistics of a file")
    stats.add_argument("input")

    verify = sub.add_parser("verify", help="differentially verify a pair")
    verify.add_argument("src")
    verify.add_argument("dst")
    verify.add_argument("--trials", type=int, default=25)
    verify.add_argument("--max-dim", type=int, default=10)
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument("--backend",
                        choices=["auto", "scalar", "vector", "native"],
                        default="auto", help="lowering backend under test")

    args = parser.parse_args(argv)
    {
        "formats": _cmd_formats,
        "codegen": _cmd_codegen,
        "plan": _cmd_plan,
        "convert": _cmd_convert,
        "route": _cmd_route,
        "stats": _cmd_stats,
        "verify": _cmd_verify,
    }[args.command](args)


if __name__ == "__main__":
    main()
