"""Command-line interface.

Usage::

    python -m repro formats                     # list registered formats
    python -m repro codegen CSR DIA             # print the generated routine
    python -m repro codegen COO CSR --backend chunked   # chunk-parallel form
    python -m repro codegen COO CSR --backend native    # compiled-C form
    python -m repro plan HASH CSR               # show the conversion plan
    python -m repro plan HASH CSR --json --save plan.json   # serialize it
    python -m repro plan --load plan.json       # replay a saved plan
    python -m repro convert in.mtx --to DIA     # convert a Matrix Market file
    python -m repro convert in.mtx --to CSR --parallel 8   # chunked executor
    python -m repro convert in.mtx --to CSR --cache-dir .kernels  # warm starts
    python -m repro convert-file big.mtx --to CSR --out big_csr/  # out-of-core
    python -m repro route HASH CSR --explain    # show the conversion route
    python -m repro stats in.mtx                # attribute-query statistics
    python -m repro verify COO CSR --trials 50  # differential verification
    python -m repro compute spmv COO --to CSR   # fused-pipeline decision
    python -m repro compute spmv COO --to CSR --input in.mtx  # and run it
    python -m repro serve-bench --requests 48   # drive the HTTP service

Formats are given as registry spec strings — any registered name
(``CSR``, ``HASH``...) or a parameterized family instance (``BCSR8x8``,
``HICOO4``).  (The evaluation harness lives under ``python -m repro.bench``.)
"""

from __future__ import annotations

import argparse
import time

from .convert import (
    ConversionEngine,
    ConversionPlan,
    default_engine,
    generated_source,
)
from .convert.context import PlanError
from .convert.verify import verify_conversion
from .formats import UnknownFormatError, available_formats, get_format
from .io import read_tensor
from .query import evaluate_query, parse_queries
from .remap import apply_remap, parse_remap


def _format_arg(spec: str):
    """Resolve a CLI format spec, turning lookup failures into exit codes."""
    try:
        return get_format(spec)
    except UnknownFormatError as exc:
        raise SystemExit(str(exc)) from exc


def _cmd_formats(_args) -> None:
    for name, fmt in sorted(available_formats().items()):
        levels = ", ".join(level.signature() for level in fmt.levels)
        print(f"{name:6s} remap: {fmt.remap}   levels: [{levels}]")
    print("BCSR<MxN> and HICOO<B> are parameterized (e.g. BCSR4x4, HICOO8).")


def _cmd_codegen(args) -> None:
    src_fmt, dst_fmt = _format_arg(args.src), _format_arg(args.dst)
    if args.backend == "native":
        # print the C translation unit directly — emission is pure, so
        # this works on hosts without a C toolchain
        from .convert.native import plan_native
        from .ir.native import NativeUnsupported

        try:
            print(plan_native(src_fmt, dst_fmt).source)
        except NativeUnsupported as exc:
            raise SystemExit(
                f"{src_fmt.name} -> {dst_fmt.name} has no native lowering: "
                f"{exc}"
            ) from exc
        return
    if args.backend == "chunked":
        chunked = default_engine().make_chunked(src_fmt, dst_fmt)
        if chunked is None:
            raise SystemExit(
                f"{src_fmt.name} -> {dst_fmt.name} has no chunked lowering "
                "(the pair is not vectorizable)"
            )
        print(chunked.source)
        return
    print(generated_source(src_fmt, dst_fmt, backend=args.backend))


def _parallel_arg(spec: str):
    """Resolve a CLI ``--parallel`` value (auto/off/worker count)."""
    if spec == "auto":
        return "auto"
    if spec == "off":
        return None
    try:
        workers = int(spec)
    except ValueError:
        raise SystemExit(
            f"--parallel expects 'auto', 'off' or a worker count, got {spec!r}"
        ) from None
    if workers < 1:
        raise SystemExit(f"--parallel worker count must be >= 1, got {workers}")
    return workers


def _cmd_plan(args) -> None:
    engine = (
        ConversionEngine(cache_dir=args.cache_dir)
        if args.cache_dir
        else default_engine()
    )
    if args.load:
        if args.src or args.dst or args.nnz is not None or args.backend:
            raise SystemExit(
                "--load replays the stored plan as-is; it cannot be "
                "combined with SRC/DST, --nnz or --backend"
            )
        try:
            with open(args.load) as handle:
                plan = ConversionPlan.from_json(handle.read(), engine=engine)
        except (OSError, PlanError) as exc:
            raise SystemExit(f"cannot load plan: {exc}") from exc
    else:
        if not (args.src and args.dst):
            raise SystemExit("plan needs SRC and DST (or --load FILE)")
        plan = engine.plan(
            _format_arg(args.src),
            _format_arg(args.dst),
            nnz=args.nnz,
            backend=args.backend,
        )
    if args.save:
        with open(args.save, "w") as handle:
            handle.write(plan.to_json(indent=2) + "\n")
        print(f"wrote {args.save}")
    if args.json:
        print(plan.to_json(indent=2))
    else:
        print(plan.explain())
    if args.show_code:
        for hop, source in zip(plan.hops, plan.sources()):
            if source is not None:
                print("\n" + source)
            elif hop.kind == "external":
                print(f"\n# {hop}: registered converter "
                      f"{hop.converter!r}, no generated source")
            else:
                print(f"\n# {hop}: bulk extraction, no generated source")


def _cmd_convert(args) -> None:
    src_fmt = _format_arg(args.source_format)
    dst_fmt = _format_arg(args.to)
    parallel = _parallel_arg(args.parallel)
    tensor = read_tensor(args.input, src_fmt)
    engine = (
        ConversionEngine(cache_dir=args.cache_dir)
        if args.cache_dir
        else default_engine()
    )
    # Routing engages only under the auto policies (mirrors engine.convert):
    # an explicit backend request always runs the direct conversion.
    route = None
    if args.route in (None, "auto") and args.backend == "auto":
        found = engine.route(src_fmt, dst_fmt, nnz=tensor.nnz_stored)
        if found.beats_direct:
            route = found
    parallel_before = engine.cache_stats()["parallel_conversions"]
    start = time.perf_counter()
    try:
        out = engine.convert(tensor, dst_fmt, backend=args.backend,
                             route=args.route, parallel=parallel)
    except (ValueError, PlanError) as exc:
        raise SystemExit(str(exc)) from exc
    elapsed = (time.perf_counter() - start) * 1e3
    parallel_ran = engine.cache_stats()["parallel_conversions"] > parallel_before
    out.check()
    print(
        f"{args.input}: {tensor.dims[0]}x{tensor.dims[1]}, {tensor.nnz} nonzeros"
    )
    print(f"{src_fmt.name} -> {dst_fmt.name} in {elapsed:.2f} ms (generated routine)")
    if parallel_ran:
        print("  chunked executor: ran chunk-parallel")
    elif route is not None:
        print(f"  routed: {route}")
    for (k, name), array in sorted(out.arrays.items()):
        print(f"  B{k + 1}_{name}: {len(array)} entries")
    for (k, name), value in sorted(out.metadata.items()):
        print(f"  B{k + 1}_{name} = {value}")
    print(f"  B_vals: {len(out.vals)} entries ({out.nnz} nonzero)")
    if args.cache_dir:
        stats = engine.cache_stats()
        print(
            f"  kernel cache {args.cache_dir}: "
            f"{stats['disk_hits']} disk hit(s), "
            f"{stats['disk_writes']} write(s), "
            f"{stats['compiles']} compile(s)"
        )
    if args.show_code:
        if parallel_ran:
            print("\n" + engine.make_chunked(src_fmt, dst_fmt).source)
        elif route is not None:
            # show what actually ran: the generated source of every
            # codegen hop (bridges and registered converters are library
            # calls, not generated code)
            for hop in route.hops:
                if hop.kind == "bridge":
                    print(f"\n# {hop}: bulk extraction, no generated source")
                elif hop.kind == "external":
                    print(f"\n# {hop}: registered converter "
                          f"{hop.converter!r}, no generated source")
                else:
                    print("\n" + engine.make_converter(
                        hop.src, hop.dst, backend=hop.kind
                    ).source)
        else:
            print("\n" + engine.make_converter(
                src_fmt, dst_fmt, backend=args.backend
            ).source)


def _cmd_convert_file(args) -> None:
    from .io.stream import DEFAULT_CHUNK_NNZ, StreamError
    from .stream import convert_file

    try:
        result = convert_file(
            args.input,
            args.to,
            args.out,
            chunk_nnz=args.chunk_nnz or DEFAULT_CHUNK_NNZ,
            engine=default_engine(),
            overwrite=args.overwrite,
        )
    except (StreamError, UnknownFormatError) as exc:
        raise SystemExit(str(exc)) from exc
    dims = "x".join(str(d) for d in result.dims)
    print(f"{args.input}: {dims}, {result.nnz} nonzeros (streamed)")
    print(
        f"COO -> {result.dst_format} in {result.elapsed_seconds * 1e3:.2f} ms "
        f"({result.passes} pass(es), {result.chunks} chunk(s) of "
        f"<= {result.chunk_nnz} nnz)"
    )
    print(f"  wrote {result.out_dir} (memmap level arrays + manifest.json)")
    print(
        f"  peak RSS {result.peak_rss_bytes / 1e6:.1f} MB vs "
        f"{result.source_bytes / 1e6:.1f} MB materialized source"
    )
    if args.show:
        tensor = result.load()
        for (k, name), array in sorted(tensor.arrays.items()):
            print(f"  B{k + 1}_{name}: {len(array)} entries")
        for (k, name), value in sorted(tensor.metadata.items()):
            print(f"  B{k + 1}_{name} = {value}")
        print(f"  B_vals: {len(tensor.vals)} entries")


def _cmd_route(args) -> None:
    src_fmt = _format_arg(args.src)
    dst_fmt = _format_arg(args.dst)
    engine = default_engine()
    route = engine.route(src_fmt, dst_fmt, nnz=args.nnz)
    if args.explain:
        print(route.explain())
        # competitor table: every implementation that was priced for each
        # hop's edge, best rank first, with its admission verdict
        for hop in route.hops:
            print(f"competitors for {hop.src.name} -> {hop.dst.name}:")
            for cand in engine.converters(hop.src, hop.dst, nnz=route.nnz):
                print(f"  {cand.describe()}")
    else:
        hops = ", ".join(route.backend_per_hop)
        print(f"{route} ({hops})")


def _cmd_stats(args) -> None:
    tensor = read_tensor(args.input)
    dims, coords = tensor.dims, list(tensor.to_coo())
    per_row = evaluate_query(
        parse_queries("select [i] -> count(j) as n", dim_names=["i", "j"])[0],
        coords,
    )
    remapped = apply_remap(parse_remap("(i,j) -> (j-i, i, j)"), coords)
    diagonals = evaluate_query(
        parse_queries("select [k] -> id() as ne", dim_names=["k", "i", "j"])[0],
        remapped,
    )
    print(f"{args.input}: {dims[0]}x{dims[1]}, {len(coords)} nonzeros")
    print(f"nonzero diagonals : {len(diagonals)}")
    print(f"max nnz per row   : {max(per_row.values()) if per_row else 0}")
    dia_pad = 1 - len(coords) / (len(diagonals) * dims[0]) if diagonals else 0.0
    print(f"DIA padding       : {dia_pad:.1%}")


def _cmd_verify(args) -> None:
    src_fmt = _format_arg(args.src)
    dst_fmt = _format_arg(args.dst)
    checked = verify_conversion(
        src_fmt,
        dst_fmt,
        trials=args.trials,
        max_dim=args.max_dim,
        seed=args.seed,
        backend=args.backend,
    )
    print(f"{src_fmt.name} -> {dst_fmt.name}: OK on {checked} randomized inputs")


def _cmd_compute(args) -> None:
    import numpy as np

    from .compute.plan import ComputePlan

    engine = (
        ConversionEngine(cache_dir=args.cache_dir)
        if args.cache_dir
        else default_engine()
    )
    if args.load:
        if args.op or args.src or args.to or args.nnz is not None:
            raise SystemExit(
                "--load replays the stored pipeline as-is; it cannot be "
                "combined with OP/SRC, --to or --nnz"
            )
        try:
            with open(args.load) as handle:
                plan = ComputePlan.from_json(handle.read(), engine=engine)
        except (OSError, PlanError) as exc:
            raise SystemExit(f"cannot load compute plan: {exc}") from exc
    else:
        if not (args.op and args.src):
            raise SystemExit("compute needs OP and SRC (or --load FILE)")
        try:
            plan = engine.plan_compute(
                _format_arg(args.src),
                args.op,
                _format_arg(args.to) if args.to else None,
                fuse=args.fuse,
                backend=args.backend,
                nnz=args.nnz,
            )
        except (ValueError, PlanError) as exc:
            raise SystemExit(str(exc)) from exc
    if args.save:
        with open(args.save, "w") as handle:
            handle.write(plan.to_json(indent=2) + "\n")
        print(f"wrote {args.save}")
    if args.json:
        print(plan.to_json(indent=2))
    else:
        print(plan.explain(engine.cost_model))
    if args.show_code:
        for label, source in plan.sources().items():
            print(f"\n# {label}")
            print(source)
    if args.input:
        tensor = read_tensor(args.input, plan.src)
        x = None
        if plan.op.name == "spmv":
            rng = np.random.default_rng(args.seed)
            x = rng.uniform(0.5, 1.5, tensor.dims[1])
        start = time.perf_counter()
        result = engine.run_compute_plan(
            plan, tensor, x=x, alpha=args.alpha
        )
        elapsed = (time.perf_counter() - start) * 1e3
        print(
            f"\n{args.input}: {plan.op.name} over {plan.src.name} "
            f"[{plan.fuse}] in {elapsed:.2f} ms"
        )
        if isinstance(result, np.ndarray):
            print(f"  result: {len(result)} entries, "
                  f"|y|_1 = {np.abs(result).sum():.6g}")
        else:
            print(f"  result: {result.format.name} tensor, "
                  f"{result.nnz} nonzeros")


def _cmd_serve_bench(args) -> None:
    """Drive a :mod:`repro.serve` HTTP server with concurrent mixed-pair
    load, reporting data-cache hit rate and p50/p99 request latency.

    With ``--check`` this doubles as the CI service smoke: it exits
    nonzero unless ``/healthz`` reports ok, repeated payloads produced a
    nonzero data-cache hit rate, and **every** response is bit-identical
    to a direct ``engine.convert`` of the same payload.
    """
    import json as jsonlib
    import urllib.request
    from concurrent.futures import ThreadPoolExecutor

    from .bench.table3 import _FORMATS
    from .matrices.synthetic import scattered
    from .serve import ServiceServer
    from .serve.wire import tensor_from_wire, tensor_to_wire
    from .storage.build import reference_build

    pairs = []
    for pair in args.pairs.split(","):
        src_name, _, dst_name = pair.partition("_")
        if not dst_name or src_name not in _FORMATS or dst_name not in _FORMATS:
            raise SystemExit(
                f"unknown pair {pair!r}; use src_dst with formats from "
                f"{', '.join(sorted(_FORMATS))}"
            )
        pairs.append((pair, _FORMATS[src_name], _FORMATS[dst_name]))

    # a few distinct payloads per pair, cycled so repeats hit the cache
    payloads = []
    for index, (pair, src, dst) in enumerate(pairs):
        for variant in range(args.distinct):
            dims, coords, vals = scattered(
                args.size, 4.0, 16, seed=args.seed + 31 * index + variant
            )
            tensor = reference_build(src, dims, coords, vals)
            payloads.append((pair, dst, tensor))

    with ServiceServer(port=0, batch_window=0.0) as server:
        base = f"http://127.0.0.1:{server.port}"

        def fire(shot):
            _, dst, tensor = shot
            body = jsonlib.dumps({
                "to": dst.name, "tensor": tensor_to_wire(tensor),
            }).encode()
            request = urllib.request.Request(
                base + "/convert", data=body,
                headers={"Content-Type": "application/json"},
            )
            started = time.perf_counter()
            with urllib.request.urlopen(request, timeout=120) as response:
                payload = jsonlib.loads(response.read())
            return time.perf_counter() - started, payload

        shots = [payloads[i % len(payloads)] for i in range(args.requests)]
        with ThreadPoolExecutor(max_workers=args.concurrency) as pool:
            outcomes = list(pool.map(fire, shots))

        health = jsonlib.loads(
            urllib.request.urlopen(base + "/healthz", timeout=30).read()
        )
        metrics = jsonlib.loads(
            urllib.request.urlopen(
                base + "/metrics?format=json", timeout=30
            ).read()
        )

    latencies = sorted(seconds for seconds, _ in outcomes)
    statuses: dict = {}
    for _, payload in outcomes:
        statuses[payload["status"]] = statuses.get(payload["status"], 0) + 1
    counters = metrics["counters"]
    served_cheap = (counters["data_hits"] + counters["coalesced"]
                    + counters["prefix_hits"])
    hit_rate = served_cheap / max(counters["responses"], 1)

    def quantile(q: float) -> float:
        return latencies[min(int(q * len(latencies)), len(latencies) - 1)]

    print(f"{len(outcomes)} requests over {len(pairs)} pair(s), "
          f"{args.concurrency} concurrent")
    print("statuses          : "
          + ", ".join(f"{k}={v}" for k, v in sorted(statuses.items())))
    print(f"cache hit rate    : {hit_rate:.1%} "
          f"(data {counters['data_hits']}, coalesced {counters['coalesced']}, "
          f"prefix {counters['prefix_hits']})")
    print(f"engine conversions: {counters['full_conversions']}")
    print(f"latency p50/p99   : {quantile(0.50) * 1e3:.2f} / "
          f"{quantile(0.99) * 1e3:.2f} ms")

    if not args.check:
        return
    problems = []
    if not health.get("ok"):
        problems.append("healthz did not report ok")
    if counters["data_hits"] == 0:
        problems.append("no data-cache hits despite repeated payloads")
    # bit-identity: every response must match a direct engine conversion
    direct_engine = ConversionEngine()
    expected = {}
    for _, payload in outcomes:
        digest = payload["digest"]
        out = tensor_from_wire(payload["tensor"])
        key = (digest, out.format.name)
        if key not in expected:
            source = next(
                tensor for _, _, tensor in payloads
                if tensor.content_digest() == digest
            )
            expected[key] = direct_engine.convert(
                source, out.format
            ).content_digest()
        if out.content_digest() != expected[key]:
            problems.append(
                f"response for {key} differs from direct convert()"
            )
    if problems:
        print(f"\n{len(problems)} service smoke violation(s):")
        for line in problems:
            print(f"  {line}")
        raise SystemExit(1)
    print("\nservice smoke clean: healthy, cache hits observed, every "
          "response bit-identical to direct convert()")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("formats", help="list registered formats")

    codegen = sub.add_parser("codegen", help="print a generated routine")
    codegen.add_argument("src")
    codegen.add_argument("dst")
    codegen.add_argument("--backend",
                         choices=["auto", "scalar", "vector", "chunked",
                                  "native"],
                         default="scalar",
                         help="lowering backend (default: scalar, the paper's loops)")

    plan = sub.add_parser(
        "plan", help="show, save or replay the conversion plan for a pair"
    )
    plan.add_argument("src", nargs="?", default=None)
    plan.add_argument("dst", nargs="?", default=None)
    plan.add_argument("--json", action="store_true",
                      help="print the plan as JSON instead of the transcript")
    plan.add_argument("--save", metavar="FILE", default=None,
                      help="write the plan JSON to FILE")
    plan.add_argument("--load", metavar="FILE", default=None,
                      help="load a plan from FILE instead of planning SRC DST")
    plan.add_argument("--nnz", type=int, default=None,
                      help="stored-component count the plan is costed at "
                           "(default: bulk sizes)")
    plan.add_argument("--backend",
                      choices=["auto", "scalar", "vector", "native"],
                      default=None, help="lowering backend policy")
    plan.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="persistent kernel cache directory the plan's "
                           "engine compiles into / loads from")
    plan.add_argument("--show-code", action="store_true",
                      help="also print the generated source of every hop")

    convert = sub.add_parser("convert", help="convert a Matrix Market file")
    convert.add_argument("input")
    convert.add_argument("--from", dest="source_format", default="COO")
    convert.add_argument("--to", required=True)
    convert.add_argument("--show-code", action="store_true")
    convert.add_argument("--backend",
                         choices=["auto", "scalar", "vector", "native"],
                         default="auto",
                         help="lowering backend (default: auto)")
    convert.add_argument("--route", choices=["auto", "direct"], default=None,
                         help="multi-hop routing policy (default: auto; an "
                              "explicit --route auto conflicts with an "
                              "explicit non-auto --backend)")
    convert.add_argument("--parallel", default="auto", metavar="auto|off|N",
                         help="chunked executor: 'auto' (size threshold), "
                              "'off', or a worker count (default: auto)")
    convert.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="persistent kernel cache: compiled kernels are "
                              "written here and loaded on the next run, so "
                              "warm starts compile nothing")

    convert_file = sub.add_parser(
        "convert-file",
        help="out-of-core conversion: stream a file into memmap arrays",
    )
    convert_file.add_argument("input", help="Matrix Market (.mtx/.mtx.gz) or "
                                            "binary coordinate stream")
    convert_file.add_argument("--to", required=True)
    convert_file.add_argument("--out", required=True, metavar="DIR",
                              help="destination directory for the level "
                                   "arrays and manifest")
    convert_file.add_argument("--chunk-nnz", type=int, default=None,
                              help="entries per streamed chunk "
                                   "(default: 1Mi)")
    convert_file.add_argument("--overwrite", action="store_true",
                              help="replace an existing output directory")
    convert_file.add_argument("--show", action="store_true",
                              help="also print the per-level array sizes")

    route = sub.add_parser("route", help="show the conversion route for a pair")
    route.add_argument("src")
    route.add_argument("dst")
    route.add_argument("--explain", action="store_true",
                       help="print the full routing transcript")
    route.add_argument("--nnz", type=int, default=None,
                       help="expected stored-component count the cost model "
                            "plans for (default: bulk sizes)")

    stats = sub.add_parser("stats", help="attribute-query statistics of a file")
    stats.add_argument("input")

    verify = sub.add_parser("verify", help="differentially verify a pair")
    verify.add_argument("src")
    verify.add_argument("dst")
    verify.add_argument("--trials", type=int, default=25)
    verify.add_argument("--max-dim", type=int, default=10)
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument("--backend",
                        choices=["auto", "scalar", "vector", "native"],
                        default="auto", help="lowering backend under test")

    compute = sub.add_parser(
        "compute",
        help="show, save, replay or run a fused convert-and-compute "
             "pipeline",
    )
    compute.add_argument("op", nargs="?", default=None,
                         help="compute op: spmv, row_reduce or scale")
    compute.add_argument("src", nargs="?", default=None,
                         help="source format spec")
    compute.add_argument("--to", default=None, metavar="DST",
                         help="destination format the op would consume "
                              "(omit: the op reads the source directly)")
    compute.add_argument("--fuse", choices=["auto", "fused", "materialize"],
                         default="auto",
                         help="fusion policy (default: auto — fuse only "
                              "when the measured cost model says it wins)")
    compute.add_argument("--backend",
                         choices=["auto", "scalar", "vector", "native"],
                         default=None, help="compute-kernel lowering backend")
    compute.add_argument("--nnz", type=int, default=None,
                         help="stored-component count the pipeline is "
                              "costed at (default: bulk sizes)")
    compute.add_argument("--json", action="store_true",
                         help="print the plan as JSON instead of the "
                              "transcript")
    compute.add_argument("--save", metavar="FILE", default=None,
                         help="write the compute-plan JSON to FILE")
    compute.add_argument("--load", metavar="FILE", default=None,
                         help="load a compute plan from FILE instead of "
                              "planning OP SRC")
    compute.add_argument("--input", metavar="MTX", default=None,
                         help="also run the pipeline on a Matrix Market "
                              "file (spmv uses a seeded random operand)")
    compute.add_argument("--alpha", type=float, default=None,
                         help="scalar for the 'scale' op")
    compute.add_argument("--seed", type=int, default=0,
                         help="seed for the spmv operand vector")
    compute.add_argument("--show-code", action="store_true",
                         help="also print the generated source of every hop")
    compute.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="persistent kernel cache directory")

    serve_bench = sub.add_parser(
        "serve-bench",
        help="drive the HTTP conversion service with concurrent load",
    )
    serve_bench.add_argument("--requests", type=int, default=48,
                             help="total requests to fire (default 48)")
    serve_bench.add_argument("--concurrency", type=int, default=8,
                             help="concurrent client threads (default 8)")
    serve_bench.add_argument("--pairs", default="coo_csr,coo_dia,hash_csr",
                             help="comma-separated src_dst conversion pairs")
    serve_bench.add_argument("--distinct", type=int, default=3,
                             help="distinct payloads per pair (default 3; "
                                  "requests cycle over them, so repeats "
                                  "exercise the data cache)")
    serve_bench.add_argument("--size", type=int, default=150,
                             help="payload matrix dimension (default 150)")
    serve_bench.add_argument("--seed", type=int, default=0)
    serve_bench.add_argument("--check", action="store_true",
                             help="exit nonzero unless the service is "
                                  "healthy, the data cache hit, and every "
                                  "response is bit-identical to a direct "
                                  "convert()")

    args = parser.parse_args(argv)
    {
        "formats": _cmd_formats,
        "codegen": _cmd_codegen,
        "plan": _cmd_plan,
        "convert": _cmd_convert,
        "convert-file": _cmd_convert_file,
        "route": _cmd_route,
        "stats": _cmd_stats,
        "verify": _cmd_verify,
        "compute": _cmd_compute,
        "serve-bench": _cmd_serve_bench,
    }[args.command](args)


if __name__ == "__main__":
    main()
