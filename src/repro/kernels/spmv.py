"""Sparse matrix-vector multiplication kernels, one per format.

These kernels are the *motivating substrate* of the paper's introduction:
applications import data in COO, then convert to CSR/DIA/ELL because those
formats compute SpMV faster.  Each kernel operates directly on a tensor's
native data structures (vectorized with numpy — the kernels are library
code, not generated code), so the examples can demonstrate the
import-convert-compute pipeline end to end.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from ..formats.format import FormatError
from ..storage.tensor import Tensor

_DISPATCH: Dict[Tuple, Callable] = {}


def _dispatch_table() -> Dict[Tuple, Callable]:
    """Structural-key → kernel map, built on first use.

    Keyed by :func:`~repro.convert.planner.structural_key` rather than
    the format's display name, so registered structural twins (say a
    ``"MyCSR"`` with CSR's exact level layout) hit the fast CSR kernel
    instead of falling through to the oracle traversal — the same
    identity the engine's kernel cache dispatches on.
    """
    if not _DISPATCH:
        from ..convert.planner import structural_key
        from ..formats import library

        for fmt, impl in (
            (library.COO, _coo_spmv),
            (library.CSR, _csr_spmv),
            (library.CSC, _csc_spmv),
            (library.DIA, _dia_spmv),
            (library.ELL, _ell_spmv),
            (library.SKY, _sky_spmv),
            (library.DCSR, _dcsr_spmv),
        ):
            _DISPATCH[structural_key(fmt)] = impl
    return _DISPATCH


def spmv(tensor: Tensor, x: np.ndarray) -> np.ndarray:
    """``y = A @ x`` for a matrix in any supported format.

    Dispatches on the format's *structural key* (not its name, so
    renamed registered twins take the specialized path too); unknown
    structures fall back to the (slow) oracle traversal.
    """
    if tensor.format.order != 2:
        raise FormatError("spmv requires a matrix")
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (tensor.dims[1],):
        raise ValueError(f"x has shape {x.shape}, expected ({tensor.dims[1]},)")
    from ..convert.planner import structural_key

    key = structural_key(tensor.format)
    impl = _dispatch_table().get(key)
    if impl is not None:
        return impl(tensor, x)
    # BCSR is parameterized (one structure per block shape): rebuild the
    # canonical format at this tensor's block parameters and compare keys.
    params = tensor.format.params
    if "M" in params and "N" in params:
        from ..formats.library import BCSR

        if key == structural_key(BCSR(params["M"], params["N"])):
            return _bcsr_spmv(tensor, x)
    return _generic_spmv(tensor, x)


def _coo_spmv(tensor: Tensor, x: np.ndarray) -> np.ndarray:
    rows = tensor.array(0, "crd")
    cols = tensor.array(1, "crd")
    y = np.zeros(tensor.dims[0])
    np.add.at(y, rows, tensor.vals * x[cols])
    return y


def _csr_spmv(tensor: Tensor, x: np.ndarray) -> np.ndarray:
    pos = tensor.array(1, "pos")
    crd = tensor.array(1, "crd")
    y = np.zeros(tensor.dims[0])
    contrib = tensor.vals * x[crd]
    row_of = np.repeat(np.arange(tensor.dims[0]), np.diff(pos))
    np.add.at(y, row_of, contrib)
    return y


def _csc_spmv(tensor: Tensor, x: np.ndarray) -> np.ndarray:
    pos = tensor.array(1, "pos")
    crd = tensor.array(1, "crd")  # row coordinates
    y = np.zeros(tensor.dims[0])
    col_of = np.repeat(np.arange(tensor.dims[1]), np.diff(pos))
    np.add.at(y, crd, tensor.vals * x[col_of])
    return y


def _dia_spmv(tensor: Tensor, x: np.ndarray) -> np.ndarray:
    """Per-diagonal vectorized adds — the access pattern DIA exists for."""
    nrows, ncols = tensor.dims
    perm = tensor.array(0, "perm")
    count = tensor.meta(0, "K")
    y = np.zeros(nrows)
    vals = tensor.vals
    for p in range(count):
        offset = int(perm[p])
        lo = max(0, -offset)
        hi = min(nrows, ncols - offset)
        if hi <= lo:
            continue
        y[lo:hi] += vals[p * nrows + lo : p * nrows + hi] * x[lo + offset : hi + offset]
    return y


def _ell_spmv(tensor: Tensor, x: np.ndarray) -> np.ndarray:
    """Per-slice vectorized adds; padding contributes zero."""
    nrows = tensor.dims[0]
    crd = tensor.array(2, "crd")
    count = tensor.meta(0, "K")
    y = np.zeros(nrows)
    vals = tensor.vals
    for k in range(count):
        sl = slice(k * nrows, (k + 1) * nrows)
        y += vals[sl] * x[crd[sl]]
    return y


def _sky_spmv(tensor: Tensor, x: np.ndarray) -> np.ndarray:
    nrows = tensor.dims[0]
    pos = tensor.array(1, "pos")
    y = np.zeros(nrows)
    vals = tensor.vals
    for i in range(nrows):
        start, end = int(pos[i]), int(pos[i + 1])
        if end > start:
            first_col = i - (end - start) + 1
            y[i] = vals[start:end] @ x[first_col : i + 1]
    return y


def _dcsr_spmv(tensor: Tensor, x: np.ndarray) -> np.ndarray:
    """Iterate only the stored (nonempty) rows — the hypersparse payoff."""
    row_crd = tensor.array(0, "crd")
    pos = tensor.array(1, "pos")
    crd = tensor.array(1, "crd")
    y = np.zeros(tensor.dims[0])
    vals = tensor.vals
    for p in range(len(row_crd)):
        start, end = int(pos[p]), int(pos[p + 1])
        y[row_crd[p]] += vals[start:end] @ x[crd[start:end]]
    return y


def _bcsr_spmv(tensor: Tensor, x: np.ndarray) -> np.ndarray:
    block_rows = tensor.format.params["M"]
    block_cols = tensor.format.params["N"]
    pos = tensor.array(1, "pos")
    crd = tensor.array(1, "crd")
    y = np.zeros(tensor.dims[0] + block_rows)  # slack for edge blocks
    x_pad = np.zeros(tensor.dims[1] + block_cols)
    x_pad[: tensor.dims[1]] = x
    vals = tensor.vals
    nblock_rows = len(pos) - 1
    for bi in range(nblock_rows):
        for p in range(int(pos[bi]), int(pos[bi + 1])):
            bj = int(crd[p])
            block = vals[
                p * block_rows * block_cols : (p + 1) * block_rows * block_cols
            ].reshape(block_rows, block_cols)
            y[bi * block_rows : (bi + 1) * block_rows] += block @ x_pad[
                bj * block_cols : (bj + 1) * block_cols
            ]
    return y[: tensor.dims[0]]


def _generic_spmv(tensor: Tensor, x: np.ndarray) -> np.ndarray:
    y = np.zeros(tensor.dims[0])
    for (i, j), value in tensor.to_coo(skip_zeros=True).items():
        y[i] += value * x[j]
    return y
