"""Compute kernels over sparse tensors (the conversions' raison d'être)."""

from .spmv import spmv

__all__ = ["spmv"]
