"""repro — reproduction of *Automatic Generation of Efficient Sparse Tensor
Format Conversion Routines* (Chou, Kjolstad, Amarasinghe; PLDI 2020).

The library generates conversion routines between sparse tensor formats
from three per-format specifications, exactly as the paper describes:

* a **coordinate remapping** (:mod:`repro.remap`) describing how the format
  groups and orders nonzeros;
* **attribute queries** (:mod:`repro.query`) describing the statistics its
  assembly needs, compiled through concrete index notation
  (:mod:`repro.cin`) with the Table 1 optimizations;
* **level formats** (:mod:`repro.levels`) implementing the iteration and
  assembly level-function interfaces.

Quickstart::

    import repro
    from repro.formats import COO, CSR, DIA

    coo = repro.build(COO, dims=(4, 6), coords=[(0, 0), (3, 4)], vals=[5.0, 1.0])
    csr = repro.convert(coo, CSR)
    dia = repro.convert(csr, DIA)
    print(repro.generated_source(CSR, DIA))   # the generated routine
"""

from .convert import (
    CompiledConversion,
    ConversionEngine,
    ConversionPlan,
    ConversionRoute,
    CostModel,
    PlanError,
    PlanOptions,
    convert,
    default_engine,
    generated_source,
    make_converter,
)
from .formats import (
    Format,
    FormatError,
    get_format,
    make_format,
    parse_format_spec,
    register_format,
)
from .query import QuerySpec, evaluate_query, parse_queries
from .remap import Remap, parse_remap
from .storage import Tensor, from_dense, reference_build
from .stream import StreamResult, convert_file, load_result

__version__ = "1.0.0"


def build(format, dims, coords, vals):
    """Build a tensor in ``format`` from coordinate/value lists.

    Uses the hand-written reference builders (:mod:`repro.storage.build`);
    equivalent tensors can also be produced by converting from COO with
    generated code.
    """
    return reference_build(format, dims, coords, vals)


__all__ = [
    "CompiledConversion",
    "ConversionEngine",
    "ConversionPlan",
    "ConversionRoute",
    "CostModel",
    "Format",
    "FormatError",
    "PlanError",
    "PlanOptions",
    "QuerySpec",
    "Remap",
    "Tensor",
    "build",
    "convert",
    "default_engine",
    "evaluate_query",
    "from_dense",
    "generated_source",
    "get_format",
    "make_converter",
    "make_format",
    "parse_format_spec",
    "parse_remap",
    "parse_queries",
    "reference_build",
    "register_format",
]
