"""Parser for the textual attribute query language (Section 5.1).

Concrete syntax::

    select [i1,...,im] -> <aggr1> as label1, ..., <aggrn> as labeln

where each aggregation is ``count(i...)``, ``max(i)``, ``min(i)`` or
``id()``.  Index variables refer to dimensions of the (remapped) tensor the
query runs over; the caller supplies the dimension names in order (defaults
to ``i1..iN``).
"""

from __future__ import annotations

import re
from typing import Sequence, Tuple

from .spec import AGGREGATIONS, QuerySpec


class QuerySyntaxError(ValueError):
    """Raised when query text does not conform to the grammar."""


_QUERY_RE = re.compile(
    r"^\s*select\s*\[(?P<group>[^\]]*)\]\s*->\s*(?P<aggrs>.+?)\s*$",
    re.DOTALL,
)
_AGGR_RE = re.compile(
    r"^\s*(?P<fn>\w+)\s*\(\s*(?P<args>[^)]*)\s*\)\s+as\s+(?P<label>\w+)\s*$"
)


def _split_vars(text: str) -> Tuple[str, ...]:
    text = text.strip()
    if not text:
        return ()
    return tuple(part.strip() for part in text.split(","))


def _split_aggregations(text: str) -> Tuple[str, ...]:
    """Split the aggregation list on commas outside parentheses
    (``count(j,k) as a, max(j) as b`` has a comma inside ``count``)."""
    parts = []
    depth = 0
    current = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return tuple(parts)


def parse_queries(
    text: str, dim_names: Sequence[str] = None, ndims: int = None
) -> Tuple[QuerySpec, ...]:
    """Parse one ``select`` statement into one :class:`QuerySpec` per
    aggregation.

    ``dim_names`` maps index-variable names to dimension indices by
    position; if omitted, ``ndims`` must be given and names default to
    ``i1..iN``.
    """
    if dim_names is None:
        if ndims is None:
            raise ValueError("either dim_names or ndims is required")
        dim_names = [f"i{d + 1}" for d in range(ndims)]
    index = {name: d for d, name in enumerate(dim_names)}

    match = _QUERY_RE.match(text)
    if match is None:
        raise QuerySyntaxError(f"malformed query {text!r}")

    def resolve(names: Tuple[str, ...]) -> Tuple[int, ...]:
        out = []
        for name in names:
            if name not in index:
                raise QuerySyntaxError(
                    f"unknown index variable {name!r} (known: {list(index)})"
                )
            out.append(index[name])
        return tuple(out)

    group = resolve(_split_vars(match.group("group")))
    specs = []
    for part in _split_aggregations(match.group("aggrs")):
        aggr_match = _AGGR_RE.match(part)
        if aggr_match is None:
            raise QuerySyntaxError(f"malformed aggregation {part.strip()!r}")
        fn = aggr_match.group("fn")
        if fn not in AGGREGATIONS:
            raise QuerySyntaxError(f"unknown aggregation {fn!r}")
        args = resolve(_split_vars(aggr_match.group("args")))
        try:
            specs.append(QuerySpec(group, fn, args, aggr_match.group("label")))
        except ValueError as exc:
            raise QuerySyntaxError(str(exc)) from exc
    return tuple(specs)
