"""Attribute query specifications (the semantic core of Section 5).

A :class:`QuerySpec` is the internal, name-free form of an attribute query

.. code-block:: text

    select [i1,...,im] -> aggr(...) as label

over the *remapped* coordinate space of a conversion: ``group_by`` and the
aggregation arguments are indices of remapped (destination) dimensions.
Level formats declare the queries their assembly needs as ``QuerySpec``
objects (Figures 7 and 11); the textual language of Section 5.1 parses to
the same representation (:mod:`repro.query.parser`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Aggregation functions of the attribute query language (Section 5.1).
AGGREGATIONS = ("count", "max", "min", "id")


@dataclass(frozen=True)
class QuerySpec:
    """One aggregation of one ``select`` statement.

    ``group_by``
        Remapped dimension indices the result is keyed by; the result is
        conceptually a map from those coordinates to the aggregated value
        (a scalar when empty).
    ``aggr``
        One of ``count``, ``max``, ``min``, ``id``.
    ``args``
        Remapped dimension indices aggregated over.  ``count`` accepts one
        or more; ``max``/``min`` exactly one; ``id`` none.
    ``label``
        Name used to reference the result (the ``as`` clause).
    """

    group_by: Tuple[int, ...]
    aggr: str
    args: Tuple[int, ...]
    label: str

    def __post_init__(self) -> None:
        if self.aggr not in AGGREGATIONS:
            raise ValueError(f"unknown aggregation {self.aggr!r}")
        if self.aggr == "id" and self.args:
            raise ValueError("id() takes no arguments")
        if self.aggr in ("max", "min") and len(self.args) != 1:
            raise ValueError(f"{self.aggr}() takes exactly one dimension")
        if self.aggr == "count" and not self.args:
            raise ValueError("count() needs at least one dimension")
        for dim in self.args:
            if dim in self.group_by:
                raise ValueError(
                    f"dimension {dim} both grouped and aggregated in {self.label!r}"
                )

    def describe(self, dim_names=None) -> str:
        """Render as the paper's concrete syntax, for docs and debugging."""

        def name(d: int) -> str:
            return dim_names[d] if dim_names else f"i{d + 1}"

        group = ",".join(name(d) for d in self.group_by)
        args = ",".join(name(d) for d in self.args)
        return f"select [{group}] -> {self.aggr}({args}) as {self.label}"
