"""Reference (brute-force) evaluation of attribute queries.

Computes query results directly from a list of remapped nonzero
coordinates, following the semantics of Section 5.1 literally.  Used as
the oracle for the optimized analysis code the compiler generates.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from .spec import QuerySpec


def evaluate_query(
    spec: QuerySpec, remapped_coords: Iterable[Sequence[int]]
) -> Dict[Tuple[int, ...], int]:
    """Evaluate ``spec`` over remapped nonzero coordinates.

    Returns a map from group-by coordinates (a tuple, empty for global
    aggregations) to the aggregated value:

    * ``count`` — number of distinct nonzero subtensors identified by the
      grouped + counted dimensions;
    * ``max``/``min`` — extreme coordinate along the aggregated dimension;
    * ``id`` — 1 for every group that contains a nonzero.

    Groups with no nonzeros are absent from the result (callers supply the
    defaults: count 0, ``id`` 0, ``max`` lo-1, ``min`` hi+1).
    """
    coords = [tuple(c) for c in remapped_coords]
    if spec.aggr == "id":
        return {tuple(c[d] for d in spec.group_by): 1 for c in coords}
    if spec.aggr == "count":
        seen = {tuple(c[d] for d in spec.group_by + spec.args) for c in coords}
        out: Dict[Tuple[int, ...], int] = {}
        group_len = len(spec.group_by)
        for key in seen:
            group = key[:group_len]
            out[group] = out.get(group, 0) + 1
        return out
    # max / min
    dim = spec.args[0]
    out = {}
    for c in coords:
        group = tuple(c[d] for d in spec.group_by)
        value = c[dim]
        if group not in out:
            out[group] = value
        elif spec.aggr == "max":
            out[group] = max(out[group], value)
        else:
            out[group] = min(out[group], value)
    return out
