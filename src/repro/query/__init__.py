"""Attribute query language (Section 5): specs, parser, reference eval.

The compilation pipeline for queries lives in :mod:`repro.cin` (concrete
index notation + the Table 1 transformations).
"""

from .evaluate import evaluate_query
from .parser import QuerySyntaxError, parse_queries
from .spec import AGGREGATIONS, QuerySpec

__all__ = [
    "AGGREGATIONS",
    "QuerySpec",
    "QuerySyntaxError",
    "evaluate_query",
    "parse_queries",
]
