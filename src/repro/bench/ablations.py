"""Ablation benchmarks for the design choices DESIGN.md calls out.

* **A1 — counter lowering** (Section 4.2): scalar counter register vs a
  forced counter array for CSR→ELL, where the rows are iterated in order
  and the scalar register suffices.
* **A2 — attribute query optimization** (Section 5.2 / Table 1):
  CSR→ELL with and without simplify-width-count, i.e. computing K from
  ``pos`` differences vs a full histogram pass over the nonzeros.
* **A3 — edge insertion variant** (Section 6.1): sequenced vs unsequenced
  (``prefix_sum``-finalized) edge insertion for COO→CSR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..convert import PlanOptions, make_converter
from ..formats.library import COO, CSR, ELL
from ..matrices.suite import SuiteMatrix, suite
from .timing import format_table, geomean, time_call


@dataclass
class AblationResult:
    matrix: str
    base_seconds: float
    variant_ratio: float


def _timer(converter, tensor) -> Callable[[], object]:
    args = converter.arguments(tensor)
    return lambda: converter.func(*args)


def _run(
    matrices: List[SuiteMatrix],
    src_format,
    dst_format,
    variant: PlanOptions,
    repeats: int,
    predicate=None,
) -> List[AblationResult]:
    # Ablations compare scalar code shapes (counter arrays, unsequenced
    # edges, ...), so both sides pin the scalar backend: under "auto" the
    # default-options base would silently lower through the vector backend
    # and the ratio would measure backends, not the ablated optimization.
    base = make_converter(src_format, dst_format, backend="scalar")
    alt = make_converter(src_format, dst_format, variant, backend="scalar")
    results = []
    for entry in matrices:
        if predicate and not predicate(entry):
            continue
        tensor = entry.tensor(src_format)
        base_time = time_call(_timer(base, tensor), repeats)
        alt_time = time_call(_timer(alt, tensor), repeats)
        results.append(AblationResult(entry.name, base_time, alt_time / base_time))
    return results


def run_ablations(
    matrices: Optional[List[SuiteMatrix]] = None, repeats: int = 3
) -> Dict[str, List[AblationResult]]:
    """Run all three ablations; ratios > 1 mean the optimization helps."""
    matrices = matrices if matrices is not None else suite()
    ell_ok = lambda entry: entry.ell_padding_ratio() <= 0.75
    return {
        "A1 scalar counter vs counter array (csr_ell)": _run(
            matrices, CSR, ELL, PlanOptions(force_counter_arrays=True),
            repeats, ell_ok,
        ),
        "A2 width-count vs histogram analysis (csr_ell)": _run(
            matrices, CSR, ELL, PlanOptions(disable_width_count=True),
            repeats, ell_ok,
        ),
        "A3 sequenced vs unsequenced edges (coo_csr)": _run(
            matrices, COO, CSR, PlanOptions(force_unsequenced_edges=True),
            repeats,
        ),
    }


def render_ablations(results: Dict[str, List[AblationResult]]) -> str:
    out = []
    for title, rows in results.items():
        headers = ["matrix", "optimized (ms)", "ablated / optimized"]
        body = [
            [r.matrix, f"{r.base_seconds * 1e3:.2f}", f"{r.variant_ratio:.2f}"]
            for r in rows
        ]
        mean = geomean([r.variant_ratio for r in rows])
        body.append(["Geomean", "", f"{mean:.2f}" if mean else ""])
        out.append(f"== {title} ==\n{format_table(headers, body)}")
    return "\n\n".join(out)
