"""Table 2 reproduction: statistics of the benchmark matrices.

Prints the synthetic suite's dimensions, nonzero counts, nonzero-diagonal
counts and maximum row degrees next to the originals' published numbers,
so the structural correspondence is auditable.
"""

from __future__ import annotations

from typing import List, Optional

from ..matrices.suite import SuiteMatrix, suite
from .timing import format_table


def run_table2(matrices: Optional[List[SuiteMatrix]] = None) -> List[dict]:
    """Compute Table 2 statistics for every suite matrix."""
    matrices = matrices if matrices is not None else suite()
    rows = []
    for entry in matrices:
        stats = entry.stats()
        rows.append(
            {
                "name": entry.name,
                "paper_name": entry.paper_name,
                "class": entry.class_name,
                "symmetric": entry.symmetric,
                **stats,
                "dia_padding": entry.dia_padding_ratio(),
                "ell_padding": entry.ell_padding_ratio(),
                "paper": entry.paper_stats,
            }
        )
    return rows


def render_table2(rows: List[dict]) -> str:
    """Text rendering comparing synthetic and paper statistics."""
    headers = [
        "matrix", "dims", "nnz", "diags", "max/row",
        "paper dims", "paper nnz", "paper diags", "paper max/row", "sym",
    ]
    body = []
    for row in rows:
        paper_rows, paper_cols, paper_nnz, paper_diags, paper_max = row["paper"]
        body.append(
            [
                row["name"],
                f"{row['rows']}x{row['cols']}",
                str(row["nnz"]),
                str(row["diagonals"]),
                str(row["max_per_row"]),
                f"{paper_rows}x{paper_cols}",
                str(paper_nnz),
                str(paper_diags),
                str(paper_max),
                "yes" if row["symmetric"] else "no",
            ]
        )
    return format_table(headers, body)
