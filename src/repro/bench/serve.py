"""Serving benchmark: cold vs. warm (data-cache hit) request latency.

``python -m repro.bench serve`` submits each pair's conversion through a
:class:`~repro.serve.service.ConversionService` twice over — once with
the data cache emptied (the request executes the full plan) and once
against the warm cache (the request is answered with zero engine work) —
and reports the medians.  Kernels are compiled before timing starts, so
the cold number is the engine actually converting, not the compiler.

The JSON report (``serve_json``) uses the backends-report cell layout,
so ``python -m repro.bench compare`` diffs two serve reports directly:
the ``warm_seconds`` field is gated exactly like the other fast paths
(the committed ``BENCH_serve.json`` is the reference run at the ~1M-nnz
chem_master1 shape).
"""

from __future__ import annotations

import asyncio
import statistics
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..convert.engine import ConversionEngine
from ..matrices.suite import SuiteMatrix
from .table3 import _FORMATS, BACKEND_COLUMNS
from .timing import format_table

__all__ = ["ServeCellResult", "render_serve", "run_serve", "serve_json"]


@dataclass
class ServeCellResult:
    """Cold/warm service latency for one (pair, matrix) cell."""

    pair: str
    matrix: str
    nnz: int
    cold_seconds: float
    warm_seconds: float
    cold_status: str
    warm_status: str
    hops: int

    @property
    def speedup(self) -> Optional[float]:
        if self.warm_seconds <= 0:
            return None
        return self.cold_seconds / self.warm_seconds


def _measure(matrix: SuiteMatrix, pair: str, repeats: int) -> ServeCellResult:
    src_name, dst_name = pair.split("_", 1)
    src, dst = _FORMATS[src_name], _FORMATS[dst_name]
    tensor = matrix.tensor(src)

    async def drive() -> ServeCellResult:
        from ..serve.service import ConversionService

        engine = ConversionEngine()
        service = ConversionService(engine=engine, batch_window=0.0)
        try:
            # compile the pair's kernels outside the timed region
            first = await service.submit(tensor, dst)
            hops = max(first.hops_executed, 1)
            cold_times: List[float] = []
            for _ in range(repeats):
                service.cache.clear()
                started = time.perf_counter()
                result = await service.submit(tensor, dst)
                cold_times.append(time.perf_counter() - started)
                cold_status = result.status
            warm_times: List[float] = []
            for _ in range(repeats):
                started = time.perf_counter()
                result = await service.submit(tensor, dst)
                warm_times.append(time.perf_counter() - started)
                warm_status = result.status
            return ServeCellResult(
                pair=pair,
                matrix=matrix.name,
                nnz=tensor.nnz_stored,
                cold_seconds=statistics.median(cold_times),
                warm_seconds=statistics.median(warm_times),
                cold_status=cold_status,
                warm_status=warm_status,
                hops=hops,
            )
        finally:
            await service.close()

    return asyncio.run(drive())


def run_serve(
    matrices: List[SuiteMatrix],
    pairs: Optional[List[str]] = None,
    repeats: int = 3,
) -> Dict[str, List[ServeCellResult]]:
    """Cold/warm service latency for every (pair, matrix) cell."""
    pairs = pairs or BACKEND_COLUMNS
    results: Dict[str, List[ServeCellResult]] = {}
    for pair in pairs:
        results[pair] = [
            _measure(matrix, pair, repeats) for matrix in matrices
        ]
    return results


def render_serve(results: Dict[str, List[ServeCellResult]]) -> str:
    """Text table: one row per (pair, matrix) cell."""
    headers = ["pair", "matrix", "nnz", "cold (ms)", "warm (ms)",
               "speedup", "warm status"]
    rows = []
    for pair, cells in results.items():
        for cell in cells:
            speedup = cell.speedup
            rows.append([
                pair,
                cell.matrix,
                str(cell.nnz),
                f"{cell.cold_seconds * 1e3:.3f}",
                f"{cell.warm_seconds * 1e3:.3f}",
                f"{speedup:.1f}x" if speedup is not None else "-",
                cell.warm_status,
            ])
    return format_table(headers, rows)


def serve_json(results: Dict[str, List[ServeCellResult]]) -> Dict:
    """The report in the backends-JSON cell layout, so ``bench compare``
    gates ``warm_seconds`` between two serve reports."""
    return {
        pair: {
            "cells": [
                {
                    "matrix": cell.matrix,
                    "nnz": cell.nnz,
                    "cold_seconds": cell.cold_seconds,
                    "warm_seconds": cell.warm_seconds,
                    "speedup": cell.speedup,
                    "cold_status": cell.cold_status,
                    "warm_status": cell.warm_status,
                    "hops": cell.hops,
                }
                for cell in cells
            ]
        }
        for pair, cells in results.items()
    }
