"""Out-of-core streaming benchmark: ``python -m repro.bench stream``.

Measures :func:`repro.stream.convert_file` on a large synthetic binary
stream (default 20M nonzeros, a ~480 MB materialized source) and proves
the two properties the streaming executor exists for:

* **bounded memory** — the conversion runs in a fresh subprocess so its
  peak-RSS high-water (``VmHWM``) is the streamed pipeline alone, and the
  report records that peak against the source's in-memory size
  (``--check`` fails the run when any pair's peak reaches 25% of it);
* **bit-identity** — the memmap-backed output is compared array-by-array
  against the in-memory vector backend converting the very same stream.

The fixture is generated **deterministically from arithmetic alone** (no
RNG), so a cached copy keyed on :data:`STREAM_GENERATOR_VERSION` is
byte-stable across runs and CI restores it from ``actions/cache``
instead of regenerating 480 MB per build.  Row ``i`` holds 256 entries
at columns ``(i * 2654435761 + 256 k) mod 65536`` — row-sorted like a
real Matrix Market download, distinct within each row, and scattered
enough across columns to keep the column-major destinations honest.

The JSON report (``stream_json``) uses the backends-report cell layout,
so ``python -m repro.bench compare`` diffs two stream reports directly
and gates ``streamed_seconds`` like the other fast paths (the committed
``BENCH_stream.json`` is the reference run at 20M nonzeros).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from .timing import format_table

__all__ = [
    "DEFAULT_STREAM_CHUNK_NNZ",
    "DEFAULT_STREAM_NNZ",
    "RSS_BUDGET_FRACTION",
    "STREAM_CHECK_PAIRS",
    "STREAM_GENERATOR_VERSION",
    "STREAM_PAIRS",
    "StreamCellResult",
    "check_stream",
    "ensure_fixture",
    "fixture_name",
    "render_stream",
    "run_stream",
    "stream_json",
]

#: Bump when the fixture arithmetic changes — the CI cache key includes
#: this, so stale cached fixtures are never reused across versions.
STREAM_GENERATOR_VERSION = 1

DEFAULT_STREAM_NNZ = 20_000_000
DEFAULT_STREAM_CHUNK_NNZ = 1 << 18
RSS_BUDGET_FRACTION = 0.25

#: Streamable pairs whose scatter locality permits a bounded resident
#: set on the row-sorted fixture.  The other streamable destinations are
#: still bit-identical out of core (the differential suite proves it at
#: small shapes, and did at 20M when measured) but cannot hold the RSS
#: budget *at this shape* for structural reasons: DIA/SKY dense-pad
#: quadratically in the 65536-column fixture, CSC's column scatter and
#: BCSR2x2's block densification touch the whole output on every chunk.
STREAM_PAIRS = ("coo_coo", "coo_csr", "coo_dcsr", "coo_ell", "coo_hicoo2")
#: The CI smoke subset: the classic row-major compressions.
STREAM_CHECK_PAIRS = ("coo_csr", "coo_dcsr")

_DSTS = {
    "coo_coo": "COO",
    "coo_csr": "CSR",
    "coo_dcsr": "DCSR",
    "coo_ell": "ELL",
    "coo_hicoo2": "HICOO2",
}

# fixture arithmetic (all int64-safe: nnz * _MIX stays well below 2**63)
_ROW_DEGREE = 256
_COLS = 65536
_STRIDE = 256  # 256 * 256 == _COLS: the 256 in-row columns are distinct
_MIX = 2654435761  # Knuth's multiplicative hash constant


def fixture_name(nnz: int) -> str:
    return f"stream-fixture-v{STREAM_GENERATOR_VERSION}-{nnz}.bin"


def _default_fixture_dir() -> Path:
    return Path(tempfile.gettempdir()) / "repro-stream-fixtures"


def ensure_fixture(fixture_dir=None, nnz: int = DEFAULT_STREAM_NNZ) -> Path:
    """Generate (or reuse) the deterministic binary stream fixture."""
    from ..io.stream import BinaryStreamWriter

    directory = Path(fixture_dir) if fixture_dir else _default_fixture_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / fixture_name(nnz)
    if path.exists():
        return path
    full_rows, rem = divmod(nnz, _ROW_DEGREE)
    rows = full_rows + (1 if rem else 0)
    n1 = max(2, rows + rows % 2)  # even, so the 2x2 blocked pairs apply
    ks = np.arange(_ROW_DEGREE, dtype=np.int64) * _STRIDE
    written = 0
    with BinaryStreamWriter(path, (n1, _COLS), nnz) as writer:
        for r0 in range(0, rows, 4096):
            r1 = min(r0 + 4096, rows)
            ridx = np.arange(r0, r1, dtype=np.int64)
            offsets = (ridx * _MIX) % _COLS
            j = ((offsets[:, None] + ks[None, :]) % _COLS).reshape(-1)
            i = np.repeat(ridx, _ROW_DEGREE)
            count = min((r1 - r0) * _ROW_DEGREE, nnz - written)
            g = np.arange(written, written + count, dtype=np.int64)
            vals = 0.5 + ((g * _MIX) % _COLS).astype(np.float64) / _COLS
            writer.append(i[:count], j[:count], vals)
            written += count
    return path


@dataclass
class StreamCellResult:
    """One streamed conversion at the benchmark shape."""

    pair: str
    matrix: str
    nnz: int
    chunk_nnz: int
    passes: int
    chunks: int
    streamed_seconds: float
    peak_rss_bytes: int
    source_bytes: int
    memory_seconds: Optional[float] = None
    bit_identical: Optional[bool] = None
    mismatch: Optional[str] = None

    @property
    def rss_fraction(self) -> float:
        return self.peak_rss_bytes / self.source_bytes


# Runs in a fresh interpreter so the measured peak RSS is the streamed
# conversion's own high-water (plus the interpreter/numpy baseline), not
# whatever the benchmark parent had already paged in.
_CHILD_SCRIPT = """\
import json, sys
from repro.stream import convert_file
src, dst, out, chunk = sys.argv[1:5]
result = convert_file(src, dst, out, chunk_nnz=int(chunk), overwrite=True)
print(json.dumps({
    "elapsed": result.elapsed_seconds,
    "peak_rss": result.peak_rss_bytes,
    "passes": result.passes,
    "chunks": result.chunks,
    "nnz": result.nnz,
    "source_bytes": result.source_bytes,
}))
"""


def _measure_streamed(src: Path, dst: str, out_dir: Path,
                      chunk_nnz: int) -> Dict:
    import repro

    env = dict(os.environ)
    pkg_root = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, str(src), dst, str(out_dir),
         str(chunk_nnz)],
        capture_output=True, text=True, env=env,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"streamed {dst} conversion subprocess failed:\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _load_source_tensor(src: Path):
    """The whole fixture as an in-memory COO tensor in stream order."""
    from ..formats import get_format
    from ..io.stream import open_stream
    from ..storage.tensor import Tensor

    stream = open_stream(src, chunk_nnz=max(1, 1 << 62))
    (chunk,) = list(stream.chunks())
    arrays = {(0, "pos"): np.array([0, stream.nnz], dtype=np.int64)}
    for k in range(stream.order):
        arrays[(k, "crd")] = chunk[k]
    return Tensor(get_format("COO"), stream.dims, arrays, {},
                  chunk[stream.order])


def run_stream(
    nnz: int = DEFAULT_STREAM_NNZ,
    pairs: Optional[Sequence[str]] = None,
    chunk_nnz: int = DEFAULT_STREAM_CHUNK_NNZ,
    fixture_dir=None,
    verify: bool = True,
) -> List[StreamCellResult]:
    """Benchmark ``convert_file`` per pair against the synthetic fixture.

    With ``verify`` (the default) each streamed output is also compared
    bit-for-bit against the in-memory vector backend converting the same
    source, and that conversion's wall time lands in ``memory_seconds``
    for the streamed-vs-resident overhead column.
    """
    from ..convert.engine import ConversionEngine
    from ..stream import load_result
    from ..verify import _diff

    chosen = list(pairs) if pairs else list(STREAM_PAIRS)
    unknown = [p for p in chosen if p not in _DSTS]
    if unknown:
        raise ValueError(
            f"unknown stream pair(s) {', '.join(unknown)}; choose from "
            f"{', '.join(STREAM_PAIRS)}"
        )
    src = ensure_fixture(fixture_dir, nnz)
    matrix = f"synthetic-{nnz // 1_000_000}M" if nnz >= 1_000_000 else \
        f"synthetic-{nnz}"
    results: List[StreamCellResult] = []
    engine = ConversionEngine() if verify else None
    source_tensor = _load_source_tensor(src) if verify else None
    try:
        for pair in chosen:
            dst = _DSTS[pair]
            with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
                out_dir = Path(tmp) / f"out-{pair}"
                stats = _measure_streamed(src, dst, out_dir, chunk_nnz)
                cell = StreamCellResult(
                    pair=pair, matrix=matrix, nnz=stats["nnz"],
                    chunk_nnz=chunk_nnz, passes=stats["passes"],
                    chunks=stats["chunks"],
                    streamed_seconds=stats["elapsed"],
                    peak_rss_bytes=stats["peak_rss"],
                    source_bytes=stats["source_bytes"],
                )
                if verify:
                    start = time.perf_counter()
                    expected = engine.convert(source_tensor, dst,
                                              backend="vector",
                                              parallel=None)
                    cell.memory_seconds = time.perf_counter() - start
                    problems = _diff(expected, load_result(out_dir))
                    cell.bit_identical = not problems
                    cell.mismatch = problems[0] if problems else None
                results.append(cell)
    finally:
        if engine is not None:
            engine.shutdown()
    return results


def render_stream(results: List[StreamCellResult]) -> str:
    headers = ["pair", "nnz", "passes", "chunks", "streamed (s)",
               "in-memory (s)", "peak RSS (MB)", "source (MB)", "RSS %",
               "identical"]
    rows = []
    for cell in results:
        rows.append([
            cell.pair,
            f"{cell.nnz:,}",
            str(cell.passes),
            str(cell.chunks),
            f"{cell.streamed_seconds:.2f}",
            "" if cell.memory_seconds is None
            else f"{cell.memory_seconds:.2f}",
            f"{cell.peak_rss_bytes / 2**20:.1f}",
            f"{cell.source_bytes / 2**20:.1f}",
            f"{100 * cell.rss_fraction:.1f}",
            {True: "yes", False: "NO", None: "-"}[cell.bit_identical],
        ])
    return format_table(headers, rows)


def stream_json(results: List[StreamCellResult]) -> Dict:
    """Backends-style JSON: one column per pair, one synthetic cell each."""
    report: Dict = {
        "stream_meta": {
            "generator_version": STREAM_GENERATOR_VERSION,
            "rss_budget_fraction": RSS_BUDGET_FRACTION,
        }
    }
    for cell in results:
        report[cell.pair] = {
            "cells": [{
                "matrix": cell.matrix,
                "nnz": cell.nnz,
                "chunk_nnz": cell.chunk_nnz,
                "passes": cell.passes,
                "chunks": cell.chunks,
                "streamed_seconds": cell.streamed_seconds,
                "memory_seconds": cell.memory_seconds,
                "peak_rss_bytes": cell.peak_rss_bytes,
                "source_bytes": cell.source_bytes,
                "rss_fraction": cell.rss_fraction,
                "bit_identical": cell.bit_identical,
            }]
        }
    return report


def check_stream(results: List[StreamCellResult],
                 budget: float = RSS_BUDGET_FRACTION) -> List[str]:
    """Violations of the out-of-core contract (empty list = clean)."""
    problems = []
    for cell in results:
        if cell.rss_fraction >= budget:
            problems.append(
                f"{cell.pair}: peak RSS {cell.peak_rss_bytes / 2**20:.1f} MB"
                f" is {100 * cell.rss_fraction:.1f}% of the "
                f"{cell.source_bytes / 2**20:.1f} MB source (budget "
                f"{100 * budget:.0f}%)"
            )
        if cell.bit_identical is False:
            problems.append(
                f"{cell.pair}: streamed output differs from the in-memory "
                f"vector backend ({cell.mismatch})"
            )
        elif cell.bit_identical is None:
            problems.append(
                f"{cell.pair}: run with verify=True to check bit-identity"
            )
    return problems
