"""Table 3 reproduction: normalized conversion times for seven format pairs.

For every suite matrix and every source/target pair of the paper's
evaluation, times the generated routine (``taco w/ ext``) against the
baselines that exist for that pair, and reports baseline times normalized
to the generated routine — the exact layout of Table 3:

======== ==============================================================
column    implementations compared
======== ==============================================================
coo_csr   taco w/o ext (sort-based), SPARSKIT, MKL
coo_dia   SPARSKIT (via CSR), MKL (via CSR)
csr_csc   SPARSKIT, MKL                      (nonsymmetric matrices only)
csr_dia   SPARSKIT, MKL
csr_ell   SPARSKIT
csc_dia   SPARSKIT (via CSR), MKL (via CSR)  (symmetric → cast to csr_dia)
csc_ell   SPARSKIT (via CSR)                 (symmetric → cast to csr_ell)
======== ==============================================================

Matrices whose DIA/ELL representation would exceed 75 % padding are
omitted from those columns (Table 3's blank cells).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..baselines import mkl_like, scipy_ref, sparskit, taco_legacy
from ..convert import default_engine, make_converter, sample_features
from ..formats.library import BCSR, COO, CSC, CSR, DCSR, DIA, ELL, HASH
from ..matrices.suite import SuiteMatrix, suite
from .timing import format_table, geomean, time_call

COLUMNS = ["coo_csr", "coo_dia", "csr_csc", "csr_dia", "csr_ell", "csc_dia", "csc_ell"]

#: Additional pairs of the ``backends`` report only (no Table 3 baselines):
#: the formerly scalar-only formats the per-level vector lowering handles,
#: plus the routed hash pair — its "vector" cell runs the engine's
#: multi-hop route (bridge extraction + vectorized hop), so the CI
#: ``compare`` gate guards routing regressions too.
EXTRA_BACKEND_COLUMNS = ["bcsr_csr", "csr_bcsr", "dcsr_csr", "csr_dcsr", "hash_csr"]

#: Every pair the ``backends`` report (and its ``--pairs`` filter) accepts.
BACKEND_COLUMNS = COLUMNS + EXTRA_BACKEND_COLUMNS

_FORMATS = {
    "coo": COO,
    "csr": CSR,
    "csc": CSC,
    "dia": DIA,
    "ell": ELL,
    "bcsr": BCSR(4, 4),
    "dcsr": DCSR,
    "hash": HASH,
}


@dataclass
class CellResult:
    """One matrix × one column: our time and normalized baseline times."""

    matrix: str
    ours_seconds: float
    ratios: Dict[str, Optional[float]]


def applicable(column: str, entry: SuiteMatrix) -> bool:
    """Table 3's inclusion rules for a matrix in a column."""
    if column.endswith("dia") and entry.dia_padding_ratio() > 0.75:
        return False
    if column.endswith("ell") and entry.ell_padding_ratio() > 0.75:
        return False
    if column == "csr_csc" and entry.symmetric:
        return False
    return True


def _pair_formats(column: str, entry: SuiteMatrix):
    """The (src, dst) formats a column times for ``entry``.

    Symmetric matrices make CSC and CSR interchangeable; the paper casts
    CSC→DIA/ELL to CSR→DIA/ELL in that case.
    """
    src_name, dst_name = column.split("_")
    if src_name == "csc" and entry.symmetric:
        src_name = "csr"
    return _FORMATS[src_name], _FORMATS[dst_name]


def _ours(
    column: str, entry: SuiteMatrix, backend: str = "scalar"
) -> Callable[[], object]:
    src, dst = _pair_formats(column, entry)
    converter = make_converter(src, dst, backend=backend)
    args = converter.arguments(entry.tensor(src))
    return lambda: converter.func(*args)


def _baselines(column: str, entry: SuiteMatrix) -> Dict[str, Callable[[], object]]:
    if column not in COLUMNS:
        return {}  # backend-only pairs have no Table 3 baselines
    nrow, ncol = entry.dims
    coo = entry.tensor(COO)
    rows_a, cols_a = coo.array(0, "crd"), coo.array(1, "crd")
    coo_vals = coo.vals

    def csr_args():
        csr = entry.tensor(CSR)
        return csr.array(1, "pos"), csr.array(1, "crd"), csr.vals

    def csc_args():
        csc = entry.tensor(CSC)
        return csc.array(1, "pos"), csc.array(1, "crd"), csc.vals

    have_scipy = scipy_ref.available()

    if column == "coo_csr":
        impls = {
            "taco w/o ext": lambda: taco_legacy.coocsr_sorting(nrow, rows_a, cols_a, coo_vals),
            "skit": lambda: sparskit.coocsr(nrow, rows_a, cols_a, coo_vals),
            "mkl": lambda: mkl_like.coocsr(nrow, rows_a, cols_a, coo_vals),
        }
        if have_scipy:
            impls["scipy"] = lambda: scipy_ref.coocsr(nrow, ncol, rows_a, cols_a, coo_vals)
        return impls
    if column == "coo_dia":
        impls = {
            "skit": lambda: sparskit.coodia_via_csr(nrow, ncol, rows_a, cols_a, coo_vals),
            "mkl": lambda: mkl_like.coodia_via_csr(nrow, ncol, rows_a, cols_a, coo_vals),
        }
        if have_scipy:
            impls["scipy"] = lambda: scipy_ref.coodia(nrow, ncol, rows_a, cols_a, coo_vals)
        return impls
    if column == "csr_csc":
        pos, crd, vals = csr_args()
        impls = {
            "skit": lambda: sparskit.csrcsc(nrow, ncol, pos, crd, vals),
            "mkl": lambda: mkl_like.csrcsc(nrow, ncol, pos, crd, vals),
        }
        if have_scipy:
            impls["scipy"] = lambda: scipy_ref.csrcsc(nrow, ncol, pos, crd, vals)
        return impls
    if column == "csr_dia":
        pos, crd, vals = csr_args()
        impls = {
            "skit": lambda: sparskit.csrdia(nrow, ncol, pos, crd, vals),
            "mkl": lambda: mkl_like.csrdia(nrow, ncol, pos, crd, vals),
        }
        if have_scipy:
            impls["scipy"] = lambda: scipy_ref.csrdia(nrow, ncol, pos, crd, vals)
        return impls
    if column == "csr_ell":
        pos, crd, vals = csr_args()
        return {"skit": lambda: sparskit.csrell(nrow, pos, crd, vals)}
    if column == "csc_dia":
        if entry.symmetric:
            pos, crd, vals = csr_args()
            impls = {
                "skit": lambda: sparskit.csrdia(nrow, ncol, pos, crd, vals),
                "mkl": lambda: mkl_like.csrdia(nrow, ncol, pos, crd, vals),
            }
            if have_scipy:
                impls["scipy"] = lambda: scipy_ref.csrdia(nrow, ncol, pos, crd, vals)
            return impls
        pos, crd, vals = csc_args()
        impls = {
            "skit": lambda: sparskit.cscdia_via_csr(nrow, ncol, pos, crd, vals),
            "mkl": lambda: mkl_like.cscdia_via_csr(nrow, ncol, pos, crd, vals),
        }
        if have_scipy:
            impls["scipy"] = lambda: scipy_ref.cscdia(nrow, ncol, pos, crd, vals)
        return impls
    if column == "csc_ell":
        if entry.symmetric:
            pos, crd, vals = csr_args()
            return {"skit": lambda: sparskit.csrell(nrow, pos, crd, vals)}
        pos, crd, vals = csc_args()
        return {"skit": lambda: sparskit.cscell_via_csr(nrow, ncol, pos, crd, vals)}
    raise KeyError(column)


def run_column(
    column: str, matrices: List[SuiteMatrix], repeats: int = 3
) -> List[CellResult]:
    """Time one Table 3 column over the suite."""
    results = []
    for entry in matrices:
        if not applicable(column, entry):
            continue
        ours = time_call(_ours(column, entry), repeats)
        ratios = {
            name: time_call(fn, repeats) / ours
            for name, fn in _baselines(column, entry).items()
        }
        results.append(CellResult(entry.name, ours, ratios))
    return results


def run_table3(
    matrices: Optional[List[SuiteMatrix]] = None,
    columns: Optional[List[str]] = None,
    repeats: int = 3,
) -> Dict[str, List[CellResult]]:
    """Run the full Table 3 sweep (or a subset of columns)."""
    matrices = matrices if matrices is not None else suite()
    return {
        column: run_column(column, matrices, repeats)
        for column in (columns or COLUMNS)
    }


@dataclass
class BackendCellResult:
    """One matrix × one column: scalar vs. vector backend (and scipy).

    ``route`` names the conversion path of the fast cell when the engine
    routed it (e.g. ``"HASH -> COO -> CSR"``); ``None`` for direct
    vector-backend cells.  ``parallel_seconds`` times the chunked
    executor (``run_backends(..., workers=N)``); ``None`` when the
    parallel column is off or the pair has no chunked form.

    ``auto_seconds`` times the engine's fully automatic tensor-to-tensor
    conversion (``route="auto"``: competing converters, structural
    features, routing) and ``auto_impl`` names the implementation it
    picked; ``best_seconds``/``best_impl`` is the fastest *fixed* choice
    among the timed cells (scalar/vector/parallel/scipy) — the ``best``
    column the auto policy is gated against.
    """

    matrix: str
    nnz: int
    scalar_seconds: float
    vector_seconds: float
    scipy_seconds: Optional[float]
    route: Optional[str] = None
    parallel_seconds: Optional[float] = None
    auto_seconds: Optional[float] = None
    auto_impl: Optional[str] = None
    native_seconds: Optional[float] = None

    @property
    def speedup(self) -> float:
        """Scalar-over-vector time ratio (higher = vector wins)."""
        return self.scalar_seconds / self.vector_seconds

    @property
    def parallel_speedup(self) -> Optional[float]:
        """Serial-vector-over-chunked time ratio (higher = chunked wins)."""
        if not self.parallel_seconds:
            return None
        return self.vector_seconds / self.parallel_seconds

    @property
    def native_speedup(self) -> Optional[float]:
        """Serial-vector-over-native time ratio (higher = native wins)."""
        if not self.native_seconds:
            return None
        return self.vector_seconds / self.native_seconds

    @property
    def fixed_cells(self) -> Dict[str, float]:
        """The timed fixed-choice cells (label -> seconds)."""
        cells = {"scalar": self.scalar_seconds, "vector": self.vector_seconds}
        if self.parallel_seconds:
            cells["parallel"] = self.parallel_seconds
        if self.native_seconds:
            cells["native"] = self.native_seconds
        if self.scipy_seconds:
            cells["scipy"] = self.scipy_seconds
        return cells

    @property
    def best_seconds(self) -> float:
        """The fastest fixed choice's time."""
        return min(self.fixed_cells.values())

    @property
    def best_impl(self) -> str:
        """The fastest fixed choice's label (ties: scalar/vector/... order)."""
        cells = self.fixed_cells
        return min(cells, key=lambda label: cells[label])

    @property
    def auto_ratio(self) -> Optional[float]:
        """Auto-over-best time ratio (1.0 = the auto policy matched the
        best fixed choice; ``None`` when the auto cell was not timed)."""
        if not self.auto_seconds:
            return None
        return self.auto_seconds / self.best_seconds


def _routed(column: str, entry: SuiteMatrix):
    """The engine-routed fast implementation for a cell, if routing
    applies: ``(callable, route description)``, else ``(None, None)``.

    Routed cells convert tensor-to-tensor through the engine (marshalling
    included) — the honest cost of the multi-hop path — where direct
    cells time the raw generated function.
    """
    src, dst = _pair_formats(column, entry)
    engine = default_engine()
    tensor = entry.tensor(src)
    route = engine.route(src, dst, nnz=tensor.nnz_stored)
    if not route.beats_direct:
        return None, None
    return (lambda: engine.convert_via(route, tensor)), str(route)


def _ours_auto(column: str, entry: SuiteMatrix):
    """The engine's fully automatic conversion for a cell: ``(callable,
    implementation label)``.  Tensor-to-tensor through ``engine.convert``
    with the default auto policies — exactly what a library user gets —
    so the timing includes plan lookup and marshalling."""
    src, dst = _pair_formats(column, entry)
    engine = default_engine()
    tensor = entry.tensor(src)
    plan = engine.plan(
        src, dst, nnz=tensor.nnz_stored, features=sample_features(tensor)
    )
    impl = "+".join(
        f"external:{hop.converter}" if hop.kind == "external" else hop.kind
        for hop in plan.hops
    )
    return (lambda: engine.run_plan(plan, tensor)), impl


def _ours_native(column: str, entry: SuiteMatrix, workers: int = 0):
    """The compiled-C implementation of a cell, or ``None`` when the host
    has no working C toolchain or the pair has no native lowering.
    ``workers`` sets the OpenMP team size (0: the runtime default)."""
    src, dst = _pair_formats(column, entry)
    engine = default_engine()
    if engine.toolchain() is None:
        return None
    converter = engine.make_converter(src, dst, backend="native")
    if converter.backend != "native":
        return None
    args = converter.arguments(entry.tensor(src))
    return lambda: converter.func(*args, n_workers=workers)


def _ours_parallel(column: str, entry: SuiteMatrix, workers: int):
    """The chunked-executor implementation of a cell, or ``None`` when
    the pair has no chunked form (scalar-only pairs)."""
    src, dst = _pair_formats(column, entry)
    engine = default_engine()
    chunked = engine.make_chunked(src, dst)
    if chunked is None:
        return None
    args = chunked.arguments(entry.tensor(src))
    pool = engine.worker_pool(workers)
    return lambda: chunked.func(*args, _pool=pool)


def run_backends(
    matrices: Optional[List[SuiteMatrix]] = None,
    columns: Optional[List[str]] = None,
    repeats: int = 3,
    workers: int = 0,
    native: bool = False,
) -> Dict[str, List[BackendCellResult]]:
    """Time the scalar vs. the vector backend (vs. scipy where it exists)
    for every applicable (column, matrix) cell.

    This is the report that turns the vector backend's advantage into a
    number: both backends run the *same* conversion plan, differing only
    in lowering (per-nonzero loops vs. bulk numpy operations).  With
    ``workers > 0`` a ``parallel`` column times the chunked executor on a
    pool of that many workers against the serial vector kernel, so
    ``compare`` gates chunked regressions alongside vector ones.  With
    ``native=True`` a ``native`` column times the compiled-C backend
    (skipped silently on hosts without a C toolchain; ``workers`` also
    sets its OpenMP team size).  Every cell also times the engine's fully
    automatic conversion (``auto``) and reports the fastest fixed choice
    (``best``) it competes against (see :func:`check_auto`).
    """
    matrices = matrices if matrices is not None else suite()
    results: Dict[str, List[BackendCellResult]] = {}
    for column in columns or COLUMNS:
        cells = []
        for entry in matrices:
            if not applicable(column, entry):
                continue
            scalar = time_call(_ours(column, entry, backend="scalar"), repeats)
            routed_fn, route = _routed(column, entry)
            if routed_fn is not None:
                # scalar-only pair with a multi-hop/bridge route: the fast
                # cell is the engine's routed conversion
                vector = time_call(routed_fn, repeats)
            else:
                vector = time_call(_ours(column, entry, backend="vector"), repeats)
            parallel_s = None
            if workers:
                parallel_fn = _ours_parallel(column, entry, workers)
                if parallel_fn is not None:
                    parallel_s = time_call(parallel_fn, repeats)
            native_s = None
            if native:
                native_fn = _ours_native(column, entry, workers)
                if native_fn is not None:
                    native_s = time_call(native_fn, repeats)
            scipy_fn = _baselines(column, entry).get("scipy")
            scipy_s = time_call(scipy_fn, repeats) if scipy_fn else None
            auto_fn, auto_impl = _ours_auto(column, entry)
            auto_s = time_call(auto_fn, repeats)
            cells.append(
                BackendCellResult(
                    entry.name, entry.nnz, scalar, vector, scipy_s, route,
                    parallel_s, auto_s, auto_impl, native_seconds=native_s,
                )
            )
        results[column] = cells
    return results


def check_auto(
    results: Dict[str, List[BackendCellResult]],
    tolerance: float = 1.1,
    min_seconds: float = 1e-3,
) -> List[str]:
    """The auto-policy acceptance gate: for every cell, the automatically
    selected conversion must not be slower than ``tolerance`` times the
    best fixed choice *available to the auto policy* at that size.
    Returns violation descriptions (empty = the gate holds).

    Two exclusions keep the gate about the routing decision:

    * cells whose best fixed time is under ``min_seconds`` are skipped —
      sub-millisecond smoke cells measure call overhead and runner
      jitter, not converter selection;
    * the forced-workers ``parallel`` cell only counts once the tensor
      crosses ``PlanOptions.parallel_threshold`` — below it the auto
      policy deliberately stays serial (worker pools are not free on
      arbitrary shapes), so the chunked executor is not in its choice
      set and "auto lost to a knob it refuses by design" is not a
      selection failure.  At the 1M-nnz reference sizes the threshold
      is crossed and the parallel cell gates normally;
    * the forced ``native`` cell only counts once the engine's cost
      model has *measured* native timings (``min_observations``
      recordings) — until then the auto policy refuses to invoke the C
      compiler by design, so the compiled kernel is not in its choice
      set either.
    """
    from ..convert import PlanOptions

    threshold = PlanOptions().parallel_threshold
    model = default_engine().cost_model
    native_eligible = (
        model.observation_count("native") >= model.min_observations
    )
    problems: List[str] = []
    for column, cells in results.items():
        for cell in cells:
            if cell.auto_seconds is None:
                continue
            eligible = dict(cell.fixed_cells)
            if cell.nnz < threshold:
                eligible.pop("parallel", None)
            if not native_eligible:
                eligible.pop("native", None)
            best_impl = min(eligible, key=lambda label: eligible[label])
            best = eligible[best_impl]
            if best < min_seconds:
                continue
            ratio = cell.auto_seconds / best
            if ratio > tolerance:
                problems.append(
                    f"{column}/{cell.matrix}: auto ({cell.auto_impl}) "
                    f"{cell.auto_seconds * 1e3:.3f} ms vs best fixed "
                    f"({best_impl}) {best * 1e3:.3f} ms "
                    f"({ratio:.2f}x > {tolerance:g}x)"
                )
    return problems


def render_backends(results: Dict[str, List[BackendCellResult]]) -> str:
    """Text rendering of the backend comparison (times in ms).

    The ``parallel`` columns (chunked-executor time and its speedup over
    the serial vector kernel) appear when the run produced them
    (``run_backends(..., workers=N)``).
    """
    has_parallel = any(
        cell.parallel_seconds for cells in results.values() for cell in cells
    )
    has_native = any(
        cell.native_seconds for cells in results.values() for cell in cells
    )
    has_auto = any(
        cell.auto_seconds for cells in results.values() for cell in cells
    )
    out = []
    for column, cells in results.items():
        headers = ["matrix", "nnz", "scalar (ms)", "vector (ms)", "speedup"]
        if has_parallel:
            headers += ["parallel (ms)", "par"]
        if has_native:
            headers += ["native (ms)", "nat"]
        headers += ["scipy (ms)"]
        if has_auto:
            headers += ["auto (ms)", "best"]
        headers += ["route"]
        rows = []
        for cell in cells:
            row = [
                cell.matrix,
                str(cell.nnz),
                f"{cell.scalar_seconds * 1e3:.2f}",
                f"{cell.vector_seconds * 1e3:.2f}",
                f"{cell.speedup:.1f}x",
            ]
            if has_parallel:
                row += [
                    f"{cell.parallel_seconds * 1e3:.2f}"
                    if cell.parallel_seconds else "",
                    f"{cell.parallel_speedup:.1f}x"
                    if cell.parallel_speedup else "",
                ]
            if has_native:
                row += [
                    f"{cell.native_seconds * 1e3:.2f}"
                    if cell.native_seconds else "",
                    f"{cell.native_speedup:.1f}x"
                    if cell.native_speedup else "",
                ]
            row += [
                f"{cell.scipy_seconds * 1e3:.2f}" if cell.scipy_seconds else "",
            ]
            if has_auto:
                row += [
                    f"{cell.auto_seconds * 1e3:.2f}"
                    if cell.auto_seconds else "",
                    f"{cell.best_impl} ({cell.best_seconds * 1e3:.2f})",
                ]
            row += [cell.route or "direct"]
            rows.append(row)
        mean = geomean([cell.speedup for cell in cells])
        means = ["Geomean", "", "", "", f"{mean:.1f}x" if mean else ""]
        if has_parallel:
            par_mean = geomean([cell.parallel_speedup for cell in cells])
            means += ["", f"{par_mean:.1f}x" if par_mean else ""]
        if has_native:
            nat_mean = geomean([cell.native_speedup for cell in cells])
            means += ["", f"{nat_mean:.1f}x" if nat_mean else ""]
        means += [""]
        if has_auto:
            auto_mean = geomean([cell.auto_ratio for cell in cells])
            means += [f"{auto_mean:.2f}x of best" if auto_mean else "", ""]
        means += [""]
        rows.append(means)
        out.append(f"== {column} ==\n{format_table(headers, rows)}")
    return "\n\n".join(out)


def backends_json(results: Dict[str, List[BackendCellResult]]) -> Dict:
    """JSON-serializable form of the backend comparison (CI artifact)."""
    report = {}
    for column, cells in results.items():
        report[column] = {
            "geomean_speedup": geomean([cell.speedup for cell in cells]),
            "cells": [
                {
                    "matrix": cell.matrix,
                    "nnz": cell.nnz,
                    "scalar_seconds": cell.scalar_seconds,
                    "vector_seconds": cell.vector_seconds,
                    "speedup": cell.speedup,
                    "scipy_seconds": cell.scipy_seconds,
                    "route": cell.route,
                    "parallel_seconds": cell.parallel_seconds,
                    "parallel_speedup": cell.parallel_speedup,
                    "native_seconds": cell.native_seconds,
                    "native_speedup": cell.native_speedup,
                    "auto_seconds": cell.auto_seconds,
                    "auto_impl": cell.auto_impl,
                    "best_seconds": (
                        cell.best_seconds if cell.auto_seconds else None
                    ),
                    "best_impl": (
                        cell.best_impl if cell.auto_seconds else None
                    ),
                }
                for cell in cells
            ],
        }
    return report


def _comparable_cells(report_entry) -> Optional[List[Dict]]:
    """The gateable cells of one report column, or ``None``.

    Reports carry more than benchmark columns (metadata keys, and newer
    column shapes older builds don't know) — anything without a
    ``cells`` list of ``{"matrix": ...}`` dicts is not comparable and
    must be skipped, not crash ``compare`` with a ``KeyError``.
    """
    if not isinstance(report_entry, dict):
        return None
    cells = report_entry.get("cells")
    if not isinstance(cells, list):
        return None
    return [c for c in cells if isinstance(c, dict) and "matrix" in c]


def compare_backend_reports(
    baseline: Dict, current: Dict, threshold: float = 2.0,
    min_seconds: float = 1e-3,
) -> List[str]:
    """Diff two ``backends_json`` reports; returns regression descriptions.

    A cell regresses when its vector-backend (or chunked-executor
    ``parallel``) time exceeds ``threshold`` times the baseline's for the
    same (pair, matrix).  Cells present in only one report are ignored
    (pairs/matrices may be added or removed between runs), as are cells
    whose baseline is below ``min_seconds`` — sub-millisecond smoke
    timings vary more than ``threshold`` across shared CI runners on
    noise alone.  Only the fast paths are gated — scalar times are
    reference measurements.  Serve reports (``serve_json``) share the
    cell layout, so their ``warm_seconds`` (the data-cache-hit latency)
    is gated here too; cold serve times include one full conversion and
    are reference-only.  Fuse reports (``fuse_json``) likewise share the
    layout and have their ``fused_seconds`` gated; materialized and
    scipy pipeline times are reference measurements.
    """
    regressions: List[str] = []
    for column, current_report in current.items():
        current_cells = _comparable_cells(current_report)
        if current_cells is None:
            continue  # metadata or a differently-shaped report entry
        baseline_report = baseline.get(column)
        if not baseline_report:
            continue  # column new in this run: nothing to gate against
        base_cells = _comparable_cells(baseline_report)
        if base_cells is None:
            continue  # baseline predates this column's cell layout
        baseline_cells = {c["matrix"]: c for c in base_cells}
        for cell in current_cells:
            base = baseline_cells.get(cell["matrix"])
            if not base:
                continue
            for field, label in (
                ("vector_seconds", "vector"),
                ("parallel_seconds", "parallel"),
                ("native_seconds", "native"),
                ("auto_seconds", "auto"),
                ("warm_seconds", "serve-warm"),
                ("streamed_seconds", "streamed"),
                ("fused_seconds", "fused"),
            ):
                base_s, cur_s = base.get(field), cell.get(field)
                if not base_s or not cur_s or base_s < min_seconds:
                    continue
                if cur_s > threshold * base_s:
                    regressions.append(
                        f"{column}/{cell['matrix']}: {label} "
                        f"{cur_s * 1e3:.3f} ms vs baseline "
                        f"{base_s * 1e3:.3f} ms (> {threshold:g}x)"
                    )
    return regressions


def render_table3(results: Dict[str, List[CellResult]]) -> str:
    """Text rendering in Table 3's layout (ratios relative to ours = 1)."""
    out = []
    for column, cells in results.items():
        impl_names: List[str] = []
        for cell in cells:
            for name in cell.ratios:
                if name not in impl_names:
                    impl_names.append(name)
        headers = ["matrix", "taco w/ ext (ms)"] + impl_names
        rows = []
        for cell in cells:
            row = [cell.matrix, f"1 ({cell.ours_seconds * 1e3:.2f})"]
            row += [
                f"{cell.ratios[name]:.2f}" if name in cell.ratios else ""
                for name in impl_names
            ]
            rows.append(row)
        means = ["Geomean", "1"]
        for name in impl_names:
            mean = geomean([c.ratios.get(name) for c in cells])
            means.append(f"{mean:.2f}" if mean else "")
        rows.append(means)
        out.append(f"== {column} ==\n{format_table(headers, rows)}")
    return "\n\n".join(out)
