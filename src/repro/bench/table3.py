"""Table 3 reproduction: normalized conversion times for seven format pairs.

For every suite matrix and every source/target pair of the paper's
evaluation, times the generated routine (``taco w/ ext``) against the
baselines that exist for that pair, and reports baseline times normalized
to the generated routine — the exact layout of Table 3:

======== ==============================================================
column    implementations compared
======== ==============================================================
coo_csr   taco w/o ext (sort-based), SPARSKIT, MKL
coo_dia   SPARSKIT (via CSR), MKL (via CSR)
csr_csc   SPARSKIT, MKL                      (nonsymmetric matrices only)
csr_dia   SPARSKIT, MKL
csr_ell   SPARSKIT
csc_dia   SPARSKIT (via CSR), MKL (via CSR)  (symmetric → cast to csr_dia)
csc_ell   SPARSKIT (via CSR)                 (symmetric → cast to csr_ell)
======== ==============================================================

Matrices whose DIA/ELL representation would exceed 75 % padding are
omitted from those columns (Table 3's blank cells).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..baselines import mkl_like, sparskit, taco_legacy
from ..convert import make_converter
from ..formats.library import COO, CSC, CSR, DIA, ELL
from ..matrices.suite import SuiteMatrix, suite
from .timing import format_table, geomean, time_call

COLUMNS = ["coo_csr", "coo_dia", "csr_csc", "csr_dia", "csr_ell", "csc_dia", "csc_ell"]

_FORMATS = {"coo": COO, "csr": CSR, "csc": CSC, "dia": DIA, "ell": ELL}


@dataclass
class CellResult:
    """One matrix × one column: our time and normalized baseline times."""

    matrix: str
    ours_seconds: float
    ratios: Dict[str, Optional[float]]


def applicable(column: str, entry: SuiteMatrix) -> bool:
    """Table 3's inclusion rules for a matrix in a column."""
    if column.endswith("dia") and entry.dia_padding_ratio() > 0.75:
        return False
    if column.endswith("ell") and entry.ell_padding_ratio() > 0.75:
        return False
    if column == "csr_csc" and entry.symmetric:
        return False
    return True


def _ours(column: str, entry: SuiteMatrix) -> Callable[[], object]:
    src_name, dst_name = column.split("_")
    # Symmetric matrices make CSC and CSR interchangeable; the paper casts
    # CSC→DIA/ELL to CSR→DIA/ELL in that case.
    if src_name == "csc" and entry.symmetric:
        src_name = "csr"
    src = _FORMATS[src_name]
    converter = make_converter(src, _FORMATS[dst_name])
    args = converter.arguments(entry.tensor(src))
    return lambda: converter.func(*args)


def _baselines(column: str, entry: SuiteMatrix) -> Dict[str, Callable[[], object]]:
    nrow, ncol = entry.dims
    coo = entry.tensor(COO)
    rows_a, cols_a = coo.array(0, "crd"), coo.array(1, "crd")
    coo_vals = coo.vals

    def csr_args():
        csr = entry.tensor(CSR)
        return csr.array(1, "pos"), csr.array(1, "crd"), csr.vals

    def csc_args():
        csc = entry.tensor(CSC)
        return csc.array(1, "pos"), csc.array(1, "crd"), csc.vals

    if column == "coo_csr":
        return {
            "taco w/o ext": lambda: taco_legacy.coocsr_sorting(nrow, rows_a, cols_a, coo_vals),
            "skit": lambda: sparskit.coocsr(nrow, rows_a, cols_a, coo_vals),
            "mkl": lambda: mkl_like.coocsr(nrow, rows_a, cols_a, coo_vals),
        }
    if column == "coo_dia":
        return {
            "skit": lambda: sparskit.coodia_via_csr(nrow, ncol, rows_a, cols_a, coo_vals),
            "mkl": lambda: mkl_like.coodia_via_csr(nrow, ncol, rows_a, cols_a, coo_vals),
        }
    if column == "csr_csc":
        pos, crd, vals = csr_args()
        return {
            "skit": lambda: sparskit.csrcsc(nrow, ncol, pos, crd, vals),
            "mkl": lambda: mkl_like.csrcsc(nrow, ncol, pos, crd, vals),
        }
    if column == "csr_dia":
        pos, crd, vals = csr_args()
        return {
            "skit": lambda: sparskit.csrdia(nrow, ncol, pos, crd, vals),
            "mkl": lambda: mkl_like.csrdia(nrow, ncol, pos, crd, vals),
        }
    if column == "csr_ell":
        pos, crd, vals = csr_args()
        return {"skit": lambda: sparskit.csrell(nrow, pos, crd, vals)}
    if column == "csc_dia":
        if entry.symmetric:
            pos, crd, vals = csr_args()
            return {
                "skit": lambda: sparskit.csrdia(nrow, ncol, pos, crd, vals),
                "mkl": lambda: mkl_like.csrdia(nrow, ncol, pos, crd, vals),
            }
        pos, crd, vals = csc_args()
        return {
            "skit": lambda: sparskit.cscdia_via_csr(nrow, ncol, pos, crd, vals),
            "mkl": lambda: mkl_like.cscdia_via_csr(nrow, ncol, pos, crd, vals),
        }
    if column == "csc_ell":
        if entry.symmetric:
            pos, crd, vals = csr_args()
            return {"skit": lambda: sparskit.csrell(nrow, pos, crd, vals)}
        pos, crd, vals = csc_args()
        return {"skit": lambda: sparskit.cscell_via_csr(nrow, ncol, pos, crd, vals)}
    raise KeyError(column)


def run_column(
    column: str, matrices: List[SuiteMatrix], repeats: int = 3
) -> List[CellResult]:
    """Time one Table 3 column over the suite."""
    results = []
    for entry in matrices:
        if not applicable(column, entry):
            continue
        ours = time_call(_ours(column, entry), repeats)
        ratios = {
            name: time_call(fn, repeats) / ours
            for name, fn in _baselines(column, entry).items()
        }
        results.append(CellResult(entry.name, ours, ratios))
    return results


def run_table3(
    matrices: Optional[List[SuiteMatrix]] = None,
    columns: Optional[List[str]] = None,
    repeats: int = 3,
) -> Dict[str, List[CellResult]]:
    """Run the full Table 3 sweep (or a subset of columns)."""
    matrices = matrices if matrices is not None else suite()
    return {
        column: run_column(column, matrices, repeats)
        for column in (columns or COLUMNS)
    }


def render_table3(results: Dict[str, List[CellResult]]) -> str:
    """Text rendering in Table 3's layout (ratios relative to ours = 1)."""
    out = []
    for column, cells in results.items():
        impl_names: List[str] = []
        for cell in cells:
            for name in cell.ratios:
                if name not in impl_names:
                    impl_names.append(name)
        headers = ["matrix", "taco w/ ext (ms)"] + impl_names
        rows = []
        for cell in cells:
            row = [cell.matrix, f"1 ({cell.ours_seconds * 1e3:.2f})"]
            row += [
                f"{cell.ratios[name]:.2f}" if name in cell.ratios else ""
                for name in impl_names
            ]
            rows.append(row)
        means = ["Geomean", "1"]
        for name in impl_names:
            mean = geomean([c.ratios.get(name) for c in cells])
            means.append(f"{mean:.2f}" if mean else "")
        rows.append(means)
        out.append(f"== {column} ==\n{format_table(headers, rows)}")
    return "\n\n".join(out)
