"""Command-line entry point for the evaluation harness.

Usage::

    python -m repro.bench table2 [--scale S]
    python -m repro.bench table3 [--scale S] [--repeats R] [--columns c1,c2]
    python -m repro.bench backends [--scale S] [--repeats R] [--pairs p1,p2]
                                   [--matrices m1,m2] [--json PATH]
                                   [--workers N] [--native]
    python -m repro.bench ablations [--scale S] [--repeats R]
    python -m repro.bench cache [--pairs p1,p2] [--cache-dir DIR]
                                [--check-warm] [--json PATH]
    python -m repro.bench serve [--scale S] [--repeats R] [--pairs p1,p2]
                                [--matrices m1,m2] [--json PATH]
    python -m repro.bench stream [--nnz N] [--chunk-nnz C] [--pairs p1,p2]
                                 [--fixture-dir DIR] [--json PATH] [--check]
    python -m repro.bench fuse [--scale S] [--repeats R] [--pairs p1,p2]
                               [--matrices m1,m2] [--json PATH] [--check]
    python -m repro.bench compare BASELINE.json CURRENT.json [--threshold X]

``backends`` compares the scalar (loop) and vector (bulk numpy) lowering
backends, plus scipy where it implements the conversion; ``--pairs``
selects which conversions run (including the extra BCSR/DCSR pairs that
have no Table 3 baselines, and the routed ``hash_csr`` pair whose fast
cell runs the engine's multi-hop route), ``--workers N`` adds a
``parallel`` column timing the chunked executor on an N-worker pool
against the serial vector kernel, ``--native`` adds a ``native`` column
timing the compiled-C backend (skipped on hosts without a C toolchain;
``--workers`` also sets its OpenMP team size), ``--check-auto`` exits
nonzero when
the engine's auto-selected converter is more than ``--auto-tolerance``
times slower than the best fixed cell for any pair, and ``--json``
additionally writes the report as JSON (the CI smoke artifact).  ``compare`` diffs two such JSON
reports and exits nonzero when any fast-path cell (vector, parallel or
routed) regressed by more than ``--threshold`` (CI fails the build on
>2x regressions).  ``cache`` measures the persistent kernel cache's
warm-vs-cold start per pair (``--check-warm`` exits nonzero when a warm
engine still compiled anything — the CI cold-vs-warm smoke step).
``serve`` measures the serving layer's cold (full conversion) vs warm
(data-cache hit) request latency per pair; its JSON shares the backends
cell layout, so ``compare`` gates the warm latency between two serve
reports (the committed ``BENCH_serve.json`` is the ~1M-nnz reference
run).  ``stream`` measures the out-of-core ``convert_file`` path against
a deterministic synthetic fixture (default 20M nonzeros): each streamed
conversion runs in a fresh subprocess so its peak RSS is its own, and
the output is verified bit-identical to the in-memory vector backend;
``--check`` exits nonzero when any pair's peak RSS reaches 25% of the
source's in-memory size or identity fails (the committed
``BENCH_stream.json`` is the 20M-nnz reference run, and its
``streamed_seconds`` are gated by ``compare`` like the other fast
paths).  ``fuse`` times the fusion planner's convert-and-compute
pipelines — fused (the destination format is never materialized) vs
materialize-then-compute vs scipy's own conversion + ``A @ x`` — and
its ``--check`` exits nonzero when a fused result diverges, a fused
pipeline is more than 1.1x slower than materializing, or a fused kernel
materializes the intermediate (source scan + allocation tracing); the
committed ``BENCH_fuse.json`` is the ~1M-nnz reference run and its
``fused_seconds`` are gated by ``compare`` like the other fast paths.
"""

import argparse
import json
import sys

from ..matrices.suite import suite
from . import (
    BACKEND_COLUMNS,
    COLUMNS,
    FUSE_CHECK_PAIRS,
    FUSE_PAIRS,
    STREAM_CHECK_PAIRS,
    STREAM_PAIRS,
    backends_json,
    cache_json,
    check_auto,
    check_fuse,
    check_stream,
    check_warm,
    compare_backend_reports,
    fuse_json,
    render_ablations,
    render_backends,
    render_cache,
    render_fuse,
    render_serve,
    render_stream,
    render_table2,
    render_table3,
    run_ablations,
    run_backends,
    run_cache,
    run_fuse,
    run_serve,
    run_stream,
    run_table2,
    run_table3,
    serve_json,
    stream_json,
)


def main() -> None:
    parser = argparse.ArgumentParser(prog="python -m repro.bench")
    parser.add_argument(
        "report",
        choices=["table2", "table3", "backends", "ablations", "cache",
                 "serve", "stream", "fuse", "compare"],
    )
    parser.add_argument("paths", nargs="*", metavar="JSON",
                        help="for 'compare': baseline and current report files")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="matrix size scale factor (default 1.0)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per cell (median reported)")
    parser.add_argument("--columns", type=str, default=None,
                        help="comma-separated Table 3 columns to run")
    parser.add_argument("--pairs", type=str, default=None,
                        help="comma-separated conversion pairs for the "
                             "'backends' report (superset of --columns; "
                             f"choose from {','.join(BACKEND_COLUMNS)})")
    parser.add_argument("--matrices", type=str, default=None,
                        help="comma-separated suite matrix names to run")
    parser.add_argument("--json", type=str, default=None, metavar="PATH",
                        help="also write the backends report as JSON")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="'backends': add a parallel column timing the "
                             "chunked executor on an N-worker pool (0: off)")
    parser.add_argument("--native", action="store_true",
                        help="'backends'/'cache': add the compiled-C native "
                             "backend (skipped without a C toolchain)")
    parser.add_argument("--cache-dir", type=str, default=None, metavar="DIR",
                        help="'cache': kernel cache directory (default: a "
                             "fresh temporary directory)")
    parser.add_argument("--check-warm", action="store_true",
                        help="'cache': exit nonzero when any warm engine "
                             "still compiled (or loaded nothing from disk)")
    parser.add_argument("--check-auto", action="store_true",
                        help="'backends': exit nonzero when the auto-selected "
                             "converter is more than --auto-tolerance x "
                             "slower than the best fixed cell")
    parser.add_argument("--auto-tolerance", type=float, default=1.1,
                        help="'backends': allowed auto/best slowdown for "
                             "--check-auto (default 1.1)")
    parser.add_argument("--nnz", type=int, default=None,
                        help="'stream': synthetic fixture size in nonzeros "
                             "(default 20,000,000)")
    parser.add_argument("--chunk-nnz", type=int, default=None,
                        help="'stream': entries per streamed chunk "
                             "(default 262,144)")
    parser.add_argument("--fixture-dir", type=str, default=None,
                        metavar="DIR",
                        help="'stream': directory holding the generated "
                             "fixture (default: a per-user temp directory; "
                             "CI points this at its actions/cache path)")
    parser.add_argument("--check", action="store_true",
                        help="'stream': exit nonzero when any pair's peak "
                             "RSS reaches 25%% of the source's in-memory "
                             "size or its output is not bit-identical; "
                             "'fuse': exit nonzero when a fused pipeline "
                             "diverges, runs > 1.1x slower than "
                             "materializing, or materializes the "
                             "intermediate format")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="'compare': fail on vector times above "
                             "threshold x baseline (default 2.0)")
    parser.add_argument("--min-seconds", type=float, default=1e-3,
                        help="'compare': ignore cells whose baseline vector "
                             "time is below this (noise floor, default 1e-3)")
    args = parser.parse_args()
    if args.json and args.report not in ("backends", "cache", "serve",
                                         "stream", "fuse"):
        parser.error("--json is only produced by 'backends', 'cache', "
                     "'serve', 'stream' and 'fuse'")
    if args.pairs and args.report not in ("backends", "cache", "serve",
                                          "stream", "fuse"):
        parser.error("--pairs only filters the 'backends', 'cache', "
                     "'serve', 'stream' and 'fuse' reports")
    if (args.nnz is not None or args.chunk_nnz is not None
            or args.fixture_dir) and args.report != "stream":
        parser.error("--nnz/--chunk-nnz/--fixture-dir only apply "
                     "to the 'stream' report")
    if args.check and args.report not in ("stream", "fuse"):
        parser.error("--check only applies to 'stream' and 'fuse'")
    if args.workers and args.report != "backends":
        parser.error("--workers only applies to the 'backends' report")
    if args.native and args.report not in ("backends", "cache", "fuse"):
        parser.error("--native only applies to 'backends', 'cache' and "
                     "'fuse'")
    if args.workers < 0:
        parser.error("--workers must be >= 0")
    if (args.cache_dir or args.check_warm) and args.report != "cache":
        parser.error("--cache-dir/--check-warm only apply to 'cache'")
    if args.check_auto and args.report != "backends":
        parser.error("--check-auto only applies to the 'backends' report")

    if args.report == "cache":
        pairs = args.pairs.split(",") if args.pairs else None
        unknown = [p for p in pairs or [] if p not in BACKEND_COLUMNS]
        if unknown:
            parser.error(
                f"unknown pair(s) {', '.join(unknown)}; choose from "
                f"{', '.join(BACKEND_COLUMNS)}"
            )
        results = run_cache(pairs, cache_dir=args.cache_dir,
                            native=args.native)
        print(render_cache(results))
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(cache_json(results), handle, indent=2)
            print(f"\nwrote {args.json}")
        if args.check_warm:
            problems = check_warm(results)
            if problems:
                print(f"\n{len(problems)} warm-start violation(s):")
                for line in problems:
                    print(f"  {line}")
                sys.exit(1)
            print("\nwarm start clean: every warm engine compiled nothing")
        return

    if args.report == "stream":
        if args.pairs:
            pairs = args.pairs.split(",")
            unknown = [p for p in pairs if p not in STREAM_PAIRS]
            if unknown:
                parser.error(
                    f"unknown stream pair(s) {', '.join(unknown)}; choose "
                    f"from {', '.join(STREAM_PAIRS)}"
                )
        else:
            pairs = list(STREAM_CHECK_PAIRS if args.check else STREAM_PAIRS)
        kwargs = {}
        if args.nnz is not None:
            kwargs["nnz"] = args.nnz
        if args.chunk_nnz is not None:
            kwargs["chunk_nnz"] = args.chunk_nnz
        results = run_stream(pairs=pairs, fixture_dir=args.fixture_dir,
                             **kwargs)
        print(render_stream(results))
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(stream_json(results), handle, indent=2)
            print(f"\nwrote {args.json}")
        if args.check:
            problems = check_stream(results)
            if problems:
                print(f"\n{len(problems)} out-of-core violation(s):")
                for line in problems:
                    print(f"  {line}")
                sys.exit(1)
            print("\nout-of-core contract clean: every pair bit-identical "
                  "under the RSS budget")
        return

    if args.report == "compare":
        if len(args.paths) != 2:
            parser.error("compare needs exactly two JSON report paths")
        with open(args.paths[0]) as handle:
            baseline = json.load(handle)
        with open(args.paths[1]) as handle:
            current = json.load(handle)
        regressions = compare_backend_reports(
            baseline, current, args.threshold, args.min_seconds
        )
        if regressions:
            print(f"{len(regressions)} vector-backend regression(s):")
            for line in regressions:
                print(f"  {line}")
            sys.exit(1)
        print(f"no vector-backend regressions above {args.threshold:g}x")
        return
    if args.paths:
        parser.error("positional JSON paths are only used by 'compare'")

    matrices = suite(scale=args.scale)
    if args.matrices:
        wanted = set(args.matrices.split(","))
        matrices = [m for m in matrices if {m.name, m.paper_name} & wanted]
        if not matrices:
            parser.error(f"no suite matrix matches {args.matrices!r}")

    if args.report == "backends":
        valid, requested = BACKEND_COLUMNS, args.pairs or args.columns
    elif args.report == "serve":
        valid, requested = BACKEND_COLUMNS, args.pairs
    elif args.report == "fuse":
        valid, requested = FUSE_PAIRS, args.pairs
    else:
        valid, requested = COLUMNS, args.columns
    columns = requested.split(",") if requested else valid
    unknown = [c for c in columns if c not in valid]
    if unknown:
        parser.error(
            f"unknown column(s) {', '.join(unknown)}; choose from {', '.join(valid)}"
        )

    if args.report == "serve":
        results = run_serve(matrices, columns, args.repeats)
        print(render_serve(results))
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(serve_json(results), handle, indent=2)
            print(f"\nwrote {args.json}")
        return

    if args.report == "fuse":
        if args.check and not args.pairs:
            columns = list(FUSE_CHECK_PAIRS)
        results = run_fuse(matrices, columns, args.repeats,
                           backend="native" if args.native else None)
        print(render_fuse(results))
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(fuse_json(results), handle, indent=2)
            print(f"\nwrote {args.json}")
        if args.check:
            problems = check_fuse(results)
            if problems:
                print(f"\n{len(problems)} fused-pipeline violation(s):")
                for line in problems:
                    print(f"  {line}")
                sys.exit(1)
            print("\nfused pipelines clean: results identical, no "
                  "intermediate materialized, within 1.1x of materializing")
        return

    if args.report == "table2":
        print(render_table2(run_table2(matrices)))
    elif args.report == "table3":
        print(render_table3(run_table3(matrices, columns, args.repeats)))
    elif args.report == "backends":
        results = run_backends(matrices, columns, args.repeats,
                               workers=args.workers, native=args.native)
        print(render_backends(results))
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(backends_json(results), handle, indent=2)
            print(f"\nwrote {args.json}")
        if args.check_auto:
            problems = check_auto(results, tolerance=args.auto_tolerance)
            if problems:
                print(f"\n{len(problems)} auto-selection violation(s):")
                for line in problems:
                    print(f"  {line}")
                sys.exit(1)
            print(f"\nauto selection clean: every auto cell within "
                  f"{args.auto_tolerance:g}x of the best fixed converter")
    else:
        print(render_ablations(run_ablations(matrices, args.repeats)))


if __name__ == "__main__":
    main()
