"""Command-line entry point for the evaluation harness.

Usage::

    python -m repro.bench table2 [--scale S]
    python -m repro.bench table3 [--scale S] [--repeats R] [--columns c1,c2]
    python -m repro.bench backends [--scale S] [--repeats R] [--columns c1,c2]
                                   [--matrices m1,m2] [--json PATH]
    python -m repro.bench ablations [--scale S] [--repeats R]

``backends`` compares the scalar (loop) and vector (bulk numpy) lowering
backends, plus scipy where it implements the conversion; ``--json``
additionally writes the report as JSON (the CI smoke artifact).
"""

import argparse
import json

from ..matrices.suite import suite
from . import (
    COLUMNS,
    backends_json,
    render_ablations,
    render_backends,
    render_table2,
    render_table3,
    run_ablations,
    run_backends,
    run_table2,
    run_table3,
)


def main() -> None:
    parser = argparse.ArgumentParser(prog="python -m repro.bench")
    parser.add_argument("report", choices=["table2", "table3", "backends", "ablations"])
    parser.add_argument("--scale", type=float, default=1.0,
                        help="matrix size scale factor (default 1.0)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per cell (median reported)")
    parser.add_argument("--columns", type=str, default=None,
                        help="comma-separated Table 3 columns to run")
    parser.add_argument("--matrices", type=str, default=None,
                        help="comma-separated suite matrix names to run")
    parser.add_argument("--json", type=str, default=None, metavar="PATH",
                        help="also write the backends report as JSON")
    args = parser.parse_args()
    if args.json and args.report != "backends":
        parser.error("--json is only produced by the 'backends' report")

    matrices = suite(scale=args.scale)
    if args.matrices:
        wanted = set(args.matrices.split(","))
        matrices = [m for m in matrices if {m.name, m.paper_name} & wanted]
        if not matrices:
            parser.error(f"no suite matrix matches {args.matrices!r}")
    columns = args.columns.split(",") if args.columns else COLUMNS
    unknown = [c for c in columns if c not in COLUMNS]
    if unknown:
        parser.error(
            f"unknown column(s) {', '.join(unknown)}; choose from {', '.join(COLUMNS)}"
        )

    if args.report == "table2":
        print(render_table2(run_table2(matrices)))
    elif args.report == "table3":
        print(render_table3(run_table3(matrices, columns, args.repeats)))
    elif args.report == "backends":
        results = run_backends(matrices, columns, args.repeats)
        print(render_backends(results))
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(backends_json(results), handle, indent=2)
            print(f"\nwrote {args.json}")
    else:
        print(render_ablations(run_ablations(matrices, args.repeats)))


if __name__ == "__main__":
    main()
