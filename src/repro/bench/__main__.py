"""Command-line entry point for the evaluation harness.

Usage::

    python -m repro.bench table2 [--scale S]
    python -m repro.bench table3 [--scale S] [--repeats R] [--columns c1,c2]
    python -m repro.bench ablations [--scale S] [--repeats R]
"""

import argparse

from ..matrices.suite import suite
from . import (
    COLUMNS,
    render_ablations,
    render_table2,
    render_table3,
    run_ablations,
    run_table2,
    run_table3,
)


def main() -> None:
    parser = argparse.ArgumentParser(prog="python -m repro.bench")
    parser.add_argument("report", choices=["table2", "table3", "ablations"])
    parser.add_argument("--scale", type=float, default=1.0,
                        help="matrix size scale factor (default 1.0)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per cell (median reported)")
    parser.add_argument("--columns", type=str, default=None,
                        help="comma-separated Table 3 columns to run")
    args = parser.parse_args()

    matrices = suite(scale=args.scale)
    if args.report == "table2":
        print(render_table2(run_table2(matrices)))
    elif args.report == "table3":
        columns = args.columns.split(",") if args.columns else COLUMNS
        print(render_table3(run_table3(matrices, columns, args.repeats)))
    else:
        print(render_ablations(run_ablations(matrices, args.repeats)))


if __name__ == "__main__":
    main()
