"""Warm-vs-cold kernel-cache benchmark.

The persistent kernel cache (``ConversionEngine(cache_dir=...)``) turns a
process cold start — plan the conversion, generate code, compile — into a
disk load.  This report measures exactly that seam, per conversion pair:

* **cold**: a fresh engine on an empty cache directory warms the pair
  (codegen + compile, including route hops), writing kernel records;
* **warm**: a second fresh engine on the *same* directory warms the same
  pair — every kernel loads from disk, so ``cache_stats()`` must show
  ``compiles == 0`` and ``disk_hits > 0``.

``python -m repro.bench cache [--pairs ...] [--check-warm]`` renders the
columns; ``--check-warm`` exits nonzero when any warm engine compiled
anything (the CI cold-vs-warm smoke step).
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..convert import ConversionEngine
from .table3 import _FORMATS, BACKEND_COLUMNS
from .timing import format_table


@dataclass
class CacheCellResult:
    """One pair's cold/warm warmup timings and warm cache counters.

    The ``native`` counters are ``None`` unless the run also warmed the
    compiled-C kernel (``run_cache(..., native=True)`` on a host with a
    C toolchain); a warm native start must show zero compiler
    invocations (``warm_native_compiles == 0``) and at least one built
    ``.so`` loaded from the cache directory.
    """

    pair: str
    cold_seconds: float
    warm_seconds: float
    warm_compiles: int
    warm_disk_hits: int
    warm_native_compiles: Optional[int] = None
    warm_native_disk_hits: Optional[int] = None

    @property
    def speedup(self) -> Optional[float]:
        if self.warm_seconds <= 0:
            return None
        return self.cold_seconds / self.warm_seconds


def _pair_formats(pair: str):
    src_name, dst_name = pair.split("_", 1)
    return _FORMATS[src_name], _FORMATS[dst_name]


def run_cache(
    pairs: Optional[List[str]] = None,
    cache_dir: Optional[str] = None,
    native: bool = False,
) -> List[CacheCellResult]:
    """Time the cold (codegen + compile) vs. warm (disk load) start of
    every pair's kernels.

    ``cache_dir`` defaults to a fresh temporary directory; pass an
    existing one to measure a cache carried across CI runs (the warm row
    is then warm on the *first* run too).  Each pair warms through
    ``engine.warmup`` — the direct kernel plus its route hops, exactly
    what the first conversion of a service process would compile.  With
    ``native=True`` each pair also builds its compiled-C kernel (when
    the host has a toolchain and the pair lowers to C): the cold engine
    runs the C compiler and persists both the ``.c`` source and the
    built ``.so``; the warm engine must load the ``.so`` with **zero**
    compiler invocations (``warm_native_compiles``).
    """
    pairs = pairs or BACKEND_COLUMNS
    base = cache_dir or tempfile.mkdtemp(prefix="repro-kernel-cache-")
    results: List[CacheCellResult] = []
    for pair in pairs:
        src, dst = _pair_formats(pair)
        pair_dir = os.path.join(base, pair)
        cold_engine = ConversionEngine(cache_dir=pair_dir)
        want_native = native and cold_engine.toolchain() is not None
        started = time.perf_counter()
        cold_engine.warmup([(src, dst)])
        if want_native:
            want_native = (
                cold_engine.make_converter(
                    src, dst, backend="native"
                ).backend == "native"
            )
        cold = time.perf_counter() - started

        warm_engine = ConversionEngine(cache_dir=pair_dir)
        started = time.perf_counter()
        warm_engine.warmup([(src, dst)])
        if want_native:
            warm_engine.make_converter(src, dst, backend="native")
        warm = time.perf_counter() - started
        stats = warm_engine.cache_stats()
        results.append(
            CacheCellResult(
                pair=pair,
                cold_seconds=cold,
                warm_seconds=warm,
                warm_compiles=int(stats["compiles"]),
                warm_disk_hits=int(stats["disk_hits"]),
                warm_native_compiles=(
                    int(stats["native_compiles"]) if want_native else None
                ),
                warm_native_disk_hits=(
                    int(stats["native_disk_hits"]) if want_native else None
                ),
            )
        )
    return results


def render_cache(results: List[CacheCellResult]) -> str:
    """Text rendering: cold and warm warmup times, the warm speedup, and
    the warm engine's compile/disk counters."""
    has_native = any(
        cell.warm_native_compiles is not None for cell in results
    )
    headers = ["pair", "cold (ms)", "warm (ms)", "speedup",
               "warm compiles", "disk hits"]
    if has_native:
        headers += ["native compiles", "native hits"]
    rows = []
    for cell in results:
        speedup = cell.speedup
        row = [
            cell.pair,
            f"{cell.cold_seconds * 1e3:.2f}",
            f"{cell.warm_seconds * 1e3:.2f}",
            "-" if speedup is None else f"{speedup:.1f}x",
            str(cell.warm_compiles),
            str(cell.warm_disk_hits),
        ]
        if has_native:
            row += [
                "-" if cell.warm_native_compiles is None
                else str(cell.warm_native_compiles),
                "-" if cell.warm_native_disk_hits is None
                else str(cell.warm_native_disk_hits),
            ]
        rows.append(row)
    lines = [format_table(headers, rows)]
    lines.append(
        "\ncold: fresh engine + empty cache dir (codegen + compile); "
        "warm: fresh engine, same dir (disk load only)."
    )
    return "\n".join(lines)


def check_warm(results: List[CacheCellResult]) -> List[str]:
    """The warm-start violations in ``results`` (empty = all good): any
    pair whose warm engine still compiled, or loaded nothing from disk.
    Pairs that warmed the native kernel additionally require zero C
    compiler invocations and at least one built ``.so`` loaded back."""
    problems: List[str] = []
    for cell in results:
        if cell.warm_compiles:
            problems.append(
                f"{cell.pair}: warm engine compiled "
                f"{cell.warm_compiles} kernel(s); expected 0"
            )
        if not cell.warm_disk_hits:
            problems.append(
                f"{cell.pair}: warm engine loaded nothing from disk"
            )
        if cell.warm_native_compiles:
            problems.append(
                f"{cell.pair}: warm engine invoked the C compiler "
                f"{cell.warm_native_compiles} time(s); expected 0"
            )
        if cell.warm_native_compiles is not None and (
            not cell.warm_native_disk_hits
        ):
            problems.append(
                f"{cell.pair}: warm engine loaded no built .so from the "
                "cache directory"
            )
    return problems


def cache_json(results: List[CacheCellResult]) -> Dict:
    """JSON form of the report (CI artifact)."""
    return {
        cell.pair: {
            "cold_seconds": cell.cold_seconds,
            "warm_seconds": cell.warm_seconds,
            "warm_compiles": cell.warm_compiles,
            "warm_disk_hits": cell.warm_disk_hits,
            "warm_native_compiles": cell.warm_native_compiles,
            "warm_native_disk_hits": cell.warm_native_disk_hits,
        }
        for cell in results
    }
