"""Benchmark harness reproducing the paper's evaluation (Section 7)."""

from .ablations import run_ablations, render_ablations
from .cache import cache_json, check_warm, render_cache, run_cache
from .fuse import (
    FUSE_CHECK_PAIRS,
    FUSE_PAIRS,
    check_fuse,
    fuse_json,
    render_fuse,
    run_fuse,
)
from .serve import render_serve, run_serve, serve_json
from .stream import (
    STREAM_CHECK_PAIRS,
    STREAM_GENERATOR_VERSION,
    STREAM_PAIRS,
    check_stream,
    ensure_fixture,
    render_stream,
    run_stream,
    stream_json,
)
from .table2 import render_table2, run_table2
from .table3 import (
    BACKEND_COLUMNS,
    COLUMNS,
    applicable,
    backends_json,
    check_auto,
    compare_backend_reports,
    render_backends,
    render_table3,
    run_backends,
    run_column,
    run_table3,
)
from .timing import format_table, geomean, time_call

__all__ = [
    "BACKEND_COLUMNS", "COLUMNS", "FUSE_CHECK_PAIRS", "FUSE_PAIRS",
    "STREAM_CHECK_PAIRS",
    "STREAM_GENERATOR_VERSION", "STREAM_PAIRS", "applicable",
    "backends_json", "cache_json", "check_auto", "check_fuse",
    "check_stream",
    "check_warm", "compare_backend_reports", "ensure_fixture",
    "format_table", "fuse_json", "geomean", "render_ablations",
    "render_backends",
    "render_cache", "render_fuse", "render_serve", "render_stream",
    "render_table2",
    "render_table3", "run_ablations", "run_backends", "run_cache",
    "run_column", "run_fuse", "run_serve", "run_stream", "run_table2",
    "run_table3",
    "serve_json", "stream_json", "time_call",
]
