"""Fused-pipeline benchmark: fused vs materialize-then-compute vs scipy.

``python -m repro.bench fuse`` times, per (pair, matrix) cell, the
``convert + SpMV`` pipeline three ways:

* ``fused`` — the fusion planner's fused terminal hop: the op consumes
  the source directly; the destination format is never materialized
  (:meth:`ConversionEngine.plan_compute
  <repro.convert.engine.ConversionEngine.plan_compute>` with
  ``fuse=True``);
* ``materialized`` — the same pipeline with ``fuse=False``: convert,
  then run the compute op over the destination;
* ``scipy`` — scipy's own conversion plus ``A @ x``, the external
  reference (skipped where scipy has no path).

The JSON report (``fuse_json``) uses the backends-report cell layout, so
``python -m repro.bench compare`` diffs two fuse reports directly: the
``fused_seconds`` field is gated exactly like the other fast paths (the
committed ``BENCH_fuse.json`` is the reference run at the ~1M-nnz
chem_master1 shape).

``--check`` is the CI smoke contract on a bounded pair: the fused and
materialized results must agree within 1e-9 rtol, the fused pipeline
must not be slower than ``tolerance`` (1.1x) times the materialized one,
and the fused kernel must allocate **no intermediate-format arrays** —
asserted two ways: the fused kernel source (Python or C) references no
destination ``B*`` pos/crd/vals array, and allocation tracing
(:mod:`tracemalloc`) shows the fused run's peak Python-heap traffic
strictly below the materialized run's.
"""

from __future__ import annotations

import re
import statistics
import time
import tracemalloc
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..convert.engine import ConversionEngine
from ..convert.features import sample_features
from ..matrices.suite import SuiteMatrix
from .table3 import _FORMATS
from .timing import format_table

__all__ = [
    "FUSE_CHECK_PAIRS",
    "FUSE_PAIRS",
    "FuseCellResult",
    "check_fuse",
    "fuse_json",
    "render_fuse",
    "run_fuse",
]

#: Pairs the ``fuse`` report accepts: SpMV pipelines whose pivot format
#: the compute layer can consume directly (fusable for ``spmv``).
FUSE_PAIRS = ["coo_csr", "coo_dia", "coo_csc"]

#: The bounded pair the CI ``--check`` smoke runs.
FUSE_CHECK_PAIRS = ["coo_csr"]

#: Destination-side array tokens of a conversion kernel — a fused
#: kernel referencing any of these has materialized the intermediate.
_INTERMEDIATE_ARRAY = re.compile(r"\bB\d*_(?:pos|crd|vals)\b|\bB_vals\b")


@dataclass
class FuseCellResult:
    """Fused/materialized/scipy pipeline times for one (pair, matrix)."""

    pair: str
    matrix: str
    nnz: int
    backend: str
    fused_seconds: float
    materialized_seconds: float
    scipy_seconds: Optional[float]
    fused_peak_bytes: int
    materialized_peak_bytes: int
    identical: bool
    max_abs_delta: float
    intermediate_refs: int

    @property
    def speedup(self) -> Optional[float]:
        """Materialized over fused: > 1 means fusion won."""
        if self.fused_seconds <= 0:
            return None
        return self.materialized_seconds / self.fused_seconds


#: scipy conversion per destination format name (for the reference
#: column: scipy's own conversion + matvec).
_SCIPY_CONVERT = {"CSR": "tocsr", "CSC": "tocsc", "DIA": "todia"}


def _measure(matrix: SuiteMatrix, pair: str, repeats: int,
             backend: Optional[str] = None) -> FuseCellResult:
    src_name, dst_name = pair.split("_", 1)
    src, dst = _FORMATS[src_name], _FORMATS[dst_name]
    tensor = matrix.tensor(src)
    rng = np.random.default_rng(7)
    x = rng.uniform(0.5, 1.5, tensor.dims[1])

    engine = ConversionEngine()
    features = sample_features(tensor)
    plan_fused = engine.plan_compute(
        tensor.format, "spmv", dst, fuse=True, backend=backend,
        nnz=tensor.nnz_stored, features=features,
    )
    plan_mat = engine.plan_compute(
        tensor.format, "spmv", dst, fuse=False, backend=backend,
        nnz=tensor.nnz_stored, features=features,
    )
    # compile both pipelines' kernels outside the timed region
    y_fused = engine.run_compute_plan(plan_fused, tensor, x=x)
    y_mat = engine.run_compute_plan(plan_mat, tensor, x=x)
    identical = bool(np.allclose(y_fused, y_mat, rtol=1e-9, atol=1e-12))
    max_abs_delta = float(np.max(np.abs(y_fused - y_mat), initial=0.0))

    fused_times: List[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        engine.run_compute_plan(plan_fused, tensor, x=x)
        fused_times.append(time.perf_counter() - started)
    mat_times: List[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        engine.run_compute_plan(plan_mat, tensor, x=x)
        mat_times.append(time.perf_counter() - started)

    scipy_seconds: Optional[float] = None
    convert = _SCIPY_CONVERT.get(dst.name)
    if convert is not None:
        try:
            sp = tensor.to_scipy("coo")
        except Exception:
            sp = None
        if sp is not None:
            getattr(sp, convert)() @ x  # warm scipy's own caches
            scipy_times: List[float] = []
            for _ in range(repeats):
                started = time.perf_counter()
                getattr(sp, convert)() @ x
                scipy_times.append(time.perf_counter() - started)
            scipy_seconds = statistics.median(scipy_times)

    # Allocation tracing: the fused pipeline never materializes the
    # destination's pos/crd/vals, so its Python-heap peak sits strictly
    # below the materialized pipeline's.  (For the native backend the C
    # heap is invisible here; the source scan below is the assertion.)
    tracemalloc.start()
    engine.run_compute_plan(plan_fused, tensor, x=x)
    _, fused_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    tracemalloc.start()
    engine.run_compute_plan(plan_mat, tensor, x=x)
    _, mat_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    intermediate_refs = sum(
        len(_INTERMEDIATE_ARRAY.findall(source))
        for source in plan_fused.sources().values()
    )
    return FuseCellResult(
        pair=pair,
        matrix=matrix.name,
        nnz=tensor.nnz_stored,
        backend=plan_fused.backend,
        fused_seconds=statistics.median(fused_times),
        materialized_seconds=statistics.median(mat_times),
        scipy_seconds=scipy_seconds,
        fused_peak_bytes=int(fused_peak),
        materialized_peak_bytes=int(mat_peak),
        identical=identical,
        max_abs_delta=max_abs_delta,
        intermediate_refs=intermediate_refs,
    )


def run_fuse(
    matrices: List[SuiteMatrix],
    pairs: Optional[List[str]] = None,
    repeats: int = 3,
    backend: Optional[str] = None,
) -> Dict[str, List[FuseCellResult]]:
    """Fused vs materialized vs scipy SpMV per (pair, matrix) cell."""
    pairs = pairs or FUSE_PAIRS
    return {
        pair: [_measure(m, pair, repeats, backend=backend) for m in matrices]
        for pair in pairs
    }


def render_fuse(results: Dict[str, List[FuseCellResult]]) -> str:
    """Text table: one row per (pair, matrix) cell."""
    headers = ["pair", "matrix", "nnz", "backend", "fused (ms)",
               "materialized (ms)", "scipy (ms)", "speedup", "identical"]
    rows = []
    for pair, cells in results.items():
        for cell in cells:
            speedup = cell.speedup
            rows.append([
                pair,
                cell.matrix,
                str(cell.nnz),
                cell.backend,
                f"{cell.fused_seconds * 1e3:.3f}",
                f"{cell.materialized_seconds * 1e3:.3f}",
                (f"{cell.scipy_seconds * 1e3:.3f}"
                 if cell.scipy_seconds is not None else "-"),
                f"{speedup:.2f}x" if speedup is not None else "-",
                "yes" if cell.identical else "NO",
            ])
    return format_table(headers, rows)


def fuse_json(results: Dict[str, List[FuseCellResult]]) -> Dict:
    """The report in the backends-JSON cell layout, so ``bench compare``
    gates ``fused_seconds`` between two fuse reports."""
    return {
        pair: {
            "cells": [
                {
                    "matrix": cell.matrix,
                    "nnz": cell.nnz,
                    "backend": cell.backend,
                    "fused_seconds": cell.fused_seconds,
                    "materialized_seconds": cell.materialized_seconds,
                    "scipy_seconds": cell.scipy_seconds,
                    "speedup": cell.speedup,
                    "fused_peak_bytes": cell.fused_peak_bytes,
                    "materialized_peak_bytes": cell.materialized_peak_bytes,
                    "identical": cell.identical,
                    "intermediate_refs": cell.intermediate_refs,
                }
                for cell in cells
            ]
        }
        for pair, cells in results.items()
    }


def check_fuse(results: Dict[str, List[FuseCellResult]],
               tolerance: float = 1.1) -> List[str]:
    """The ``--check`` contract; returns violation descriptions.

    A cell violates when its fused and materialized results disagree
    (beyond 1e-9 rtol), the fused pipeline runs slower than ``tolerance``
    times the materialized one, the fused kernel source references a
    destination array, or (Python backends) the fused run's traced
    allocation peak is not below the materialized run's.
    """
    problems: List[str] = []
    for pair, cells in results.items():
        for cell in cells:
            where = f"{pair}/{cell.matrix} [{cell.backend}]"
            if not cell.identical:
                problems.append(
                    f"{where}: fused result diverges from materialized "
                    f"(max |delta| {cell.max_abs_delta:.3e})"
                )
            if cell.fused_seconds > tolerance * cell.materialized_seconds:
                problems.append(
                    f"{where}: fused {cell.fused_seconds * 1e3:.3f} ms vs "
                    f"materialized {cell.materialized_seconds * 1e3:.3f} ms "
                    f"(> {tolerance:g}x)"
                )
            if cell.intermediate_refs:
                problems.append(
                    f"{where}: fused kernel source references "
                    f"{cell.intermediate_refs} intermediate-format array(s)"
                )
            if (cell.backend != "native"
                    and cell.fused_peak_bytes >= cell.materialized_peak_bytes):
                problems.append(
                    f"{where}: fused allocation peak {cell.fused_peak_bytes} "
                    f"B not below materialized "
                    f"{cell.materialized_peak_bytes} B"
                )
    return problems
