"""Timing helpers for the benchmark harness."""

from __future__ import annotations

import gc
import math
import time
from typing import Callable, Iterable, List, Optional


def time_call(fn: Callable[[], object], repeats: int = 3) -> float:
    """Median wall-clock seconds of ``repeats`` calls, GC disabled.

    The paper reports medians of 50 cold-cache runs; in this substrate the
    Python interpreter dominates and cache state is second-order, so a
    small repeat count keeps the full sweep tractable.
    """
    times: List[float] = []
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    times.sort()
    return times[len(times) // 2]


def geomean(values: Iterable[float]) -> Optional[float]:
    """Geometric mean, or None for an empty sequence."""
    values = [v for v in values if v is not None]
    if not values:
        return None
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(headers: List[str], rows: List[List[str]]) -> str:
    """Fixed-width text table (markdown-ish) used by all reports."""
    widths = [len(h) for h in headers]
    for row in rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def line(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)
