"""Numeric evaluation of IR expressions over a variable environment.

Used host-side to resolve symbolic dimension extents (e.g. a DIA tensor's
offset dimension ``N1 + N2 - 1``) to concrete integers for a tensor with
known dimensions.
"""

from __future__ import annotations

from typing import Dict, Union

from ..ir.nodes import BinOp, Call, Const, Expr, Ternary, UnOp, Var

_BIN = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "and": lambda a, b: a and b,
    "or": lambda a, b: a or b,
}


def evaluate_expr(expr: Expr, env: Dict[str, Union[int, float]]):
    """Evaluate a pure IR expression (no loads) in ``env``.

    Raises ``KeyError`` for unbound variables and ``TypeError`` for nodes
    that need runtime state (array loads).
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        return env[expr.name]
    if isinstance(expr, BinOp):
        return _BIN[expr.op](evaluate_expr(expr.lhs, env), evaluate_expr(expr.rhs, env))
    if isinstance(expr, UnOp):
        value = evaluate_expr(expr.operand, env)
        return {"-": lambda v: -v, "not": lambda v: not v, "~": lambda v: ~v}[expr.op](value)
    if isinstance(expr, Call) and expr.func in ("min", "max"):
        values = [evaluate_expr(a, env) for a in expr.args]
        return min(values) if expr.func == "min" else max(values)
    if isinstance(expr, Ternary):
        if evaluate_expr(expr.cond, env):
            return evaluate_expr(expr.if_true, env)
        return evaluate_expr(expr.if_false, env)
    raise TypeError(f"cannot evaluate {expr!r} without runtime state")
