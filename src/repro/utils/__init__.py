"""Small shared utilities."""

from .evaluate import evaluate_expr

__all__ = ["evaluate_expr"]
