"""Base class and context interfaces for level formats.

A *level format* stores one dimension (level) of a coordinate hierarchy
(Section 2).  Every tensor format is a composition of level formats plus a
coordinate remapping.  Each level implements up to three facets:

1. **properties** — ``full``/``ordered``/``unique``/``branchless``/
   ``compact`` from Chou et al. [17], plus ``stores_explicit_zeros``
   (the new property Table 1's caption introduces) and ``has_edges``
   (whether assembling the level requires an edge-insertion phase);
2. **iteration** — code generation (``emit_iteration``) and host-side
   interpretation (``iterate``/``size``) of the level functions
   ``pos_bounds``/``pos_access``, ``coord_bounds``/``coord_access`` and
   ``locate`` of Chou et al.;
3. **assembly** — the new level functions of Section 6.1: ``get_size``,
   sequenced/unsequenced edge insertion, ``init_coords``,
   ``get_pos``/``yield_pos`` (+ init/finalize) and ``insert_coord``,
   together with the attribute queries (:class:`~repro.query.spec.QuerySpec`)
   the level requires;
4. **vector emission** — the bulk-numpy mirrors of the iteration and
   assembly facets consumed by :mod:`repro.ir.vector`: ``vector_iterate``
   (expand a frontier of paths by this level's children), ``vector_edges``
   (bulk edge insertion via ``cumsum`` over query counts), ``vector_pos``
   (per-nonzero destination positions, ``group_ranks`` in place of the
   sequenced ``yield_pos`` bump) and friends.  A level that sets
   ``vector_capable = False`` (the default for new level types, and for
   :class:`~repro.levels.hashed.HashedLevel`) makes every conversion
   touching it fall back to the scalar backend.

Code generation methods receive a context object (implemented by the
conversion planner, :mod:`repro.convert.context`) that resolves array names
(``B2_pos``), remapped dimension bounds and query results, and produces
fresh variable names.  Host-side methods receive a
:class:`~repro.storage.tensor.StorageView`-like object with ``array``,
``meta`` and ``dim_size`` accessors.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Sequence, Tuple

from ..ir.nodes import Expr, Stmt
from ..query.spec import QuerySpec


class LevelFunctionError(NotImplementedError):
    """Raised when a level is asked for a facet it does not implement
    (e.g. random ``locate`` into a compressed level)."""


class Level:
    """Abstract level format.

    Concrete subclasses: :class:`~repro.levels.dense.DenseLevel`,
    :class:`~repro.levels.compressed.CompressedLevel`,
    :class:`~repro.levels.singleton.SingletonLevel`,
    :class:`~repro.levels.sliced.SlicedLevel`,
    :class:`~repro.levels.squeezed.SqueezedLevel`,
    :class:`~repro.levels.offset.OffsetLevel`,
    :class:`~repro.levels.banded.BandedLevel`,
    :class:`~repro.levels.hashed.HashedLevel`.
    """

    #: short name used in format signatures (e.g. ``"compressed"``)
    name: str = "abstract"

    # -- properties (Chou et al. + Section 5/6 additions) -------------------
    full: bool = False
    ordered: bool = True
    unique: bool = True
    branchless: bool = False
    compact: bool = True
    #: the level materializes every coordinate in a range, so padding zeros
    #: are stored explicitly (DIA, ELL, banded); disables the
    #: simplify-width-count rewrite and adds nonzero guards when iterated.
    stores_explicit_zeros: bool = False
    #: True if the level needs an edge-insertion phase before coordinates
    #: can be inserted (levels with ``pos`` arrays).
    has_edges: bool = False
    #: ``"get"`` (idempotent positions) or ``"yield"`` (append positions).
    pos_kind: str = "get"
    #: True if the level stores coordinates explicitly in a ``crd`` array.
    explicit_coords: bool = False

    # ------------------------------------------------------------------
    # iteration facet
    # ------------------------------------------------------------------
    def emit_iteration(
        self,
        ctx,
        k: int,
        parent_pos: Expr,
        ancestors: Sequence[Expr],
        body: Callable[[Expr, Expr], Stmt],
    ) -> Stmt:
        """Emit a loop (or straight-line code) visiting the level's entries.

        ``parent_pos`` is the IR expression of the parent position;
        ``ancestors`` are the coordinate expressions of levels ``0..k-1``.
        ``body(pos, coord)`` returns the statement to run for each entry.
        """
        raise LevelFunctionError(f"{self.name} level does not support iteration")

    def iterate(
        self, view, k: int, parent_pos: int, ancestors: Sequence[int]
    ) -> Iterator[Tuple[int, int]]:
        """Host-side mirror of :meth:`emit_iteration`: yields (pos, coord)."""
        raise LevelFunctionError(f"{self.name} level does not support iteration")

    def size(self, view, k: int, parent_size: int) -> int:
        """Host-side ``get_size``: number of positions given the parent's."""
        raise LevelFunctionError(f"{self.name} level does not define size")

    # ------------------------------------------------------------------
    # assembly facet
    # ------------------------------------------------------------------
    def queries(self, k: int, ndims: int) -> Tuple[QuerySpec, ...]:
        """Attribute queries that must be computed before assembling the
        level (the ``Qk :=`` clauses of Figures 7 and 11)."""
        return ()

    def emit_get_size(self, ctx, k: int, parent_size: Expr) -> Tuple[List[Stmt], Expr]:
        """Emit ``get_size``: the level's position-space size.

        Only valid after edge insertion for levels with edges.
        """
        raise LevelFunctionError(f"{self.name} level does not define get_size")

    # edge insertion (only for has_edges levels) -------------------------
    def emit_seq_init_edges(self, ctx, k: int, parent_size: Expr) -> List[Stmt]:
        raise LevelFunctionError(f"{self.name} level does not define edges")

    def emit_seq_insert_edges(
        self, ctx, k: int, parent_pos: Expr, coords: Sequence[Expr]
    ) -> List[Stmt]:
        raise LevelFunctionError(f"{self.name} level does not define edges")

    def emit_unseq_init_edges(self, ctx, k: int, parent_size: Expr) -> List[Stmt]:
        raise LevelFunctionError(f"{self.name} level does not define edges")

    def emit_unseq_insert_edges(
        self, ctx, k: int, parent_pos: Expr, coords: Sequence[Expr]
    ) -> List[Stmt]:
        raise LevelFunctionError(f"{self.name} level does not define edges")

    def emit_unseq_finalize_edges(self, ctx, k: int, parent_size: Expr) -> List[Stmt]:
        raise LevelFunctionError(f"{self.name} level does not define edges")

    # coordinate insertion ------------------------------------------------
    def emit_init_coords(self, ctx, k: int, parent_size: Expr) -> List[Stmt]:
        """Allocate/initialize coordinate storage (may consume queries)."""
        return []

    def emit_init_pos(self, ctx, k: int, parent_size: Expr) -> List[Stmt]:
        """Initialize auxiliary structures used by get_pos/yield_pos."""
        return []

    def emit_pos(
        self, ctx, k: int, parent_pos: Expr, coords: Sequence[Expr]
    ) -> Tuple[List[Stmt], Expr]:
        """Emit ``get_pos``/``yield_pos``: position for the nonzero with
        destination coordinates ``coords`` (one expression per level up to
        and including this one)."""
        raise LevelFunctionError(f"{self.name} level does not define positions")

    def emit_finalize_pos(self, ctx, k: int, parent_size: Expr) -> List[Stmt]:
        """Clean up after insertion (e.g. shift a bumped ``pos`` array back)."""
        return []

    def emit_insert_coord(
        self, ctx, k: int, pos: Expr, coords: Sequence[Expr]
    ) -> List[Stmt]:
        """Store the coordinate at position ``pos`` (no-op when implicit)."""
        return []

    # ------------------------------------------------------------------
    # vector-emission facet (bulk numpy lowering, repro.ir.vector)
    # ------------------------------------------------------------------
    #: True if the level implements the vector-emission protocol; the
    #: backend resolver asks every level of both formats before choosing
    #: the vector backend, so unsupported levels fall back to scalar.
    vector_capable: bool = False

    @property
    def vector_gather_capable(self) -> bool:
        """True if the level's *source iteration* lowers through the
        vector backend.  Defaults to :attr:`vector_capable`; kept
        separate because a level can assemble in bulk as a destination
        yet gather poorly as a source (hashed: slot enumeration carries
        every empty slot through the stream and its probe order cannot
        compose prefix widths, so hashed sources stay on the scalar and
        bridge paths the router already plans around)."""
        return self.vector_capable

    def vector_iterate(self, em, view, k: int, frontier) -> None:
        """Expand ``frontier`` (one entry per enumerated path through
        levels ``0..k-1``) by this level's children, in the exact order of
        the scalar :meth:`emit_iteration` loop.  Appends the level's bulk
        coordinate array to ``frontier.coords`` and updates
        ``frontier.pos``."""
        raise LevelFunctionError(f"{self.name} level does not vector-iterate")

    def vector_width_step(self, em, view, k: int, start: Expr, end: Expr):
        """Compose a position range ``[start, end)`` through this level —
        the bulk mirror of the simplify-width-count composition of
        :meth:`~repro.convert.iterate.SourceLoopEmitter.emit_width`."""
        raise LevelFunctionError(f"{self.name} level does not compose widths")

    def vector_edges(self, em, ctx, k: int, parents, parent_size: Expr) -> None:
        """Bulk edge insertion: build the level's ``pos`` array from the
        count attribute query with ``cumsum``, one entry per parent
        position (``parents`` is the destination-prefix frontier, or
        ``None`` at the root)."""
        raise LevelFunctionError(f"{self.name} level does not define edges")

    def vector_init_coords(self, em, ctx, k: int, parent_size: Expr) -> None:
        """Bulk ``init_coords``.  The default prints the scalar emission,
        which is valid whenever it is straight-line code (allocations and
        scalar assignments vectorize as-is)."""
        em.emit_straightline(self.emit_init_coords(ctx, k, parent_size))

    def vector_init_pos(self, em, ctx, k: int, parent_size: Expr) -> None:
        """Bulk ``init_{get|yield}_pos`` (see :meth:`vector_init_coords`)."""
        em.emit_straightline(self.emit_init_pos(ctx, k, parent_size))

    def vector_pos(self, em, ctx, k: int, parent, coords: Sequence[Expr]):
        """Per-nonzero destination positions as one bulk expression.

        ``parent`` is the parents' position array (an IR ``Var`` naming an
        int64 array aligned with the nonzero streams) or ``None`` at the
        root; ``coords`` are the destination coordinate arrays.  The
        default reuses the scalar :meth:`emit_pos` — pure position
        arithmetic (``locate``-style levels) evaluates elementwise over
        numpy arrays unchanged."""
        from ..ir.nodes import Const

        stmts, expr = self.emit_pos(ctx, k, parent if parent is not None else Const(0), coords)
        if stmts:
            raise LevelFunctionError(
                f"{self.name} level positions do not vectorize"
            )
        return em.bind(f"pB{k + 1}", expr)

    def vector_insert_coord(self, em, ctx, k: int, pos, coords: Sequence[Expr]) -> None:
        """Bulk coordinate stores; the scalar ``insert_coord`` stores are
        plain array scatters, which vectorize as-is."""
        em.emit_straightline(self.emit_insert_coord(ctx, k, pos, coords))

    # ------------------------------------------------------------------
    def signature(self) -> str:
        """Stable textual identity used in codegen cache keys."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.signature()}>"
