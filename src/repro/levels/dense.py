"""Dense level format: implicitly encodes every coordinate in ``[0, N)``.

Stores only the dimension size ``N``.  Positions are computed as
``p_parent * N + i`` (the ``locate`` level function of Figure 4).  Used for
the row dimension of CSR/ELL/DIA and the in-block dimensions of BCSR.
"""

from __future__ import annotations


from ..ir import builder as b
from ..ir.nodes import For, Var
from ..ir.simplify import simplify_expr
from .base import Level


class DenseLevel(Level):
    """Implicit level over the full extent of its dimension."""

    name = "dense"
    full = True
    ordered = True
    unique = True
    branchless = True
    compact = True
    pos_kind = "get"
    vector_capable = True

    # -- iteration ----------------------------------------------------------
    def emit_iteration(self, ctx, k, parent_pos, ancestors, body):
        coord = Var(ctx.ng.fresh(ctx.coord_name(k)))
        size = ctx.dim_size(k)
        pos = simplify_expr(b.add(b.mul(parent_pos, size), coord))
        return For(coord, b.const(0), size, body(pos, coord))

    def iterate(self, view, k, parent_pos, ancestors):
        size = view.dim_size(k)
        for coord in range(size):
            yield parent_pos * size + coord, coord

    def size(self, view, k, parent_size):
        return parent_size * view.dim_size(k)

    # -- vector emission ------------------------------------------------------
    def vector_iterate(self, em, view, k, frontier):
        # every parent position owns `size` consecutive children 0..size-1
        slot = frontier.expand_fixed(view.dim_size(k), view.coord_name(k))
        frontier.coords.append(slot)

    # -- assembly -------------------------------------------------------------
    def emit_get_size(self, ctx, k, parent_size):
        return [], simplify_expr(b.mul(parent_size, ctx.dim_extent(k)))

    def emit_pos(self, ctx, k, parent_pos, coords):
        shifted = simplify_expr(b.sub(coords[k], ctx.dim_lo(k)))
        return [], simplify_expr(b.add(b.mul(parent_pos, ctx.dim_extent(k)), shifted))
