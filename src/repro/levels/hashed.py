"""Hashed level format: per-parent open-addressing coordinate tables.

Chou et al.'s level zoo includes a *hashed* level for formats that support
random inserts without order (the workhorse of DOK-style containers).
Each parent position owns a table of ``W`` slots storing coordinates
(``-1`` = empty); probing is linear from ``coord % W``.

Assembly sizes the tables from the same ``count`` attribute query a
compressed level uses: ``W`` is the maximum number of children of any
parent, rounded up to the next power of two and doubled, keeping load
factor ≤ 0.5 so probe chains stay short.  ``get_pos`` probes until it
finds the coordinate or an empty slot, making insertion idempotent
(duplicate-coordinate safe) without a separate dedup table.

Iteration visits all slots and skips empties, so the level is unordered
and not compact — the trade-offs the paper's Section 2 tables ascribe to
hash-based storage.
"""

from __future__ import annotations

from ..ir import builder as b
from ..ir.nodes import Alloc, Assign, AugAssign, ExprStmt, If, Load, Store, Var, While
from ..ir.simplify import simplify_expr
from ..query.spec import QuerySpec
from .base import Level


class HashedLevel(Level):
    """Explicit unordered level backed by per-parent hash tables."""

    name = "hashed"
    full = False
    ordered = False
    unique = True
    branchless = False
    compact = False
    has_edges = False
    pos_kind = "get"
    explicit_coords = True
    #: as a *destination*, probe chains vectorize through
    #: :func:`repro.ir.runtime.hashed_bulk_insert` — priority-claiming
    #: rounds that replay the sequential probe loop's placement bit for
    #: bit.  As a *source* the level stays scalar
    #: (``vector_gather_capable`` below): slot enumeration drags every
    #: empty slot through the gathered streams and cannot compose the
    #: prefix widths the attribute-query passes need.
    vector_capable = True
    vector_gather_capable = False
    #: empty slots are materialized (values there stay zero)
    introduces_padding = True

    # -- iteration ----------------------------------------------------------
    def emit_iteration(self, ctx, k, parent_pos, ancestors, body):
        width = ctx.meta(k, "W")
        crd_arr = ctx.array(k, "crd")
        slot = Var(ctx.ng.fresh(f"s{k + 1}"))
        coord = Var(ctx.ng.fresh(ctx.coord_name(k)))
        pos = simplify_expr(b.add(b.mul(parent_pos, width), slot))
        pos_var = Var(ctx.ng.fresh(f"p{k + 1}"))
        inner = b.block(
            [
                Assign(pos_var, pos),
                Assign(coord, Load(crd_arr, pos_var)),
                If(b.ge(coord, 0), body(pos_var, coord)),
            ]
        )
        from ..ir.nodes import For

        return For(slot, b.to_expr(0), width, inner)

    def iterate(self, view, k, parent_pos, ancestors):
        width = view.meta(k, "W")
        crd = view.array(k, "crd")
        for slot in range(width):
            coord = int(crd[parent_pos * width + slot])
            if coord >= 0:
                yield parent_pos * width + slot, coord

    def size(self, view, k, parent_size):
        return parent_size * view.meta(k, "W")

    # -- vector emission ------------------------------------------------------
    def vector_iterate(self, em, view, k, frontier):
        # Every slot in parent-major order, exactly the scalar loop's
        # order.  Empty slots ride along as coordinate -1 with value 0
        # and are dropped by the central padded-source filter (the bulk
        # mirror of the scalar coordinate guard + nonzero guard).
        width = view.meta(k, "W")
        frontier.expand_fixed(width, f"s{k + 1}")
        coord = em.assign(
            view.coord_name(k), frontier.slice(view.array(k, "crd").name)
        )
        frontier.coords.append(coord)

    def vector_init_coords(self, em, ctx, k, parent_size):
        width = ctx.meta_var(k, "W")
        crd_arr = ctx.array(k, "crd")
        handle = ctx.query(k, "nir")
        if handle.is_scalar:
            peak = em.bind("peak", handle.at(()))
        else:
            # max over the count query's table (scalar path: a fold loop)
            peak = em.assign("peak", f"{handle.var.name}.max(initial=0)")
        em.emit(f"{width.name} = next_pow2({peak.name} * 2)")
        em.emit(
            f"{crd_arr.name} = np.full({em.atom(parent_size)} * {width.name},"
            f" -1, dtype=np.int64)"
        )

    def vector_pos(self, em, ctx, k, parent, coords):
        """Bulk ``get_pos``: open-addressing insertion of every nonzero
        through :func:`repro.ir.runtime.hashed_bulk_insert`, which fills
        the table and returns positions in sequential probe order."""
        width = ctx.meta_var(k, "W")
        crd_arr = ctx.array(k, "crd")
        shifted = simplify_expr(b.sub(coords[k], ctx.dim_lo(k)))
        home = em.assign("home", f"{em.atom(shifted)} % {width.name}")
        if parent is None:
            base = "0"
        else:
            base = em.assign("baseB", f"{parent.name} * {width.name}").name
        return em.assign(
            f"pB{k + 1}",
            f"hashed_bulk_insert({crd_arr.name}, {base}, {home.name}, "
            f"{em.atom(coords[k])}, {width.name})",
        )

    # -- assembly -------------------------------------------------------------
    def queries(self, k, ndims):
        # table width is derived from the fullest parent, like a compressed
        # level's segment sizes
        return (QuerySpec(tuple(range(k)), "count", (k,), "nir"),)

    def emit_init_coords(self, ctx, k, parent_size):
        width = ctx.meta_var(k, "W")
        crd_arr = ctx.array(k, "crd")
        peak = Var(ctx.ng.fresh("peak"))
        handle = ctx.query(k, "nir")
        stmts = [Assign(peak, b.to_expr(0))]
        # max over the count query's table (its keys are the parent dims)
        if handle.is_scalar:
            stmts.append(Assign(peak, handle.at(())))
        else:
            idx = Var(ctx.ng.fresh("i"))
            total = b.to_expr(1)
            for key in handle.keys:
                total = b.mul(total, ctx.dim_extent(key.dim))
            from ..ir.nodes import For

            stmts.append(
                For(
                    idx,
                    b.to_expr(0),
                    simplify_expr(total),
                    AugAssign(peak, "max", Load(handle.var, idx)),
                )
            )
        # width = 2 * next_pow2(peak), at least 2 (load factor <= 0.5)
        stmts.append(Assign(width, b.call("next_pow2", b.mul(peak, 2))))
        stmts.append(
            Alloc(crd_arr, simplify_expr(b.mul(parent_size, width)), "int64", "empty")
        )
        stmts.append(ExprStmt(b.call("fill", crd_arr, -1)))
        return stmts

    def emit_get_size(self, ctx, k, parent_size):
        return [], simplify_expr(b.mul(parent_size, ctx.meta_var(k, "W")))

    def emit_pos(self, ctx, k, parent_pos, coords):
        width = ctx.meta_var(k, "W")
        crd_arr = ctx.array(k, "crd")
        base = Var(ctx.ng.fresh("base"))
        slot = Var(ctx.ng.fresh("slot"))
        pos = Var(ctx.ng.fresh(f"pB{k + 1}"))
        shifted = simplify_expr(b.sub(coords[k], ctx.dim_lo(k)))
        probe = While(
            b.logical_and(
                b.ge(Load(crd_arr, pos), 0),
                b.ne(Load(crd_arr, pos), coords[k]),
            ),
            b.block(
                [
                    Assign(slot, b.mod(b.add(slot, 1), width)),
                    Assign(pos, b.add(base, slot)),
                ]
            ),
        )
        stmts = [
            Assign(base, simplify_expr(b.mul(parent_pos, width))),
            Assign(slot, b.mod(shifted, width)),
            Assign(pos, b.add(base, slot)),
            probe,
        ]
        return stmts, pos

    def emit_insert_coord(self, ctx, k, pos, coords):
        return [Store(ctx.array(k, "crd"), pos, coords[k])]
