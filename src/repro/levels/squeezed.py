"""Squeezed level format: DIA's outer (diagonal-offset) dimension.

Stores the sorted set of nonempty coordinates of its dimension in a
``perm`` array of size ``K`` (Figure 2c); during assembly a reverse
permutation ``rperm`` maps coordinates back to positions (Figure 11 top,
and lines 9-19 of Figure 6a).  Coordinates may be negative (diagonal
offsets), so auxiliary arrays are indexed with a shift of ``-lo``.
"""

from __future__ import annotations

from ..ir import builder as b
from ..ir.nodes import Alloc, Assign, AugAssign, For, If, Store, Var
from ..ir.simplify import simplify_expr
from ..query.spec import QuerySpec
from .base import Level


class SqueezedLevel(Level):
    """Implicit level over the ``K`` nonempty coordinates of its dimension."""

    name = "squeezed"
    full = False
    ordered = True
    unique = True
    branchless = False
    compact = True
    pos_kind = "get"
    vector_capable = True
    introduces_padding = True

    # -- vector emission ------------------------------------------------------
    def vector_iterate(self, em, view, k, frontier):
        slot = frontier.expand_fixed(view.meta(k, "K"), f"s{k + 1}")
        coord = em.assign(
            view.coord_name(k), f"{view.array(k, 'perm').name}[{slot.name}]"
        )
        frontier.coords.append(coord)

    def vector_init_coords(self, em, ctx, k, parent_size):
        """Bulk perm construction: the sorted nonempty coordinates are the
        set bits of the ``nz`` query, read off with ``flatnonzero`` —
        identical to the scalar coordinate-order scan."""
        perm = ctx.array(k, "perm")
        count = ctx.meta_var(k, "K")
        nz = ctx.query(k, "nz")
        lo = em.atom(ctx.dim_lo(k))
        em.emit(f"{perm.name} = np.flatnonzero({nz.var.name}) + {lo}")
        em.emit(f"{count.name} = {perm.name}.shape[0]")

    def vector_init_pos(self, em, ctx, k, parent_size):
        """Bulk reverse permutation: one scatter in place of the fill loop."""
        from ..ir.nodes import Var as IRVar

        perm = ctx.array(k, "perm")
        count = ctx.meta_var(k, "K")
        rperm = IRVar(ctx.ng.fresh(f"B{k + 1}_rperm"))
        ctx.scratch[(k, "rperm")] = rperm
        em.emit(
            f"{rperm.name} = np.empty({em.atom(ctx.dim_extent(k))}, dtype=np.int64)"
        )
        em.emit(
            f"{rperm.name}[{perm.name} - {em.atom(ctx.dim_lo(k))}]"
            f" = np.arange({count.name}, dtype=np.int64)"
        )

    # -- iteration ----------------------------------------------------------
    def emit_iteration(self, ctx, k, parent_pos, ancestors, body):
        position = Var(ctx.ng.fresh(f"p{k + 1}"))
        coord = Var(ctx.ng.fresh(ctx.coord_name(k)))
        size = ctx.meta(k, "K")
        perm = ctx.array(k, "perm")
        pos = simplify_expr(b.add(b.mul(parent_pos, size), position))
        inner = b.block([Assign(coord, b.load(perm, position)), body(pos, coord)])
        return For(position, b.const(0), size, inner)

    def iterate(self, view, k, parent_pos, ancestors):
        size = view.meta(k, "K")
        perm = view.array(k, "perm")
        for position in range(size):
            yield parent_pos * size + position, int(perm[position])

    def size(self, view, k, parent_size):
        return parent_size * view.meta(k, "K")

    # -- assembly -------------------------------------------------------------
    def queries(self, k, ndims):
        # Which coordinates of this dimension are nonempty (Figure 11:
        # select [ik] -> id() as nz).
        return (QuerySpec((k,), "id", (), "nz"),)

    def emit_init_coords(self, ctx, k, parent_size):
        """Scan the nz bit set in coordinate order, building ``perm``
        (Figure 6a lines 9-14)."""
        extent = ctx.dim_extent(k)
        lo = ctx.dim_lo(k)
        perm = ctx.array(k, "perm")
        count = ctx.meta_var(k, "K")
        i = Var(ctx.ng.fresh("i"))
        nz = ctx.query(k, "nz")
        scan = For(
            i,
            b.const(0),
            extent,
            If(
                nz.at_shifted(i),
                b.block(
                    [
                        Store(perm, count, simplify_expr(b.add(i, lo))),
                        AugAssign(count, "+", b.const(1)),
                    ]
                ),
            ),
        )
        return [
            Alloc(perm, extent, "int64", "empty"),
            Assign(count, b.const(0)),
            scan,
            # shrink perm to the K entries actually used
            Assign(perm, b.call("trim", perm, count)),
        ]

    def emit_get_size(self, ctx, k, parent_size):
        return [], simplify_expr(b.mul(parent_size, ctx.meta_var(k, "K")))

    def emit_init_pos(self, ctx, k, parent_size):
        """Build the reverse permutation (Figure 6a lines 16-19)."""
        extent = ctx.dim_extent(k)
        lo = ctx.dim_lo(k)
        perm = ctx.array(k, "perm")
        rperm = Var(ctx.ng.fresh(f"B{k + 1}_rperm"))
        ctx.scratch[(k, "rperm")] = rperm
        i = Var(ctx.ng.fresh("i"))
        fill = For(
            i,
            b.const(0),
            ctx.meta_var(k, "K"),
            Store(rperm, simplify_expr(b.sub(b.load(perm, i), lo)), i),
        )
        return [Alloc(rperm, extent, "int64", "empty"), fill]

    def emit_pos(self, ctx, k, parent_pos, coords):
        lo = ctx.dim_lo(k)
        shifted = simplify_expr(b.sub(coords[k], lo))
        position = b.load(ctx.scratch[(k, "rperm")], shifted)
        return [], simplify_expr(
            b.add(b.mul(parent_pos, ctx.meta_var(k, "K")), position)
        )
