"""Singleton level format: one coordinate per parent position.

Stores a ``crd`` array parallel to the parent's position space, with no
``pos`` array (each parent position has exactly one child).  Used for the
column dimension of COO and ELL (Figure 7's third level format).
"""

from __future__ import annotations

from ..ir import builder as b
from ..ir.nodes import Alloc, Assign, Store, Var
from .base import Level


class SingletonLevel(Level):
    """Explicit level storing exactly one coordinate per parent position."""

    name = "singleton"
    full = False
    branchless = True
    compact = True
    has_edges = False
    pos_kind = "get"
    explicit_coords = True
    vector_capable = True

    def __init__(self, unique: bool = True, ordered: bool = True) -> None:
        self.unique = unique
        self.ordered = ordered

    def signature(self) -> str:
        flags = []
        if not self.unique:
            flags.append("¬unique")
        if not self.ordered:
            flags.append("¬ordered")
        return "singleton" + ("{" + ",".join(flags) + "}" if flags else "")

    # -- iteration ----------------------------------------------------------
    def emit_iteration(self, ctx, k, parent_pos, ancestors, body):
        coord = Var(ctx.ng.fresh(ctx.coord_name(k)))
        crd_arr = ctx.array(k, "crd")
        return b.block(
            [Assign(coord, b.load(crd_arr, parent_pos)), body(parent_pos, coord)]
        )

    def iterate(self, view, k, parent_pos, ancestors):
        yield parent_pos, int(view.array(k, "crd")[parent_pos])

    def size(self, view, k, parent_size):
        return parent_size

    # -- vector emission ------------------------------------------------------
    def vector_iterate(self, em, view, k, frontier):
        coord = em.assign(
            view.coord_name(k), frontier.slice(view.array(k, "crd").name)
        )
        frontier.coords.append(coord)

    def vector_width_step(self, em, view, k, start, end):
        return start, end

    # -- assembly -------------------------------------------------------------
    def emit_get_size(self, ctx, k, parent_size):
        return [], parent_size

    def emit_init_coords(self, ctx, k, parent_size):
        crd_arr = ctx.array(k, "crd")
        # Padded targets (e.g. ELL) leave unwritten positions, which must
        # read as coordinate 0 — Figure 7 calls calloc for exactly this.
        init = "zeros" if ctx.needs_zero_init(k) else "empty"
        return [Alloc(crd_arr, parent_size, "int64", init)]

    def emit_pos(self, ctx, k, parent_pos, coords):
        # get_pos: the child shares the parent's position (Figure 7).
        return [], parent_pos

    def emit_insert_coord(self, ctx, k, pos, coords):
        return [Store(ctx.array(k, "crd"), pos, coords[k])]
