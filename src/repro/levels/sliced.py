"""Sliced level format: ELL's outer dimension (Figure 7, first level).

Encodes slice indices ``0..K-1`` implicitly, where ``K`` (the maximum
number of nonzeros in any row) is computed from the ``max`` attribute query
during assembly and stored as level metadata.  The remapped dimension it
stores is a *counter* dimension (``#i``), so its extent is data-dependent.
"""

from __future__ import annotations

from ..ir import builder as b
from ..ir.nodes import Assign, For, Var
from ..ir.simplify import simplify_expr
from ..query.spec import QuerySpec
from .base import Level


class SlicedLevel(Level):
    """Implicit level over ``K`` slices; ``K`` is a data statistic."""

    name = "sliced"
    full = False
    ordered = True
    unique = True
    branchless = True
    compact = True
    pos_kind = "get"
    vector_capable = True
    #: slices shorter than K leave padding in every child level
    introduces_padding = True

    # -- vector emission ------------------------------------------------------
    def vector_iterate(self, em, view, k, frontier):
        slot = frontier.expand_fixed(view.meta(k, "K"), view.coord_name(k))
        frontier.coords.append(slot)

    # -- iteration ----------------------------------------------------------
    def emit_iteration(self, ctx, k, parent_pos, ancestors, body):
        coord = Var(ctx.ng.fresh(ctx.coord_name(k)))
        size = ctx.meta(k, "K")
        pos = simplify_expr(b.add(b.mul(parent_pos, size), coord))
        return For(coord, b.const(0), size, body(pos, coord))

    def iterate(self, view, k, parent_pos, ancestors):
        size = view.meta(k, "K")
        for coord in range(size):
            yield parent_pos * size + coord, coord

    def size(self, view, k, parent_size):
        return parent_size * view.meta(k, "K")

    # -- assembly -------------------------------------------------------------
    def queries(self, k, ndims):
        # K - 1 == the largest counter value == max coordinate along this
        # dimension (Figure 7: select [] -> max(i1) as max_crd).
        return (QuerySpec((), "max", (k,), "max_crd"),)

    def emit_init_coords(self, ctx, k, parent_size):
        size = ctx.meta_var(k, "K")
        return [Assign(size, simplify_expr(b.add(ctx.query(k, "max_crd").at(()), 1)))]

    def emit_get_size(self, ctx, k, parent_size):
        return [], simplify_expr(b.mul(parent_size, ctx.meta_var(k, "K")))

    def emit_pos(self, ctx, k, parent_pos, coords):
        size = ctx.meta_var(k, "K")
        return [], simplify_expr(b.add(b.mul(parent_pos, size), coords[k]))
