"""Offset level format: DIA's inner (column) dimension.

The column coordinate of a DIA entry is fully determined by the diagonal
offset and the row (``j = k + i``), so nothing is stored: the level derives
its coordinate from two ancestor coordinates and shares the parent's
position space.  This is the "offset" level of Chou et al.'s DIA
decomposition, extended here with the assembly facet (it needs none of the
assembly machinery beyond position pass-through).
"""

from __future__ import annotations

from ..ir import builder as b
from ..ir.nodes import Assign, Var
from ..ir.simplify import simplify_expr
from .base import Level


class OffsetLevel(Level):
    """Implicit level whose coordinate is the sum of two ancestor coords."""

    name = "offset"
    full = False
    ordered = True
    unique = True
    branchless = True
    compact = True
    pos_kind = "get"
    vector_capable = True

    def __init__(self, base_level: int, offset_level: int) -> None:
        """Coordinate = coord(base_level) + coord(offset_level)."""
        self.base_level = base_level
        self.offset_level = offset_level

    def signature(self) -> str:
        return f"offset({self.base_level}+{self.offset_level})"

    # -- iteration ----------------------------------------------------------
    def emit_iteration(self, ctx, k, parent_pos, ancestors, body):
        coord = Var(ctx.ng.fresh(ctx.coord_name(k)))
        derived = simplify_expr(
            b.add(ancestors[self.base_level], ancestors[self.offset_level])
        )
        return b.block([Assign(coord, derived), body(parent_pos, coord)])

    def iterate(self, view, k, parent_pos, ancestors):
        yield parent_pos, ancestors[self.base_level] + ancestors[self.offset_level]

    def size(self, view, k, parent_size):
        return parent_size

    # -- vector emission ------------------------------------------------------
    def vector_iterate(self, em, view, k, frontier):
        derived = simplify_expr(
            b.add(
                frontier.coords[self.base_level], frontier.coords[self.offset_level]
            )
        )
        frontier.coords.append(em.bind(view.coord_name(k), derived))

    # -- assembly -------------------------------------------------------------
    def emit_get_size(self, ctx, k, parent_size):
        return [], parent_size

    def emit_pos(self, ctx, k, parent_pos, coords):
        return [], parent_pos
