"""Compressed level format: ``pos``/``crd`` arrays (Figures 4 and 11).

Stores the coordinates of nonempty slices in ``crd``, with ``pos`` mapping
each parent position to its segment of ``crd``.  The column dimension of
CSR and the row dimension of COO both use this level (the latter with
``unique=False`` because COO stores duplicate row coordinates — one per
nonzero).
"""

from __future__ import annotations


from ..ir import builder as b
from ..ir.nodes import Alloc, Assign, ExprStmt, For, Store, Var
from ..ir.simplify import simplify_expr
from ..query.spec import QuerySpec
from .base import Level


class CompressedLevel(Level):
    """Explicit level with position (``pos``) and coordinate (``crd``) arrays."""

    name = "compressed"
    full = False
    branchless = False
    compact = True
    has_edges = True
    pos_kind = "yield"
    explicit_coords = True
    vector_capable = True

    def __init__(self, unique: bool = True, ordered: bool = True) -> None:
        self.unique = unique
        self.ordered = ordered

    def signature(self) -> str:
        flags = []
        if not self.unique:
            flags.append("¬unique")
        if not self.ordered:
            flags.append("¬ordered")
        return "compressed" + ("{" + ",".join(flags) + "}" if flags else "")

    # -- iteration ----------------------------------------------------------
    def emit_iteration(self, ctx, k, parent_pos, ancestors, body):
        pos_arr = ctx.array(k, "pos")
        crd_arr = ctx.array(k, "crd")
        pos = Var(ctx.ng.fresh(f"p{k + 1}"))
        coord = Var(ctx.ng.fresh(ctx.coord_name(k)))
        inner = b.block([Assign(coord, b.load(crd_arr, pos)), body(pos, coord)])
        return For(
            pos,
            b.load(pos_arr, parent_pos),
            b.load(pos_arr, simplify_expr(b.add(parent_pos, 1))),
            inner,
        )

    def iterate(self, view, k, parent_pos, ancestors):
        pos_arr = view.array(k, "pos")
        crd_arr = view.array(k, "crd")
        for pos in range(pos_arr[parent_pos], pos_arr[parent_pos + 1]):
            yield pos, int(crd_arr[pos])

    def size(self, view, k, parent_size):
        return int(view.array(k, "pos")[parent_size])

    # -- vector emission ------------------------------------------------------
    def vector_iterate(self, em, view, k, frontier):
        frontier.expand_segments(view.array(k, "pos").name)
        coord = em.assign(
            view.coord_name(k), frontier.slice(view.array(k, "crd").name)
        )
        frontier.coords.append(coord)

    def vector_width_step(self, em, view, k, start, end):
        pos_arr = view.array(k, "pos")
        return b.load(pos_arr, start), b.load(pos_arr, end)

    def vector_edges(self, em, ctx, k, parents, parent_size):
        pos_arr = ctx.array(k, "pos")
        handle = ctx.query(k, "nir")
        if parents is None:
            total = em.atom(handle.at(()))
            em.emit(f"{pos_arr.name} = np.array([0, {total}], dtype=np.int64)")
            return
        counts = em.bind("cnt", handle.at(list(parents.coords)))
        em.emit_edges_from_counts(pos_arr, counts, parent_size)

    def vector_pos(self, em, ctx, k, parent, coords):
        """Bulk ``yield_pos``: edge offset plus the nonzero's rank among
        same-parent insertions in source order (``group_ranks`` replays
        the sequenced position bump).  Deduplicated levels (Section 6.2)
        assign positions at first occurrences only and share them through
        the lookup table, exactly like the scalar dedup path."""
        pos_arr = ctx.array(k, "pos").name
        if em.dedup:
            shifted = simplify_expr(b.sub(coords[k], ctx.dim_lo(k)))
            if parent is None:
                key = em.bind("key", shifted)
            else:
                key = em.assign(
                    "key",
                    f"{parent.name} * {em.atom(ctx.dim_extent(k))}"
                    f" + {em.atom(shifted)}",
                )
            first = em.assign("first", f"unique_first({key.name})")
            table_size = simplify_expr(b.mul(em.parent_size, ctx.dim_extent(k)))
            table = em.assign(
                f"B{k + 1}_lookup",
                f"np.empty({em.atom(table_size)}, dtype=np.int64)",
            )
            if parent is None:
                fpos = em.assign(
                    "fpos", f"np.arange({first.name}.shape[0], dtype=np.int64)"
                )
            else:
                pf = em.assign("pf", f"{parent.name}[{first.name}]")
                fpos = em.assign(
                    "fpos", f"{pos_arr}[{pf.name}] + group_ranks({pf.name})"
                )
            em.emit(f"{table.name}[{key.name}[{first.name}]] = {fpos.name}")
            return em.assign(f"pB{k + 1}", f"{table.name}[{key.name}]")
        if parent is None:
            return em.assign(f"pB{k + 1}", f"np.arange({em.nnz}, dtype=np.int64)")
        return em.assign(
            f"pB{k + 1}", f"{pos_arr}[{parent.name}] + group_ranks({parent.name})"
        )

    # -- assembly -------------------------------------------------------------
    def queries(self, k, ndims):
        # A unique level needs the number of *distinct* child coordinates
        # per parent; a non-unique level (COO) allocates one slot per stored
        # path, i.e. counts over all remaining dimensions.
        args = (k,) if self.unique else tuple(range(k, ndims))
        return (QuerySpec(tuple(range(k)), "count", args, "nir"),)

    def emit_get_size(self, ctx, k, parent_size):
        return [], b.load(ctx.array(k, "pos"), parent_size)

    # edge insertion -------------------------------------------------------
    def emit_seq_init_edges(self, ctx, k, parent_size):
        pos_arr = ctx.array(k, "pos")
        return [
            Alloc(pos_arr, simplify_expr(b.add(parent_size, 1)), "int64", "empty"),
            Store(pos_arr, b.const(0), b.const(0)),
        ]

    def emit_seq_insert_edges(self, ctx, k, parent_pos, coords):
        pos_arr = ctx.array(k, "pos")
        count = ctx.query(k, "nir").at(coords)
        return [
            Store(
                pos_arr,
                simplify_expr(b.add(parent_pos, 1)),
                b.add(b.load(pos_arr, parent_pos), count),
            )
        ]

    def emit_unseq_init_edges(self, ctx, k, parent_size):
        pos_arr = ctx.array(k, "pos")
        return [Alloc(pos_arr, simplify_expr(b.add(parent_size, 1)), "int64", "zeros")]

    def emit_unseq_insert_edges(self, ctx, k, parent_pos, coords):
        pos_arr = ctx.array(k, "pos")
        count = ctx.query(k, "nir").at(coords)
        return [Store(pos_arr, simplify_expr(b.add(parent_pos, 1)), count)]

    def emit_unseq_finalize_edges(self, ctx, k, parent_size):
        pos_arr = ctx.array(k, "pos")
        return [
            ExprStmt(b.call("prefix_sum", pos_arr, simplify_expr(b.add(parent_size, 1))))
        ]

    # coordinate insertion ---------------------------------------------------
    def emit_init_coords(self, ctx, k, parent_size):
        crd_arr = ctx.array(k, "crd")
        nnz = b.load(ctx.array(k, "pos"), parent_size)
        return [Alloc(crd_arr, nnz, "int64", "empty")]

    def emit_pos(self, ctx, k, parent_pos, coords):
        # yield_pos: return pos[p_{k-1}]++ (Figure 11 middle).
        pos_arr = ctx.array(k, "pos")
        pos = Var(ctx.ng.fresh(f"pB{k + 1}"))
        return (
            [
                Assign(pos, b.load(pos_arr, parent_pos)),
                b.aug_store(pos_arr, parent_pos, "+", 1),
            ],
            pos,
        )

    def emit_finalize_pos(self, ctx, k, parent_size):
        # Shift the bumped pos array back (Figure 11's finalize_yield_pos,
        # lines 22-25 of Figure 6c).
        pos_arr = ctx.array(k, "pos")
        i = Var(ctx.ng.fresh("i"))
        shift = For(
            i,
            b.const(0),
            parent_size,
            Store(
                pos_arr,
                b.sub(parent_size, i),
                b.load(pos_arr, simplify_expr(b.sub(b.sub(parent_size, i), 1))),
            ),
        )
        return [shift, Store(pos_arr, b.const(0), b.const(0))]

    def emit_insert_coord(self, ctx, k, pos, coords):
        return [Store(ctx.array(k, "crd"), pos, coords[k])]
