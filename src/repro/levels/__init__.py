"""Level formats: the coordinate hierarchy + assembly abstraction.

Each level stores one dimension of a coordinate hierarchy and implements
iteration level functions (Chou et al. [17]) plus the assembly level
functions this paper introduces (Section 6.1).
"""

from .banded import BandedLevel
from .base import Level, LevelFunctionError
from .compressed import CompressedLevel
from .dense import DenseLevel
from .hashed import HashedLevel
from .offset import OffsetLevel
from .singleton import SingletonLevel
from .sliced import SlicedLevel
from .squeezed import SqueezedLevel

__all__ = [
    "BandedLevel",
    "CompressedLevel",
    "DenseLevel",
    "HashedLevel",
    "Level",
    "LevelFunctionError",
    "OffsetLevel",
    "SingletonLevel",
    "SlicedLevel",
    "SqueezedLevel",
]
