"""Banded level format: the column dimension of the skyline format.

The skyline format (Figure 11 bottom; MKL's ``sky`` [24]) stores, for every
row, all components between the row's first nonzero and the diagonal.  The
level keeps a ``pos`` array like compressed but no ``crd``: coordinates are
implicit from the segment layout, where the *last* element of row ``i``'s
segment is column ``i`` (``get_pos`` indexes backwards from
``pos[p+1]``).  Assembly needs the ``min`` attribute query (the first
nonzero of each row).
"""

from __future__ import annotations

from ..ir import builder as b
from ..ir.nodes import Alloc, Assign, ExprStmt, For, Store, Var
from ..ir.simplify import simplify_expr
from ..query.spec import QuerySpec
from .base import Level


class BandedLevel(Level):
    """Implicit level storing a contiguous band ending at the diagonal."""

    name = "banded"
    full = False
    ordered = True
    unique = True
    branchless = False
    compact = True
    has_edges = True
    pos_kind = "get"
    vector_capable = True
    stores_explicit_zeros = True
    introduces_padding = True

    # -- vector emission ------------------------------------------------------
    def vector_iterate(self, em, view, k, frontier):
        pos_arr = view.array(k, "pos").name
        ends = em.assign(
            "ends", f"{pos_arr}[{frontier.lo_plus1()}:{frontier.hi_plus1()}]"
        )
        reps = em.assign(
            "ln", f"{ends.name} - {pos_arr}[{frontier.lo}:{frontier.hi}]"
        )
        end_rep = em.assign("ends_r", f"np.repeat({ends.name}, {reps.name})")
        prev = frontier.coords[k - 1]
        frontier.repeat_coords(reps.name)
        frontier.rebound(f"{pos_arr}[{frontier.lo}]", f"{pos_arr}[{frontier.hi}]")
        positions = frontier.pos_array(f"p{k + 1}")
        # column = i - (segment_end - 1 - p), like the scalar derivation
        coord = em.assign(
            view.coord_name(k),
            f"{prev.name} + {positions.name} - {end_rep.name} + 1",
        )
        frontier.coords.append(coord)

    def vector_edges(self, em, ctx, k, parents, parent_size):
        from ..ir.printer import print_expr

        width = simplify_expr(
            b.add(
                b.sub(parents.coords[k - 1], ctx.query(k, "w").at(list(parents.coords))),
                1,
            )
        )
        counts = em.assign("cnt", f"np.maximum({print_expr(width)}, 0)")
        em.emit_edges_from_counts(ctx.array(k, "pos"), counts, parent_size)

    # -- iteration ----------------------------------------------------------
    def emit_iteration(self, ctx, k, parent_pos, ancestors, body):
        pos_arr = ctx.array(k, "pos")
        pos = Var(ctx.ng.fresh(f"p{k + 1}"))
        coord = Var(ctx.ng.fresh(ctx.coord_name(k)))
        end = b.load(pos_arr, simplify_expr(b.add(parent_pos, 1)))
        # column = i - (segment_end - 1 - p)
        derived = simplify_expr(
            b.add(ancestors[k - 1], b.add(b.sub(pos, end), 1))
        )
        inner = b.block([Assign(coord, derived), body(pos, coord)])
        return For(pos, b.load(pos_arr, parent_pos), end, inner)

    def iterate(self, view, k, parent_pos, ancestors):
        pos_arr = view.array(k, "pos")
        end = int(pos_arr[parent_pos + 1])
        for pos in range(int(pos_arr[parent_pos]), end):
            yield pos, ancestors[k - 1] + pos - end + 1

    def size(self, view, k, parent_size):
        return int(view.array(k, "pos")[parent_size])

    # -- assembly -------------------------------------------------------------
    def queries(self, k, ndims):
        # First nonzero of each row (Figure 11: select [...] -> min(ik) as w).
        return (QuerySpec(tuple(range(k)), "min", (k,), "w"),)

    def emit_get_size(self, ctx, k, parent_size):
        return [], b.load(ctx.array(k, "pos"), parent_size)

    def _band_width(self, ctx, k, coords):
        # max(i_{k-1} - w + 1, 0): rows whose first nonzero lies past the
        # diagonal (or empty rows, where the min query yields N) store nothing.
        width = b.add(b.sub(coords[k - 1], ctx.query(k, "w").at(coords)), 1)
        return b.maximum(simplify_expr(width), 0)

    def emit_seq_init_edges(self, ctx, k, parent_size):
        pos_arr = ctx.array(k, "pos")
        return [
            Alloc(pos_arr, simplify_expr(b.add(parent_size, 1)), "int64", "empty"),
            Store(pos_arr, b.const(0), b.const(0)),
        ]

    def emit_seq_insert_edges(self, ctx, k, parent_pos, coords):
        pos_arr = ctx.array(k, "pos")
        return [
            Store(
                pos_arr,
                simplify_expr(b.add(parent_pos, 1)),
                b.add(b.load(pos_arr, parent_pos), self._band_width(ctx, k, coords)),
            )
        ]

    def emit_unseq_init_edges(self, ctx, k, parent_size):
        pos_arr = ctx.array(k, "pos")
        return [Alloc(pos_arr, simplify_expr(b.add(parent_size, 1)), "int64", "zeros")]

    def emit_unseq_insert_edges(self, ctx, k, parent_pos, coords):
        pos_arr = ctx.array(k, "pos")
        return [
            Store(
                pos_arr,
                simplify_expr(b.add(parent_pos, 1)),
                self._band_width(ctx, k, coords),
            )
        ]

    def emit_unseq_finalize_edges(self, ctx, k, parent_size):
        pos_arr = ctx.array(k, "pos")
        return [
            ExprStmt(b.call("prefix_sum", pos_arr, simplify_expr(b.add(parent_size, 1))))
        ]

    def emit_pos(self, ctx, k, parent_pos, coords):
        # get_pos: pos[p+1] + j - i - 1 (Figure 11 bottom).
        pos_arr = ctx.array(k, "pos")
        end = b.load(pos_arr, simplify_expr(b.add(parent_pos, 1)))
        return [], simplify_expr(
            b.sub(b.add(end, b.sub(coords[k], coords[k - 1])), 1)
        )
