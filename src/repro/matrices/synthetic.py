"""Synthetic sparse matrix generators.

The paper evaluates on 21 SuiteSparse matrices (Table 2).  Those files are
not available offline, so this module generates matrices of the same
*structural classes* — what the conversion algorithms' behaviour actually
depends on: the number of nonzero diagonals (DIA's cost driver), the
maximum row degree (ELL's K), row-degree distribution, and pattern
symmetry.  Every generator is deterministic given its seed.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

Coords = List[Tuple[int, int]]


def _values(coords: Coords, rng: random.Random) -> List[float]:
    return [round(rng.uniform(1.0, 2.0), 6) for _ in coords]


def stencil(
    n: int, offsets: Sequence[int], partial: Sequence[int] = (), seed: int = 0
) -> Tuple[Tuple[int, int], Coords, List[float]]:
    """Banded matrix with full diagonals at ``offsets``.

    ``partial`` offsets are only filled on the first half of their rows,
    modelling stencils whose outer bands fade out (keeps the max-row-degree
    below the diagonal count, like dixmaanl's 7 diagonals / 5 per row).
    This is the structure of finite-difference matrices such as jnlbrng1,
    ecology1 or atmosmodd.
    """
    rng = random.Random(seed)
    coords: Coords = []
    for offset in sorted(set(offsets) | set(partial)):
        limited = offset in set(partial) and offset not in set(offsets)
        lo = max(0, -offset)
        hi = min(n, n - offset)
        if limited:
            hi = lo + (hi - lo) // 2
        coords.extend((i, i + offset) for i in range(lo, hi))
    coords.sort()
    return (n, n), coords, _values(coords, rng)


def grid5(nx: int, ny: int, seed: int = 0) -> Tuple[Tuple[int, int], Coords, List[float]]:
    """5-point Laplacian on an ``nx`` x ``ny`` grid (ecology1's structure)."""
    rng = random.Random(seed)
    n = nx * ny
    coords: Coords = []
    for y in range(ny):
        for x in range(nx):
            i = y * nx + x
            coords.append((i, i))
            if x > 0:
                coords.append((i, i - 1))
            if x < nx - 1:
                coords.append((i, i + 1))
            if y > 0:
                coords.append((i, i - nx))
            if y < ny - 1:
                coords.append((i, i + nx))
    coords.sort()
    return (n, n), coords, _values(coords, rng)


def multi_band(
    n: int,
    ndiags: int,
    spread: int,
    fill: float = 1.0,
    symmetric: bool = True,
    seed: int = 0,
) -> Tuple[Tuple[int, int], Coords, List[float]]:
    """FEM-like matrix: ``ndiags`` diagonals within ``±spread``, each row
    of a diagonal present with probability ``fill``.

    Models matrices like cant/consph/pwtk: many (but clustered) nonzero
    diagonals and moderately dense rows.
    """
    rng = random.Random(seed)
    offsets = {0}
    while len(offsets) < ndiags:
        offset = rng.randint(1, spread)
        offsets.add(offset)
        if symmetric:
            offsets.add(-offset)
        if len(offsets) > ndiags:
            offsets.discard(max(offsets))
    cells = set()
    for offset in offsets:
        lo = max(0, -offset)
        hi = min(n, n - offset)
        for i in range(lo, hi):
            if fill >= 1.0 or rng.random() < fill:
                cells.add((i, i + offset))
                if symmetric:
                    cells.add((i + offset, i))
    coords = sorted(cells)
    return (n, n), coords, _values(coords, rng)


def scattered(
    n: int,
    avg_degree: float,
    max_degree: int,
    heavy_rows: int = 0,
    seed: int = 0,
) -> Tuple[Tuple[int, int], Coords, List[float]]:
    """Circuit-like matrix: light random rows plus a few heavy ones.

    Models scircuit / mac_econ_fwd500: small average degree, a long tail
    of dense rows, nonzeros scattered so nearly every diagonal is hit.
    """
    rng = random.Random(seed)
    cells = set()
    for i in range(n):
        degree = max(1, int(rng.expovariate(1.0 / avg_degree)) + 1)
        degree = min(degree, max_degree)
        for _ in range(degree):
            cells.add((i, rng.randrange(n)))
    for _ in range(heavy_rows):
        i = rng.randrange(n)
        for _ in range(max_degree):
            cells.add((i, rng.randrange(n)))
    coords = sorted(cells)
    return (n, n), coords, _values(coords, rng)


def power_law(
    n: int, alpha: float = 2.1, max_degree: int = 500, seed: int = 0
) -> Tuple[Tuple[int, int], Coords, List[float]]:
    """Web-graph-like matrix (webbase-1M): Zipf row degrees, hub columns."""
    rng = random.Random(seed)
    cells = set()
    # Zipf-distributed degrees via inverse transform on a truncated support.
    weights = [1.0 / (k ** alpha) for k in range(1, max_degree + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    for i in range(n):
        u = rng.random()
        degree = 1
        for k, c in enumerate(cumulative, start=1):
            if u <= c:
                degree = k
                break
        for _ in range(degree):
            # mild preferential attachment: half the edges hit hub columns
            if rng.random() < 0.5:
                j = int(rng.random() ** 2 * n)
            else:
                j = rng.randrange(n)
            cells.add((i, min(j, n - 1)))
    coords = sorted(cells)
    return (n, n), coords, _values(coords, rng)


def random_matrix(
    m: int, n: int, nnz: int, seed: int = 0
) -> Tuple[Tuple[int, int], Coords, List[float]]:
    """Uniformly random matrix (used by tests and examples)."""
    rng = random.Random(seed)
    if nnz > m * n:
        raise ValueError("nnz exceeds matrix capacity")
    cells = set()
    while len(cells) < nnz:
        cells.add((rng.randrange(m), rng.randrange(n)))
    coords = sorted(cells)
    return (m, n), coords, _values(coords, rng)
