"""The benchmark suite: scaled stand-ins for the 21 matrices of Table 2.

Each entry names its SuiteSparse original, the structural class it models,
whether its pattern is symmetric (Table 2 highlights nonsymmetric rows —
they get the ``csr_csc`` column in Table 3, and symmetric matrices cast
CSC→DIA/ELL to CSR→DIA/ELL), and the paper's reported statistics for the
EXPERIMENTS.md comparison.

Dimensions are scaled down ~20-400× so the pure-Python substrate finishes
the full Table 3 sweep in minutes; the *ratios* that drive algorithm
behaviour (diagonal counts vs. size, row-degree distribution) follow the
originals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..formats.format import Format
from ..query.evaluate import evaluate_query
from ..query.spec import QuerySpec
from ..remap.evaluate import apply_remap
from ..remap.parser import parse_remap
from ..storage.build import reference_build
from ..storage.tensor import Tensor
from . import synthetic


@dataclass
class SuiteMatrix:
    """One synthetic stand-in matrix plus its paper metadata."""

    name: str
    paper_name: str
    generator: Callable[[], Tuple[Tuple[int, int], list, list]]
    symmetric: bool
    class_name: str
    #: Table 2 row of the original: (rows, cols, nnz, diagonals, max/row)
    paper_stats: Tuple[int, int, int, int, int]
    _data: Optional[Tuple] = field(default=None, repr=False)
    _tensors: Dict[str, Tensor] = field(default_factory=dict, repr=False)

    def data(self):
        """(dims, coords, vals), generated once and cached."""
        if self._data is None:
            self._data = self.generator()
        return self._data

    @property
    def dims(self) -> Tuple[int, int]:
        return self.data()[0]

    @property
    def nnz(self) -> int:
        return len(self.data()[1])

    def tensor(self, format: Format) -> Tensor:
        """The matrix stored in ``format`` (reference builder, cached)."""
        key = format.signature()
        if key not in self._tensors:
            dims, coords, vals = self.data()
            self._tensors[key] = reference_build(format, dims, coords, vals)
        return self._tensors[key]

    def stats(self) -> Dict[str, int]:
        """The Table 2 statistics of the synthetic matrix, computed with
        the attribute query machinery of Section 5."""
        dims, coords, _ = self.data()
        remapped = apply_remap(parse_remap("(i,j) -> (j-i, i, j)"), coords)
        diagonals = evaluate_query(QuerySpec((0,), "id", (), "ne"), remapped)
        per_row = evaluate_query(QuerySpec((0,), "count", (1,), "n"), coords)
        return {
            "rows": dims[0],
            "cols": dims[1],
            "nnz": len(coords),
            "diagonals": len(diagonals),
            "max_per_row": max(per_row.values()) if per_row else 0,
        }

    def dia_padding_ratio(self) -> float:
        """Fraction of stored DIA values that would be padding zeros."""
        stats = self.stats()
        stored = stats["diagonals"] * stats["rows"]
        return 1.0 - stats["nnz"] / stored if stored else 0.0

    def ell_padding_ratio(self) -> float:
        """Fraction of stored ELL values that would be padding zeros."""
        stats = self.stats()
        stored = stats["max_per_row"] * stats["rows"]
        return 1.0 - stats["nnz"] / stored if stored else 0.0


def _entries(scale: float) -> List[SuiteMatrix]:
    def s(n: int) -> int:
        return max(64, int(n * scale))

    return [
        SuiteMatrix(
            "pdb1HYS_s", "pdb1HYS",
            lambda: synthetic.multi_band(s(1100), 900, 1050, fill=0.115, seed=101),
            True, "FEM (protein)", (36417, 36417, 4344765, 25577, 204),
        ),
        SuiteMatrix(
            "jnlbrng1_s", "jnlbrng1",
            lambda: synthetic.stencil(s(2000), [0, -1, 1, -45, 45], seed=102),
            True, "5-pt stencil", (40000, 40000, 199200, 5, 5),
        ),
        SuiteMatrix(
            "obstclae_s", "obstclae",
            lambda: synthetic.stencil(s(2000), [0, -1, 1, -44, 44], seed=103),
            True, "5-pt stencil", (40000, 40000, 197608, 5, 5),
        ),
        SuiteMatrix(
            "chem_master1_s", "chem_master1",
            lambda: synthetic.stencil(s(2020), [0, -1, 1, -41, 41], seed=104),
            False, "5-pt stencil (nonsym)", (40401, 40401, 201201, 5, 5),
        ),
        SuiteMatrix(
            "rma10_s", "rma10",
            lambda: synthetic.multi_band(s(1000), 500, 900, fill=0.2, seed=105),
            True, "FEM (CFD)", (46835, 46835, 2374001, 17367, 145),
        ),
        SuiteMatrix(
            "dixmaanl_s", "dixmaanl",
            lambda: synthetic.stencil(
                s(3000), [0, -1, 1], partial=[-1500, 1500, -750, 750], seed=106
            ),
            True, "7-diag optimization", (60000, 60000, 299998, 7, 5),
        ),
        SuiteMatrix(
            "cant_s", "cant",
            lambda: synthetic.multi_band(s(900), 99, 55, fill=0.78, seed=107),
            True, "FEM (cantilever)", (62451, 62451, 4007383, 99, 78),
        ),
        SuiteMatrix(
            "shyy161_s", "shyy161",
            lambda: synthetic.stencil(
                s(2250), [0, -1, 1, -48, 48], partial=[-49, 49], seed=108
            ),
            False, "CFD stencil (nonsym)", (76480, 76480, 329762, 7, 6),
        ),
        SuiteMatrix(
            "consph_s", "consph",
            lambda: synthetic.multi_band(s(1150), 550, 1100, fill=0.17, seed=109),
            True, "FEM (sphere)", (83334, 83334, 6010480, 13497, 81),
        ),
        SuiteMatrix(
            "denormal_s", "denormal",
            lambda: synthetic.stencil(
                s(2400),
                [0, -1, 1, -2, 2, -55, 55, -56, 56, -57, 57, -110, 110],
                seed=110,
            ),
            True, "13-diag FEM", (89400, 89400, 1156224, 13, 13),
        ),
        SuiteMatrix(
            "Baumann_s", "Baumann",
            lambda: synthetic.stencil(
                s(3000), [0, -1, 1, -52, 52, -2704, 2704], seed=111
            ),
            False, "7-pt stencil (nonsym)", (112211, 112211, 748331, 7, 7),
        ),
        SuiteMatrix(
            "cop20k_A_s", "cop20k_A",
            lambda: synthetic.scattered(s(1600), 24.0, 81, heavy_rows=0, seed=112),
            True, "accelerator (scattered)", (121192, 121192, 2624331, 221205, 81),
        ),
        SuiteMatrix(
            "shipsec1_s", "shipsec1",
            lambda: synthetic.multi_band(s(1300), 420, 1200, fill=0.2, seed=113),
            True, "FEM (ship)", (140874, 140874, 3568176, 10001, 102),
        ),
        SuiteMatrix(
            "majorbasis_s", "majorbasis",
            lambda: synthetic.stencil(
                s(2000),
                [0, 1, 2, 3, 4, 5, 6, -1, -40, -41, -42],
                partial=[-80, -81, -82, 7, 8, 9, 43, 44, 45, 46, 47],
                seed=114,
            ),
            False, "22-diag (nonsym)", (160000, 160000, 1750416, 22, 11),
        ),
        SuiteMatrix(
            "scircuit_s", "scircuit",
            lambda: synthetic.scattered(s(2200), 4.0, 170, heavy_rows=4, seed=115),
            False, "circuit (nonsym)", (170998, 170998, 958936, 158979, 353),
        ),
        SuiteMatrix(
            "mac_econ_fwd500_s", "mac_econ_fwd500",
            lambda: synthetic.scattered(s(2000), 5.5, 44, heavy_rows=2, seed=116),
            False, "economics (nonsym)", (206500, 206500, 1273389, 511, 44),
        ),
        SuiteMatrix(
            "pwtk_s", "pwtk",
            lambda: synthetic.multi_band(s(1200), 500, 1150, fill=0.22, seed=117),
            True, "FEM (wind tunnel)", (217918, 217918, 11524432, 19929, 180),
        ),
        SuiteMatrix(
            "Lin_s", "Lin",
            lambda: synthetic.stencil(s(2560), [0, -1, 1, -50, 50, -2500, 2500], seed=118),
            True, "7-pt stencil", (256000, 256000, 1766400, 7, 7),
        ),
        SuiteMatrix(
            "ecology1_s", "ecology1",
            lambda: synthetic.grid5(s(60), s(60), seed=119),
            True, "5-pt grid", (1000000, 1000000, 4996000, 5, 5),
        ),
        SuiteMatrix(
            "webbase-1M_s", "webbase-1M",
            lambda: synthetic.power_law(s(3000), alpha=2.05, max_degree=470, seed=120),
            False, "web graph (nonsym)", (1000005, 1000005, 3105536, 564259, 4700),
        ),
        SuiteMatrix(
            "atmosmodd_s", "atmosmodd",
            lambda: synthetic.stencil(
                s(3200), [0, -1, 1, -56, 56, -3136, 3136], seed=121
            ),
            False, "7-pt stencil (nonsym)", (1270432, 1270432, 8814880, 7, 7),
        ),
    ]


#: Paper names of the 21 suite matrices, in Table 2 order (static so
#: benchmark parameterization does not trigger generation at collection).
PAPER_NAMES = (
    "pdb1HYS", "jnlbrng1", "obstclae", "chem_master1", "rma10", "dixmaanl",
    "cant", "shyy161", "consph", "denormal", "Baumann", "cop20k_A",
    "shipsec1", "majorbasis", "scircuit", "mac_econ_fwd500", "pwtk", "Lin",
    "ecology1", "webbase-1M", "atmosmodd",
)


def suite(scale: float = 1.0) -> List[SuiteMatrix]:
    """The 21-matrix benchmark suite at the given size scale."""
    return _entries(scale)


def get_matrix(name: str, scale: float = 1.0) -> SuiteMatrix:
    """Look up one suite matrix by (synthetic or paper) name."""
    for entry in suite(scale):
        if entry.name == name or entry.paper_name == name:
            return entry
    raise KeyError(f"unknown suite matrix {name!r}")
