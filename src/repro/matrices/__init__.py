"""Synthetic matrices and the Table 2 benchmark suite."""

from . import synthetic
from .suite import SuiteMatrix, get_matrix, suite

__all__ = ["SuiteMatrix", "get_matrix", "suite", "synthetic"]
