"""Memmap-backed destination storage for out-of-core conversions.

A :class:`MemmapStore` owns one directory of level arrays, one flat
``<name>.bin`` file per generated output array (``B2_pos.bin``,
``B2_crd.bin``, ``B_vals.bin``...), plus a ``manifest.json`` describing
dtype, shape, level and role of every entry.  Arrays are
:class:`numpy.memmap` instances — an ``ndarray`` subclass — so existing
kernels, :class:`~repro.storage.tensor.Tensor` and the test oracles
accept them transparently; fresh mappings are zero-filled, which the
zero-initialized destination formats (DIA/ELL/SKY padding) rely on.

The store is written into a temporary directory and atomically renamed
into place by the caller (:func:`repro.stream.convert_file`), mirroring
the kernel-cache and native-``.so`` write pattern: a failed conversion
never leaves partial level arrays behind.  :meth:`release` bounds the
writer's resident set: it flushes dirty pages and advises the kernel to
drop them from the mapping, so scattering into a destination much bigger
than RAM keeps only the current chunk's window resident.
"""

from __future__ import annotations

import json
import mmap
import os
from typing import Dict, Tuple

import numpy as np

__all__ = ["MANIFEST_NAME", "MemmapStore", "load_arrays"]

#: File name of the store manifest inside the directory.
MANIFEST_NAME = "manifest.json"


def _release_map(array: np.ndarray) -> None:
    """Flush ``array``'s dirty pages and drop them from the mapping."""
    mapping = getattr(array, "_mmap", None)
    if mapping is None:
        return
    array.flush()
    if hasattr(mapping, "madvise") and hasattr(mmap, "MADV_DONTNEED"):
        try:
            mapping.madvise(mmap.MADV_DONTNEED)
        except OSError:  # pragma: no cover - advisory only
            pass


class MemmapStore:
    """A directory of named memmap-backed arrays plus scalar metadata."""

    def __init__(self, directory) -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.arrays: Dict[str, np.ndarray] = {}
        self.scalars: Dict[str, int] = {}
        self._roles: Dict[str, Tuple[str, int, str]] = {}

    # ------------------------------------------------------------------
    def _path(self, name: str) -> str:
        return os.path.join(self.directory, f"{name}.bin")

    def empty(self, name: str, shape, dtype) -> np.ndarray:
        """Allocate a zero-filled array file (``np.empty``/``np.zeros``
        of the generated kernels; fresh mappings are always zeroed)."""
        dtype = np.dtype(dtype)
        if isinstance(shape, tuple):
            shape = tuple(int(s) for s in shape)
        else:
            shape = (int(shape),)
        size = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if size == 0:
            # mmap cannot map empty files; keep the (empty) file for the
            # manifest and hand back a plain zero-length array.
            open(self._path(name), "wb").close()
            array = np.empty(shape, dtype=dtype)
        else:
            array = np.memmap(self._path(name), dtype=dtype, mode="w+",
                              shape=shape)
        self.arrays[name] = array
        return array

    def adopt(self, name: str, value):
        """Adopt a computed output: arrays are copied into a memmap,
        integer scalars recorded as metadata and returned unchanged."""
        if isinstance(value, np.ndarray):
            array = self.empty(name, value.shape, value.dtype)
            if value.size:
                array[...] = value
            return array
        self.scalars[name] = int(value)
        return value

    def set_role(self, name: str, side: str, level: int, part: str) -> None:
        """Record the output triple driving :class:`Tensor` assembly."""
        self._roles[name] = (side, int(level), part)

    def release(self) -> None:
        """Flush every mapping and drop its resident pages."""
        for array in self.arrays.values():
            _release_map(array)

    def flush(self) -> None:
        for array in self.arrays.values():
            if hasattr(array, "flush"):
                array.flush()

    # ------------------------------------------------------------------
    def finalize(self, **meta) -> str:
        """Flush arrays and write the manifest; returns its path."""
        self.flush()
        entries = {}
        for name, array in self.arrays.items():
            side, level, part = self._roles.get(name, ("dst_array", -2, name))
            entries[name] = {
                "kind": "array",
                "file": f"{name}.bin",
                "dtype": np.dtype(array.dtype).str,
                "shape": list(array.shape),
                "level": level,
                "part": part,
            }
        for name, value in self.scalars.items():
            side, level, part = self._roles.get(name, ("dst_meta", -2, name))
            entries[name] = {
                "kind": "scalar",
                "value": value,
                "level": level,
                "part": part,
            }
        manifest = {"entries": entries, **meta}
        path = os.path.join(self.directory, MANIFEST_NAME)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
        os.replace(tmp, path)
        return path


def load_arrays(directory, mode: str = "r") -> Tuple[dict, Dict[str, object]]:
    """Load a finalized store: ``(manifest, {name: array-or-scalar})``.

    Arrays come back memmap-backed in ``mode`` (default read-only), so
    opening a conversion result does not materialize it.
    """
    directory = os.fspath(directory)
    with open(os.path.join(directory, MANIFEST_NAME)) as handle:
        manifest = json.load(handle)
    values: Dict[str, object] = {}
    for name, entry in manifest["entries"].items():
        if entry["kind"] == "scalar":
            values[name] = int(entry["value"])
            continue
        shape = tuple(entry["shape"])
        dtype = np.dtype(entry["dtype"])
        if int(np.prod(shape, dtype=np.int64) if shape else 1) == 0:
            values[name] = np.empty(shape, dtype=dtype)
        else:
            values[name] = np.memmap(os.path.join(directory, entry["file"]),
                                     dtype=dtype, mode=mode, shape=shape)
    return manifest, values
