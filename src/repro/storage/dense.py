"""Dense-array entry points for tensor construction."""

from __future__ import annotations

import numpy as np

from ..formats.format import Format
from .build import reference_build
from .tensor import Tensor


def from_dense(format: Format, dense) -> Tensor:
    """Build a tensor in ``format`` from a dense numpy array.

    Zeros are dropped; the remaining entries are handed to the reference
    builder in row-major order.
    """
    dense = np.asarray(dense, dtype=np.float64)
    coords = [tuple(int(x) for x in idx) for idx in np.argwhere(dense != 0)]
    vals = [float(dense[idx]) for idx in coords]
    return reference_build(format, dense.shape, coords, vals)
