"""Reference tensor builders: construct tensors in any built-in format
directly from coordinate lists.

These are straightforward hand-written constructors, deliberately
*independent of the code generator*: the test suite uses them as a second
opinion for every generated conversion routine, and the benchmark harness
uses them to produce inputs.  Duplicate coordinates are rejected.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..formats.format import Format, FormatError
from .tensor import Tensor

Coords = Sequence[Tuple[int, ...]]


def _as_arrays(coords: Coords, vals: Sequence[float], order: int):
    if len(coords) != len(vals):
        raise ValueError("coords and vals must have equal length")
    seen = set()
    for c in coords:
        if len(c) != order:
            raise ValueError(f"coordinate {c} is not order-{order}")
        if tuple(c) in seen:
            raise ValueError(f"duplicate coordinate {c}")
        seen.add(tuple(c))
    return [tuple(int(x) for x in c) for c in coords], [float(v) for v in vals]


def build_coo(dims, coords: Coords, vals, fmt: Optional[Format] = None) -> Tensor:
    """COO in the given order of nonzeros (COO is not assumed sorted)."""
    from ..formats.library import COO

    fmt = fmt or COO
    coords, vals = _as_arrays(coords, vals, 2)
    nnz = len(coords)
    arrays = {
        (0, "pos"): np.array([0, nnz], dtype=np.int64),
        (0, "crd"): np.array([c[0] for c in coords], dtype=np.int64),
        (1, "crd"): np.array([c[1] for c in coords], dtype=np.int64),
    }
    return Tensor(fmt, dims, arrays, {}, np.array(vals, dtype=np.float64))


def build_csr(dims, coords: Coords, vals, fmt: Optional[Format] = None) -> Tensor:
    """CSR with rows grouped in order; columns sorted within each row."""
    from ..formats.library import CSR

    fmt = fmt or CSR
    coords, vals = _as_arrays(coords, vals, 2)
    order = sorted(range(len(coords)), key=lambda t: coords[t])
    nrows = dims[0]
    pos = np.zeros(nrows + 1, dtype=np.int64)
    for i, _ in coords:
        pos[i + 1] += 1
    np.cumsum(pos, out=pos)
    crd = np.array([coords[t][1] for t in order], dtype=np.int64)
    out_vals = np.array([vals[t] for t in order], dtype=np.float64)
    return Tensor(fmt, dims, {(1, "pos"): pos, (1, "crd"): crd}, {}, out_vals)


def build_csc(dims, coords: Coords, vals, fmt: Optional[Format] = None) -> Tensor:
    """CSC: columns grouped in order; rows sorted within each column."""
    from ..formats.library import CSC

    fmt = fmt or CSC
    coords, vals = _as_arrays(coords, vals, 2)
    order = sorted(range(len(coords)), key=lambda t: (coords[t][1], coords[t][0]))
    ncols = dims[1]
    pos = np.zeros(ncols + 1, dtype=np.int64)
    for _, j in coords:
        pos[j + 1] += 1
    np.cumsum(pos, out=pos)
    crd = np.array([coords[t][0] for t in order], dtype=np.int64)
    out_vals = np.array([vals[t] for t in order], dtype=np.float64)
    return Tensor(fmt, dims, {(1, "pos"): pos, (1, "crd"): crd}, {}, out_vals)


def build_dia(dims, coords: Coords, vals, fmt: Optional[Format] = None) -> Tensor:
    """DIA: one dense slot per (stored diagonal, row); Figure 2c."""
    from ..formats.library import DIA

    fmt = fmt or DIA
    coords, vals = _as_arrays(coords, vals, 2)
    nrows = dims[0]
    offsets = sorted({j - i for i, j in coords})
    index = {offset: p for p, offset in enumerate(offsets)}
    count = len(offsets)
    out_vals = np.zeros(count * nrows, dtype=np.float64)
    for (i, j), v in zip(coords, vals):
        out_vals[index[j - i] * nrows + i] = v
    arrays = {(0, "perm"): np.array(offsets, dtype=np.int64)}
    return Tensor(fmt, dims, arrays, {(0, "K"): count}, out_vals)


def build_ell(dims, coords: Coords, vals, fmt: Optional[Format] = None) -> Tensor:
    """ELL: K slices of one nonzero per row, K = max row degree; Figure 2d."""
    from ..formats.library import ELL

    fmt = fmt or ELL
    coords, vals = _as_arrays(coords, vals, 2)
    nrows = dims[0]
    # fill rows in sorted order so slices match CSR iteration order
    order = sorted(range(len(coords)), key=lambda t: coords[t])
    fill = [0] * nrows
    for t in order:
        fill[coords[t][0]] += 1
    count = max(fill) if fill else 0
    crd = np.zeros(count * nrows, dtype=np.int64)
    out_vals = np.zeros(count * nrows, dtype=np.float64)
    slot = [0] * nrows
    for t in order:
        i, j = coords[t]
        k = slot[i]
        slot[i] += 1
        crd[k * nrows + i] = j
        out_vals[k * nrows + i] = vals[t]
    return Tensor(fmt, dims, {(2, "crd"): crd}, {(0, "K"): count}, out_vals)


def build_sky(dims, coords: Coords, vals, fmt: Optional[Format] = None) -> Tensor:
    """Skyline: rows store [first nonzero .. diagonal]; input must be
    lower-triangular (the format cannot represent j > i)."""
    from ..formats.library import SKY

    fmt = fmt or SKY
    coords, vals = _as_arrays(coords, vals, 2)
    nrows = dims[0]
    if any(j > i for i, j in coords):
        raise FormatError("skyline requires lower-triangular input")
    first = [dims[1]] * nrows
    for i, j in coords:
        first[i] = min(first[i], j)
    pos = np.zeros(nrows + 1, dtype=np.int64)
    for i in range(nrows):
        pos[i + 1] = pos[i] + max(i - first[i] + 1, 0)
    out_vals = np.zeros(int(pos[nrows]), dtype=np.float64)
    for (i, j), v in zip(coords, vals):
        out_vals[pos[i + 1] + j - i - 1] = v
    return Tensor(fmt, dims, {(1, "pos"): pos}, {}, out_vals)


def build_bcsr(dims, coords: Coords, vals, fmt: Format) -> Tensor:
    """BCSR: dense M x N blocks indexed CSR-style by block row/column."""
    coords, vals = _as_arrays(coords, vals, 2)
    block_rows = fmt.params["M"]
    block_cols = fmt.params["N"]
    nblock_rows = (dims[0] + block_rows - 1) // block_rows
    blocks: Dict[Tuple[int, int], int] = {}
    for i, j in coords:
        blocks.setdefault((i // block_rows, j // block_cols), 0)
    ordered = sorted(blocks)
    for p, key in enumerate(ordered):
        blocks[key] = p
    pos = np.zeros(nblock_rows + 1, dtype=np.int64)
    for bi, _ in ordered:
        pos[bi + 1] += 1
    np.cumsum(pos, out=pos)
    crd = np.array([bj for _, bj in ordered], dtype=np.int64)
    out_vals = np.zeros(len(ordered) * block_rows * block_cols, dtype=np.float64)
    for (i, j), v in zip(coords, vals):
        p = blocks[(i // block_rows, j // block_cols)]
        out_vals[(p * block_rows + i % block_rows) * block_cols + j % block_cols] = v
    return Tensor(fmt, dims, {(1, "pos"): pos, (1, "crd"): crd}, {}, out_vals)


def build_hash(dims, coords: Coords, vals, fmt: Optional[Format] = None) -> Tensor:
    """DOK-like hash format: per-row open-addressing column tables."""
    from ..formats.library import HASH
    from ..ir.runtime import next_pow2

    fmt = fmt or HASH
    coords, vals = _as_arrays(coords, vals, 2)
    nrows = dims[0]
    per_row = [0] * nrows
    for i, _ in coords:
        per_row[i] += 1
    width = next_pow2(2 * max(per_row, default=0))
    crd = np.full(nrows * width, -1, dtype=np.int64)
    out_vals = np.zeros(nrows * width, dtype=np.float64)
    for (i, j), v in zip(coords, vals):
        slot = j % width
        while crd[i * width + slot] >= 0:
            slot = (slot + 1) % width
        crd[i * width + slot] = j
        out_vals[i * width + slot] = v
    return Tensor(fmt, dims, {(1, "crd"): crd}, {(1, "W"): width}, out_vals)


def build_dcsr(dims, coords: Coords, vals, fmt: Optional[Format] = None) -> Tensor:
    """Doubly compressed sparse row: only nonempty rows stored."""
    from ..formats.library import DCSR

    fmt = fmt or DCSR
    coords, vals = _as_arrays(coords, vals, 2)
    order = sorted(range(len(coords)), key=lambda t: coords[t])
    stored_rows: List[int] = []
    row_pos: List[int] = [0]
    col_crd: List[int] = []
    out_vals: List[float] = []
    for t in order:
        i, j = coords[t]
        if not stored_rows or stored_rows[-1] != i:
            stored_rows.append(i)
            row_pos.append(row_pos[-1])
        col_crd.append(j)
        out_vals.append(vals[t])
        row_pos[-1] += 1
    arrays = {
        (0, "pos"): np.array([0, len(stored_rows)], dtype=np.int64),
        (0, "crd"): np.array(stored_rows, dtype=np.int64),
        (1, "pos"): np.array(row_pos, dtype=np.int64),
        (1, "crd"): np.array(col_crd, dtype=np.int64),
    }
    return Tensor(fmt, dims, arrays, {}, np.array(out_vals, dtype=np.float64))


def build_coo3(dims, coords: Coords, vals, fmt: Optional[Format] = None) -> Tensor:
    """Third-order COO (kept in the given order)."""
    from ..formats.library import COO3

    fmt = fmt or COO3
    coords, vals = _as_arrays(coords, vals, 3)
    nnz = len(coords)
    arrays = {
        (0, "pos"): np.array([0, nnz], dtype=np.int64),
        (0, "crd"): np.array([c[0] for c in coords], dtype=np.int64),
        (1, "crd"): np.array([c[1] for c in coords], dtype=np.int64),
        (2, "crd"): np.array([c[2] for c in coords], dtype=np.int64),
    }
    return Tensor(fmt, dims, arrays, {}, np.array(vals, dtype=np.float64))


def build_csf(dims, coords: Coords, vals, fmt: Optional[Format] = None) -> Tensor:
    """CSF for third-order tensors: dense root, compressed fibers."""
    from ..formats.library import CSF

    fmt = fmt or CSF
    coords, vals = _as_arrays(coords, vals, 3)
    order = sorted(range(len(coords)), key=lambda t: coords[t])
    n0 = dims[0]
    pos1 = np.zeros(n0 + 1, dtype=np.int64)
    crd1: List[int] = []
    pos2: List[int] = [0]
    crd2: List[int] = []
    out_vals: List[float] = []
    last_ij = None
    for t in order:
        i, j, k = coords[t]
        if last_ij != (i, j):
            pos1[i + 1] += 1
            crd1.append(j)
            pos2.append(pos2[-1])
            last_ij = (i, j)
        crd2.append(k)
        out_vals.append(vals[t])
        pos2[-1] += 1
    np.cumsum(pos1, out=pos1)
    arrays = {
        (1, "pos"): pos1,
        (1, "crd"): np.array(crd1, dtype=np.int64),
        (2, "pos"): np.array(pos2, dtype=np.int64),
        (2, "crd"): np.array(crd2, dtype=np.int64),
    }
    return Tensor(fmt, dims, arrays, {}, np.array(out_vals, dtype=np.float64))


def build_hicoo(dims, coords: Coords, vals, fmt: Format) -> Tensor:
    """HiCOO-style Morton-blocked COO (see :func:`repro.formats.library.HICOO`)."""
    coords, vals = _as_arrays(coords, vals, 2)
    block = fmt.params["B"]

    def key(c):
        i, j = c
        bi, bj = i // block, j // block
        morton = (bi & 1) | ((bj & 1) << 1)
        return (morton, bi, bj, i % block, j % block)

    order = sorted(range(len(coords)), key=lambda t: key(coords[t]))
    tuples = [key(coords[t]) for t in order]
    nnz = len(tuples)
    arrays = {
        (0, "pos"): np.array([0, nnz], dtype=np.int64),
        (0, "crd"): np.array([t[0] for t in tuples], dtype=np.int64),
        (1, "crd"): np.array([t[1] for t in tuples], dtype=np.int64),
        (2, "crd"): np.array([t[2] for t in tuples], dtype=np.int64),
        (3, "crd"): np.array([t[3] for t in tuples], dtype=np.int64),
        (4, "crd"): np.array([t[4] for t in tuples], dtype=np.int64),
    }
    out_vals = np.array([vals[t] for t in order], dtype=np.float64)
    return Tensor(fmt, dims, arrays, {}, out_vals)


_BUILDERS = {
    "COO": build_coo,
    "CSR": build_csr,
    "CSC": build_csc,
    "DIA": build_dia,
    "ELL": build_ell,
    "SKY": build_sky,
    "DCSR": build_dcsr,
    "HASH": build_hash,
    "COO3": build_coo3,
    "CSF": build_csf,
}


def reference_build(fmt: Format, dims, coords: Coords, vals) -> Tensor:
    """Build a tensor in ``fmt`` with the hand-written reference builder."""
    if fmt.name in _BUILDERS:
        return _BUILDERS[fmt.name](dims, coords, vals, fmt)
    if fmt.name.startswith("BCSR"):
        return build_bcsr(dims, coords, vals, fmt)
    if fmt.name.startswith("HICOO"):
        return build_hicoo(dims, coords, vals, fmt)
    raise FormatError(f"no reference builder for {fmt.name}")
