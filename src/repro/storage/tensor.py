"""Sparse tensor storage: a format plus its concrete arrays.

A :class:`Tensor` owns the numpy arrays of every level (``pos``, ``crd``,
``perm``...), scalar metadata (e.g. ELL's ``K``), and the ``vals`` array.
It also implements the *host-side oracle*: interpreted traversal of the
coordinate hierarchy (``paths``/``to_coo``) through the same level
abstraction the code generator uses, which gives the test suite an
independent reference for every generated routine.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from ..formats.format import Format, FormatError
from ..remap.evaluate import apply_remap_once, CounterState

#: Instance attribute holding the memoized :meth:`Tensor.content_digest`
#: (same rebind-invalidation pattern as the structural-feature cache in
#: :mod:`repro.convert.features`).
_DIGEST_ATTR = "_repro_content_digest"


class Tensor:
    """A sparse tensor stored in some :class:`~repro.formats.format.Format`.

    ``arrays`` maps ``(level_index, array_name)`` to numpy arrays;
    ``meta`` maps ``(level_index, name)`` to scalars.  The canonical
    dimensions are ``dims``; remapped-dimension extents are derived from
    the format (plus metadata for data-dependent dimensions).
    """

    def __init__(
        self,
        format: Format,
        dims: Sequence[int],
        arrays: Dict[Tuple[int, str], np.ndarray],
        meta: Dict[Tuple[int, str], int],
        vals: np.ndarray,
    ) -> None:
        if len(dims) != format.order:
            raise FormatError(
                f"{format.name} is order-{format.order} but got dims {dims}"
            )
        self.format = format
        self.dims = tuple(int(d) for d in dims)
        self.arrays = dict(arrays)
        self.metadata = dict(meta)
        self.vals = vals
        self._extents = format.concrete_dim_extents(self.dims)
        self._lows = format.concrete_dim_lo(self.dims)

    # -- StorageView interface (used by level host methods) -----------------
    def array(self, k: int, name: str) -> np.ndarray:
        """Numpy array ``name`` of level ``k`` (e.g. ``array(1, "pos")``)."""
        return self.arrays[(k, name)]

    def meta(self, k: int, name: str) -> int:
        """Scalar metadata ``name`` of level ``k`` (e.g. ELL's K)."""
        return self.metadata[(k, name)]

    def dim_size(self, k: int) -> int:
        """Extent of remapped dimension ``k`` (metadata for counter dims)."""
        if self._extents[k] is not None:
            return self._extents[k]
        return self.metadata[(k, "K")]

    def dim_lo(self, k: int) -> int:
        """Lower coordinate bound of remapped dimension ``k``."""
        return 0 if self._lows[k] is None else self._lows[k]

    # -- basic facts ---------------------------------------------------------
    @property
    def nnz_stored(self) -> int:
        """Number of stored components, including padding zeros."""
        return int(len(self.vals))

    @property
    def nnz(self) -> int:
        """Number of stored nonzero values."""
        return int(np.count_nonzero(self.vals))

    def content_digest(self) -> str:
        """Stable sha256 hex digest of this tensor's stored content.

        Hashes the shape plus every level array (name, dtype and raw
        little-endian bytes), the scalar metadata, and the values array —
        so two tensors holding bit-identical storage share a digest, and
        any differing byte changes it.  The digest is the tensor half of
        the serving layer's data-cache key (the other half is the
        structural format key).

        The result is memoized on the instance, keyed by the identities
        of the component arrays (the same rebind-invalidation pattern as
        the structural-feature cache): rebinding different arrays
        invalidates the memo, but mutating an array *in place* does not
        — callers that rewrite arrays in place should drop the
        ``_repro_content_digest`` attribute.
        """
        token = (
            tuple(id(arr) for _, arr in sorted(self.arrays.items())),
            id(self.vals),
        )
        cached = getattr(self, _DIGEST_ATTR, None)
        if cached is not None and cached[0] == token:
            return cached[1]
        digest = hashlib.sha256()
        digest.update(repr(self.dims).encode())
        for (level, name), arr in sorted(self.arrays.items()):
            arr = np.ascontiguousarray(arr)
            if arr.dtype.byteorder == ">":  # big-endian never hashes raw
                arr = arr.astype(arr.dtype.newbyteorder("<"))
            digest.update(f"|{level}:{name}:{arr.dtype.str}|".encode())
            digest.update(arr.tobytes())
        for (level, name), value in sorted(self.metadata.items()):
            digest.update(f"|{level}:{name}={int(value)}|".encode())
        vals = np.ascontiguousarray(self.vals)
        if vals.dtype.byteorder == ">":
            vals = vals.astype(vals.dtype.newbyteorder("<"))
        digest.update(f"|vals:{vals.dtype.str}|".encode())
        digest.update(vals.tobytes())
        result = digest.hexdigest()
        try:
            setattr(self, _DIGEST_ATTR, (token, result))
        except AttributeError:  # pragma: no cover - exotic subclasses
            pass
        return result

    # -- oracle traversal ------------------------------------------------------
    def paths(self) -> Iterator[Tuple[Tuple[int, ...], int]]:
        """Yield every stored path as (level coordinates, leaf position).

        This interprets each level's iteration level functions — the same
        semantics the generated code compiles — making it a slow but
        trustworthy oracle.
        """
        levels = self.format.levels

        def rec(k: int, parent_pos: int, ancestors: Tuple[int, ...]):
            if k == len(levels):
                yield ancestors, parent_pos
                return
            for pos, coord in levels[k].iterate(self, k, parent_pos, ancestors):
                yield from rec(k + 1, pos, ancestors + (coord,))

        yield from rec(0, 0, ())

    def to_coo(self, skip_zeros: Optional[bool] = None) -> Dict[Tuple[int, ...], float]:
        """Canonical content: map from canonical coordinates to value.

        Padding zeros of padded formats (DIA/ELL/SKY...) are dropped by
        default; pass ``skip_zeros`` explicitly to override.
        """
        if skip_zeros is None:
            skip_zeros = self.format.padded
        inverse = self.format.inverse
        if inverse is None:
            raise FormatError(f"{self.format.name} has no inverse mapping")
        out: Dict[Tuple[int, ...], float] = {}
        counters = CounterState()
        for level_coords, leaf_pos in self.paths():
            value = float(self.vals[leaf_pos])
            if skip_zeros and value == 0.0:
                continue
            canonical = apply_remap_once(
                inverse, level_coords, self.format.params, counters
            )
            if canonical in out:
                raise FormatError(
                    f"duplicate canonical coordinate {canonical} in {self.format.name}"
                )
            out[canonical] = value
        return out

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense numpy array (for kernel tests)."""
        dense = np.zeros(self.dims, dtype=np.float64)
        for coords, value in self.to_coo(skip_zeros=True).items():
            dense[coords] = value
        return dense

    # -- conversion convenience ------------------------------------------------
    def to(self, dst_format, options=None, backend=None, engine=None,
           route=None, parallel="auto") -> "Tensor":
        """Convert to ``dst_format`` (a :class:`Format` or a registry spec
        string like ``"CSR"`` / ``"BCSR8x8"``) with a generated routine.

        Uses the process-wide default engine unless ``engine`` (a
        :class:`~repro.convert.engine.ConversionEngine`) is given;
        ``parallel`` selects the chunked executor for huge tensors (see
        :meth:`ConversionEngine.convert
        <repro.convert.engine.ConversionEngine.convert>`)::

            csr = tensor.to("CSR")
            dia = tensor.to(DIA, engine=my_engine)
            csc = huge.to("CSC", parallel=8)     # chunked executor
        """
        if engine is None:
            from ..convert.engine import default_engine

            engine = default_engine()
        return engine.convert(self, dst_format, options, backend, route,
                              parallel)

    def spmv(self, x, via="CSR", fuse="auto", backend=None, engine=None):
        """``y = A @ x`` through the fusion planner (:mod:`repro.compute`).

        ``via`` names the compute format the pipeline would convert to;
        with ``fuse="auto"`` the engine's measured cost model decides
        whether to actually materialize it or run the **fused** kernel
        that consumes this tensor's format directly (the intermediate's
        arrays are then never allocated).  ``via=None`` computes in this
        tensor's own format; ``fuse=True`` / ``fuse=False`` pin the
        decision::

            y = tensor.spmv(x)                    # cost model decides
            y = tensor.spmv(x, via="DIA", fuse=True)
        """
        if engine is None:
            from ..convert.engine import default_engine

            engine = default_engine()
        return engine.spmv(self, x, via=via, fuse=fuse, backend=backend)

    # -- scipy interop ---------------------------------------------------------
    @classmethod
    def from_scipy(cls, matrix, format=None, engine=None) -> "Tensor":
        """Build a tensor from a ``scipy.sparse`` matrix.

        The entries arrive in the scipy matrix's COO order; pass
        ``format`` (a :class:`Format` or spec string) to convert onward
        with a generated routine (through ``engine`` or the default)::

            csr = Tensor.from_scipy(scipy_matrix, "CSR")
        """
        from ..formats.library import COO

        coo = matrix.tocoo()
        if not getattr(coo, "has_canonical_format", True):
            # scipy COO may carry duplicate entries (its semantics: they
            # sum); the library's builders/oracle require unique
            # coordinates, so canonicalize a copy first.
            coo = coo.copy()
            coo.sum_duplicates()
        rows = np.asarray(coo.row, dtype=np.int64)
        cols = np.asarray(coo.col, dtype=np.int64)
        vals = np.asarray(coo.data, dtype=np.float64)
        arrays = {
            (0, "pos"): np.array([0, len(vals)], dtype=np.int64),
            (0, "crd"): rows,
            (1, "crd"): cols,
        }
        tensor = cls(COO, coo.shape, arrays, {}, vals)
        if format is None:
            return tensor
        return tensor.to(format, engine=engine)

    def to_scipy(self, kind: str = "coo", engine=None):
        """Export as a ``scipy.sparse`` matrix (``kind``: coo/csr/csc...).

        Matrix formats only.  The tensor is brought to COO with a
        generated routine (a no-op for COO tensors) and handed to scipy,
        which converts to any of its own formats from there::

            sp = tensor.to_scipy("csr")      # scipy.sparse.csr_matrix
            tensor.to("DIA").to_scipy("csc") # convert, then export
        """
        import scipy.sparse  # deliberately late: scipy is optional

        from ..formats.library import COO
        from ..convert.planner import structural_key

        if self.format.order != 2:
            raise FormatError(
                f"to_scipy exports matrices; {self.format.name} is "
                f"order-{self.format.order}"
            )
        if structural_key(self.format) == structural_key(COO):
            coo = self
        else:
            coo = self.to(COO, engine=engine)
        matrix = scipy.sparse.coo_matrix(
            (coo.vals, (coo.array(0, "crd"), coo.array(1, "crd"))),
            shape=coo.dims,
        )
        return matrix.asformat(kind)

    # -- validation ------------------------------------------------------------
    def check(self) -> None:
        """Validate structural invariants of every level; raises on failure."""
        size = 1
        for k, level in enumerate(self.format.levels):
            name = level.name
            if name in ("compressed", "banded"):
                pos = self.array(k, "pos")
                if len(pos) != size + 1:
                    raise FormatError(f"level {k}: pos length {len(pos)} != {size + 1}")
                if pos[0] != 0:
                    raise FormatError(f"level {k}: pos[0] == {pos[0]} != 0")
                if np.any(np.diff(pos) < 0):
                    raise FormatError(f"level {k}: pos not monotone")
                if name == "compressed":
                    crd = self.array(k, "crd")
                    if len(crd) < pos[-1]:
                        raise FormatError(f"level {k}: crd shorter than pos[-1]")
            elif name == "singleton":
                crd = self.array(k, "crd")
                if len(crd) < size:
                    raise FormatError(f"level {k}: crd shorter than parent size")
            elif name == "squeezed":
                perm = self.array(k, "perm")
                count = self.meta(k, "K")
                if len(perm) != count:
                    raise FormatError(f"level {k}: perm length != K")
                if np.any(np.diff(perm) <= 0):
                    raise FormatError(f"level {k}: perm not strictly increasing")
            size = level.size(self, k, size)
        if len(self.vals) != size:
            raise FormatError(f"vals length {len(self.vals)} != leaf size {size}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dims = "x".join(str(d) for d in self.dims)
        return f"<Tensor {self.format.name} {dims} nnz={self.nnz}>"
