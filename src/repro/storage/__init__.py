"""Tensor storage, reference builders and helpers."""

from .build import reference_build
from .dense import from_dense
from .tensor import Tensor

__all__ = ["Tensor", "from_dense", "reference_build"]
