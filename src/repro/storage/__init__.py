"""Tensor storage, reference builders and helpers."""

from .build import reference_build
from .dense import from_dense
from .memmap import MemmapStore, load_arrays
from .tensor import Tensor

__all__ = ["MemmapStore", "Tensor", "from_dense", "load_arrays",
           "reference_build"]
