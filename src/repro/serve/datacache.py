"""Content-hash tensor cache: converted *data*, not kernels.

The engine's caches (:mod:`repro.convert.engine`) hold compiled kernels;
a serving process additionally sees the **same payloads over and over**
— dashboards re-requesting the same matrix, pipelines fanning one upload
out to several formats.  :class:`DataCache` is a thread-safe,
byte-budgeted LRU over converted tensors, keyed by

``(content digest, structural format key, options variant)``

— the sha256 of the *source* tensor's stored bytes
(:meth:`Tensor.content_digest <repro.storage.tensor.Tensor.content_digest>`),
the structural key of the format the cached tensor is materialized in,
and the plan-options key when it differs from the defaults (different
code-shape options may not share entries).

Because conversions in this library are **bit-identical across
backends, routes and the chunked executor**, one cached entry serves
every way of producing it.

Route-prefix sharing is the point of the key shape: a routed conversion
inserts *every hop's output* under the original payload's digest (the
origin digest rides along on each intermediate tensor), so after
``HASH -> COO -> CSR`` runs, a later ``HASH -> COO -> DIA`` of the same
payload finds the ``COO`` checkpoint and skips the shared extraction
hop.  The insertion happens through the engine's hop-observation hook
(:meth:`ConversionEngine.add_hop_observer
<repro.convert.engine.ConversionEngine.add_hop_observer>`) — see
:meth:`DataCache.hop_observer`.

Entries are returned by reference (tensors are treated as immutable, as
everywhere else in the library); callers that mutate arrays in place
get what they deserve.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

from ..convert.planner import PlanOptions, structural_key
from ..convert.router import Hop
from ..formats.format import Format
from ..storage.tensor import Tensor

__all__ = [
    "DataCache",
    "origin_digest",
    "stamp_origin",
    "tensor_nbytes",
]

#: Instance attribute carrying a tensor's *origin* content digest: the
#: digest of the payload it was converted from.  Hop outputs inherit it,
#: which is what makes intermediate cache entries findable under the
#: original request's key.
_ORIGIN_ATTR = "_repro_origin_digest"

#: Default cache budget: 256 MiB of tensor payload.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

_DEFAULT_OPTIONS_KEY = PlanOptions().key()


def tensor_nbytes(tensor: Tensor) -> int:
    """The payload size of a tensor: every level array plus ``vals``."""
    total = int(tensor.vals.nbytes)
    for arr in tensor.arrays.values():
        total += int(arr.nbytes)
    return total


def stamp_origin(tensor: Tensor, digest: str) -> None:
    """Mark ``tensor`` as derived from the payload hashed by ``digest``."""
    try:
        setattr(tensor, _ORIGIN_ATTR, digest)
    except AttributeError:  # pragma: no cover - exotic subclasses
        pass


def origin_digest(tensor: Tensor) -> str:
    """The content digest of the payload ``tensor`` derives from.

    A converted tensor carries its source's digest (stamped when it was
    produced under a hop observer); an unstamped tensor is its own
    origin, so this falls back to :meth:`Tensor.content_digest`.
    """
    stamped = getattr(tensor, _ORIGIN_ATTR, None)
    if isinstance(stamped, str):
        return stamped
    digest = tensor.content_digest()
    stamp_origin(tensor, digest)
    return digest


def _variant(options: Optional[PlanOptions]) -> Optional[Tuple]:
    """The cache-key component of the plan options: ``None`` for the
    default code shapes (the overwhelmingly common case), the options
    key otherwise — non-default options select different generated code
    whose outputs are not guaranteed byte-equal to the defaults."""
    if options is None:
        return None
    key = options.key()
    return None if key == _DEFAULT_OPTIONS_KEY else key


class DataCache:
    """Thread-safe, byte-budgeted LRU over converted tensors.

    Parameters
    ----------
    max_bytes:
        Total payload budget.  Inserting past it evicts least recently
        used entries until the new entry fits; an entry larger than the
        whole budget is refused outright (``put`` returns ``False``).

    Example::

        cache = DataCache(max_bytes=64 << 20)
        engine.add_hop_observer(cache.hop_observer())
        engine.convert(tensor, "CSR")          # inserts every hop output
        hit = cache.get(tensor.content_digest(), CSR)
    """

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Tuple, Tuple[Tensor, int]]" = OrderedDict()
        self._bytes = 0
        self._stats = {
            "hits": 0,
            "misses": 0,
            "insertions": 0,
            "replacements": 0,
            "evictions": 0,
            "rejected_oversize": 0,
        }

    @staticmethod
    def key(digest: str, fmt: Format,
            options: Optional[PlanOptions] = None) -> Tuple:
        """The cache key of (payload digest, format, options variant)."""
        return (digest, structural_key(fmt), _variant(options))

    # -- lookup ----------------------------------------------------------
    def get(self, digest: str, fmt: Format,
            options: Optional[PlanOptions] = None) -> Optional[Tensor]:
        """The cached tensor for this payload in ``fmt``, or ``None``."""
        key = self.key(digest, fmt, options)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._stats["misses"] += 1
                return None
            self._entries.move_to_end(key)
            self._stats["hits"] += 1
            return entry[0]

    def contains(self, digest: str, fmt: Format,
                 options: Optional[PlanOptions] = None) -> bool:
        """Whether an entry exists (no LRU touch, no hit/miss count) —
        the probe behind route-prefix identification."""
        key = self.key(digest, fmt, options)
        with self._lock:
            return key in self._entries

    # -- insertion -------------------------------------------------------
    def put(self, digest: str, fmt: Format, tensor: Tensor,
            options: Optional[PlanOptions] = None) -> bool:
        """Insert (or refresh) an entry; returns whether it is cached.

        The tensor is stamped with the origin digest so conversions
        resumed *from* this entry keep inserting under the same payload
        key.  Entries larger than the whole budget are refused.
        """
        size = tensor_nbytes(tensor)
        stamp_origin(tensor, digest)
        key = self.key(digest, fmt, options)
        with self._lock:
            if size > self.max_bytes:
                self._stats["rejected_oversize"] += 1
                stale = self._entries.pop(key, None)
                if stale is not None:
                    self._bytes -= stale[1]
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
                self._stats["replacements"] += 1
            else:
                self._stats["insertions"] += 1
            while self._bytes + size > self.max_bytes and self._entries:
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self._bytes -= evicted_size
                self._stats["evictions"] += 1
            self._entries[key] = (tensor, size)
            self._bytes += size
            return True

    def discard(self, digest: str, fmt: Format,
                options: Optional[PlanOptions] = None) -> bool:
        """Drop one entry; returns whether it existed."""
        key = self.key(digest, fmt, options)
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry[1]
            return True

    def clear(self) -> None:
        """Drop every entry (stats remain)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    # -- the engine seam -------------------------------------------------
    def hop_observer(self) -> Callable:
        """An engine hop observer that feeds this cache.

        Register it with :meth:`ConversionEngine.add_hop_observer
        <repro.convert.engine.ConversionEngine.add_hop_observer>`: every
        executed hop's output — including each intermediate of a routed
        conversion — is inserted under the *origin* payload's digest,
        which the output tensor inherits from the hop's input.  That is
        the whole prefix-sharing mechanism: later conversions of the
        same payload find the deepest checkpoint already materialized.
        """

        def observe(hop: Hop, source: Tensor, result: Tensor,
                    options: PlanOptions, seconds: float) -> None:
            digest = origin_digest(source)
            self.put(digest, hop.dst, result, options)

        return observe

    # -- telemetry -------------------------------------------------------
    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Counter snapshot plus current occupancy."""
        with self._lock:
            stats = dict(self._stats)
            stats["entries"] = len(self._entries)
            stats["bytes"] = self._bytes
            stats["max_bytes"] = self.max_bytes
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (
            f"<DataCache {stats['entries']} entries "
            f"{stats['bytes']}/{self.max_bytes} bytes "
            f"hits={stats['hits']} misses={stats['misses']}>"
        )
