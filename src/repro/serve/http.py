"""Stdlib HTTP front end for the conversion service.

One :class:`ServiceServer` owns two threads: an asyncio event loop
hosting the :class:`~repro.serve.service.ConversionService`, and a
``ThreadingHTTPServer`` whose handlers bridge into the loop with
``asyncio.run_coroutine_threadsafe``.  Endpoints:

``POST /convert``
    ``{"to": "CSR", "tensor": {...wire...}, "tenant": "default"}`` —
    the tensor travels in the wire encoding of :mod:`repro.serve.wire`;
    the response carries the converted tensor plus how it was served.
``POST /compute``
    ``{"op": "spmv", "tensor": {...wire...}, "to": "CSR", "x": {...},
    "fuse": "auto"}`` — a convert-and-compute pipeline through the
    fusion planner (:mod:`repro.compute`); dense operands and results
    travel as wire array records.  The response's ``fuse`` field says
    whether the destination format was ever materialized.
``POST /plan`` (or ``GET /plan?src=COO&dst=CSR``)
    The PR 5 plan JSON (:meth:`ConversionPlan.to_dict
    <repro.convert.plan.ConversionPlan.to_dict>`) the pair would
    execute under the tenant's policy — replayable anywhere plans load.
``GET /metrics``
    Prometheus text exposition; ``?format=json`` for the raw snapshot.
``GET /healthz``
    Liveness + occupancy document.

Errors map to status codes: malformed payloads 400, unknown paths 404,
quota rejections 429, conversion failures 500 — always with a JSON
``{"error": ...}`` body.
"""

from __future__ import annotations

import asyncio
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional
from urllib.parse import parse_qs, urlparse

from ..storage.tensor import Tensor
from .service import ConversionService, QuotaError
from .wire import (
    WireError,
    array_from_wire,
    array_to_wire,
    tensor_from_wire,
    tensor_to_wire,
)

__all__ = ["ServiceServer"]

#: Largest request body the front end will read, as a guard against
#: unbounded allocation before tenant quotas even see the request.
MAX_BODY_BYTES = 1 << 30


class _BadRequest(ValueError):
    pass


class ServiceServer:
    """The service plus its HTTP listener, as one start/stop unit.

    ``service_kwargs`` pass through to :class:`ConversionService`.
    ``start()`` returns once both threads are serving (``port`` then
    holds the bound port — pass ``port=0`` for an ephemeral one);
    ``stop()`` tears everything down.  Usable as a context manager::

        with ServiceServer(port=0, cache_bytes=64 << 20) as server:
            requests.post(f"http://127.0.0.1:{server.port}/convert", ...)
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8742,
                 **service_kwargs) -> None:
        self.host = host
        self.port = port
        self._service_kwargs = service_kwargs
        self.service: Optional[ConversionService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._http: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "ServiceServer":
        ready = threading.Event()
        boot_error: List[BaseException] = []

        def run_loop() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop

            async def boot() -> None:
                # the service wants a *running* loop at construction
                self.service = ConversionService(**self._service_kwargs)

            try:
                loop.run_until_complete(boot())
            except BaseException as exc:  # surfaced by start()
                boot_error.append(exc)
                return
            finally:
                ready.set()
            loop.run_forever()
            loop.run_until_complete(self.service.close())
            loop.close()

        self._loop_thread = threading.Thread(
            target=run_loop, name="repro-serve-loop", daemon=True
        )
        self._loop_thread.start()
        ready.wait()
        if boot_error:
            self._loop = None
            raise boot_error[0]

        server = self

        class Handler(_ServiceHandler):
            owner = server

        self._http = ThreadingHTTPServer((self.host, self.port), Handler)
        self.port = self._http.server_address[1]
        self._http_thread = threading.Thread(
            target=self._http.serve_forever, name="repro-serve-http",
            daemon=True,
        )
        self._http_thread.start()
        return self

    def stop(self) -> None:
        if self._http is not None:
            self._http.shutdown()
            self._http.server_close()
            self._http_thread.join(timeout=10)
            self._http = None
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._loop_thread.join(timeout=10)
            self._loop = None

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- the bridge into the loop ---------------------------------------
    def call(self, coro, timeout: float = 300.0):
        """Run a coroutine on the service loop from any thread."""
        if self._loop is None:
            raise RuntimeError("server is not running")
        return asyncio.run_coroutine_threadsafe(
            coro, self._loop
        ).result(timeout)


class _ServiceHandler(BaseHTTPRequestHandler):
    owner: ServiceServer  # bound by ServiceServer.start
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the metrics surface replaces per-request stderr logging

    def _send_json(self, status: int, payload: Dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; version=0.0.4") -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise _BadRequest("request body required")
        if length > MAX_BODY_BYTES:
            raise _BadRequest(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except ValueError as exc:
            raise _BadRequest(f"request body is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a JSON object")
        return payload

    def _dispatch(self, handler) -> None:
        try:
            handler()
        except _BadRequest as exc:
            self._send_json(400, {"error": str(exc)})
        except WireError as exc:
            self._send_json(400, {"error": str(exc)})
        except QuotaError as exc:
            self._send_json(429, {"error": str(exc)})
        except (ValueError, KeyError) as exc:
            self._send_json(400, {"error": str(exc)})
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as exc:  # conversion/internal failure
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    # -- endpoints -------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        url = urlparse(self.path)
        if url.path == "/healthz":
            self._dispatch(self._healthz)
        elif url.path == "/metrics":
            self._dispatch(lambda: self._metrics(parse_qs(url.query)))
        elif url.path == "/plan":
            self._dispatch(
                lambda: self._plan({
                    key: values[-1]
                    for key, values in parse_qs(url.query).items()
                })
            )
        else:
            self._send_json(404, {"error": f"no such endpoint: {url.path}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        url = urlparse(self.path)
        if url.path == "/convert":
            self._dispatch(self._convert)
        elif url.path == "/compute":
            self._dispatch(self._compute)
        elif url.path == "/plan":
            self._dispatch(lambda: self._plan(self._read_json()))
        else:
            self._send_json(404, {"error": f"no such endpoint: {url.path}"})

    def _healthz(self) -> None:
        service = self.owner.service
        doc = service.health() if service is not None else {"ok": False}
        self._send_json(200 if doc.get("ok") else 503, doc)

    def _metrics(self, query: Dict) -> None:
        service = self.owner.service
        snapshot = service.snapshot() if service is not None else {}
        if query.get("format", [""])[-1] == "json":
            self._send_json(200, snapshot)
            return
        from .metrics import render_prometheus

        self._send_text(200, render_prometheus(snapshot))

    def _plan(self, params: Dict) -> None:
        src = params.get("src")
        dst = params.get("dst")
        if not src or not dst:
            raise _BadRequest("plan needs 'src' and 'dst' format specs")
        nnz = params.get("nnz")
        plan = self.owner.call(self.owner.service.plan(
            src, dst,
            tenant=str(params.get("tenant") or "default"),
            nnz=int(nnz) if nnz is not None else None,
        ))
        self._send_json(200, plan.to_dict())

    def _convert(self) -> None:
        payload = self._read_json()
        dst = payload.get("to")
        if not isinstance(dst, str) or not dst:
            raise _BadRequest("convert needs 'to': a destination format spec")
        blob = payload.get("tensor")
        if blob is None:
            raise _BadRequest("convert needs 'tensor': a wire-encoded tensor")
        tensor = tensor_from_wire(blob)
        tenant = str(payload.get("tenant") or "default")
        result = self.owner.call(
            self.owner.service.submit(tensor, dst, tenant=tenant)
        )
        self._send_json(200, {
            "tensor": tensor_to_wire(result.tensor),
            "status": result.status,
            "pair": list(result.pair),
            "tenant": result.tenant,
            "digest": result.digest,
            "seconds": result.seconds,
            "hops_executed": result.hops_executed,
            "hops_skipped": result.hops_skipped,
        })

    def _compute(self) -> None:
        payload = self._read_json()
        op = payload.get("op")
        if not isinstance(op, str) or not op:
            raise _BadRequest("compute needs 'op': spmv, row_reduce or scale")
        blob = payload.get("tensor")
        if blob is None:
            raise _BadRequest("compute needs 'tensor': a wire-encoded tensor")
        tensor = tensor_from_wire(blob)
        dst = payload.get("to")
        if dst is not None and (not isinstance(dst, str) or not dst):
            raise _BadRequest("'to' must be a destination format spec")
        x = None
        if payload.get("x") is not None:
            x = array_from_wire(payload["x"], "x")
        alpha = payload.get("alpha")
        if alpha is not None:
            alpha = float(alpha)
        fuse = payload.get("fuse", "auto")
        if not isinstance(fuse, (str, bool)):
            raise _BadRequest("'fuse' must be auto, fused, materialize or a bool")
        tenant = str(payload.get("tenant") or "default")
        result = self.owner.call(self.owner.service.submit_compute(
            tensor, op, dst, tenant=tenant, x=x, alpha=alpha, fuse=fuse,
        ))
        body = {
            "status": result.status,
            "op": result.op,
            "fuse": result.fuse,
            "pair": list(result.pair),
            "tenant": result.tenant,
            "digest": result.digest,
            "seconds": result.seconds,
            "hops_executed": result.hops_executed,
            "hops_skipped": result.hops_skipped,
        }
        if isinstance(result.result, Tensor):
            body["tensor"] = tensor_to_wire(result.result)
        else:
            body["result"] = array_to_wire(result.result)
        self._send_json(200, body)
