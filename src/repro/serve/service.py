"""The conversion service: admission, coalescing, batching, caching.

:class:`ConversionService` is an asyncio front end over one
:class:`~repro.convert.engine.ConversionEngine`.  A request travels::

    submit(tensor, dst, tenant)
      -> admission   (per-tenant concurrency / byte quotas, TenantPolicy)
      -> data cache  (full hit: answer with ZERO engine work)
      -> single-flight (identical in-flight conversion: await its future)
      -> batching    (same-pair requests grouped, run on the executor)
      -> engine      (route-prefix resume when an intermediate is cached,
                      full plan otherwise; every hop output lands in the
                      data cache through the engine's hop observer)

The event loop owns all coordination state (quota counters, in-flight
futures, batch buckets) — only the loop thread mutates it — while the
actual conversions run on a thread pool so the loop stays responsive.
Conversions in this library are bit-identical across backends/routes, so
serving from the data cache or resuming from a cached intermediate
returns exactly the bytes a direct :meth:`engine.convert
<repro.convert.engine.ConversionEngine.convert>` would.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..convert.engine import ConversionEngine, default_engine
from ..convert.features import sample_features
from ..convert.plan import ConversionPlan
from ..convert.planner import PlanOptions, structural_key
from ..convert.router import longest_cached_prefix
from ..formats.registry import FormatSpec, get_format
from ..storage.tensor import Tensor
from .datacache import DataCache, origin_digest, tensor_nbytes
from .metrics import Metrics

__all__ = [
    "ComputeResult",
    "ConversionService",
    "QuotaError",
    "ServeResult",
    "TenantPolicy",
]


class QuotaError(RuntimeError):
    """A request was rejected by its tenant's admission policy."""


@dataclass(frozen=True)
class TenantPolicy:
    """Admission and execution policy for one tenant.

    ``max_concurrent`` bounds the tenant's in-flight requests and
    ``max_inflight_bytes`` their summed payload bytes (``None``:
    unlimited); a request larger than ``max_request_bytes`` is rejected
    outright.  ``options``/``backend``/``parallel`` are the tenant's
    default conversion knobs — a tenant pinned to ``backend="vector"``
    or custom :class:`~repro.convert.planner.PlanOptions` gets them on
    every request without the client saying so.
    """

    name: str = "default"
    max_concurrent: int = 8
    max_request_bytes: Optional[int] = None
    max_inflight_bytes: Optional[int] = None
    options: Optional[PlanOptions] = None
    backend: Optional[str] = None
    parallel: Union[str, int, None] = "auto"


@dataclass(frozen=True)
class ServeResult:
    """One served conversion.

    ``status`` says how it was satisfied: ``identity`` (already in the
    requested structure), ``cached`` (data-cache hit, zero engine work),
    ``coalesced`` (shared an identical in-flight conversion),
    ``prefix`` (resumed a routed plan from a cached intermediate —
    ``hops_skipped`` of its hops never ran), or ``converted`` (full
    plan executed).
    """

    tensor: Tensor
    status: str
    pair: Tuple[str, str]
    tenant: str
    digest: str
    seconds: float = 0.0
    hops_executed: int = 0
    hops_skipped: int = 0


@dataclass(frozen=True)
class ComputeResult:
    """One served compute pipeline (the ``/compute`` endpoint).

    ``result`` is a dense float64 vector for reductions (``spmv``,
    ``row_reduce``) or a :class:`Tensor` for materializing ops
    (``scale``).  ``status`` says how the pipeline was satisfied:
    ``coalesced`` (shared an identical in-flight pipeline), ``prefix``
    (conversion hops resumed from a cached intermediate) or ``computed``
    (full pipeline executed).  ``fuse`` records the planner's terminal
    decision — ``fused`` means the destination format was never
    materialized.
    """

    result: object
    status: str
    op: str
    fuse: str
    pair: Tuple[str, str]
    tenant: str
    digest: str
    seconds: float = 0.0
    hops_executed: int = 0
    hops_skipped: int = 0


def _operand_digest(x=None, alpha=None) -> str:
    """Content digest of the dense compute operands (single-flight key)."""
    h = hashlib.sha256()
    if x is not None:
        arr = np.ascontiguousarray(np.asarray(x, dtype=np.float64))
        h.update(b"x")
        h.update(arr.tobytes())
    if alpha is not None:
        h.update(b"a")
        h.update(repr(float(alpha)).encode())
    return h.hexdigest()


@dataclass
class _Tenant:
    policy: TenantPolicy
    inflight: int = 0
    inflight_bytes: int = 0


@dataclass
class _Job:
    tensor: Tensor
    dst_name: str
    digest: str
    policy: TenantPolicy
    future: "asyncio.Future[ServeResult]"
    tenant: str
    flight_key: Optional[Tuple] = None


@dataclass
class _Batch:
    jobs: List[_Job] = field(default_factory=list)
    flusher: Optional["asyncio.Task"] = None


class ConversionService:
    """Multi-tenant conversion front end over one engine.

    Construct it inside a running event loop (it needs
    ``asyncio.get_running_loop()``), submit with :meth:`submit`, and
    :meth:`close` when done::

        async def main():
            service = ConversionService()
            result = await service.submit(tensor, "CSR")
            await service.close()

    ``batch_window`` is how long a batch bucket waits for same-pair
    company before flushing; ``max_batch`` flushes a bucket early.
    """

    def __init__(
        self,
        engine: Optional[ConversionEngine] = None,
        cache: Optional[DataCache] = None,
        cache_bytes: Optional[int] = None,
        metrics: Optional[Metrics] = None,
        batch_window: float = 0.002,
        max_batch: int = 16,
        executor_workers: int = 4,
    ) -> None:
        self.engine = engine if engine is not None else default_engine()
        if cache is None:
            cache = DataCache(**({} if cache_bytes is None
                                 else {"max_bytes": cache_bytes}))
        elif cache_bytes is not None:
            raise ValueError("pass cache or cache_bytes, not both")
        self.cache = cache
        self.metrics = metrics if metrics is not None else Metrics()
        self.batch_window = float(batch_window)
        self.max_batch = int(max_batch)
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="repro-serve"
        )
        self._tenants: Dict[str, _Tenant] = {}
        self._inflight: Dict[Tuple, "asyncio.Future[ServeResult]"] = {}
        self._batches: Dict[Tuple, _Batch] = {}
        self._closed = False
        self._started = time.time()
        self._observer = self.cache.hop_observer()
        self.engine.add_hop_observer(self._observer)

    # -- tenancy ---------------------------------------------------------
    def set_policy(self, policy: TenantPolicy) -> None:
        """Install (or replace) a tenant's policy; safe from any thread."""
        def install() -> None:
            tenant = self._tenants.get(policy.name)
            if tenant is None:
                self._tenants[policy.name] = _Tenant(policy)
            else:
                tenant.policy = policy

        if self._loop.is_running() and not self._on_loop():
            self._loop.call_soon_threadsafe(install)
        else:
            install()

    def _on_loop(self) -> bool:
        try:
            return asyncio.get_running_loop() is self._loop
        except RuntimeError:
            return False

    def _tenant(self, name: str) -> _Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            tenant = self._tenants[name] = _Tenant(TenantPolicy(name=name))
        return tenant

    def _admit(self, tenant: _Tenant, nbytes: int) -> None:
        policy = tenant.policy
        if (policy.max_request_bytes is not None
                and nbytes > policy.max_request_bytes):
            raise QuotaError(
                f"tenant {policy.name!r}: request of {nbytes} bytes exceeds "
                f"the {policy.max_request_bytes}-byte request limit"
            )
        if tenant.inflight >= policy.max_concurrent:
            raise QuotaError(
                f"tenant {policy.name!r}: {tenant.inflight} requests already "
                f"in flight (limit {policy.max_concurrent})"
            )
        if (policy.max_inflight_bytes is not None
                and tenant.inflight_bytes + nbytes > policy.max_inflight_bytes):
            raise QuotaError(
                f"tenant {policy.name!r}: {nbytes} more bytes would exceed "
                f"the {policy.max_inflight_bytes}-byte in-flight limit"
            )

    # -- the request path ------------------------------------------------
    async def submit(self, tensor: Tensor, dst_format: FormatSpec,
                     tenant: str = "default") -> ServeResult:
        """Serve one conversion request (must run on the service loop).

        Raises :class:`QuotaError` when the tenant's policy rejects the
        request; any conversion failure propagates to the caller.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        started = time.perf_counter()
        dst = get_format(dst_format)
        record = self._tenant(tenant)
        policy = record.policy
        nbytes = tensor_nbytes(tensor)
        try:
            self._admit(record, nbytes)
        except QuotaError:
            self.metrics.incr("quota_rejections")
            raise
        self.metrics.incr("requests")
        self.metrics.incr_tenant(tenant)
        record.inflight += 1
        record.inflight_bytes += nbytes
        try:
            result = await self._serve(tensor, dst, policy, tenant)
        except Exception:
            self.metrics.incr("errors")
            raise
        finally:
            record.inflight -= 1
            record.inflight_bytes -= nbytes
        elapsed = time.perf_counter() - started
        result = dataclasses.replace(result, seconds=elapsed)
        self.metrics.incr("responses")
        self.metrics.observe_latency(result.status, elapsed)
        return result

    async def _serve(self, tensor: Tensor, dst, policy: TenantPolicy,
                     tenant: str) -> ServeResult:
        digest = origin_digest(tensor)
        pair = (tensor.format.name, dst.name)
        options = policy.options
        # Seed the cache with the payload itself: a later request for
        # this payload in its *source* structure is also a hit, and the
        # entry anchors route-prefix probes at hop index zero.
        self.cache.put(digest, tensor.format, tensor, options)
        if structural_key(tensor.format) == structural_key(dst):
            return ServeResult(tensor, "identity", pair, tenant, digest)
        cached = self.cache.get(digest, dst, options)
        if cached is not None:
            self.metrics.incr("data_hits")
            return ServeResult(cached, "cached", pair, tenant, digest)
        flight_key = (
            digest, structural_key(dst),
            options.key() if options is not None else None,
            policy.backend, policy.parallel,
        )
        inflight = self._inflight.get(flight_key)
        if inflight is not None:
            self.metrics.incr("coalesced")
            result = await asyncio.shield(inflight)
            return dataclasses.replace(
                result, status="coalesced", tenant=tenant
            )
        future: "asyncio.Future[ServeResult]" = self._loop.create_future()
        self._inflight[flight_key] = future
        job = _Job(tensor, dst.name, digest, policy, future, tenant,
                   flight_key)
        self._enqueue(job)
        try:
            return await asyncio.shield(future)
        finally:
            if self._inflight.get(flight_key) is future:
                del self._inflight[flight_key]

    # -- batching --------------------------------------------------------
    def _enqueue(self, job: _Job) -> None:
        bucket_key = (
            structural_key(job.tensor.format),
            structural_key(get_format(job.dst_name)),
            job.policy.options.key() if job.policy.options is not None else None,
            job.policy.backend, job.policy.parallel,
        )
        batch = self._batches.get(bucket_key)
        if batch is None:
            batch = self._batches[bucket_key] = _Batch()
        batch.jobs.append(job)
        if len(batch.jobs) >= self.max_batch:
            self._flush(bucket_key)
        elif batch.flusher is None:
            batch.flusher = self._loop.create_task(
                self._flush_later(bucket_key)
            )

    async def _flush_later(self, bucket_key: Tuple) -> None:
        await asyncio.sleep(self.batch_window)
        self._flush(bucket_key)

    def _flush(self, bucket_key: Tuple) -> None:
        batch = self._batches.pop(bucket_key, None)
        if batch is None or not batch.jobs:
            return
        flusher = batch.flusher
        if (flusher is not None and not flusher.done()
                and flusher is not asyncio.current_task()):
            flusher.cancel()
        self.metrics.incr("batches")
        self.metrics.incr("batched_requests", len(batch.jobs))
        self._loop.create_task(self._run_batch(batch.jobs))

    async def _run_batch(self, jobs: List[_Job]) -> None:
        outcomes = await self._loop.run_in_executor(
            self._executor, self._execute_batch, jobs
        )
        for job, result, error in outcomes:
            if job.future.cancelled():
                continue
            if error is not None:
                job.future.set_exception(error)
            else:
                job.future.set_result(result)

    # -- engine-side execution (worker threads) --------------------------
    def _execute_batch(self, jobs: List[_Job]):
        # One batch runs its jobs back to back on a single worker: the
        # first job warms the pair's kernels, the rest reuse them.
        outcomes = []
        for job in jobs:
            try:
                outcomes.append((job, self._execute_job(job), None))
            except Exception as exc:  # delivered to the awaiting caller
                outcomes.append((job, None, exc))
        return outcomes

    def _execute_job(self, job: _Job) -> ServeResult:
        tensor, policy = job.tensor, job.policy
        pair = (tensor.format.name, job.dst_name)
        plan = self.engine.plan(
            tensor.format, job.dst_name,
            options=policy.options, backend=policy.backend,
            parallel=policy.parallel, nnz=tensor.nnz_stored,
            features=sample_features(tensor),
        )
        prefix = longest_cached_prefix(
            plan.hops,
            lambda fmt: self.cache.contains(job.digest, fmt, policy.options),
        )
        if prefix == len(plan.hops):
            cached = self.cache.get(job.digest, plan.dst, policy.options)
            if cached is not None:  # raced in since the loop-side probe
                self.metrics.incr("data_hits")
                return ServeResult(cached, "cached", pair, job.tenant,
                                   job.digest)
            prefix = 0
        if prefix > 0:
            checkpoint = self.cache.get(
                job.digest, plan.hops[prefix - 1].dst, policy.options
            )
            if checkpoint is not None:
                resumed = dataclasses.replace(plan, hops=plan.hops[prefix:])
                result = self.engine.run_plan(resumed, checkpoint)
                self.metrics.incr("prefix_hits")
                return ServeResult(
                    result, "prefix", pair, job.tenant, job.digest,
                    hops_executed=len(resumed.hops), hops_skipped=prefix,
                )
            # checkpoint evicted between probe and fetch: run it all
        result = self.engine.run_plan(plan, tensor)
        self.metrics.incr("full_conversions")
        return ServeResult(
            result, "converted", pair, job.tenant, job.digest,
            hops_executed=len(plan.hops),
        )

    # -- fused convert-and-compute (the /compute endpoint) ---------------
    async def submit_compute(
        self,
        tensor: Tensor,
        op: str,
        dst_format: Optional[FormatSpec] = None,
        tenant: str = "default",
        x=None,
        alpha: Optional[float] = None,
        fuse: Union[str, bool] = "auto",
    ) -> ComputeResult:
        """Serve one convert-and-compute pipeline (service loop only).

        Reuses the conversion machinery end to end: admission runs the
        same tenant quotas, the payload seeds the data cache, identical
        in-flight pipelines coalesce on one execution, and conversion
        hops resume from cached intermediates.  Hop outputs land in the
        cache through the engine's hop observer exactly like ``/convert``
        traffic, so a ``/compute`` request warms the cache for a later
        ``/convert`` and vice versa.  The fusion decision itself is the
        engine's (:meth:`ConversionEngine.plan_compute
        <repro.convert.engine.ConversionEngine.plan_compute>`).
        """
        if self._closed:
            raise RuntimeError("service is closed")
        started = time.perf_counter()
        dst = get_format(dst_format) if dst_format is not None else None
        record = self._tenant(tenant)
        policy = record.policy
        nbytes = tensor_nbytes(tensor)
        try:
            self._admit(record, nbytes)
        except QuotaError:
            self.metrics.incr("quota_rejections")
            raise
        self.metrics.incr("requests")
        self.metrics.incr("compute_requests")
        self.metrics.incr_tenant(tenant)
        record.inflight += 1
        record.inflight_bytes += nbytes
        try:
            result = await self._serve_compute(
                tensor, op, dst, policy, tenant, x, alpha, fuse
            )
        except Exception:
            self.metrics.incr("errors")
            raise
        finally:
            record.inflight -= 1
            record.inflight_bytes -= nbytes
        elapsed = time.perf_counter() - started
        result = dataclasses.replace(result, seconds=elapsed)
        self.metrics.incr("responses")
        self.metrics.observe_latency(f"compute_{result.status}", elapsed)
        return result

    async def _serve_compute(self, tensor: Tensor, op: str, dst,
                             policy: TenantPolicy, tenant: str,
                             x, alpha, fuse) -> ComputeResult:
        digest = origin_digest(tensor)
        options = policy.options
        # Seed the cache with the payload: later /convert or /compute
        # requests for the same bytes anchor their prefix probes here.
        self.cache.put(digest, tensor.format, tensor, options)
        flight_key = (
            "compute", digest, str(op),
            structural_key(dst) if dst is not None else None,
            _operand_digest(x, alpha), str(fuse),
            options.key() if options is not None else None,
            policy.backend,
        )
        inflight = self._inflight.get(flight_key)
        if inflight is not None:
            self.metrics.incr("coalesced")
            result = await asyncio.shield(inflight)
            return dataclasses.replace(
                result, status="coalesced", tenant=tenant
            )
        future: "asyncio.Future[ComputeResult]" = self._loop.create_future()
        self._inflight[flight_key] = future
        self._loop.create_task(self._run_compute(
            future, tensor, op, dst, digest, policy, tenant, x, alpha, fuse
        ))
        try:
            return await asyncio.shield(future)
        finally:
            if self._inflight.get(flight_key) is future:
                del self._inflight[flight_key]

    async def _run_compute(self, future, tensor, op, dst, digest,
                           policy, tenant, x, alpha, fuse) -> None:
        try:
            result = await self._loop.run_in_executor(
                self._executor,
                lambda: self._execute_compute(
                    tensor, op, dst, digest, policy, tenant, x, alpha, fuse
                ),
            )
        except Exception as exc:
            if not future.cancelled():
                future.set_exception(exc)
        else:
            if not future.cancelled():
                future.set_result(result)

    def _execute_compute(self, tensor, op, dst, digest,
                         policy: TenantPolicy, tenant: str,
                         x, alpha, fuse) -> ComputeResult:
        # Worker thread: plan the pipeline under the tenant's knobs,
        # resume its conversion prefix from the data cache when an
        # intermediate is already there, run the rest.
        pair = (
            tensor.format.name,
            dst.name if dst is not None else tensor.format.name,
        )
        plan = self.engine.plan_compute(
            tensor.format, op, dst, fuse=fuse,
            options=policy.options, backend=policy.backend,
            nnz=tensor.nnz_stored, features=sample_features(tensor),
        )
        status = "computed"
        current = tensor
        skipped = 0
        conversion_hops = plan.conversion_hops
        if conversion_hops:
            prefix = longest_cached_prefix(
                conversion_hops,
                lambda fmt: self.cache.contains(digest, fmt, policy.options),
            )
            if prefix > 0:
                checkpoint = self.cache.get(
                    digest, conversion_hops[prefix - 1].dst, policy.options
                )
                if checkpoint is not None:  # may have been evicted since
                    plan = dataclasses.replace(plan, hops=plan.hops[prefix:])
                    current = checkpoint
                    skipped = prefix
                    status = "prefix"
                    self.metrics.incr("prefix_hits")
        value = self.engine.run_compute_plan(plan, current, x=x, alpha=alpha)
        if plan.fused:
            self.metrics.incr("fused_serves")
        self.metrics.incr("computations")
        return ComputeResult(
            value, status, plan.op.name, plan.fuse, pair, tenant, digest,
            hops_executed=len(plan.hops), hops_skipped=skipped,
        )

    # -- plan / health / teardown ---------------------------------------
    async def plan(self, src_format: FormatSpec, dst_format: FormatSpec,
                   tenant: str = "default",
                   nnz: Optional[int] = None) -> ConversionPlan:
        """The plan a request for this pair would execute (tenant knobs
        applied) — the ``/plan`` endpoint's backing call."""
        policy = self._tenant(tenant).policy
        return await self._loop.run_in_executor(
            self._executor,
            lambda: self.engine.plan(
                src_format, dst_format, options=policy.options,
                backend=policy.backend, parallel=policy.parallel, nnz=nnz,
            ),
        )

    def health(self) -> Dict:
        """Liveness document for ``/healthz``."""
        return {
            "ok": not self._closed,
            "uptime_seconds": max(time.time() - self._started, 0.0),
            "inflight": {
                name: {
                    "requests": tenant.inflight,
                    "bytes": tenant.inflight_bytes,
                }
                for name, tenant in sorted(self._tenants.items())
                if tenant.inflight
            },
            "pending_batches": len(self._batches),
            "data_cache": self.cache.stats(),
        }

    def snapshot(self) -> Dict:
        """The aggregated metrics document (see :meth:`Metrics.snapshot`)."""
        return self.metrics.snapshot(engine=self.engine,
                                     datacache=self.cache)

    async def close(self) -> None:
        """Flush pending work, detach from the engine, stop the pool."""
        if self._closed:
            return
        self._closed = True
        for bucket_key in list(self._batches):
            self._flush(bucket_key)
        pending = [
            future for future in self._inflight.values() if not future.done()
        ]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self.engine.remove_hop_observer(self._observer)
        self._executor.shutdown(wait=True)
