"""Conversion serving: cache, admission, batching, metrics, HTTP.

The library converts one tensor at a time; this package turns that into
a long-lived, multi-tenant **service**.  The moving parts:

- :class:`~repro.serve.datacache.DataCache` — a content-hash LRU over
  converted tensors; routed conversions insert every hop's output, so
  requests sharing a route *prefix* reuse the common hops.
- :class:`~repro.serve.service.ConversionService` — asyncio admission
  (per-tenant quotas), single-flight coalescing of identical in-flight
  conversions, same-pair batching, and cache-aware plan execution.
- :mod:`~repro.serve.metrics` — counters + latency histograms, exported
  as JSON and Prometheus text.
- :mod:`~repro.serve.wire` — the JSON wire encoding for tensors (plans
  already have one: the plan JSON of :mod:`repro.convert.plan`).
- :class:`~repro.serve.http.ServiceServer` — the stdlib HTTP front end;
  ``python -m repro.serve`` runs it.

See ``docs/serve.md`` for the lifecycle walk-through.
"""

from .datacache import DataCache, origin_digest, tensor_nbytes
from .http import ServiceServer
from .metrics import Histogram, Metrics, render_prometheus
from .service import (
    ComputeResult,
    ConversionService,
    QuotaError,
    ServeResult,
    TenantPolicy,
)
from .wire import (
    WIRE_SCHEMA,
    WireError,
    array_from_wire,
    array_to_wire,
    tensor_from_wire,
    tensor_to_wire,
)

__all__ = [
    "ComputeResult",
    "ConversionService",
    "DataCache",
    "Histogram",
    "Metrics",
    "QuotaError",
    "ServeResult",
    "ServiceServer",
    "TenantPolicy",
    "WIRE_SCHEMA",
    "WireError",
    "array_from_wire",
    "array_to_wire",
    "origin_digest",
    "render_prometheus",
    "tensor_from_wire",
    "tensor_nbytes",
    "tensor_to_wire",
]
