"""``python -m repro.serve`` — run the conversion service over HTTP.

Example::

    python -m repro.serve --port 8742 --cache-bytes 268435456

Endpoints are documented in :mod:`repro.serve.http` and docs/serve.md.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="serve sparse tensor format conversions over HTTP",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8742,
                        help="bind port; 0 picks an ephemeral one")
    parser.add_argument("--cache-bytes", type=int, default=None,
                        help="data-cache budget in bytes (default: 256 MiB)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent kernel cache directory for the "
                             "service's engine")
    parser.add_argument("--batch-window", type=float, default=0.002,
                        help="seconds a batch waits for same-pair company")
    parser.add_argument("--workers", type=int, default=4,
                        help="conversion worker threads")
    args = parser.parse_args(argv)

    from .http import ServiceServer

    kwargs = {
        "batch_window": args.batch_window,
        "executor_workers": args.workers,
    }
    if args.cache_bytes is not None:
        kwargs["cache_bytes"] = args.cache_bytes
    if args.cache_dir is not None:
        from ..convert.engine import ConversionEngine

        kwargs["engine"] = ConversionEngine(cache_dir=args.cache_dir)

    server = ServiceServer(host=args.host, port=args.port, **kwargs)
    server.start()
    print(f"repro serve: http://{args.host}:{server.port} "
          f"(/convert /plan /metrics /healthz)", flush=True)
    try:
        server._http_thread.join()
    except KeyboardInterrupt:
        print("repro serve: shutting down", flush=True)
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
