"""Wire format for tensors crossing the service boundary.

A tensor travels as a JSON object — schema-versioned, with every numpy
array carried as base64-encoded **little-endian** bytes plus its dtype,
and the format identified the same way serialized plans identify
formats (registry name + structural key, via
:func:`~repro.convert.plan.format_record`).  Plans themselves need no
new encoding: the PR 5 plan JSON (:meth:`ConversionPlan.to_dict
<repro.convert.plan.ConversionPlan.to_dict>`) **is** the wire format
for ``/plan`` responses.

The encoding is exact — raw bytes, not decimal strings — so a tensor
round-trips bit-identically::

    blob = tensor_to_wire(t)
    again = tensor_from_wire(blob)
    assert again.content_digest() == t.content_digest()
"""

from __future__ import annotations

import base64
from typing import Dict

import numpy as np

from ..convert.plan import PlanError, format_record, resolve_format_record
from ..storage.tensor import Tensor

__all__ = [
    "WIRE_SCHEMA",
    "WireError",
    "array_from_wire",
    "array_to_wire",
    "tensor_from_wire",
    "tensor_to_wire",
]

WIRE_SCHEMA = 1


class WireError(ValueError):
    """A malformed wire payload."""


def _encode_array(arr: np.ndarray) -> Dict:
    arr = np.ascontiguousarray(arr)
    if arr.dtype.byteorder == ">":  # wire bytes are little-endian
        arr = arr.astype(arr.dtype.newbyteorder("<"))
    return {
        "dtype": arr.dtype.str,
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def _decode_array(record, where: str) -> np.ndarray:
    if not isinstance(record, dict) or "dtype" not in record or "data" not in record:
        raise WireError(f"malformed array record for {where}: {record!r}")
    try:
        dtype = np.dtype(record["dtype"])
        raw = base64.b64decode(record["data"])
    except (TypeError, ValueError) as exc:
        raise WireError(f"undecodable array for {where}: {exc}") from exc
    if dtype.itemsize and len(raw) % dtype.itemsize:
        raise WireError(
            f"array bytes for {where} are not a multiple of {dtype} items"
        )
    return np.frombuffer(raw, dtype=dtype).copy()  # writable, owned


def array_to_wire(arr) -> Dict:
    """Serialize one numpy array — dense ``/compute`` operands/results."""
    return _encode_array(np.asarray(arr))


def array_from_wire(record, where: str = "array") -> np.ndarray:
    """Rebuild one numpy array; raises :class:`WireError` when malformed."""
    return _decode_array(record, where)


def tensor_to_wire(tensor: Tensor) -> Dict:
    """Serialize a tensor to a JSON-compatible dict."""
    return {
        "schema": WIRE_SCHEMA,
        "format": format_record(tensor.format),
        "dims": list(tensor.dims),
        "arrays": [
            {"level": level, "name": name, **_encode_array(arr)}
            for (level, name), arr in sorted(tensor.arrays.items())
        ],
        "meta": [
            {"level": level, "name": name, "value": int(value)}
            for (level, name), value in sorted(tensor.metadata.items())
        ],
        "vals": _encode_array(tensor.vals),
    }


def tensor_from_wire(blob: Dict) -> Tensor:
    """Rebuild a tensor from its wire dict; raises :class:`WireError`.

    The format resolves through the registry with a structural-key check
    (exactly like loading a serialized plan), so a payload built against
    a divergent format registry fails loudly rather than misinterpreting
    the arrays.
    """
    if not isinstance(blob, dict):
        raise WireError(f"wire tensor must be an object, got {type(blob).__name__}")
    schema = blob.get("schema")
    if schema != WIRE_SCHEMA:
        raise WireError(f"unsupported wire schema {schema!r} (this host: {WIRE_SCHEMA})")
    try:
        fmt = resolve_format_record(blob.get("format"))
    except PlanError as exc:
        raise WireError(str(exc)) from exc
    dims = blob.get("dims")
    if not isinstance(dims, list) or not all(isinstance(d, int) for d in dims):
        raise WireError(f"malformed dims: {dims!r}")
    arrays = {}
    for record in blob.get("arrays", ()):
        if not isinstance(record, dict):
            raise WireError(f"malformed array record: {record!r}")
        level, name = record.get("level"), record.get("name")
        if not isinstance(level, int) or not isinstance(name, str):
            raise WireError(f"array record missing level/name: {record!r}")
        arrays[(level, name)] = _decode_array(record, f"level {level} {name}")
    meta = {}
    for record in blob.get("meta", ()):
        if not isinstance(record, dict):
            raise WireError(f"malformed meta record: {record!r}")
        level, name = record.get("level"), record.get("name")
        if not isinstance(level, int) or not isinstance(name, str):
            raise WireError(f"meta record missing level/name: {record!r}")
        meta[(level, name)] = int(record.get("value", 0))
    if "vals" not in blob:
        raise WireError("wire tensor has no vals")
    vals = _decode_array(blob["vals"], "vals")
    try:
        return Tensor(fmt, dims, arrays, meta, vals)
    except Exception as exc:
        raise WireError(f"wire tensor does not assemble: {exc}") from exc
