"""Service metrics: counters, latency histograms, an aggregated snapshot.

Everything here is deliberately small and stdlib-only.  The service owns
one :class:`Metrics` instance; the HTTP layer exports it two ways —
:meth:`Metrics.snapshot` as JSON (the machine-readable health surface)
and :func:`render_prometheus` as Prometheus text exposition for
scrapers.  The snapshot folds in the engine's exact cache counters
(:meth:`ConversionEngine.cache_stats
<repro.convert.engine.ConversionEngine.cache_stats>`), the data cache's
occupancy/hit counters, and the cost model's measured per-kind rates,
so one endpoint answers "what has this process been doing".
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional

__all__ = ["Histogram", "Metrics", "render_prometheus"]


def _log_buckets() -> List[float]:
    """Latency bucket bounds: 1 µs .. ~100 s in quarter-decade steps."""
    bounds = []
    value = 1e-6
    while value < 100.0:
        bounds.append(value)
        value *= 10 ** 0.25
    return bounds


_BUCKET_BOUNDS = _log_buckets()


class Histogram:
    """A fixed-bucket log-scale latency histogram.

    Quarter-decade buckets from a microsecond to ~100 s keep percentile
    error under ~40 % of the value while staying allocation-free on the
    hot path — good enough for p50/p99 over request latencies, cheap
    enough to update under the service lock.
    """

    def __init__(self) -> None:
        self._counts = [0] * (len(_BUCKET_BOUNDS) + 1)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        seconds = max(float(seconds), 0.0)
        self._counts[bisect_left(_BUCKET_BOUNDS, seconds)] += 1
        self._count += 1
        self._sum += seconds
        if seconds > self._max:
            self._max = seconds

    @property
    def count(self) -> int:
        return self._count

    def percentile(self, q: float) -> float:
        """The upper bound of the bucket holding quantile ``q`` (0..1)."""
        if self._count == 0:
            return 0.0
        target = max(1, int(q * self._count + 0.999999))
        seen = 0
        for i, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= target:
                if i < len(_BUCKET_BOUNDS):
                    return _BUCKET_BOUNDS[i]
                return self._max
        return self._max  # pragma: no cover - unreachable

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self._count,
            "sum_seconds": self._sum,
            "max_seconds": self._max,
            "p50_seconds": self.percentile(0.50),
            "p90_seconds": self.percentile(0.90),
            "p99_seconds": self.percentile(0.99),
        }


#: Counter names every snapshot reports (zero-initialized so dashboards
#: see a stable schema from the first scrape).
_COUNTERS = (
    "requests",
    "responses",
    "data_hits",
    "prefix_hits",
    "full_conversions",
    "coalesced",
    "batches",
    "batched_requests",
    "quota_rejections",
    "errors",
)


class Metrics:
    """Thread-safe counters + per-outcome latency histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {name: 0 for name in _COUNTERS}
        self._tenants: Dict[str, int] = {}
        self._latency: Dict[str, Histogram] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def incr_tenant(self, tenant: str) -> None:
        with self._lock:
            self._tenants[tenant] = self._tenants.get(tenant, 0) + 1

    def observe_latency(self, outcome: str, seconds: float) -> None:
        """Record a request latency under its outcome (``cached`` /
        ``prefix`` / ``converted`` / ``coalesced``)."""
        with self._lock:
            hist = self._latency.get(outcome)
            if hist is None:
                hist = self._latency[outcome] = Histogram()
            hist.observe(seconds)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def snapshot(self, engine=None, datacache=None) -> Dict:
        """The full JSON metrics document.

        ``engine`` and ``datacache`` fold in their own counters; both are
        optional so the document degrades gracefully in unit tests.
        """
        with self._lock:
            doc: Dict = {
                "counters": dict(self._counters),
                "tenants": dict(self._tenants),
                "latency": {
                    outcome: hist.to_dict()
                    for outcome, hist in sorted(self._latency.items())
                },
            }
        if engine is not None:
            doc["engine"] = {
                key: value for key, value in engine.cache_stats().items()
            }
            doc["pairs"] = {
                f"{src}->{dst}": count
                for (src, dst), count in sorted(engine.pair_counts().items())
            }
            with engine.cost_model._lock:
                measured = {
                    kind: dict(entry)
                    for kind, entry in engine.cost_model.measured.items()
                }
            doc["cost_model"] = {
                "version": engine.cost_model.version,
                "measured": measured,
            }
        if datacache is not None:
            doc["data_cache"] = datacache.stats()
        return doc


def _prom_name(name: str) -> str:
    return "repro_" + name.replace("-", "_").replace(".", "_")


def render_prometheus(snapshot: Dict) -> str:
    """Render a :meth:`Metrics.snapshot` document as Prometheus text.

    Counters become ``repro_<name>`` counters, latency histograms become
    ``repro_latency_seconds{outcome=...,quantile=...}`` summary-style
    gauges, and engine/data-cache counters are namespaced under
    ``repro_engine_*`` / ``repro_data_cache_*``.
    """
    lines: List[str] = []

    def emit(name: str, value, labels: Optional[Dict[str, str]] = None) -> None:
        label_text = ""
        if labels:
            inner = ",".join(
                f'{key}="{val}"' for key, val in sorted(labels.items())
            )
            label_text = "{" + inner + "}"
        lines.append(f"{name}{label_text} {float(value):g}")

    for name, value in sorted(snapshot.get("counters", {}).items()):
        emit(_prom_name(name), value)
    for tenant, count in sorted(snapshot.get("tenants", {}).items()):
        emit("repro_tenant_requests", count, {"tenant": tenant})
    for outcome, hist in sorted(snapshot.get("latency", {}).items()):
        emit("repro_latency_requests", hist["count"], {"outcome": outcome})
        emit("repro_latency_seconds_sum", hist["sum_seconds"],
             {"outcome": outcome})
        for quantile in ("p50", "p90", "p99"):
            emit("repro_latency_seconds", hist[f"{quantile}_seconds"],
                 {"outcome": outcome, "quantile": quantile[1:]})
    for key, value in sorted(snapshot.get("engine", {}).items()):
        emit(_prom_name(f"engine_{key}"), value)
    for key, value in sorted(snapshot.get("data_cache", {}).items()):
        emit(_prom_name(f"data_cache_{key}"), value)
    for pair, count in sorted(snapshot.get("pairs", {}).items()):
        emit("repro_pair_conversions", count, {"pair": pair})
    return "\n".join(lines) + "\n"
