"""Differential fuzzing across every backend, including streamed.

The conversion backends (scalar, vector, native, chunked, streamed) are
bit-identical by construction; this module is the executable form of
that claim.  ``python -m repro.verify fuzz`` generates random tensors —
varying dimensions, density, value dtype and coordinate *ordering*
(sorted, reversed, shuffled, duplicate-heavy rows, empty slices) — runs
every applicable backend on every requested pair, and compares the
results array-for-array.  The ``fused`` column additionally checks the
fused convert-and-compute pipeline (:mod:`repro.compute`): SpMV through
the destination, computed with and without materializing it, within
float tolerance.  On a mismatch it prints a single
``REPRO:`` line that reproduces the failure deterministically:

.. code-block:: text

    REPRO: python -m repro.verify fuzz --pairs coo_dcsr --cases 1 --seed 4171

CI runs a time-budgeted sweep (``--budget 60``) on every push; the same
generator also feeds the property-based streaming harness in
``tests/stream`` (via ``tests/support/tensorgen.py`` — one generator,
every suite).
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ORDERINGS",
    "TensorCase",
    "fuzz",
    "random_tensor_case",
    "streamable_pair_names",
]

#: Coordinate orderings the generator cycles through.  ``sorted`` is the
#: canonical row-major stream, ``reverse``/``random`` exercise unsorted
#: inputs, ``rowheavy`` concentrates entries in a few rows (duplicate
#: keys back to back, long group-rank carries), ``diagonal`` stresses
#: remapped destinations (DIA/SKY), ``empty`` and ``dense`` are the
#: degenerate densities.
ORDERINGS = ("sorted", "reverse", "random", "rowheavy", "diagonal",
             "empty", "dense")


@dataclass
class TensorCase:
    """One generated random tensor, in coordinate form."""

    seed: int
    dims: Tuple[int, ...]
    cells: List[Tuple[int, ...]]
    vals: List[float]
    ordering: str
    dtype: str = "float64"

    @property
    def nnz(self) -> int:
        return len(self.cells)

    def columns(self) -> Tuple[np.ndarray, ...]:
        """The case as per-dimension int64 arrays plus a values array
        (the :func:`repro.io.stream.write_stream` layout)."""
        order = len(self.dims)
        if not self.cells:
            cols = tuple(np.zeros(0, dtype=np.int64) for _ in range(order))
            return cols + (np.zeros(0, dtype=np.float64),)
        grid = np.array(self.cells, dtype=np.int64)
        return tuple(grid[:, k] for k in range(order)) + (
            np.asarray(self.vals, dtype=np.float64),
        )


def random_tensor_case(
    seed: int,
    *,
    order: int = 2,
    max_dim: int = 24,
    ordering: Optional[str] = None,
    density: Optional[float] = None,
) -> TensorCase:
    """Generate one seeded random tensor case.

    Deterministic in ``seed`` and the keyword parameters: the same call
    always produces the same coordinates, values and ordering — this is
    what makes the ``REPRO:`` line reproducible.  Coordinates are
    unique (formats assume deduplicated input); the *ordering* controls
    how they are arranged in the coordinate stream, not which cells are
    present.
    """
    rng = np.random.default_rng(seed)
    ordering = ordering or ORDERINGS[int(rng.integers(len(ORDERINGS)))]
    dims = tuple(int(rng.integers(1, max_dim + 1)) for _ in range(order))
    capacity = int(np.prod(dims))
    if ordering == "empty":
        count = 0
    elif ordering == "dense":
        count = capacity
    else:
        if density is None:
            density = float(rng.uniform(0.05, 0.6))
        count = max(1, int(capacity * density))
    flat = rng.choice(capacity, size=min(count, capacity), replace=False)
    if ordering == "rowheavy" and len(flat):
        # concentrate everything in a handful of slices of the first
        # dimension: long runs of equal keys, plus guaranteed empty rows
        rows = rng.choice(dims[0], size=max(1, dims[0] // 4), replace=False)
        inner = capacity // dims[0]
        flat = np.unique(
            rows[rng.integers(len(rows), size=len(flat))] * inner
            + rng.integers(max(inner, 1), size=len(flat))
        )
    if ordering == "diagonal" and len(flat) and order == 2:
        m, n = dims
        k = len(flat)
        i = rng.integers(m, size=k)
        off = rng.integers(-2, 3, size=k)
        j = np.clip(i + off, 0, n - 1)
        flat = np.unique(i * n + j)
    cells_grid = np.array(np.unravel_index(np.sort(flat), dims)).T
    if ordering == "reverse":
        cells_grid = cells_grid[::-1]
    elif ordering in ("random", "rowheavy", "diagonal"):
        cells_grid = cells_grid[rng.permutation(len(cells_grid))]
    cells = [tuple(int(c) for c in row) for row in cells_grid]
    vals = [round(float(v), 4) for v in rng.uniform(0.5, 9.5, len(cells))]
    return TensorCase(seed=seed, dims=dims, cells=cells, vals=vals,
                      ordering=ordering)


def constrain_case(dst_format, case: TensorCase) -> TensorCase:
    """Restrict a case to inputs the destination format can represent.

    Skyline (SKY) stores each row from its first nonzero through the
    diagonal and is documented lower-triangular-only — entries above
    the diagonal are dropped (deterministically, preserving the
    reproducer).  Every other destination takes arbitrary input.
    """
    if dst_format.name != "SKY":
        return case
    kept = [(c, v) for c, v in zip(case.cells, case.vals) if c[1] <= c[0]]
    return TensorCase(
        seed=case.seed, dims=case.dims,
        cells=[c for c, _ in kept], vals=[v for _, v in kept],
        ordering=case.ordering, dtype=case.dtype,
    )


# ----------------------------------------------------------------------
# pair enumeration


def _pair_token(src, dst) -> str:
    return f"{src.name.lower()}_{dst.name.lower()}"


def streamable_pair_names() -> List[str]:
    """Every ``src_dst`` token the streaming executor covers."""
    from .convert.streamed import streamable
    from .formats import get_format, parse_format_spec

    pairs = []
    for src_name, dst_specs in (
        ("COO", ["COO", "CSR", "CSC", "DIA", "ELL", "SKY", "DCSR",
                 "BCSR2x2", "HICOO2"]),
        ("COO3", ["COO3", "CSF"]),
    ):
        src = get_format(src_name)
        for spec in dst_specs:
            dst = parse_format_spec(spec)
            if streamable(src, dst):
                pairs.append(_pair_token(src, dst))
    return pairs


def _resolve_pairs(spec: str):
    from .formats import parse_format_spec

    names = streamable_pair_names() if spec == "all" else [
        token.strip() for token in spec.split(",") if token.strip()
    ]
    pairs = []
    for token in names:
        src_name, _, dst_name = token.partition("_")
        if not dst_name:
            raise SystemExit(
                f"--pairs entries look like 'coo_csr', got {token!r}"
            )
        pairs.append((parse_format_spec(src_name),
                      parse_format_spec(dst_name)))
    return pairs


# ----------------------------------------------------------------------
# the differential check


def _array_map(tensor) -> Dict[str, np.ndarray]:
    out = {f"B{k + 1}_{name}": np.asarray(v)
           for (k, name), v in tensor.arrays.items()}
    out["B_vals"] = np.asarray(tensor.vals)
    return out


def _diff(reference, candidate) -> List[str]:
    """Array-level differences between two tensors (empty if identical)."""
    problems = []
    ref, cand = _array_map(reference), _array_map(candidate)
    for name in sorted(set(ref) | set(cand)):
        a, b = ref.get(name), cand.get(name)
        if a is None or b is None:
            problems.append(f"{name}: present on one side only")
        elif a.dtype != b.dtype:
            problems.append(f"{name}: dtype {a.dtype} vs {b.dtype}")
        elif a.shape != b.shape:
            problems.append(f"{name}: shape {a.shape} vs {b.shape}")
        elif not np.array_equal(a, b):
            where = int(np.flatnonzero(a != b)[0])
            problems.append(
                f"{name}: first mismatch at [{where}]: {a[where]!r} vs "
                f"{b[where]!r}"
            )
    if reference.metadata != candidate.metadata:
        problems.append(
            f"metadata: {reference.metadata} vs {candidate.metadata}"
        )
    return problems


def _native_available() -> bool:
    from .ir.native import detect_toolchain

    try:
        return detect_toolchain() is not None
    except Exception:
        return False


def _run_case(engine, src, dst, case: TensorCase, backends: Sequence[str],
              workdir: str) -> Dict[str, List[str]]:
    """Run one case through every applicable backend; returns
    ``{backend: problems}`` for backends that disagreed with scalar."""
    from .convert.chunked import chunkable
    from .convert.streamed import streamable
    from .io.stream import write_stream
    from .ir.runtime import WorkerPool
    from .storage.build import reference_build
    from .stream import convert_file

    tensor = reference_build(src, case.dims, case.cells, case.vals)
    reference = engine.convert(tensor, dst, backend="scalar", parallel=None)
    failures: Dict[str, List[str]] = {}
    if "vector" in backends:
        got = engine.convert(tensor, dst, backend="vector", parallel=None)
        problems = _diff(reference, got)
        if problems:
            failures["vector"] = problems
    if "native" in backends:
        got = engine.convert(tensor, dst, backend="native", parallel=None)
        problems = _diff(reference, got)
        if problems:
            failures["native"] = problems
    if "chunked" in backends and chunkable(src, dst):
        chunked = engine.make_chunked(src, dst)
        pool = WorkerPool(workers=2, grain=max(4, case.nnz // 7 or 4))
        try:
            got = chunked(tensor, pool)
        finally:
            pool.shutdown()
        problems = _diff(reference, got)
        if problems:
            failures["chunked"] = problems
    if "streamed" in backends and streamable(src, dst):
        path = os.path.join(workdir, f"case_{case.seed}.bin")
        write_stream(path, case.dims, [c for c in case.columns()[:-1]],
                     case.columns()[-1])
        chunk_nnz = max(1, case.nnz // 3) if case.nnz else 1
        out_dir = os.path.join(workdir, f"out_{case.seed}")
        result = convert_file(path, dst, out_dir, chunk_nnz=chunk_nnz,
                              engine=engine, overwrite=True)
        problems = _diff(reference, result.load())
        if problems:
            failures["streamed"] = problems
        os.unlink(path)
    if "fused" in backends:
        problems = _check_fused(engine, src, dst, case, tensor)
        if problems:
            failures["fused"] = problems
    return failures


def _check_fused(engine, src, dst, case: TensorCase, tensor) -> List[str]:
    """Fused-vs-materialized SpMV over the pair (:mod:`repro.compute`).

    Where the pair fuses, ``y = (convert A to dst) @ x`` is computed both
    ways — the fused pipeline that never materializes ``dst``, and the
    materialize-then-compute pipeline — and compared within float
    tolerance (the fused kernel reassociates row sums).  Both are also
    checked against the oracle traversal.
    """
    from .compute.kernels import fusable
    from .compute.reference import spmv_reference
    from .convert.planner import structural_key

    if src.order != 2 or dst.order != 2:
        return []
    if structural_key(src) == structural_key(dst):
        return []  # nothing to fuse: the op runs directly on the source
    if not fusable(src, "spmv", dst):
        return []
    x = np.random.default_rng(case.seed + 1).uniform(0.5, 1.5, case.dims[1])
    fused = engine.plan_compute(src, "spmv", dst, fuse=True, nnz=case.nnz)
    mat = engine.plan_compute(src, "spmv", dst, fuse=False, nnz=case.nnz)
    yf = engine.run_compute_plan(fused, tensor, x=x)
    ym = engine.run_compute_plan(mat, tensor, x=x)
    oracle = spmv_reference(tensor, x)
    problems = []
    if not np.allclose(yf, ym, rtol=1e-9, atol=1e-12):
        where = int(np.argmax(np.abs(yf - ym)))
        problems.append(
            f"spmv fused vs materialized: y[{where}] = {yf[where]!r} vs "
            f"{ym[where]!r}"
        )
    if not np.allclose(yf, oracle, rtol=1e-9, atol=1e-12):
        where = int(np.argmax(np.abs(yf - oracle)))
        problems.append(
            f"spmv fused vs oracle: y[{where}] = {yf[where]!r} vs "
            f"{oracle[where]!r}"
        )
    return problems


DEFAULT_BACKENDS = ("vector", "native", "chunked", "streamed", "fused")


def fuzz(pairs: str = "all", cases: int = 25, seed: int = 0,
         budget: Optional[float] = None,
         backends: Sequence[str] = DEFAULT_BACKENDS,
         verbose: bool = True) -> int:
    """Differentially fuzz ``pairs``; returns the number of mismatches.

    ``cases`` random tensors are generated per pair from ``seed`` (one
    case-seed each, so any failure reproduces with ``--cases 1 --seed
    <case seed>``).  ``budget`` caps the wall-clock in seconds — the
    sweep stops cleanly once exceeded, which is how CI bounds it.
    """
    from .convert.engine import ConversionEngine

    backends = tuple(backends)
    if "native" in backends and not _native_available():
        backends = tuple(b for b in backends if b != "native")
        if verbose:
            print("note: no C toolchain, skipping the native backend")
    engine = ConversionEngine()
    started = time.monotonic()
    mismatches = 0
    ran = 0
    stop = False
    try:
        with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as workdir:
            for src, dst in _resolve_pairs(pairs):
                if stop:
                    break
                order = src.order
                token = _pair_token(src, dst)
                for index in range(cases):
                    if budget is not None and (
                        time.monotonic() - started > budget
                    ):
                        if verbose:
                            print(
                                f"budget of {budget:.0f}s exhausted after "
                                f"{ran} case(s); stopping"
                            )
                        stop = True
                        break
                    case_seed = seed + index
                    case = constrain_case(
                        dst, random_tensor_case(case_seed, order=order)
                    )
                    failures = _run_case(engine, src, dst, case, backends,
                                         workdir)
                    ran += 1
                    if failures:
                        mismatches += 1
                        print(f"MISMATCH {token} seed={case_seed} "
                              f"dims={case.dims} nnz={case.nnz} "
                              f"ordering={case.ordering}")
                        for backend, problems in failures.items():
                            for problem in problems:
                                print(f"  {backend}: {problem}")
                        print(f"REPRO: python -m repro.verify fuzz "
                              f"--pairs {token} --cases 1 "
                              f"--seed {case_seed}")
    finally:
        engine.shutdown()
    if verbose:
        elapsed = time.monotonic() - started
        verdict = "FAIL" if mismatches else "ok"
        print(f"fuzz: {ran} case(s), {len(backends)} backend(s) "
              f"[{', '.join(backends)}], {mismatches} mismatch(es) "
              f"in {elapsed:.1f}s -- {verdict}")
    return mismatches


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="differential fuzzing across conversion backends",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    cmd = sub.add_parser("fuzz", help="cross-check backends on random input")
    cmd.add_argument("--pairs", default="all",
                     help="comma-separated src_dst tokens, or 'all' for "
                          "every streamable pair (default: all)")
    cmd.add_argument("--cases", type=int, default=25,
                     help="random cases per pair (default 25)")
    cmd.add_argument("--seed", type=int, default=0,
                     help="base seed; case i uses seed+i (default 0)")
    cmd.add_argument("--budget", type=float, default=None, metavar="SECONDS",
                     help="stop cleanly after this much wall-clock")
    cmd.add_argument("--backends", default=",".join(DEFAULT_BACKENDS),
                     help="comma-separated backends to cross-check "
                          f"(default: {','.join(DEFAULT_BACKENDS)})")
    args = parser.parse_args(argv)
    mismatches = fuzz(
        pairs=args.pairs, cases=args.cases, seed=args.seed,
        budget=args.budget,
        backends=[b.strip() for b in args.backends.split(",") if b.strip()],
    )
    sys.exit(1 if mismatches else 0)


if __name__ == "__main__":
    main()
