"""Hand-implemented baselines: SPARSKIT ports, MKL-style simulations, and
the sort-based taco-without-extensions conversion (Section 7.2)."""

from . import mkl_like, scipy_ref, sparskit, taco_legacy

__all__ = ["mkl_like", "scipy_ref", "sparskit", "taco_legacy"]
