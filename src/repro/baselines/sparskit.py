"""Python ports of SPARSKIT's format conversion routines [48].

Each function is a line-by-line port of the corresponding Fortran routine
(FORMATS module), with 0-based indexing.  Loops are plain Python scalar
loops so the baselines share the execution substrate of the generated
routines: one Fortran loop iteration ↔ one Python loop iteration, making
relative pass counts — the quantity the paper's speedups come from —
directly comparable.

Notable ported behaviours the paper calls out (Section 7.2):

* ``csrdia`` selects the densest diagonals with an inefficient repeated
  scan over all ``2n-1`` diagonal counts (the cause of taco's 2.01×);
* ``csrell`` fills caller-allocated output arrays and *separately*
  initializes them, where generated code calloc-allocates;
* unsupported pairs (COO→DIA/ELL, CSC→DIA/ELL) go through a CSR
  temporary (``*_via_csr`` helpers), doubling the passes over nonzeros.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np


# ---------------------------------------------------------------------------
# direct routines
# ---------------------------------------------------------------------------


def coocsr(nrow: int, rows, cols, vals):
    """COO→CSR (SPARSKIT ``coocsr``): histogram, cumulate, scatter, shift."""
    nnz = len(rows)
    pos = np.zeros(nrow + 1, dtype=np.int64)
    crd = np.empty(nnz, dtype=np.int64)
    out = np.empty(nnz, dtype=np.float64)
    # determine row lengths
    for p in range(nnz):
        pos[rows[p]] += 1
    # starting position of each row
    total = 0
    for i in range(nrow):
        count = pos[i]
        pos[i] = total
        total += count
    # go through the structure once more, filling in output
    for p in range(nnz):
        i = rows[p]
        slot = pos[i]
        out[slot] = vals[p]
        crd[slot] = cols[p]
        pos[i] = slot + 1
    # shift back
    for i in range(nrow, 0, -1):
        pos[i] = pos[i - 1]
    pos[0] = 0
    return pos, crd, out


def csrcsc(nrow: int, ncol: int, pos, crd, vals):
    """CSR→CSC (SPARSKIT ``csrcsc``, Gustavson's HALFPERM [22])."""
    nnz = int(pos[nrow])
    out_pos = np.zeros(ncol + 1, dtype=np.int64)
    out_crd = np.empty(nnz, dtype=np.int64)
    out = np.empty(nnz, dtype=np.float64)
    # compute lengths of columns
    for p in range(nnz):
        out_pos[crd[p] + 1] += 1
    # compute pointers from lengths
    for j in range(ncol):
        out_pos[j + 1] += out_pos[j]
    # now do the actual copying
    for i in range(nrow):
        for p in range(pos[i], pos[i + 1]):
            j = crd[p]
            slot = out_pos[j]
            out_crd[slot] = i
            out[slot] = vals[p]
            out_pos[j] = slot + 1
    # reshift out_pos
    for j in range(ncol, 0, -1):
        out_pos[j] = out_pos[j - 1]
    out_pos[0] = 0
    return out_pos, out_crd, out


def infdia(nrow: int, ncol: int, pos, crd):
    """Number of nonzeros per diagonal (SPARSKIT ``infdia``)."""
    counts = np.zeros(nrow + ncol - 1, dtype=np.int64)
    for i in range(nrow):
        for p in range(pos[i], pos[i + 1]):
            counts[crd[p] - i + nrow - 1] += 1
    return counts


def csrdia(
    nrow: int,
    ncol: int,
    pos,
    crd,
    vals,
    ndiag: Optional[int] = None,
):
    """CSR→DIA (SPARSKIT ``csrdia``).

    Computes per-diagonal counts, then picks the ``ndiag`` densest
    diagonals by *repeatedly scanning* all ``nrow+ncol-1`` counts for the
    maximum (SPARSKIT's selection loop — the inefficiency Section 7.2
    measures), then fills the diagonal arrays.  With ``ndiag=None`` all
    nonempty diagonals are extracted, like the generated routine.
    """
    counts = infdia(nrow, ncol, pos, crd)
    nonempty = 0
    for d in range(nrow + ncol - 1):
        if counts[d] != 0:
            nonempty += 1
    if ndiag is None or ndiag > nonempty:
        ndiag = nonempty
    # select the ndiag densest diagonals, one full scan per selection
    selected: List[int] = []
    scratch = counts.copy()
    for _ in range(ndiag):
        best = -1
        best_count = 0
        for d in range(nrow + ncol - 1):
            if scratch[d] > best_count:
                best_count = scratch[d]
                best = d
        if best < 0:
            break
        scratch[best] = 0
        selected.append(best - nrow + 1)
    selected.sort()
    offsets = np.array(selected, dtype=np.int64)
    index_of = np.full(nrow + ncol - 1, -1, dtype=np.int64)
    for idx in range(len(selected)):
        index_of[selected[idx] + nrow - 1] = idx
    diag = np.empty(len(selected) * nrow, dtype=np.float64)
    for slot in range(len(selected) * nrow):
        diag[slot] = 0.0
    for i in range(nrow):
        for p in range(pos[i], pos[i + 1]):
            idx = index_of[crd[p] - i + nrow - 1]
            if idx >= 0:
                diag[idx * nrow + i] = vals[p]
    return offsets, diag


def csrell(nrow: int, pos, crd, vals):
    """CSR→ELL (SPARSKIT ``csrell``).

    SPARSKIT receives caller-allocated ``coef``/``jcoef`` arrays sized by a
    prior max-degree scan and initializes them with explicit loops before
    filling (the generated code calloc-allocates instead — Section 7.2's
    explanation for its 1.36×)."""
    ndiag = 0
    for i in range(nrow):
        length = pos[i + 1] - pos[i]
        if length > ndiag:
            ndiag = length
    coef = np.empty(ndiag * nrow, dtype=np.float64)
    jcoef = np.empty(ndiag * nrow, dtype=np.int64)
    # separate initialization of caller-provided arrays
    for slot in range(ndiag * nrow):
        coef[slot] = 0.0
        jcoef[slot] = 0
    for i in range(nrow):
        k = 0
        for p in range(pos[i], pos[i + 1]):
            coef[k * nrow + i] = vals[p]
            jcoef[k * nrow + i] = crd[p]
            k += 1
    return ndiag, jcoef, coef


# ---------------------------------------------------------------------------
# composite (via-CSR) paths for unsupported pairs
# ---------------------------------------------------------------------------


def coodia_via_csr(nrow: int, ncol: int, rows, cols, vals):
    """COO→DIA through a CSR temporary (SPARSKIT has no direct path)."""
    pos, crd, tmp = coocsr(nrow, rows, cols, vals)
    return csrdia(nrow, ncol, pos, crd, tmp)


def cooell_via_csr(nrow: int, rows, cols, vals):
    """COO→ELL through a CSR temporary."""
    pos, crd, tmp = coocsr(nrow, rows, cols, vals)
    return csrell(nrow, pos, crd, tmp)


def cscdia_via_csr(nrow: int, ncol: int, pos, crd, vals):
    """CSC→DIA: transpose to CSR (csrcsc works both ways) then csrdia."""
    csr_pos, csr_crd, tmp = csrcsc(ncol, nrow, pos, crd, vals)
    return csrdia(nrow, ncol, csr_pos, csr_crd, tmp)


def cscell_via_csr(nrow: int, ncol: int, pos, crd, vals):
    """CSC→ELL through a CSR temporary."""
    csr_pos, csr_crd, tmp = csrcsc(ncol, nrow, pos, crd, vals)
    return csrell(nrow, csr_pos, csr_crd, tmp)
