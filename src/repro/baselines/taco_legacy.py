"""taco-without-extensions baseline: sort-based COO→CSR (Section 7.2).

Without this paper's extensions, taco expresses COO→CSR as the tensor
assignment ``A(i,j) = B(i,j)`` and "cannot reason about generating code
that inserts nonzeros into CSR data structures out of order.  Thus, it
must sort the input before performing the actual conversion".  This
baseline reproduces that algorithm: a comparison-based merge sort of the
nonzeros by (row, column), followed by in-order CSR assembly.

The sort is a pure-Python merge sort so its cost model matches the rest
of the substrate (one comparison/move per loop iteration, like the
``std::sort`` calls in taco's emitted C++); using a vectorized
``np.lexsort`` here would invert the paper's comparison by running the
sort outside the common substrate.
"""

from __future__ import annotations

import numpy as np


def _merge_sort_perm(rows, cols):
    """Stable merge sort of indices by (row, col); O(nnz log nnz)."""
    nnz = len(rows)
    perm = np.arange(nnz, dtype=np.int64)
    buffer = np.empty(nnz, dtype=np.int64)
    width = 1
    while width < nnz:
        for start in range(0, nnz, 2 * width):
            mid = min(start + width, nnz)
            end = min(start + 2 * width, nnz)
            left, right = start, mid
            slot = start
            while left < mid and right < end:
                a, b = perm[left], perm[right]
                if (rows[a], cols[a]) <= (rows[b], cols[b]):
                    buffer[slot] = a
                    left += 1
                else:
                    buffer[slot] = b
                    right += 1
                slot += 1
            while left < mid:
                buffer[slot] = perm[left]
                left += 1
                slot += 1
            while right < end:
                buffer[slot] = perm[right]
                right += 1
                slot += 1
        perm, buffer = buffer, perm
        width *= 2
    return perm


def coocsr_sorting(nrow: int, rows, cols, vals):
    """COO→CSR via lexicographic sort then in-order assembly."""
    nnz = len(rows)
    perm = _merge_sort_perm(rows, cols)
    pos = np.zeros(nrow + 1, dtype=np.int64)
    crd = np.empty(nnz, dtype=np.int64)
    out = np.empty(nnz, dtype=np.float64)
    for slot in range(nnz):
        p = perm[slot]
        pos[rows[p] + 1] += 1
        crd[slot] = cols[p]
        out[slot] = vals[p]
    for i in range(nrow):
        pos[i + 1] += pos[i]
    return pos, crd, out


def _merge_sort_perm3(idx0, idx1, idx2):
    """Stable merge sort of indices by a 3-tuple key."""
    nnz = len(idx0)
    perm = np.arange(nnz, dtype=np.int64)
    buffer = np.empty(nnz, dtype=np.int64)
    width = 1
    while width < nnz:
        for start in range(0, nnz, 2 * width):
            mid = min(start + width, nnz)
            end = min(start + 2 * width, nnz)
            left, right = start, mid
            slot = start
            while left < mid and right < end:
                a, b = perm[left], perm[right]
                if (idx0[a], idx1[a], idx2[a]) <= (idx0[b], idx1[b], idx2[b]):
                    buffer[slot] = a
                    left += 1
                else:
                    buffer[slot] = b
                    right += 1
                slot += 1
            while left < mid:
                buffer[slot] = perm[left]
                left += 1
                slot += 1
            while right < end:
                buffer[slot] = perm[right]
                right += 1
                slot += 1
        perm, buffer = buffer, perm
        width *= 2
    return perm


def coo3csf_sorting(dims, idx0, idx1, idx2, vals):
    """COO (3rd order) → CSF via lexicographic sort then in-order assembly.

    The sort-based construction a pre-extension taco (or a typical
    hand-written loader) uses for compressed fiber trees; compared in the
    extension benchmark against the generated two-pass staged assembly,
    which builds CSF without sorting.
    """
    nnz = len(idx0)
    perm = _merge_sort_perm3(idx0, idx1, idx2)
    n0 = dims[0]
    pos1 = np.zeros(n0 + 1, dtype=np.int64)
    crd1 = np.empty(nnz, dtype=np.int64)
    pos2 = np.zeros(nnz + 1, dtype=np.int64)
    crd2 = np.empty(nnz, dtype=np.int64)
    out = np.empty(nnz, dtype=np.float64)
    fibers = 0
    last_i = -1
    last_j = -1
    for slot in range(nnz):
        p = perm[slot]
        i, j, k = idx0[p], idx1[p], idx2[p]
        if i != last_i or j != last_j:
            crd1[fibers] = j
            pos1[i + 1] += 1
            fibers += 1
            last_i, last_j = i, j
        pos2[fibers] += 1
        crd2[slot] = k
        out[slot] = vals[p]
    for i in range(n0):
        pos1[i + 1] += pos1[i]
    for f in range(fibers):
        pos2[f + 1] += pos2[f]
    return pos1, crd1[:fibers], pos2[: fibers + 1], crd2, out
