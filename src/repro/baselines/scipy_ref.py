"""scipy.sparse reference conversions (compiled C, the external yardstick).

These pin the vector backend's numbers against a widely deployed,
hand-written C implementation of the same conversions.  scipy is an
*optional* dependency: every helper raises :class:`RuntimeError` when it
is missing, and :func:`available` lets the harness skip the column.

Only the conversions scipy actually implements are exposed — there is no
ELL format in scipy, so the ``*_ell`` Table 3 columns have no scipy
reference.
"""

from __future__ import annotations

try:  # gated: the benchmark container may not ship scipy
    import scipy.sparse as _sparse
except ImportError:  # pragma: no cover - exercised only without scipy
    _sparse = None


def available() -> bool:
    """True when scipy.sparse can be imported."""
    return _sparse is not None


def _require():
    if _sparse is None:  # pragma: no cover - exercised only without scipy
        raise RuntimeError("scipy is not installed; no scipy reference available")
    return _sparse


def coocsr(nrow, ncol, rows, cols, vals):
    sp = _require()
    return sp.coo_matrix((vals, (rows, cols)), shape=(nrow, ncol)).tocsr()


def coodia(nrow, ncol, rows, cols, vals):
    sp = _require()
    return sp.coo_matrix((vals, (rows, cols)), shape=(nrow, ncol)).todia()


def csrcsc(nrow, ncol, pos, crd, vals):
    sp = _require()
    return sp.csr_matrix((vals, crd, pos), shape=(nrow, ncol)).tocsc()


def csrdia(nrow, ncol, pos, crd, vals):
    sp = _require()
    return sp.csr_matrix((vals, crd, pos), shape=(nrow, ncol)).todia()


def cscdia(nrow, ncol, pos, crd, vals):
    sp = _require()
    return sp.csc_matrix((vals, crd, pos), shape=(nrow, ncol)).todia()
