"""Intel-MKL-style conversion baselines.

MKL is closed source, so these are *behavioural simulations* calibrated to
the cost characteristics the paper reports (Section 7.2 and Table 3):
the same core algorithms as SPARSKIT's, plus the extra work MKL's
interfaces imply — inputs are copied into internal buffers before
conversion (MKL's handle-based API), and the DIA path materializes a
per-nonzero distance array.  All loops are scalar Python, matching the
substrate of the other implementations.  See DESIGN.md's substitution
table.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import sparskit


def _copy_triplets(rows, cols, vals):
    nnz = len(rows)
    r = np.empty(nnz, dtype=np.int64)
    c = np.empty(nnz, dtype=np.int64)
    v = np.empty(nnz, dtype=np.float64)
    for p in range(nnz):
        r[p] = rows[p]
        c[p] = cols[p]
        v[p] = vals[p]
    return r, c, v


def _copy_csr(pos, crd, vals):
    n1 = len(pos)
    nnz = len(crd)
    out_pos = np.empty(n1, dtype=np.int64)
    out_crd = np.empty(nnz, dtype=np.int64)
    out_vals = np.empty(nnz, dtype=np.float64)
    for i in range(n1):
        out_pos[i] = pos[i]
    for p in range(nnz):
        out_crd[p] = crd[p]
        out_vals[p] = vals[p]
    return out_pos, out_crd, out_vals


def coocsr(nrow: int, rows, cols, vals):
    """COO→CSR: buffer the triplets (handle creation), then convert."""
    r, c, v = _copy_triplets(rows, cols, vals)
    return sparskit.coocsr(nrow, r, c, v)


def csrcsc(nrow: int, ncol: int, pos, crd, vals):
    """CSR→CSC: buffer the CSR arrays, then HALFPERM."""
    p, c, v = _copy_csr(pos, crd, vals)
    return sparskit.csrcsc(nrow, ncol, p, c, v)


def csrdia(nrow: int, ncol: int, pos, crd, vals, ndiag: Optional[int] = None):
    """CSR→DIA: materializes each nonzero's diagonal distance first.

    MKL's DIA conversion works from a distance array; building it is an
    extra O(nnz) pass and O(nnz) memory over the generated routine's fused
    remapping.  Diagonal selection scans counts once (no SPARSKIT-style
    repeated scan), which is why the paper finds MKL slightly faster than
    SPARSKIT here (1.80× vs 2.01×)."""
    nnz = int(pos[nrow])
    distance = np.empty(nnz, dtype=np.int64)
    for i in range(nrow):
        for p in range(pos[i], pos[i + 1]):
            distance[p] = crd[p] - i
    counts = np.zeros(nrow + ncol - 1, dtype=np.int64)
    for p in range(nnz):
        counts[distance[p] + nrow - 1] += 1
    index_of = np.full(nrow + ncol - 1, -1, dtype=np.int64)
    offsets = []
    for d in range(nrow + ncol - 1):
        if counts[d] != 0:
            index_of[d] = len(offsets)
            offsets.append(d - nrow + 1)
    if ndiag is not None and ndiag < len(offsets):
        offsets = offsets[:ndiag]
    diag = np.empty(len(offsets) * nrow, dtype=np.float64)
    for slot in range(len(offsets) * nrow):
        diag[slot] = 0.0
    for i in range(nrow):
        for p in range(pos[i], pos[i + 1]):
            idx = index_of[distance[p] + nrow - 1]
            if 0 <= idx < len(offsets):
                diag[idx * nrow + i] = vals[p]
    return np.array(offsets, dtype=np.int64), diag


def coodia_via_csr(nrow: int, ncol: int, rows, cols, vals):
    """COO→DIA through a CSR temporary (no direct MKL path)."""
    pos, crd, tmp = coocsr(nrow, rows, cols, vals)
    return csrdia(nrow, ncol, pos, crd, tmp)


def cscdia_via_csr(nrow: int, ncol: int, pos, crd, vals):
    """CSC→DIA: transpose to CSR, then csrdia."""
    csr_pos, csr_crd, tmp = csrcsc(ncol, nrow, pos, crd, vals)
    return csrdia(nrow, ncol, csr_pos, csr_crd, tmp)
