"""Tensor format descriptors.

A :class:`Format` is the paper's complete description of a storage format
(Section 3): a coordinate remapping describing how nonzeros are grouped and
ordered in memory, one level format per remapped dimension describing the
data structures, and an *inverse* mapping that recovers canonical
coordinates from level coordinates (used when the format is a conversion
source, e.g. DIA's ``j = k + i``).

Formats are immutable, reusable descriptors; tensors
(:class:`repro.storage.tensor.Tensor`) pair a format with actual arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..ir.nodes import Const, Expr, Var
from ..levels.base import Level
from ..remap.ast import Remap
from ..remap.interval import Interval, remapped_dim_intervals
from ..remap.parser import parse_remap
from ..utils.evaluate import evaluate_expr


class FormatError(ValueError):
    """Raised for inconsistent format definitions or unsupported requests."""


def dim_size_vars(order: int) -> Tuple[Var, ...]:
    """Symbolic canonical dimension sizes ``N1..Nr`` used in generated code."""
    return tuple(Var(f"N{d + 1}") for d in range(order))


@dataclass(frozen=True)
class Format:
    """A sparse tensor format: remapping + level formats (+ inverse map).

    Parameters
    ----------
    name:
        Human-readable name (``"CSR"``); also used in cache keys together
        with the full structural signature.
    remap:
        Coordinate remapping from canonical coordinates to storage order
        (parsed from the notation of Figure 8).
    levels:
        One :class:`~repro.levels.base.Level` per remapped dimension, root
        first.
    inverse:
        Remapping from level coordinates back to canonical coordinates.
        Required for the format to be used as a conversion *source*.
    params:
        Values of free parameters appearing in ``remap``/``inverse`` (e.g.
        BCSR block sizes).
    """

    name: str
    remap: Remap
    levels: Tuple[Level, ...]
    inverse: Optional[Remap] = None
    params: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.levels) != self.remap.dst_order:
            raise FormatError(
                f"{self.name}: {self.remap.dst_order} remapped dims but "
                f"{len(self.levels)} levels"
            )
        if self.inverse is not None and self.inverse.dst_order != self.order:
            raise FormatError(
                f"{self.name}: inverse produces {self.inverse.dst_order} coords "
                f"but canonical order is {self.order}"
            )
        missing = [p for p in self.remap.params() if p not in self.params]
        if missing:
            raise FormatError(f"{self.name}: unbound parameters {missing}")

    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """Canonical tensor order (2 for matrix formats)."""
        return self.remap.src_order

    @property
    def nlevels(self) -> int:
        """Number of levels == number of remapped dimensions."""
        return len(self.levels)

    @property
    def padded(self) -> bool:
        """True if the format stores explicit padding zeros (DIA, ELL, BCSR...).

        Padding arises from levels that materialize a fixed range of
        positions regardless of the data (banded/sliced/squeezed slots), and
        from *full* (dense) levels nested below a non-full level — e.g.
        BCSR's dense in-block dimensions below the compressed block level.
        """
        seen_sparse = False
        for level in self.levels:
            if getattr(level, "introduces_padding", False) or level.stores_explicit_zeros:
                return True
            if level.full and seen_sparse:
                return True
            if not level.full:
                seen_sparse = True
        return False

    def param_exprs(self) -> Dict[str, Expr]:
        """Format parameters as constant IR expressions."""
        return {name: Const(value) for name, value in self.params.items()}

    # ------------------------------------------------------------------
    def dim_intervals(self, dim_sizes: Optional[Sequence[Expr]] = None) -> Tuple[Interval, ...]:
        """Symbolic intervals of the remapped dimensions.

        ``dim_sizes`` defaults to the symbolic ``N1..Nr`` variables.
        """
        sizes = tuple(dim_sizes) if dim_sizes is not None else dim_size_vars(self.order)
        return remapped_dim_intervals(self.remap, sizes, self.param_exprs())

    def _concrete_dims(self, dims: Tuple[int, ...]):
        """Memoized (extents, lows) per concrete ``dims``.

        Evaluating the symbolic intervals costs a symbolic-simplification
        pass; every :class:`~repro.storage.tensor.Tensor` construction
        needs the result, so conversions would otherwise pay it per call.
        Formats are immutable and interned, making the memo safe; it is
        bounded so unbounded distinct shapes cannot grow it without limit.
        """
        memo = self.__dict__.get("_concrete_dims_memo")
        if memo is None:
            memo = {}
            object.__setattr__(self, "_concrete_dims_memo", memo)
        entry = memo.get(dims)
        if entry is None:
            env = {f"N{d + 1}": size for d, size in enumerate(dims)}
            extents = []
            lows = []
            for interval in self.dim_intervals():
                extent = interval.extent()
                extents.append(
                    None if extent is None else int(evaluate_expr(extent, env))
                )
                lo = interval.lo
                lows.append(
                    None if lo is None else int(evaluate_expr(lo, env))
                )
            if len(memo) >= 256:
                memo.clear()
            entry = memo[dims] = (tuple(extents), tuple(lows))
        return entry

    def concrete_dim_extents(self, dims: Sequence[int]):
        """Numeric extents of remapped dimensions for concrete ``dims``.

        Counter dimensions have no static extent and yield ``None`` (their
        runtime extent lives in tensor metadata, e.g. ELL's ``K``).
        """
        return self._concrete_dims(tuple(int(d) for d in dims))[0]

    def concrete_dim_lo(self, dims: Sequence[int]):
        """Numeric lower bounds of remapped dimensions (e.g. ``-(N-1)``)."""
        return self._concrete_dims(tuple(int(d) for d in dims))[1]

    # ------------------------------------------------------------------
    def signature(self) -> str:
        """Structural identity for codegen cache keys."""
        params = ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        levels = ";".join(level.signature() for level in self.levels)
        return f"{self.name}[{self.remap}][{levels}][{params}]"

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Format {self.signature()}>"


def make_format(
    name: str,
    remap_text: str,
    levels: Sequence[Level],
    inverse_text: Optional[str] = None,
    params: Optional[Dict[str, int]] = None,
) -> Format:
    """Convenience constructor parsing the remap notation strings.

    This is the entry point users call to define *custom* formats::

        sky = make_format(
            "SKY", "(i,j) -> (i,j)", [DenseLevel(), BandedLevel()],
            inverse_text="(i,j) -> (i,j)",
        )
    """
    return Format(
        name=name,
        remap=parse_remap(remap_text),
        levels=tuple(levels),
        inverse=parse_remap(inverse_text) if inverse_text else None,
        params=dict(params or {}),
    )
