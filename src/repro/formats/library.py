"""The built-in format library.

Defines the formats of the paper's evaluation (COO, CSR, CSC, DIA, ELL)
plus BCSR, skyline (SKY), CSF for third-order tensors, and a HiCOO-style
Morton-blocked COO — each as a composition of level formats and a
coordinate remapping, exactly as Sections 4-6 specify them:

========  =====================================  ===============================
format    remapping                              levels
========  =====================================  ===============================
COO       ``(i,j) -> (i,j)``                     compressed(¬unique), singleton
CSR       ``(i,j) -> (i,j)``                     dense, compressed
CSC       ``(i,j) -> (j,i)``                     dense, compressed
DIA       ``(i,j) -> (j-i,i,j)``                 squeezed, dense, offset
ELL       ``(i,j) -> (#i,i,j)``                  sliced, dense, singleton
BCSR      ``(i,j) -> (i/M,j/N,i%M,j%N)``         dense, compressed, dense, dense
SKY       ``(i,j) -> (i,j)``                     dense, banded
COO3/CSF  3rd-order COO / compressed fiber tree
HICOO     Morton-blocked COO (block size B)
========  =====================================  ===============================

Functions (not constants) are exported for parameterized formats (BCSR
block shape, HiCOO block size).
"""

from __future__ import annotations

from ..levels.banded import BandedLevel
from ..levels.compressed import CompressedLevel
from ..levels.dense import DenseLevel
from ..levels.hashed import HashedLevel
from ..levels.offset import OffsetLevel
from ..levels.singleton import SingletonLevel
from ..levels.sliced import SlicedLevel
from ..levels.squeezed import SqueezedLevel
from .format import Format, make_format

#: Coordinate format: list of nonzeros with full coordinates (Figure 2a).
#: The paper evaluates unsorted COO, hence the ¬ordered level variants.
COO = make_format(
    "COO",
    "(i,j) -> (i, j)",
    [CompressedLevel(unique=False, ordered=False), SingletonLevel(ordered=False)],
    inverse_text="(i,j) -> (i, j)",
)

#: Compressed sparse row (Figure 2b): rows dense, columns compressed.
#: Columns within a row are not necessarily sorted (Section 7.2).
CSR = make_format(
    "CSR",
    "(i,j) -> (i, j)",
    [DenseLevel(), CompressedLevel(ordered=False)],
    inverse_text="(i,j) -> (i, j)",
)

#: Compressed sparse column: CSR on the transposed coordinate order.
CSC = make_format(
    "CSC",
    "(i,j) -> (j, i)",
    [DenseLevel(), CompressedLevel(ordered=False)],
    inverse_text="(j,i) -> (i, j)",
)

#: Diagonal format (Figure 2c): nonzeros grouped by diagonal offset
#: ``k = j - i``; each stored diagonal holds a slot for every row.
DIA = make_format(
    "DIA",
    "(i,j) -> (j-i, i, j)",
    [SqueezedLevel(), DenseLevel(), OffsetLevel(1, 0)],
    inverse_text="(k,i,j) -> (i, k+i)",
)

#: ELLPACK (Figure 2d): up to one nonzero per row per slice; K slices where
#: K is the maximum row degree.  The slice index is the counter ``#i``.
ELL = make_format(
    "ELL",
    "(i,j) -> (k=#i in k, i, j)",
    [SlicedLevel(), DenseLevel(), SingletonLevel()],
    inverse_text="(k,i,j) -> (i, j)",
)

#: Skyline (Figure 11 bottom): for each row, every column from the first
#: nonzero through the diagonal.  Intended for lower-triangular data.
SKY = make_format(
    "SKY",
    "(i,j) -> (i, j)",
    [DenseLevel(), BandedLevel()],
    inverse_text="(i,j) -> (i, j)",
)


def BCSR(block_rows: int = 4, block_cols: int = 4) -> Format:
    """Block CSR with ``block_rows`` x ``block_cols`` dense blocks.

    The remapping groups nonzeros by block (Section 4.1's
    ``(i,j) -> (i/M,j/N,i,j)``, here with block-local inner coordinates so
    the inner levels are plain dense levels).
    """
    return make_format(
        f"BCSR{block_rows}x{block_cols}",
        "(i,j) -> (i/M, j/N, i%M, j%N)",
        [DenseLevel(), CompressedLevel(ordered=False), DenseLevel(), DenseLevel()],
        inverse_text="(bi,bj,ii,jj) -> (bi*M+ii, bj*N+jj)",
        params={"M": block_rows, "N": block_cols},
    )


#: Doubly compressed sparse row (Buluç & Gilbert [14]): the row dimension
#: is compressed too, storing only nonempty rows — the hypersparse regime.
#: Assembling it requires *staged* edge insertion (the column level's
#: edges hang below explicitly stored row coordinates).
DCSR = make_format(
    "DCSR",
    "(i,j) -> (i, j)",
    # assembled outputs keep source order: grouped by row but not sorted,
    # exactly like the paper's unsorted-CSR convention (Section 7.2)
    [CompressedLevel(ordered=False), CompressedLevel(ordered=False)],
    inverse_text="(i,j) -> (i, j)",
)

#: Hash format (DOK-like): dense rows, per-row open-addressing column
#: tables.  Supports order-free random inserts; iteration is unordered.
#: The hashed level is Chou et al.'s map level, here with the assembly
#: facet (tables sized by the count attribute query).
HASH = make_format(
    "HASH",
    "(i,j) -> (i, j)",
    [DenseLevel(), HashedLevel()],
    inverse_text="(i,j) -> (i, j)",
)

#: Third-order COO (list of (i,j,k) triples).
COO3 = make_format(
    "COO3",
    "(i,j,k) -> (i, j, k)",
    [
        CompressedLevel(unique=False, ordered=False),
        SingletonLevel(unique=False, ordered=False),
        SingletonLevel(ordered=False),
    ],
    inverse_text="(i,j,k) -> (i, j, k)",
)

#: Compressed sparse fiber (CSF) for third-order tensors: compressed at
#: every level (Smith & Karypis [50]).
CSF = make_format(
    "CSF",
    "(i,j,k) -> (i, j, k)",
    [DenseLevel(), CompressedLevel(ordered=False), CompressedLevel(ordered=False)],
    inverse_text="(i,j,k) -> (i, j, k)",
)


def HICOO(block: int = 4) -> Format:
    """HiCOO-style format: COO over Morton-ordered fixed-size blocks.

    Nonzeros are grouped by ``block`` x ``block`` tiles; tiles are ordered
    by the Morton (bit-interleaved) code of their coordinates (Section 4.1's
    HiCOO example, restricted to matrices and one interleaving round per
    level, which is exact for block grids up to 2**2 per axis and a faithful
    approximation beyond).  Block-local coordinates are stored as
    singletons like COO.
    """
    return make_format(
        f"HICOO{block}",
        "(i,j) -> (r=i/B in s=j/B in (r&1)|((s&1)<<1), i/B, j/B, i%B, j%B)",
        [
            CompressedLevel(unique=False, ordered=False),
            SingletonLevel(unique=False, ordered=False),
            SingletonLevel(unique=False, ordered=False),
            SingletonLevel(unique=False, ordered=False),
            SingletonLevel(ordered=False),
        ],
        inverse_text="(m,bi,bj,ii,jj) -> (bi*B+ii, bj*B+jj)",
        params={"B": block},
    )


#: All parameter-free built-in formats, keyed by name.
BUILTIN_FORMATS = {
    fmt.name: fmt
    for fmt in (COO, CSR, CSC, DIA, ELL, SKY, DCSR, HASH, COO3, CSF)
}
