"""Format descriptors and the built-in format library."""

from .format import Format, FormatError, dim_size_vars, make_format
from .library import (
    BCSR,
    BUILTIN_FORMATS,
    COO,
    COO3,
    CSC,
    CSF,
    CSR,
    DCSR,
    DIA,
    ELL,
    HASH,
    HICOO,
    SKY,
)

__all__ = [
    "BCSR", "BUILTIN_FORMATS", "COO", "COO3", "CSC", "CSF", "CSR", "DCSR", "DIA", "HASH",
    "ELL", "Format", "FormatError", "HICOO", "SKY", "dim_size_vars",
    "make_format",
]
