"""Format descriptors, the built-in format library, and the registry."""

from .format import Format, FormatError, dim_size_vars, make_format
from .library import (
    BCSR,
    BUILTIN_FORMATS,
    COO,
    COO3,
    CSC,
    CSF,
    CSR,
    DCSR,
    DIA,
    ELL,
    HASH,
    HICOO,
    SKY,
)
from .registry import (
    FormatSpec,
    UnknownFormatError,
    available_formats,
    get_format,
    parse_format_spec,
    register_format,
    register_parameterized,
    resolve_format,
    spec_help,
)

__all__ = [
    "BCSR", "BUILTIN_FORMATS", "COO", "COO3", "CSC", "CSF", "CSR", "DCSR", "DIA", "HASH",
    "ELL", "Format", "FormatError", "FormatSpec", "HICOO", "SKY",
    "UnknownFormatError", "available_formats", "dim_size_vars", "get_format",
    "make_format", "parse_format_spec", "register_format",
    "register_parameterized", "resolve_format", "spec_help",
]
