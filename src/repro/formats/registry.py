"""Format registry: resolve formats by name anywhere a format is expected.

Every public API that takes a format — :func:`repro.convert`, the
:class:`~repro.convert.engine.ConversionEngine` methods, the CLI, the
benchmark harness — accepts either a :class:`~repro.formats.format.Format`
object or a *spec string* resolved through this registry::

    get_format("CSR")        # built-in, case-insensitive
    get_format("BCSR8x8")    # parameterized: 8x8-blocked BCSR
    get_format("HICOO4")     # parameterized: 4x4 Morton blocks

User-defined formats register once and are then addressable by name from
every entry point::

    fmt = make_format("MYFMT", "(i,j) -> (i,j)", [...], inverse_text=...)
    register_format(fmt)
    convert(tensor, "MYFMT")

The registry is thread-safe (the conversion engine resolves specs under
concurrent traffic) and pre-populated with the built-in library plus the
``BCSR<MxN>`` / ``HICOO<B>`` parameterized families.  Parameterized
instances are interned: ``get_format("bcsr8x8") is get_format("BCSR8X8")``,
so downstream exact-identity caches (the engine's converter cache) hit.
"""

from __future__ import annotations

import difflib
import re
from collections import OrderedDict
from threading import RLock
from typing import Callable, Dict, List, Optional, Union

from .format import Format, FormatError
from .library import BCSR, BUILTIN_FORMATS, HICOO

#: Anything the public API accepts where a format is expected.
FormatSpec = Union[Format, str]


class UnknownFormatError(FormatError):
    """Raised when a spec string does not resolve to a registered format."""


_LOCK = RLock()

#: Registered formats by canonical token (uppercased name or alias).
_FORMATS: Dict[str, Format] = {}

#: Parameterized families: prefix token -> parser of the spec suffix.
#: A parser returns a Format, or None when the suffix does not belong to
#: the family (the lookup then falls through to the unknown-format error).
_FACTORIES: Dict[str, Callable[[str], Optional[Format]]] = {}

#: Interned parameterized instances, separate from the explicit registry
#: so parsing never mutates the ``available_formats()`` listing; bounded
#: so arbitrary spec traffic cannot grow it without limit.
_PARSED: "OrderedDict[str, Format]" = OrderedDict()
_PARSED_CAPACITY = 1024


def _token(spec: str) -> str:
    return spec.strip().upper()


def register_format(fmt: Format, *aliases: str, overwrite: bool = False) -> Format:
    """Register ``fmt`` under its name (and optional aliases) and return it.

    Registration makes the format addressable as a spec string from every
    API.  Re-registering a name raises unless ``overwrite=True`` or the
    existing entry is the same object (idempotent re-registration).

    Example::

        fmt = make_format("MYFMT", "(i,j) -> (i,j)", levels, inverse_text=...)
        register_format(fmt, "MYALIAS")
        convert(tensor, "myfmt")         # specs are case-insensitive
    """
    with _LOCK:
        tokens = []
        # validate every name before inserting any, so a conflict on one
        # alias leaves the registry untouched
        for name in (fmt.name, *aliases):
            token = _token(name)
            if not token:
                raise FormatError("cannot register a format under an empty name")
            existing = _FORMATS.get(token)
            if existing is not None and existing is not fmt and not overwrite:
                raise FormatError(
                    f"format name {name!r} is already registered to "
                    f"{existing.signature()}; pass overwrite=True to replace it"
                )
            tokens.append(token)
        for token in tokens:
            _FORMATS[token] = fmt
    return fmt


def register_parameterized(
    prefix: str, parser: Callable[[str], Optional[Format]]
) -> None:
    """Register a parameterized format family.

    ``parser`` receives the spec suffix after ``prefix`` (e.g. ``"8X8"``
    for ``"BCSR8x8"``, ``""`` for a bare ``"BCSR"``) and returns the
    corresponding :class:`Format`, or ``None`` to reject the suffix.
    """
    with _LOCK:
        _FACTORIES[_token(prefix)] = parser


def parse_format_spec(spec: str) -> Format:
    """Resolve a spec string (``"CSR"``, ``"BCSR8x8"``, ``"HICOO4"``...).

    Lookup order: registered names/aliases (case-insensitive), then the
    longest matching parameterized-family prefix.  Parameterized instances
    are interned (in a bounded side table, not the registry itself) so
    repeated parses return the identical object without mutating the
    ``available_formats()`` listing.  Raises :class:`UnknownFormatError`
    otherwise.

    Example::

        parse_format_spec("CSR")                      # built-in
        parse_format_spec("BCSR8x8").params           # {'M': 8, 'N': 8}
        parse_format_spec("bcsr8x8") is parse_format_spec("BCSR8X8")  # True
    """
    if not isinstance(spec, str):
        raise TypeError(f"format spec must be a str, got {type(spec).__name__}")
    token = _token(spec)
    with _LOCK:
        fmt = _FORMATS.get(token)
        if fmt is not None:
            return fmt
        fmt = _PARSED.get(token)
        if fmt is not None:
            _PARSED.move_to_end(token)
            return fmt
        for prefix in sorted(_FACTORIES, key=len, reverse=True):
            if token.startswith(prefix):
                fmt = _FACTORIES[prefix](token[len(prefix):])
                if fmt is not None:
                    _PARSED[token] = fmt
                    _PARSED.setdefault(_token(fmt.name), fmt)
                    while len(_PARSED) > _PARSED_CAPACITY:
                        _PARSED.popitem(last=False)
                    return fmt
    suggestion = _nearest_spec(token)
    hint = f" (did you mean {suggestion!r}?)" if suggestion else ""
    raise UnknownFormatError(
        f"unknown format {spec!r}{hint}; known: {spec_help()}"
    )


def _nearest_spec(token: str) -> Optional[str]:
    """The closest registered name/family prefix to ``token``, if any."""
    with _LOCK:
        candidates = sorted(_FORMATS) + sorted(_FACTORIES)
    matches = difflib.get_close_matches(token, candidates, n=1, cutoff=0.6)
    return matches[0] if matches else None


def get_format(spec: FormatSpec) -> Format:
    """Resolve ``spec`` to a :class:`Format` (pass-through for formats)."""
    if isinstance(spec, Format):
        return spec
    return parse_format_spec(spec)


#: Alias used by call sites that emphasize the pass-through behaviour.
resolve_format = get_format


def available_formats() -> Dict[str, Format]:
    """Explicitly registered formats by canonical token (a snapshot copy).

    Parsing parameterized specs (``"BCSR8X8"``...) does *not* appear
    here — the listing is stable under spec traffic; the parameterized
    *families* are listed by :func:`spec_help`.
    """
    with _LOCK:
        return dict(_FORMATS)


def spec_help() -> str:
    """One-line human-readable summary of accepted spec strings."""
    with _LOCK:
        names = sorted(token for token in _FORMATS)
        families = sorted(_FACTORIES)
    parts: List[str] = [", ".join(names)] if names else []
    if families:
        parts.append(
            "parameterized: " + ", ".join(f"{p}<params>" for p in families)
        )
    return "; ".join(parts)


def _parse_bcsr(suffix: str) -> Optional[Format]:
    if not suffix:
        return BCSR()
    match = re.fullmatch(r"(\d+)(?:X(\d+))?", suffix)
    if not match:
        return None
    rows = int(match.group(1))
    cols = int(match.group(2)) if match.group(2) else rows
    if rows <= 0 or cols <= 0:
        return None
    return BCSR(rows, cols)


def _parse_hicoo(suffix: str) -> Optional[Format]:
    if not suffix:
        return HICOO()
    if not suffix.isdigit() or int(suffix) <= 0:
        return None
    return HICOO(int(suffix))


def _register_builtins() -> None:
    for fmt in BUILTIN_FORMATS.values():
        register_format(fmt)
    register_parameterized("BCSR", _parse_bcsr)
    register_parameterized("HICOO", _parse_hicoo)


_register_builtins()
