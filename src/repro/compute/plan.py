"""First-class compute plans: fused convert-and-compute pipelines.

A :class:`ComputePlan` is the fusion planner's full decision for one
``engine.plan_compute(src_fmt, op, dst_fmt)`` call: zero or more
conversion hops followed by one *terminal* hop that runs the compute op.
The terminal hop's kind records the fusion decision:

``fused``
    the op consumes the terminal hop's **source** directly through a
    generated compute kernel (:mod:`repro.compute.kernels`) — the
    destination format's ``pos``/``crd``/``vals`` arrays are never
    allocated;
``compute``
    the op runs over the **materialized** destination (the preceding
    conversion hops produced it) — the materialize-then-compute path.

Plans serialize to JSON at :data:`COMPUTE_PLAN_SCHEMA` (schema **3**).
The document keeps the conversion-plan layout (``schema`` / ``hops`` /
``options`` / ...) plus the ``op`` and fusion fields, so feeding a fused
plan to an old reader — :meth:`ConversionPlan.from_json
<repro.convert.plan.ConversionPlan.from_json>` supports schemas <= 2 —
**replays loudly**: the reader rejects it with "plan schema 3 is newer
than this reader" instead of silently running the hops without the op.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..convert.context import PlanError
from ..convert.features import StructuralFeatures
from ..convert.plan import (
    _PLAN_HOP_KINDS,
    format_record,
    resolve_format_record,
)
from ..convert.planner import PlanOptions, structural_key
from ..convert.router import Hop
from ..formats.format import Format
from .ops import ComputeOp, ComputeOpError, get_op

#: Version of the compute-plan JSON schema.  Compute plans begin at
#: schema 3: schemas 1–2 are conversion plans (no terminal op), so the
#: two families reject each other's documents loudly in both directions.
COMPUTE_PLAN_SCHEMA = 3

#: Hop kinds a compute plan may carry: every conversion hop kind plus
#: the two terminal compute kinds.
_COMPUTE_HOP_KINDS = _PLAN_HOP_KINDS + ("fused", "compute")

#: Kinds that may terminate a compute plan.
TERMINAL_KINDS = ("fused", "compute")


@dataclass(frozen=True)
class ComputePlan:
    """Zero or more conversion hops plus one terminal compute hop."""

    op: ComputeOp
    hops: Tuple[Hop, ...]
    #: resolved lowering backend of the terminal compute kernel
    backend: str
    options: PlanOptions
    workers: int = 0
    nnz: int = 0
    #: the fusion decision: ``"fused"`` or ``"materialize"``
    fuse: str = "materialize"
    routed: bool = False
    features: Optional[StructuralFeatures] = None
    engine: Optional[object] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.hops:
            raise PlanError("compute plan has no hops")
        terminal = self.hops[-1]
        if terminal.kind not in TERMINAL_KINDS:
            raise PlanError(
                f"compute plan must end in a compute hop, got {terminal.kind!r}"
            )
        for hop in self.hops[:-1]:
            if hop.kind in TERMINAL_KINDS:
                raise PlanError("compute hops may only terminate a plan")

    # -- shape -----------------------------------------------------------
    @property
    def src(self) -> Format:
        return self.hops[0].src

    @property
    def dst(self) -> Format:
        """The format the op consumes (fused: would-be intermediate)."""
        return self.hops[-1].dst

    @property
    def terminal(self) -> Hop:
        return self.hops[-1]

    @property
    def conversion_hops(self) -> Tuple[Hop, ...]:
        return self.hops[:-1]

    @property
    def fused(self) -> bool:
        return self.terminal.kind == "fused"

    # -- inspection ------------------------------------------------------
    def estimated_cost(self, model) -> float:
        """Estimated seconds under ``model`` at the plan's ``nnz``."""
        from ..convert.plan import _hop_cost_kind

        total = 0.0
        for hop in self.conversion_hops:
            total += model.cost(
                _hop_cost_kind(hop), self.nnz, self.workers, self.features
            )
        total += model.cost(self.terminal.kind, self.nnz, 1, self.features)
        return total

    def explain(self, model=None) -> str:
        """Human-readable rendering of the pipeline and its decision."""
        lines = [
            f"compute plan: {self.op.name} over {self.src.name} "
            f"via {self.dst.name} [{self.fuse}]"
        ]
        for hop in self.conversion_hops:
            lines.append(f"  convert {hop}")
        terminal = self.terminal
        if terminal.kind == "fused":
            lines.append(
                f"  fused   {terminal.src.name} -> {self.op.name} "
                f"[{self.backend}; {terminal.dst.name} never materialized]"
            )
        else:
            lines.append(
                f"  compute {self.op.name} over {terminal.dst.name} "
                f"[{self.backend}]"
            )
        if model is not None:
            lines.append(
                f"  estimated {self.estimated_cost(model) * 1e3:.3f} ms "
                f"at nnz={self.nnz}"
            )
        return "\n".join(lines)

    def sources(self) -> Dict[str, str]:
        """Generated source of every hop, keyed by a pipeline label."""
        from .kernels import plan_compute_kernel

        engine = self._engine()
        out: Dict[str, str] = {}
        for index, hop in enumerate(self.conversion_hops):
            backend = "vector" if hop.kind == "chunked" else hop.kind
            if backend in ("bridge", "external"):
                continue  # no generated source: library/bridge code
            out[f"{index}:{hop.src.name}->{hop.dst.name}"] = (
                engine.generated_source(hop.src, hop.dst, backend, self.options)
            )
        terminal = self.terminal
        consumed = terminal.src if terminal.kind == "fused" else terminal.dst
        generated = plan_compute_kernel(
            consumed,
            self.op,
            dst_format=terminal.dst if self.op.needs_destination else None,
            options=self.options,
            backend=self.backend,
        )
        out[f"{len(self.hops) - 1}:{self.op.name}({consumed.name})"] = (
            generated.source
        )
        return out

    # -- execution -------------------------------------------------------
    def _engine(self):
        if self.engine is not None:
            return self.engine
        from ..convert.engine import default_engine

        return default_engine()

    def run(self, tensor, x=None, alpha=None, workers: Optional[int] = None):
        """Execute the pipeline on ``tensor``; returns the op's result."""
        return self._engine().run_compute_plan(
            self, tensor, x=x, alpha=alpha, workers=workers
        )

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON snapshot (schema :data:`COMPUTE_PLAN_SCHEMA`)."""
        hops = []
        for hop in self.hops:
            record = {
                "src": format_record(hop.src),
                "dst": format_record(hop.dst),
                "kind": hop.kind,
            }
            if hop.converter is not None:
                record["converter"] = hop.converter
            hops.append(record)
        data = {
            "schema": COMPUTE_PLAN_SCHEMA,
            "kind": "repro-compute-plan",
            "op": self.op.name,
            "backend": self.backend,
            "fuse": self.fuse,
            "hops": hops,
            "options": self.options.to_dict(),
            "workers": self.workers,
            "nnz": self.nnz,
            "routed": self.routed,
        }
        if self.features is not None:
            data["features"] = self.features.to_dict()
        return data

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict, engine=None) -> "ComputePlan":
        """Rebuild a compute plan from :meth:`to_dict` output.

        Mirrors the conversion-plan loader's verification (registry
        lookup + structural-key check per format) and rejects newer
        schemas loudly; conversion-plan documents (schema <= 2, no
        ``op``) are rejected as the wrong plan family.
        """
        if not isinstance(data, dict) or "hops" not in data:
            raise PlanError("not a serialized ComputePlan")
        schema = data.get("schema")
        if not isinstance(schema, int) or schema > COMPUTE_PLAN_SCHEMA:
            raise PlanError(
                f"plan schema {schema!r} is newer than this reader "
                f"(supports <= {COMPUTE_PLAN_SCHEMA}); upgrade to load it"
            )
        if schema < COMPUTE_PLAN_SCHEMA or "op" not in data:
            raise PlanError(
                f"schema {schema!r} document is a conversion plan, not a "
                "compute plan; load it with ConversionPlan.from_json"
            )
        try:
            op = get_op(data["op"])
        except ComputeOpError as exc:
            raise PlanError(str(exc)) from None
        hop_records = data["hops"]
        if not isinstance(hop_records, list) or not hop_records:
            raise PlanError(f"malformed compute plan hops: {hop_records!r}")
        hops: List[Hop] = []
        for record in hop_records:
            if not isinstance(record, dict):
                raise PlanError(f"malformed plan hop record: {record!r}")
            kind = record.get("kind")
            if kind not in _COMPUTE_HOP_KINDS:
                raise PlanError(f"unknown compute plan hop kind {kind!r}")
            src = resolve_format_record(record.get("src", {}))
            dst = resolve_format_record(record.get("dst", {}))
            hops.append(
                Hop(src=src, dst=dst, kind=kind, converter=record.get("converter"))
            )
        for first, second in zip(hops, hops[1:]):
            if structural_key(first.dst) != structural_key(second.src):
                raise PlanError(
                    f"plan hops do not chain: {first.dst.name} then "
                    f"{second.src.name}"
                )
        backend = data.get("backend", "scalar")
        if not isinstance(backend, str):
            raise PlanError(f"malformed compute plan backend: {backend!r}")
        fuse = data.get("fuse", "materialize")
        options = PlanOptions.from_dict(data.get("options", {}))
        features = None
        if isinstance(data.get("features"), dict):
            features = StructuralFeatures.from_dict(data["features"])
        return cls(
            op=op,
            hops=tuple(hops),
            backend=backend,
            options=options,
            workers=int(data.get("workers", 0)),
            nnz=int(data.get("nnz", 0)),
            fuse=str(fuse),
            routed=bool(data.get("routed", False)),
            features=features,
            engine=engine,
        )

    @classmethod
    def from_json(cls, text: str, engine=None) -> "ComputePlan":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise PlanError(f"not a JSON compute plan: {exc}") from None
        return cls.from_dict(data, engine=engine)
