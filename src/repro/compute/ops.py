"""Compute-op descriptors for the fusion subsystem.

Each :class:`ComputeOp` describes one operation the compute-kernel IR
layer can express over the per-level iteration protocol the conversion
planner walks (Chou et al., Section 2): the generated kernel visits every
stored component of a tensor in scalar iteration order, recovers the
canonical coordinates through the format's inverse mapping, and applies
the op's update — no format-specific code anywhere.

Three ops ship with the subsystem:

``spmv``
    ``y[i] += A(i, j) * x[j]`` — the paper's motivating consumer (matrices
    are converted to CSR/DIA/ELL *in order to* run SpMV).  Requires a
    second-order tensor and a dense operand vector ``x`` of length
    ``dims[1]``; produces a dense float64 vector of length ``dims[0]``.

``row_reduce``
    ``r[i] += A(i, j, ...)`` — reduce every trailing mode into mode 0.
    Works for any order >= 1 (third-order tensors reduce modes 1..r-1),
    no operand; produces a dense float64 vector of length ``dims[0]``.

``scale``
    ``B = alpha * A`` materialized in the destination format — a full
    conversion whose value stream is scaled in flight.  Takes a scalar
    operand ``alpha``; produces a :class:`~repro.storage.tensor.Tensor`.
    Unlike the reductions, ``scale`` *assembles* the destination, so its
    fused kernel really is the conversion kernel with the value store
    rewritten; it exercises fusion on the assembly side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


class ComputeOpError(ValueError):
    """Raised for unknown ops or op/format mismatches."""


@dataclass(frozen=True)
class ComputeOp:
    """Descriptor of one fusable compute operation.

    ``operand`` names what the op consumes besides the tensor:
    ``"vector"`` (a dense float64 array), ``"scalar"`` (a float), or
    ``"none"``.  ``produces`` is ``"dense"`` (a float64 result vector) or
    ``"tensor"`` (a materialized tensor in the destination format).
    ``min_order``/``max_order`` bound the tensor orders the op accepts
    (``max_order == 0`` means unbounded).
    """

    name: str
    operand: str
    produces: str
    min_order: int
    max_order: int

    def validate_order(self, order: int) -> None:
        if order < self.min_order or (self.max_order and order > self.max_order):
            bound = (
                f"order {self.min_order}"
                if self.min_order == self.max_order
                else f"order >= {self.min_order}"
            )
            raise ComputeOpError(
                f"op {self.name!r} requires a tensor of {bound}, got order {order}"
            )

    @property
    def needs_destination(self) -> bool:
        """True when the op assembles the destination format (scale)."""
        return self.produces == "tensor"


SPMV = ComputeOp("spmv", operand="vector", produces="dense", min_order=2, max_order=2)
ROW_REDUCE = ComputeOp(
    "row_reduce", operand="none", produces="dense", min_order=1, max_order=0
)
SCALE = ComputeOp("scale", operand="scalar", produces="tensor", min_order=1, max_order=0)

#: All registered compute ops, by name.
COMPUTE_OPS: Tuple[ComputeOp, ...] = (SPMV, ROW_REDUCE, SCALE)

_BY_NAME = {op.name: op for op in COMPUTE_OPS}


def get_op(op) -> ComputeOp:
    """Resolve an op descriptor from a name (or pass one through)."""
    if isinstance(op, ComputeOp):
        return op
    try:
        return _BY_NAME[op]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise ComputeOpError(f"unknown compute op {op!r} (known: {known})") from None
