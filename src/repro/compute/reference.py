"""Format-independent oracle implementations of the compute ops.

These run on any tensor through :meth:`Tensor.to_coo` — slow,
obviously-correct Python used by the differential tests and the fuzz
harness to validate both the fused and the materialize-then-compute
paths.  They are *not* the unfused execution path (that is a generated
compute kernel over the destination format); they are the ground truth
both paths are compared against.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..storage.tensor import Tensor


def spmv_reference(tensor: Tensor, x) -> np.ndarray:
    """``y[i] = sum_j A(i, j) * x[j]`` via the canonical-content oracle."""
    x = np.asarray(x, dtype=np.float64)
    y = np.zeros(tensor.dims[0], dtype=np.float64)
    for (i, j), value in tensor.to_coo(skip_zeros=True).items():
        y[i] += value * x[j]
    return y


def row_reduce_reference(tensor: Tensor) -> np.ndarray:
    """``r[i] = sum A(i, ...)`` — every trailing mode reduced into mode 0."""
    r = np.zeros(tensor.dims[0], dtype=np.float64)
    for coords, value in tensor.to_coo(skip_zeros=True).items():
        r[coords[0]] += value
    return r


def scale_reference(tensor: Tensor, alpha: float, dst_format=None) -> Tensor:
    """``B = alpha * A`` materialized in ``dst_format`` (default: in place
    structurally — convert first, then scale the value stream)."""
    out = tensor if dst_format is None else tensor.to(dst_format)
    return Tensor(
        out.format, out.dims, dict(out.arrays), dict(out.metadata),
        np.asarray(out.vals, dtype=np.float64) * float(alpha),
    )
