"""Fused convert-and-compute pipelines.

The compute subsystem expresses a small set of compute kernels — SpMV,
row-reduce, scale — over the *same per-level iteration protocol* the
conversion planner walks (:mod:`repro.ir.levels`), so a compute op can be
lowered two ways from one description:

* **materialize-then-compute**: run the conversion plan, then a
  generated compute kernel over the destination format;
* **fused**: interleave the conversion's attribute-query / coordinate
  -remap passes with the consuming op so the intermediate format's
  ``pos``/``crd``/``vals`` arrays are never allocated.

``engine.plan_compute(src, op, dst)`` returns a :class:`ComputePlan`
choosing between them with the engine's measured :class:`CostModel
<repro.convert.router.CostModel>`; ``Tensor.spmv(x, via="CSR")`` is the
one-line entry point.  See ``docs/fusion.md``.
"""

from .kernels import (
    COMPUTE_BACKENDS,
    CompiledCompute,
    ComputeLoweringError,
    compute_native_capable,
    compute_vector_capable,
    fusable,
    plan_compute_kernel,
    resolve_compute_backend,
)
from .ops import (
    COMPUTE_OPS,
    ROW_REDUCE,
    SCALE,
    SPMV,
    ComputeOp,
    ComputeOpError,
    get_op,
)
from .plan import COMPUTE_PLAN_SCHEMA, ComputePlan
from .reference import (
    row_reduce_reference,
    scale_reference,
    spmv_reference,
)

__all__ = [
    "COMPUTE_BACKENDS",
    "COMPUTE_OPS",
    "COMPUTE_PLAN_SCHEMA",
    "CompiledCompute",
    "ComputeLoweringError",
    "ComputeOp",
    "ComputeOpError",
    "ComputePlan",
    "ROW_REDUCE",
    "SCALE",
    "SPMV",
    "compute_native_capable",
    "compute_vector_capable",
    "fusable",
    "get_op",
    "plan_compute_kernel",
    "resolve_compute_backend",
    "row_reduce_reference",
    "scale_reference",
    "spmv_reference",
]
