"""Compute-kernel code generation over the per-level iteration protocol.

This is the compute side of the fusion subsystem: one generator that
lowers a :class:`~repro.compute.ops.ComputeOp` *directly over a source
format's iteration protocol* — the same per-level walk
(``Level.emit_iteration`` / ``Level.vector_iterate``) and inverse
coordinate remapping the conversion planner uses — through the same
three backends as conversions:

* **scalar** — a per-nonzero Python loop nest from
  :class:`~repro.convert.iterate.SourceLoopEmitter`, faithful to the
  paper's generated C and golden-pinned;
* **vector** — the gather pass of :mod:`repro.ir.vector`
  (``_gather_nonzeros``) followed by a bulk reduction
  (``np.bincount`` over the canonical row stream);
* **native** — the scalar IR printed as C by
  :func:`repro.ir.native.emit_c` and built/bound by the engine's native
  kernel flow (OpenMP toolchain, serial reduction loop).

Because the kernel consumes the *source* format directly, running it on
a conversion's input **is** the fused convert-and-compute pipeline: the
attribute-query / edge-insertion / coordinate-scatter passes that exist
only to build the intermediate are never emitted, so the intermediate's
``pos``/``crd``/``vals`` arrays are never allocated.  Running the same
generator on the conversion's *output* format gives the
materialize-then-compute path; the two are validated against each other
(1e-9 relative tolerance — the adds reassociate) by the differential
tests.

The ``scale`` op is the exception that proves the design: it assembles
the destination, so its fused kernel really is the conversion kernel
with the value store rewritten in flight
(:meth:`~repro.convert.planner.ConversionPlanner._value_expr`).

Generated kernels reuse :class:`~repro.convert.planner.GeneratedConversion`
as their record type (same fields, same disk-cache schema); the op name
lives in the engine's kernel key.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..convert.context import ConversionContext, PlanError
from ..convert.iterate import SourceLoopEmitter
from ..convert.planner import (
    ConversionPlanner,
    GeneratedConversion,
    PlanOptions,
    _sanitize,
    structural_key,
)
from ..formats.format import Format
from ..ir import builder as b
from ..ir.nodes import (
    Alloc,
    AugStore,
    Block,
    Comment,
    Expr,
    FuncDef,
    Load,
    Return,
    Var,
)
from ..ir.printer import print_func
from ..ir.simplify import simplify_stmt
from ..storage.tensor import Tensor
from .ops import ComputeOp, ComputeOpError, get_op

#: Backend identifiers accepted by the compute planner.
COMPUTE_BACKENDS = ("auto", "scalar", "vector", "native")

#: Operand parameter triples (see ``CompiledCompute.arguments``): the
#: dense vector rides as a float64 array (``level == -1`` marks float in
#: the native ABI), the scalar as a non-native metadata parameter.
_X_PARAM = ("src_array", -1, "x")
_ALPHA_PARAM = ("src_meta", -1, "alpha")
_Y_OUTPUT = ("dst_array", -1, "y")


class ComputeLoweringError(ValueError):
    """Raised when an op cannot be lowered for a format/backend pair."""


def _require_inverse(src_format: Format) -> None:
    if src_format.inverse is None:
        raise ComputeLoweringError(
            f"format {src_format.name} has no inverse mapping; compute "
            "kernels recover canonical coordinates through the inverse"
        )


# ----------------------------------------------------------------------
# scalar lowering


def _reduce_name(op: ComputeOp, src_format: Format, tag: str) -> str:
    return f"compute_{op.name}_{_sanitize(src_format.name)}__{tag}"


def _plan_scalar_reduce(
    src_format: Format,
    op: ComputeOp,
    options: PlanOptions,
    tag: str = "scalar",
) -> GeneratedConversion:
    """Scalar loop nest for a reduction op (spmv / row_reduce).

    The kernel iterates the source's stored components in scalar order,
    recovers canonical coordinates through the inverse mapping, and folds
    each value into the dense result — no destination assembly at all.
    """
    ctx = ConversionContext(src_format, src_format)
    y = Var(ctx.ng.reserve("y"))
    x = Var(ctx.ng.reserve("x")) if op.operand == "vector" else None
    emitter = SourceLoopEmitter(ctx)
    vals = ctx.src_vals()

    def body(canonical: List[Expr], leaf_pos: Expr, level_coords) -> AugStore:
        value: Expr = Load(vals, leaf_pos)
        if x is not None:
            value = b.mul(value, Load(x, canonical[1]))
        return AugStore(y, canonical[0], "+", value)

    update = (
        "y[i] += A(i, j) * x[j]"
        if op.operand == "vector"
        else "y[i] += A(i, ...)"
    )
    stmts = [
        Comment(
            f"compute: {update} over the source iteration "
            "(fused; no intermediate assembly)"
        ),
        Alloc(y, ctx.dim_params[0], "float64", "zeros"),
        emitter.emit(body),
        Return((y,)),
    ]
    body_block = simplify_stmt(Block(tuple(stmts)))
    if not isinstance(body_block, Block):
        body_block = Block((body_block,))
    params = ctx.param_list()
    if x is not None:
        params = params + [(_X_PARAM, x)]
    name = _reduce_name(op, src_format, tag)
    func = FuncDef(
        name,
        tuple(var.name for _, var in params),
        body_block,
        docstring=(
            f"Compute {op.name} directly over a {src_format.name} tensor.  "
            "Generated by repro.compute (per-level iteration protocol; "
            f"inverse remapping: {src_format.inverse})."
        ),
    )
    return GeneratedConversion(
        func=func,
        source=print_func(func),
        func_name=name,
        params=[key for key, _ in params],
        outputs=[_Y_OUTPUT],
        src_format=src_format,
        dst_format=src_format,
        backend="scalar" if tag == "scalar" else tag,
    )


class _ScaledPlanner(ConversionPlanner):
    """The conversion planner with the value stream scaled in flight."""

    def __init__(self, src_format, dst_format, options=None) -> None:
        super().__init__(src_format, dst_format, options)
        self.alpha = Var(self.ctx.ng.reserve("alpha"))

    def _value_expr(self, src_vals: Var, leaf_pos: Expr) -> Expr:
        return b.mul(Load(src_vals, leaf_pos), self.alpha)


def _scale_name(src_format: Format, dst_format: Format, tag: str) -> str:
    return (
        f"compute_scale_{_sanitize(src_format.name)}"
        f"_to_{_sanitize(dst_format.name)}__{tag}"
    )


def _plan_scalar_scale(
    src_format: Format, dst_format: Format, options: PlanOptions
) -> GeneratedConversion:
    """``B = alpha * A`` materialized in ``dst_format`` — the conversion
    plan with the value store rewritten, plus an ``alpha`` parameter."""
    generated = _ScaledPlanner(src_format, dst_format, options).plan()
    name = _scale_name(src_format, dst_format, "scalar")
    func = FuncDef(
        name,
        generated.func.params + ("alpha",),
        generated.func.body,
        docstring=(
            f"Convert a {src_format.name} tensor to {dst_format.name} with "
            "every value scaled by alpha in flight.  Generated by "
            "repro.compute over the conversion planner."
        ),
    )
    return replace(
        generated,
        func=func,
        source=print_func(func),
        func_name=name,
        params=list(generated.params) + [_ALPHA_PARAM],
        backend="scalar",
    )


# ----------------------------------------------------------------------
# vector lowering


def compute_vector_capable(
    src_format: Format,
    op,
    dst_format: Optional[Format] = None,
    options: Optional[PlanOptions] = None,
) -> bool:
    """True when the op lowers through the vector backend for this pair.

    Reductions need only the *gather* half of the vector protocol (every
    source level vector-capable, default options, an inverse mapping);
    ``scale`` assembles the destination and therefore needs the full
    :func:`repro.ir.vector.vectorizable` verdict.
    """
    from ..ir.vector import vectorizable

    op = get_op(op)
    options = options or PlanOptions()
    if op.needs_destination:
        return dst_format is not None and vectorizable(
            src_format, dst_format, options
        )
    if options.key() != PlanOptions().key():
        return False
    if src_format.inverse is None:
        return False
    return all(level.vector_gather_capable for level in src_format.levels)


def _plan_vector_reduce(
    src_format: Format, op: ComputeOp, options: PlanOptions
) -> Optional[GeneratedConversion]:
    from ..cin.transforms import QueryCompileError
    from ..ir.vector import VectorEmitter, VectorLoweringError, _gather_nonzeros
    from ..levels.base import LevelFunctionError

    if not compute_vector_capable(src_format, op, None, options):
        return None
    ctx = ConversionContext(src_format, src_format)
    ctx.ng.reserve("y")
    if op.operand == "vector":
        ctx.ng.reserve("x")
    em = VectorEmitter(ctx)
    try:
        em.comment("gather: source nonzeros in scalar iteration order")
        canonical, val = _gather_nonzeros(em)
    except (LevelFunctionError, QueryCompileError, VectorLoweringError):
        return None
    rows = canonical[0].name
    n_rows = ctx.dim_params[0].name
    em.comment(f"compute: {op.name} folded over the gathered stream")
    if op.operand == "vector":
        contrib = em.assign("t", f"{val.name} * x[{canonical[1].name}]")
        weights = contrib.name
    else:
        weights = val.name
    em.emit(f"y = np.bincount({rows}, weights={weights}, minlength={n_rows})")

    name = _reduce_name(op, src_format, "vector")
    params = ctx.param_list()
    if op.operand == "vector":
        params = params + [(_X_PARAM, Var("x"))]
    lines = [
        f"def {name}({', '.join(var.name for _, var in params)}):",
        f'    """Compute {op.name} directly over a {src_format.name} tensor '
        "with bulk numpy operations",
        "",
        "    Generated by repro.compute (vector gather + bincount "
        "reduction; no intermediate assembly).",
        '    """',
    ]
    lines += [f"    {line}" for line in em.lines]
    lines.append("    return y")
    return GeneratedConversion(
        func=None,
        source="\n".join(lines),
        func_name=name,
        params=[key for key, _ in params],
        outputs=[_Y_OUTPUT],
        src_format=src_format,
        dst_format=src_format,
        backend="vector",
    )


def _plan_vector_scale(
    src_format: Format, dst_format: Format, options: PlanOptions
) -> Optional[GeneratedConversion]:
    from ..cin.compile import VectorQueryCompiler
    from ..cin.transforms import QueryCompileError
    from ..ir.vector import (
        VectorEmitter,
        VectorLoweringError,
        _counter_env,
        _dst_coords,
        _gather_nonzeros,
        _prefix_pass,
        _scatter,
        vectorizable,
    )
    from ..levels.base import LevelFunctionError

    if not vectorizable(src_format, dst_format, options):
        return None
    ctx = ConversionContext(src_format, dst_format)
    ctx.ng.reserve("alpha")
    em = VectorEmitter(ctx)
    try:
        em.comment("gather: source nonzeros in scalar iteration order")
        canonical, val = _gather_nonzeros(em)
        em.comment("compute: scale the value stream in flight")
        scaled = em.assign("sval", f"{val.name} * alpha")

        nlevels = dst_format.nlevels
        level_specs = [
            (k, spec)
            for k, level in enumerate(dst_format.levels)
            for spec in level.queries(k, nlevels)
        ]
        if level_specs:
            em.comment("analysis: attribute queries (Section 5, bulk passes)")
            compiler = VectorQueryCompiler(
                ctx, em, canonical, lambda n: _prefix_pass(em, n)
            )
            compiler.compile(level_specs)

        em.comment(f"remap: destination coordinates ({dst_format.remap})")
        counter_env = _counter_env(em, canonical)
        coords = _dst_coords(em, canonical, counter_env)

        em.comment("assembly: per-level edge insertion and bulk coordinate insertion")
        _scatter(em, coords, scaled)
    except (LevelFunctionError, QueryCompileError, VectorLoweringError):
        return None

    name = _scale_name(src_format, dst_format, "vector")
    outputs = ctx.output_list()
    params = ctx.param_list() + [(_ALPHA_PARAM, Var("alpha"))]
    lines = [
        f"def {name}({', '.join(var.name for _, var in params)}):",
        f'    """Convert a {src_format.name} tensor to {dst_format.name} '
        "with every value scaled by alpha in flight",
        "",
        "    Generated by repro.compute over the vector conversion "
        "lowering.",
        '    """',
    ]
    lines += [f"    {line}" for line in em.lines]
    lines.append(f"    return {', '.join(var.name for _, var in outputs)}")
    return GeneratedConversion(
        func=None,
        source="\n".join(lines),
        func_name=name,
        params=[key for key, _ in params],
        outputs=[key for key, _ in outputs],
        src_format=src_format,
        dst_format=dst_format,
        backend="vector",
    )


# ----------------------------------------------------------------------
# native lowering


def _plan_native_compute(
    src_format: Format,
    op: ComputeOp,
    dst_format: Optional[Format],
    options: PlanOptions,
) -> GeneratedConversion:
    """Lower a reduction op to C.  Raises ``NativeUnsupported`` for
    constructs the C emitter cannot translate — including ``scale``,
    whose float operand has no slot in the integer scalar ABI."""
    from ..ir.native import NativeUnsupported, emit_c

    if op.needs_destination:
        raise NativeUnsupported(
            "scale has no native lowering (the float operand does not fit "
            "the integer scalar ABI); the vector backend covers it"
        )
    scalar = _plan_scalar_reduce(src_format, op, options, tag="native")
    source = emit_c(scalar.func, scalar.params, scalar.outputs)
    return replace(scalar, func=None, source=source, backend="native")


def compute_native_capable(
    src_format: Format,
    op,
    dst_format: Optional[Format] = None,
    options: Optional[PlanOptions] = None,
) -> bool:
    """True when the op's scalar plan lowers to C for this format."""
    from ..ir.native import NativeUnsupported

    try:
        _plan_native_compute(
            src_format, get_op(op), dst_format, options or PlanOptions()
        )
    except (NativeUnsupported, ComputeOpError, ComputeLoweringError, PlanError):
        return False
    return True


# ----------------------------------------------------------------------
# driver


def resolve_compute_backend(
    src_format: Format,
    op,
    dst_format: Optional[Format] = None,
    options: Optional[PlanOptions] = None,
    backend: str = "auto",
) -> str:
    """Resolve ``"auto"`` to the best available compute backend.

    Mirrors :func:`repro.convert.planner.resolve_backend`: explicit
    requests are honored (and fail loudly when incapable), ``"auto"``
    picks vector when the pair gathers in bulk, scalar otherwise.
    """
    if backend not in COMPUTE_BACKENDS:
        known = ", ".join(COMPUTE_BACKENDS)
        raise ComputeLoweringError(
            f"unknown compute backend {backend!r} (known: {known})"
        )
    op = get_op(op)
    options = options or PlanOptions()
    if backend != "auto":
        return backend
    if compute_vector_capable(src_format, op, dst_format, options):
        return "vector"
    return "scalar"


def plan_compute_kernel(
    src_format: Format,
    op,
    dst_format: Optional[Format] = None,
    options: Optional[PlanOptions] = None,
    backend: str = "scalar",
) -> GeneratedConversion:
    """Plan one compute kernel through the requested (resolved) backend.

    For reductions the kernel consumes ``src_format`` directly and
    ``dst_format`` is ignored; for ``scale`` it assembles ``dst_format``.
    Raises :class:`ComputeLoweringError` when the backend cannot express
    the op for this format, ``NativeUnsupported`` for incapable native
    requests.
    """
    op = get_op(op)
    options = options or PlanOptions()
    op.validate_order(src_format.order)
    _require_inverse(src_format)
    if op.needs_destination and dst_format is None:
        raise ComputeLoweringError(
            f"op {op.name!r} materializes the destination; pass dst_format"
        )
    if backend == "native":
        return _plan_native_compute(src_format, op, dst_format, options)
    if backend == "vector":
        if op.needs_destination:
            generated = _plan_vector_scale(src_format, dst_format, options)
        else:
            generated = _plan_vector_reduce(src_format, op, options)
        if generated is None:
            raise ComputeLoweringError(
                f"op {op.name!r} over {src_format.name} has no vector lowering"
            )
        return generated
    if backend != "scalar":
        raise ComputeLoweringError(
            f"backend {backend!r} must be resolved before planning"
        )
    if op.needs_destination:
        return _plan_scalar_scale(src_format, dst_format, options)
    return _plan_scalar_reduce(src_format, op, options)


def fusable(
    src_format: Format,
    op,
    dst_format: Optional[Format] = None,
    options: Optional[PlanOptions] = None,
) -> bool:
    """True when the op can consume ``src_format`` directly (a fused hop).

    Light structural check — order bounds, an inverse mapping, and a
    destination for materializing ops; actual planning may still raise
    for exotic pairs, which callers treat as not fusable.
    """
    try:
        op = get_op(op)
        op.validate_order(src_format.order)
    except ComputeOpError:
        return False
    if src_format.inverse is None:
        return False
    if op.needs_destination and dst_format is None:
        return False
    return True


# ----------------------------------------------------------------------
# the runnable wrapper


@dataclass
class CompiledCompute:
    """A ready-to-run compute kernel for one (format, op) pair."""

    generated: GeneratedConversion
    func: Callable
    op: ComputeOp

    @property
    def source(self) -> str:
        return self.generated.source

    @property
    def backend(self) -> str:
        return self.generated.backend

    @property
    def src_format(self) -> Format:
        return self.generated.src_format

    @property
    def dst_format(self) -> Format:
        return self.generated.dst_format

    # ------------------------------------------------------------------
    def arguments(
        self, tensor: Tensor, x=None, alpha: Optional[float] = None
    ) -> List:
        """Marshal the tensor and operand into kernel arguments."""
        args = []
        for side, k, name in self.generated.params:
            if (side, k, name) == _X_PARAM:
                args.append(x)
            elif (side, k, name) == _ALPHA_PARAM:
                args.append(alpha)
            elif side == "src_array":
                args.append(tensor.vals if k == -1 else tensor.array(k, name))
            elif side == "src_meta":
                args.append(tensor.meta(k, name))
            else:  # dimension size
                args.append(tensor.dims[k])
        return args

    def _check_operands(self, tensor: Tensor, x, alpha):
        if structural_key(tensor.format) != structural_key(self.src_format):
            raise ValueError(
                f"compute kernel expects {self.src_format.name}, "
                f"got {tensor.format.name}"
            )
        if self.op.operand == "vector":
            if x is None:
                raise ValueError(f"op {self.op.name!r} needs an operand vector x")
            x = np.ascontiguousarray(x, dtype=np.float64)
            if x.shape != (tensor.dims[1],):
                raise ValueError(
                    f"operand x has shape {x.shape}, expected "
                    f"({tensor.dims[1]},)"
                )
        elif self.op.operand == "scalar":
            if alpha is None:
                raise ValueError(f"op {self.op.name!r} needs a scalar alpha")
            alpha = float(alpha)
        return x, alpha

    def _build_tensor(self, tensor: Tensor, results) -> Tensor:
        if not isinstance(results, tuple):
            results = (results,)
        arrays = {}
        meta = {}
        vals = None
        for (side, k, name), value in zip(self.generated.outputs, results):
            if side == "dst_array" and k == -1:
                vals = value
            elif side == "dst_array":
                arrays[(k, name)] = value
            else:
                meta[(k, name)] = int(value)
        if vals is None:
            raise RuntimeError("generated routine returned no values array")
        return Tensor(self.dst_format, tensor.dims, arrays, meta, vals)

    def __call__(
        self,
        tensor: Tensor,
        x=None,
        alpha: Optional[float] = None,
        workers: int = 0,
    ):
        """Run the kernel; returns a dense float64 vector (reductions) or
        a :class:`Tensor` in the destination format (``scale``)."""
        x, alpha = self._check_operands(tensor, x, alpha)
        args = self.arguments(tensor, x=x, alpha=alpha)
        if self.backend == "native":
            results = self.func(*args, n_workers=workers)
        else:
            results = self.func(*args)
        if self.op.produces == "dense":
            out = results if not isinstance(results, tuple) else results[0]
            return np.asarray(out, dtype=np.float64)
        return self._build_tensor(tensor, results)
