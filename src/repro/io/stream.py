"""Bounded-memory coordinate stream readers and writers.

The in-memory reader (:mod:`repro.io.matrixmarket`) materializes the
whole nonzero list before building a tensor; for sources bigger than RAM
that is exactly the step that cannot happen.  This module reads the same
sources **chunk by chunk**: a :class:`CoordinateStream` knows the tensor
dimensions and total entry count up front (from the header) and yields
bounded-size numpy chunks ``(crd_0, ..., crd_{order-1}, vals)`` of at
most ``chunk_nnz`` entries, never holding more than one chunk at a time.
The streaming conversion executor (:mod:`repro.convert.streamed`) makes
one pass over ``chunks()`` per plan phase, so a stream must be
re-iterable — both readers re-open the file on every ``chunks()`` call.

Two source formats are supported, sniffed by :func:`open_stream`:

* **Matrix Market** coordinate files (``.mtx`` / ``.mtx.gz``), the same
  subset :func:`repro.io.matrixmarket.read_matrix_market` accepts
  (real/integer/pattern, general/symmetric/skew-symmetric).  Mirrored
  entries of symmetric files are emitted in the in-memory reader's exact
  order (each mirror directly after its stored entry), so a streamed
  conversion is bit-identical to converting ``read_tensor(path)``.
* The **binary wire format** (``REPROCOO1``): a fixed header followed by
  columnar little-endian ``int64`` coordinate sections and a ``float64``
  value section.  This is the fast path — chunked reads are plain
  ``np.fromfile`` slices — and the format the bench fixture generator
  and :func:`write_stream` produce.

Every malformed input — bad header, truncated payload (mid-chunk EOF),
an entry count disagreeing with the header — raises :class:`StreamError`
with the offending path in the message, never a numpy shape error.
"""

from __future__ import annotations

import gzip
import io
import os
import struct
from typing import Iterator, List, Sequence, Tuple

import numpy as np

__all__ = [
    "BINARY_MAGIC",
    "DEFAULT_CHUNK_NNZ",
    "BinaryStream",
    "BinaryStreamWriter",
    "CoordinateStream",
    "MatrixMarketStream",
    "StreamError",
    "open_stream",
    "write_stream",
]

#: Default chunk bound (entries per chunk) of the streaming readers.
DEFAULT_CHUNK_NNZ = 1 << 20

#: Magic prefix of the binary coordinate-stream format (8 bytes).
BINARY_MAGIC = b"REPROCOO"

#: Version written after the magic; bump on any layout change.
BINARY_VERSION = 1

_HEADER = struct.Struct("<8sqq")  # magic, version, order
_I64 = np.dtype("<i8")
_F64 = np.dtype("<f8")


class StreamError(ValueError):
    """A coordinate stream could not be parsed or validated."""


def _open_text(path):
    if str(path).endswith(".gz"):
        return gzip.open(path, "rt")
    return open(path, "r")


class CoordinateStream:
    """A re-iterable, bounded-memory source of coordinate chunks.

    Attributes
    ----------
    path, dims, order, nnz, chunk_nnz:
        Source path, tensor dimensions, number of coordinate levels, the
        total entry count the stream yields (after symmetry expansion),
        and the per-chunk entry bound.
    """

    path: str
    dims: Tuple[int, ...]
    order: int
    nnz: int
    chunk_nnz: int

    def chunks(self) -> Iterator[Tuple[np.ndarray, ...]]:
        """Yield ``(crd_0, ..., crd_{order-1}, vals)`` chunks in order.

        Coordinates are zero-based ``int64``, values ``float64``; every
        chunk holds at most ``chunk_nnz`` entries.  An empty stream
        yields exactly one zero-length chunk, so consumers that fold
        over chunks always run at least once.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _check_bounds(self, columns: Sequence[np.ndarray]) -> None:
        for k, column in enumerate(columns[: self.order]):
            if column.size == 0:
                continue
            lo, hi = int(column.min()), int(column.max())
            if lo < 0 or hi >= self.dims[k]:
                raise StreamError(
                    f"{self.path}: coordinate {hi if hi >= self.dims[k] else lo}"
                    f" out of bounds for dimension {k} of size {self.dims[k]}"
                )


class MatrixMarketStream(CoordinateStream):
    """Streaming Matrix Market coordinate reader (``.mtx`` / ``.mtx.gz``)."""

    def __init__(self, path, chunk_nnz: int = DEFAULT_CHUNK_NNZ) -> None:
        if chunk_nnz < 1:
            raise ValueError(f"chunk_nnz must be >= 1, got {chunk_nnz}")
        self.path = os.fspath(path)
        self.chunk_nnz = int(chunk_nnz)
        self.order = 2
        with _open_text(self.path) as handle:
            self._field, self._symmetry, self.dims, self._stored = (
                self._parse_header(handle)
            )
        if self._symmetry == "general":
            self.nnz = self._stored
        else:
            # Mirrored off-diagonal entries double up; one cheap text
            # pre-pass pins the expanded count (needed up front to size
            # the destination arrays).
            self.nnz = self._count_expanded()

    # ------------------------------------------------------------------
    def _parse_header(self, handle):
        header = handle.readline().strip().split()
        if len(header) < 4 or header[0] != "%%MatrixMarket" or header[1] != "matrix":
            raise StreamError(f"{self.path}: not a Matrix Market matrix file")
        layout, field = header[2].lower(), header[3].lower()
        symmetry = header[4].lower() if len(header) > 4 else "general"
        if layout != "coordinate":
            raise StreamError(f"{self.path}: only coordinate layout is supported")
        if field not in ("real", "integer", "pattern"):
            raise StreamError(f"{self.path}: unsupported field {field!r}")
        if symmetry not in ("general", "symmetric", "skew-symmetric"):
            raise StreamError(f"{self.path}: unsupported symmetry {symmetry!r}")
        line = handle.readline()
        while line.startswith("%"):
            line = handle.readline()
        try:
            nrows, ncols, stored = (int(tok) for tok in line.split())
        except ValueError as exc:
            raise StreamError(f"{self.path}: bad size line {line!r}") from exc
        if nrows < 0 or ncols < 0 or stored < 0:
            raise StreamError(f"{self.path}: bad size line {line!r}")
        return field, symmetry, (nrows, ncols), stored

    def _entries(self):
        """Parse entries, applying symmetry expansion in reader order."""
        with _open_text(self.path) as handle:
            self._parse_header(handle)
            seen = 0
            for line in handle:
                tokens = line.split()
                if not tokens:
                    continue
                if seen >= self._stored:
                    raise StreamError(
                        f"{self.path}: {self._stored} entries declared but "
                        f"more follow (entry count disagrees with header)"
                    )
                try:
                    i, j = int(tokens[0]) - 1, int(tokens[1]) - 1
                    value = 1.0 if self._field == "pattern" else float(tokens[2])
                except (ValueError, IndexError) as exc:
                    raise StreamError(
                        f"{self.path}: bad entry line {line!r}"
                    ) from exc
                seen += 1
                yield i, j, value
                if self._symmetry != "general" and i != j:
                    yield j, i, (
                        -value if self._symmetry == "skew-symmetric" else value
                    )
            if seen != self._stored:
                raise StreamError(
                    f"{self.path}: truncated entry list — header declares "
                    f"{self._stored} entries, found {seen}"
                )

    def _count_expanded(self) -> int:
        return sum(1 for _ in self._entries())

    def chunks(self) -> Iterator[Tuple[np.ndarray, ...]]:
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        emitted = False

        def flush():
            chunk = (
                np.array(rows, dtype=np.int64),
                np.array(cols, dtype=np.int64),
                np.array(vals, dtype=np.float64),
            )
            self._check_bounds(chunk)
            rows.clear(), cols.clear(), vals.clear()
            return chunk

        for i, j, value in self._entries():
            rows.append(i), cols.append(j), vals.append(value)
            if len(rows) >= self.chunk_nnz:
                emitted = True
                yield flush()
        if rows or not emitted:
            yield flush()


class BinaryStream(CoordinateStream):
    """Streaming reader of the ``REPROCOO`` binary wire format.

    Layout: ``magic(8) | version(i64) | order(i64) | dims[order](i64)
    | nnz(i64)`` followed by ``order`` contiguous ``int64`` coordinate
    sections and one ``float64`` value section, each of ``nnz`` entries.
    The columnar layout makes a chunked read of column ``k`` a single
    seek plus a bounded ``np.fromfile``.
    """

    def __init__(self, path, chunk_nnz: int = DEFAULT_CHUNK_NNZ) -> None:
        if chunk_nnz < 1:
            raise ValueError(f"chunk_nnz must be >= 1, got {chunk_nnz}")
        self.path = os.fspath(path)
        self.chunk_nnz = int(chunk_nnz)
        with open(self.path, "rb") as handle:
            head = handle.read(_HEADER.size)
            if len(head) < _HEADER.size:
                raise StreamError(f"{self.path}: truncated stream header")
            magic, version, order = _HEADER.unpack(head)
            if magic != BINARY_MAGIC:
                raise StreamError(f"{self.path}: not a {BINARY_MAGIC.decode()} stream")
            if version != BINARY_VERSION:
                raise StreamError(
                    f"{self.path}: unsupported stream version {version} "
                    f"(expected {BINARY_VERSION})"
                )
            if not 1 <= order <= 16:
                raise StreamError(f"{self.path}: implausible order {order}")
            self.order = int(order)
            tail = handle.read(8 * (self.order + 1))
            if len(tail) < 8 * (self.order + 1):
                raise StreamError(f"{self.path}: truncated stream header")
            values = struct.unpack(f"<{self.order + 1}q", tail)
            self.dims = tuple(int(d) for d in values[: self.order])
            self.nnz = int(values[self.order])
        if self.nnz < 0 or any(d < 0 for d in self.dims):
            raise StreamError(f"{self.path}: negative sizes in stream header")
        self._payload = _HEADER.size + 8 * (self.order + 1)
        expected = self._payload + self.nnz * 8 * (self.order + 1)
        actual = os.path.getsize(self.path)
        if actual != expected:
            raise StreamError(
                f"{self.path}: payload size disagrees with header — expected "
                f"{expected} bytes for {self.nnz} entries, file has {actual} "
                f"({'mid-chunk EOF' if actual < expected else 'trailing data'})"
            )

    def _section(self, column: int) -> int:
        """Byte offset of coordinate section ``column`` (order = vals)."""
        return self._payload + column * 8 * self.nnz

    def chunks(self) -> Iterator[Tuple[np.ndarray, ...]]:
        with open(self.path, "rb") as handle:
            for start in range(0, max(self.nnz, 1), self.chunk_nnz):
                count = min(self.chunk_nnz, self.nnz - start)
                columns = []
                for column in range(self.order + 1):
                    handle.seek(self._section(column) + 8 * start)
                    dtype = _F64 if column == self.order else _I64
                    data = np.fromfile(handle, dtype=dtype, count=count)
                    if data.size != count:
                        raise StreamError(
                            f"{self.path}: mid-chunk EOF at entry "
                            f"{start + data.size} of {self.nnz}"
                        )
                    columns.append(data.astype(data.dtype.newbyteorder("="),
                                               copy=False))
                self._check_bounds(columns)
                yield tuple(columns)


class BinaryStreamWriter:
    """Incremental writer of the binary wire format.

    The entry count must be known up front (the columnar layout needs
    it to place sections); :meth:`append` may then be called any number
    of times with bounded chunks.  The stream is written to a ``.tmp``
    sibling and atomically renamed into place on :meth:`close` — a
    crashed writer never leaves a partial stream behind.
    """

    def __init__(self, path, dims: Sequence[int], nnz: int) -> None:
        self.path = os.fspath(path)
        self.dims = tuple(int(d) for d in dims)
        self.order = len(self.dims)
        self.nnz = int(nnz)
        if self.nnz < 0:
            raise ValueError(f"nnz must be >= 0, got {nnz}")
        self._tmp = f"{self.path}.tmp.{os.getpid()}"
        self._written = 0
        self._closed = False
        self._handle = open(self._tmp, "wb")
        header = _HEADER.pack(BINARY_MAGIC, BINARY_VERSION, self.order)
        header += struct.pack(f"<{self.order + 1}q", *self.dims, self.nnz)
        self._payload = len(header)
        self._handle.write(header)
        self._handle.truncate(self._payload + self.nnz * 8 * (self.order + 1))

    def append(self, *columns: np.ndarray) -> None:
        """Append one chunk: ``order`` coordinate arrays plus values."""
        if self._closed:
            raise ValueError("writer is closed")
        if len(columns) != self.order + 1:
            raise ValueError(
                f"expected {self.order} coordinate arrays plus values, "
                f"got {len(columns)} arrays"
            )
        count = len(columns[0])
        if any(len(c) != count for c in columns):
            raise ValueError("chunk columns disagree in length")
        if self._written + count > self.nnz:
            raise ValueError(
                f"stream overflow: {self._written + count} entries appended, "
                f"{self.nnz} declared"
            )
        for column, data in enumerate(columns):
            dtype = _F64 if column == self.order else _I64
            start = self._payload + column * 8 * self.nnz + 8 * self._written
            self._handle.seek(start)
            np.ascontiguousarray(data, dtype=dtype).tofile(self._handle)
        self._written += count

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._handle.close()
        if self._written != self.nnz:
            os.unlink(self._tmp)
            raise ValueError(
                f"stream underflow: {self._written} entries appended, "
                f"{self.nnz} declared"
            )
        os.replace(self._tmp, self.path)

    def abort(self) -> None:
        """Discard the partially written stream."""
        if not self._closed:
            self._closed = True
            self._handle.close()
            if os.path.exists(self._tmp):
                os.unlink(self._tmp)

    def __enter__(self) -> "BinaryStreamWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def write_stream(path, dims: Sequence[int], coords, vals) -> None:
    """Write a binary coordinate stream in one shot.

    ``coords`` is either a sequence of coordinate tuples (the
    :func:`repro.storage.build.reference_build` convention) or a tuple
    of per-dimension arrays.
    """
    dims = tuple(int(d) for d in dims)
    coords = list(coords)
    if coords and isinstance(coords[0], np.ndarray) and np.ndim(coords[0]) == 1:
        columns = [np.asarray(c, dtype=np.int64) for c in coords]
    else:
        columns = [
            np.array([c[k] for c in coords], dtype=np.int64)
            for k in range(len(dims))
        ]
    values = np.asarray(vals, dtype=np.float64)
    with BinaryStreamWriter(path, dims, len(values)) as writer:
        writer.append(*columns, values)


def open_stream(path, chunk_nnz: int = DEFAULT_CHUNK_NNZ) -> CoordinateStream:
    """Open ``path`` as a coordinate stream, sniffing the format.

    Binary streams are recognized by their magic; anything else must be
    a Matrix Market file.  Raises :class:`StreamError` when the file is
    neither, or fails header validation.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        raise StreamError(f"{path}: no such file")
    if not str(path).endswith(".gz"):
        with open(path, "rb") as handle:
            if handle.read(len(BINARY_MAGIC)) == BINARY_MAGIC:
                return BinaryStream(path, chunk_nnz)
    return MatrixMarketStream(path, chunk_nnz)
