"""Matrix Market (.mtx) coordinate-format reader and writer.

The paper's evaluation inputs come from the SuiteSparse collection, which
distributes Matrix Market files.  This module supports the coordinate
subset sufficient for SuiteSparse matrices: real/integer/pattern values,
general/symmetric/skew-symmetric storage.  SuiteSparse downloads arrive
gzipped, so ``.mtx.gz`` paths are read (and written) transparently.
"""

from __future__ import annotations

import gzip
from typing import List, Optional, Sequence, Tuple

from ..formats.format import Format


class MatrixMarketError(ValueError):
    """Raised for malformed Matrix Market content."""


def _open_text(path, mode: str):
    """Open ``path`` for text I/O, through gzip for ``.gz`` paths."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_matrix_market(path) -> Tuple[Tuple[int, int], List[Tuple[int, int]], List[float]]:
    """Read a coordinate Matrix Market file (gzipped if ``path`` ends
    in ``.gz``, as SuiteSparse distributes them).

    Returns ``(dims, coords, vals)`` with zero-based coordinates.
    Symmetric and skew-symmetric storage is expanded to general form.
    """
    with _open_text(path, "r") as handle:
        header = handle.readline().strip().split()
        if len(header) < 4 or header[0] != "%%MatrixMarket" or header[1] != "matrix":
            raise MatrixMarketError(f"{path}: not a Matrix Market matrix file")
        layout, field = header[2].lower(), header[3].lower()
        symmetry = header[4].lower() if len(header) > 4 else "general"
        if layout != "coordinate":
            raise MatrixMarketError(f"{path}: only coordinate layout is supported")
        if field not in ("real", "integer", "pattern"):
            raise MatrixMarketError(f"{path}: unsupported field {field!r}")
        if symmetry not in ("general", "symmetric", "skew-symmetric"):
            raise MatrixMarketError(f"{path}: unsupported symmetry {symmetry!r}")

        line = handle.readline()
        while line.startswith("%"):
            line = handle.readline()
        try:
            nrows, ncols, nnz = (int(tok) for tok in line.split())
        except ValueError as exc:
            raise MatrixMarketError(f"{path}: bad size line {line!r}") from exc

        coords: List[Tuple[int, int]] = []
        vals: List[float] = []
        for _ in range(nnz):
            tokens = handle.readline().split()
            if len(tokens) < 2:
                raise MatrixMarketError(f"{path}: truncated entry list")
            i, j = int(tokens[0]) - 1, int(tokens[1]) - 1
            value = 1.0 if field == "pattern" else float(tokens[2])
            coords.append((i, j))
            vals.append(value)
            if symmetry != "general" and i != j:
                coords.append((j, i))
                vals.append(-value if symmetry == "skew-symmetric" else value)
    return (nrows, ncols), coords, vals


def write_matrix_market(path, dims, coords: Sequence[Tuple[int, int]], vals) -> None:
    """Write a general real coordinate Matrix Market file (1-based),
    gzipped when ``path`` ends in ``.gz``."""
    with _open_text(path, "w") as handle:
        handle.write("%%MatrixMarket matrix coordinate real general\n")
        handle.write(f"{dims[0]} {dims[1]} {len(coords)}\n")
        for (i, j), value in zip(coords, vals):
            handle.write(f"{i + 1} {j + 1} {value!r}\n")


def read_tensor(path, format: Optional[Format] = None):
    """Read a Matrix Market file directly into a tensor (default COO)."""
    from ..formats.library import COO
    from ..storage.build import reference_build

    dims, coords, vals = read_matrix_market(path)
    return reference_build(format or COO, dims, coords, vals)
