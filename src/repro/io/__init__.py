"""Tensor file IO (Matrix Market)."""

from .matrixmarket import (
    MatrixMarketError,
    read_matrix_market,
    read_tensor,
    write_matrix_market,
)

__all__ = [
    "MatrixMarketError",
    "read_matrix_market",
    "read_tensor",
    "write_matrix_market",
]
