"""Tensor file IO (Matrix Market, streaming coordinate readers)."""

from .matrixmarket import (
    MatrixMarketError,
    read_matrix_market,
    read_tensor,
    write_matrix_market,
)
from .stream import (
    BinaryStream,
    BinaryStreamWriter,
    CoordinateStream,
    MatrixMarketStream,
    StreamError,
    open_stream,
    write_stream,
)

__all__ = [
    "BinaryStream",
    "BinaryStreamWriter",
    "CoordinateStream",
    "MatrixMarketError",
    "MatrixMarketStream",
    "StreamError",
    "open_stream",
    "read_matrix_market",
    "read_tensor",
    "write_matrix_market",
    "write_stream",
]
