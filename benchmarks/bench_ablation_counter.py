"""Ablation A1 (Section 4.2): scalar counter register vs counter array.

CSR iterates rows in order, so the generated CSR→ELL routine may keep the
remapping counter ``#i`` in a scalar register; this bench forces the
general counter-array lowering to measure what the optimization saves.
"""

import pytest

from repro.bench import table3
from repro.convert import PlanOptions, make_converter
from repro.formats.library import CSR, ELL
from repro.matrices.suite import PAPER_NAMES

VARIANTS = {
    "scalar-counter": PlanOptions(),
    "counter-array": PlanOptions(force_counter_arrays=True),
}


@pytest.mark.parametrize("matrix_name", PAPER_NAMES)
@pytest.mark.parametrize("variant", list(VARIANTS))
def test_counter_ablation(benchmark, suite_map, bench_rounds, matrix_name, variant):
    entry = suite_map[matrix_name]
    if not table3.applicable("csr_ell", entry):
        pytest.skip("ELL omitted for this matrix (padding rule)")
    converter = make_converter(CSR, ELL, VARIANTS[variant])
    args = converter.arguments(entry.tensor(CSR))
    benchmark.group = f"A1-counter:{matrix_name}"
    benchmark.pedantic(lambda: converter.func(*args),
                       rounds=bench_rounds, iterations=1, warmup_rounds=0)
