"""Extension benchmark: staged CSF assembly vs sort-based construction.

Not in the paper's evaluation — this exercises the staged (multi-group)
assembly extension (DESIGN.md §6): building a compressed fiber tree (CSF)
from unsorted third-order COO.  The generated routine runs two linear
passes with a fiber-dedup map and a position memo; the baseline sorts the
nonzeros lexicographically first (what taco without the paper's
extensions, or a typical hand-written loader, must do).
"""

import random

import pytest

from repro.baselines.taco_legacy import coo3csf_sorting
from repro.convert import make_converter
from repro.formats.library import COO3, CSF
from repro.storage.build import reference_build

SIZES = [(30, 30, 30, 4_000), (50, 40, 30, 12_000), (60, 60, 60, 30_000)]


def _tensor(n0, n1, n2, nnz, seed=0):
    rng = random.Random(seed)
    cells = set()
    while len(cells) < nnz:
        cells.add((rng.randrange(n0), rng.randrange(n1), rng.randrange(n2)))
    cells = list(cells)
    rng.shuffle(cells)
    vals = [rng.uniform(1, 2) for _ in cells]
    return reference_build(COO3, (n0, n1, n2), cells, vals)


@pytest.mark.parametrize("shape", SIZES, ids=lambda s: f"nnz{s[3]}")
@pytest.mark.parametrize("impl", ["taco w/ ext (staged)", "sort-based"])
def test_coo3_to_csf(benchmark, bench_rounds, shape, impl):
    n0, n1, n2, nnz = shape
    tensor = _tensor(n0, n1, n2, nnz)
    benchmark.group = f"ext-csf:nnz{nnz}"
    if impl == "taco w/ ext (staged)":
        converter = make_converter(COO3, CSF)
        args = converter.arguments(tensor)
        fn = lambda: converter.func(*args)
    else:
        idx0 = tensor.array(0, "crd")
        idx1 = tensor.array(1, "crd")
        idx2 = tensor.array(2, "crd")
        vals = tensor.vals
        dims = tensor.dims
        fn = lambda: coo3csf_sorting(dims, idx0, idx1, idx2, vals)
    benchmark.pedantic(fn, rounds=bench_rounds, iterations=1, warmup_rounds=0)
