"""Table 3 column ``csr_ell``: CSR to ELL (SPARSKIT separately initializes caller arrays)

One benchmark per (matrix, implementation); groups are per matrix so the
pytest-benchmark report reads like a Table 3 row.  ``taco w/ ext`` is the
generated routine; ratios of the other implementations to it reproduce
the paper's normalized numbers.
"""

import pytest

from repro.matrices.suite import PAPER_NAMES

COLUMN = "csr_ell"
IMPLS = ["taco w/ ext", "taco w/ ext (vec)", "skit"]


@pytest.mark.parametrize("matrix_name", PAPER_NAMES)
@pytest.mark.parametrize("impl", IMPLS)
def test_csr_ell(benchmark, run_cell, matrix_name, impl):
    run_cell(benchmark, COLUMN, matrix_name, impl)
