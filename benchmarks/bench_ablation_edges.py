"""Ablation A3 (Section 6.1): sequenced vs unsequenced edge insertion.

COO→CSR's result rows are iterated in order, so sequenced insertion
(``pos[i+1] = pos[i] + count``) applies; the unsequenced variant writes
raw counts and finalizes with a ``prefix_sum``, which is what a parallel
or out-of-order assembly would use.
"""

import pytest

from repro.convert import PlanOptions, make_converter
from repro.formats.library import COO, CSR
from repro.matrices.suite import PAPER_NAMES

VARIANTS = {
    "sequenced": PlanOptions(),
    "unsequenced": PlanOptions(force_unsequenced_edges=True),
}


@pytest.mark.parametrize("matrix_name", PAPER_NAMES)
@pytest.mark.parametrize("variant", list(VARIANTS))
def test_edge_ablation(benchmark, suite_map, bench_rounds, matrix_name, variant):
    entry = suite_map[matrix_name]
    converter = make_converter(COO, CSR, VARIANTS[variant])
    args = converter.arguments(entry.tensor(COO))
    benchmark.group = f"A3-edges:{matrix_name}"
    benchmark.pedantic(lambda: converter.func(*args),
                       rounds=bench_rounds, iterations=1, warmup_rounds=0)
