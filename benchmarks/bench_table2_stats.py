"""Table 2: statistics of the benchmark matrices.

Benchmarks the attribute-query-based statistics computation per matrix
and, once per session, prints the synthetic-vs-paper comparison table
that EXPERIMENTS.md records.
"""

import pytest

from repro.bench.table2 import render_table2, run_table2
from repro.matrices.suite import PAPER_NAMES

_printed = False


@pytest.mark.parametrize("matrix_name", PAPER_NAMES)
def test_table2_stats(benchmark, run_cell, suite_map, matrix_name):
    entry = suite_map[matrix_name]
    entry.data()  # exclude generation from the timing
    benchmark.group = "table2:stats"
    stats = benchmark.pedantic(entry.stats, rounds=1, iterations=1)
    assert stats["nnz"] > 0
    assert stats["rows"] == entry.dims[0]


def test_table2_report(suite_map, capsys):
    """Print the full Table 2 comparison (shows up with pytest -s)."""
    global _printed
    if not _printed:
        rows = run_table2(list(suite_map.values()))
        with capsys.disabled():
            print()
            print(render_table2(rows))
        _printed = True
