"""Ablation A2 (Section 5.2 / Table 1): simplify-width-count on vs off.

With the rule on, CSR→ELL's analysis computes K from ``pos`` differences
without touching the nonzeros (Figure 6b); with it off, the analysis
falls back to the histogram pass a COO input would need.
"""

import pytest

from repro.bench import table3
from repro.convert import PlanOptions, make_converter
from repro.formats.library import CSR, ELL
from repro.matrices.suite import PAPER_NAMES

VARIANTS = {
    "width-count": PlanOptions(),
    "histogram": PlanOptions(disable_width_count=True),
}


@pytest.mark.parametrize("matrix_name", PAPER_NAMES)
@pytest.mark.parametrize("variant", list(VARIANTS))
def test_query_ablation(benchmark, suite_map, bench_rounds, matrix_name, variant):
    entry = suite_map[matrix_name]
    if not table3.applicable("csr_ell", entry):
        pytest.skip("ELL omitted for this matrix (padding rule)")
    converter = make_converter(CSR, ELL, VARIANTS[variant])
    args = converter.arguments(entry.tensor(CSR))
    benchmark.group = f"A2-queries:{matrix_name}"
    benchmark.pedantic(lambda: converter.func(*args),
                       rounds=bench_rounds, iterations=1, warmup_rounds=0)
