"""Shared fixtures for the benchmark harness.

Environment knobs:

* ``REPRO_BENCH_SCALE``  — matrix size scale factor (default 0.3; use 1.0
  to reproduce EXPERIMENTS.md's full-size numbers);
* ``REPRO_BENCH_ROUNDS`` — timing rounds per benchmark (default 2).

Every benchmark times a *prepared* call: the conversion routine has been
generated and compiled, and the input tensor built, before the clock
starts — matching the paper, which measures conversion time only.
"""

import os

import pytest

from repro.bench import table3
from repro.matrices.suite import suite

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "2"))


@pytest.fixture(scope="session")
def suite_map():
    """All 21 suite matrices, generated once per session."""
    return {entry.paper_name: entry for entry in suite(scale=SCALE)}


@pytest.fixture(scope="session")
def bench_rounds():
    return ROUNDS


@pytest.fixture
def run_cell(suite_map, bench_rounds):
    """Benchmark one Table 3 cell: (column, matrix, implementation).

    Skips cells Table 3 leaves blank (padding > 75 %, symmetric csr_csc,
    or a baseline that does not exist for the pair).
    """

    def go(benchmark, column: str, matrix_name: str, impl: str) -> None:
        entry = suite_map[matrix_name]
        if not table3.applicable(column, entry):
            pytest.skip("omitted per Table 3's 75%-padding / symmetry rules")
        if impl == "taco w/ ext":
            fn = table3._ours(column, entry)
        elif impl == "taco w/ ext (vec)":
            fn = table3._ours(column, entry, backend="vector")
        else:
            baselines = table3._baselines(column, entry)
            if impl not in baselines:
                pytest.skip(f"{impl} has no implementation for {column}")
            fn = baselines[impl]
        benchmark.group = f"{column}:{matrix_name}"
        benchmark.pedantic(fn, rounds=bench_rounds, iterations=1, warmup_rounds=0)

    return go
