"""Unit tests for IR simplification, including hypothesis soundness checks."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.ir import builder as b
from repro.ir import print_expr, simplify_expr, simplify_stmt
from repro.ir.nodes import (
    Block,
    Const,
    Expr,
    For,
    If,
    Pass,
    UnOp,
    Var,
)


def test_constant_folding():
    assert simplify_expr(b.add(2, 3)) == Const(5)
    assert simplify_expr(b.mul(4, 5)) == Const(20)
    assert simplify_expr(b.floordiv(7, 2)) == Const(3)
    assert simplify_expr(b.mod(7, 4)) == Const(3)
    assert simplify_expr(b.shl(1, 3)) == Const(8)


def test_identity_elimination():
    assert simplify_expr(b.add("x", 0)) == Var("x")
    assert simplify_expr(b.mul("x", 1)) == Var("x")
    assert simplify_expr(b.mul("x", 0)) == Const(0)
    assert simplify_expr(b.floordiv("x", 1)) == Var("x")
    assert simplify_expr(b.sub("x", "x")) == Const(0)


def test_zero_minus_becomes_negation():
    assert simplify_expr(b.sub(0, "x")) == UnOp("-", Var("x"))


def test_double_negation():
    assert simplify_expr(UnOp("-", UnOp("-", Var("x")))) == Var("x")


def test_sum_normalization_combines_terms():
    # N - 1 + 1 -> N
    assert simplify_expr(b.add(b.sub("N", 1), 1)) == Var("N")
    # (N - 1) - (-(M - 1)) + 1 -> N + M - 1
    expr = b.add(b.sub(b.sub("N", 1), b.neg(b.sub("M", 1))), 1)
    assert print_expr(simplify_expr(expr)) == "N + M - 1"


def test_sum_normalization_keeps_float_arithmetic_alone():
    expr = b.add(b.add("x", 0.5), 0.5)
    # floats are not combined by the integer normalizer (0.5 + 0.5 stays)
    simplified = simplify_expr(expr)
    assert "0.5" in print_expr(simplified)


def test_min_max_folding():
    assert simplify_expr(b.minimum(3, 5)) == Const(3)
    assert simplify_expr(b.maximum(3, 5)) == Const(5)
    assert simplify_expr(b.maximum("x", "x")) == Var("x")


def test_ternary_resolution():
    assert simplify_expr(b.ternary(True, "a", "b")) == Var("a")
    assert simplify_expr(b.ternary(False, "a", "b")) == Var("b")
    assert simplify_expr(b.ternary("c", "a", "a")) == Var("a")


def test_if_with_constant_condition_resolves():
    stmt = If(b.gt(2, 1), b.assign("x", 1), b.assign("x", 2))
    assert simplify_stmt(stmt) == b.assign("x", 1)
    stmt = If(b.gt(1, 2), b.assign("x", 1))
    assert isinstance(simplify_stmt(stmt), Pass)


def test_empty_loop_removed():
    loop = For(Var("i"), b.const(0), b.const(0), b.assign("x", 1))
    assert isinstance(simplify_stmt(loop), Pass)
    loop = For(Var("i"), b.const(0), b.var("N"), Block([]))
    assert isinstance(simplify_stmt(loop), Pass)


def test_nested_blocks_flattened():
    stmt = Block([Block([b.assign("x", 1)]), Pass(), Block([b.assign("y", 2)])])
    simplified = simplify_stmt(stmt)
    assert simplified == Block([b.assign("x", 1), b.assign("y", 2)])


# ---------------------------------------------------------------------------
# Property: simplification preserves the value of integer expressions.
# ---------------------------------------------------------------------------

_names = ("x", "y", "z")


def _exprs(depth=3):
    atoms = st.one_of(
        st.integers(min_value=-8, max_value=8).map(Const),
        st.sampled_from([Var(name) for name in _names]),
    )
    if depth == 0:
        return atoms
    sub = _exprs(depth - 1)
    ops = st.sampled_from(["+", "-", "*"])
    return st.one_of(
        atoms,
        st.builds(lambda op, lhs, rhs: b.__dict__[
            {"+": "add", "-": "sub", "*": "mul"}[op]](lhs, rhs), ops, sub, sub),
        st.builds(b.neg, sub),
    )


@settings(max_examples=200, deadline=None)
@given(expr=_exprs(), values=st.tuples(*[st.integers(-10, 10)] * 3))
def test_simplify_preserves_value(expr: Expr, values):
    env = dict(zip(_names, values))
    original = eval(print_expr(expr), {}, dict(env))
    simplified = eval(print_expr(simplify_expr(expr)), {}, dict(env))
    assert original == simplified
