"""Unit tests for the Python source printer."""

import numpy as np

from repro.ir import builder as b
from repro.ir import compile_source, print_expr, print_func, print_stmt
from repro.ir.nodes import (
    Alloc,
    AugStore,
    Block,
    Comment,
    For,
    FuncDef,
    If,
    Pass,
    Return,
    Var,
    While,
)


def test_precedence_minimal_parens():
    assert print_expr(b.add(b.mul("a", "b"), "c")) == "a * b + c"
    assert print_expr(b.mul(b.add("a", "b"), "c")) == "(a + b) * c"


def test_right_associativity_parens():
    # a - (b - c) must keep parentheses
    expr = b.sub("a", b.sub("b", "c"))
    assert print_expr(expr) == "a - (b - c)"
    # (a - b) - c needs none
    expr = b.sub(b.sub("a", "b"), "c")
    assert print_expr(expr) == "a - b - c"


def test_floordiv_and_mod():
    assert print_expr(b.floordiv("i", 4)) == "i // 4"
    assert print_expr(b.mod("j", "N")) == "j % N"


def test_bitwise_precedence():
    # (r & 1) | ((s & 1) << 1) — the HiCOO Morton expression shape
    expr = b.bitor(b.bitand("r", 1), b.shl(b.bitand("s", 1), 1))
    assert print_expr(expr) == "r & 1 | (s & 1) << 1"
    assert eval(print_expr(expr), {"r": 1, "s": 1}) == 3


def test_nested_comparisons_are_parenthesized():
    inner = b.lt("a", "b")
    expr = b.eq(inner, b.lt("c", "d"))
    printed = print_expr(expr)
    assert printed == "(a < b) == (c < d)"
    assert eval(printed, {"a": 0, "b": 1, "c": 1, "d": 0}) is False


def test_unary_and_ternary():
    assert print_expr(b.neg(b.add("a", 1))) == "-(a + 1)"
    assert print_expr(b.ternary(b.lt("a", 0), 0, "a")) == "(0 if a < 0 else a)"


def test_load_and_call():
    assert print_expr(b.load("pos", b.add("i", 1))) == "pos[i + 1]"
    assert print_expr(b.maximum("K", "n")) == "max(K, n)"


def test_store_and_aug_store():
    assert print_stmt(b.store("crd", "p", "j")) == "crd[p] = j"
    assert print_stmt(b.aug_store("count", "i", "+", 1)) == "count[i] += 1"


def test_aug_store_max_expands():
    printed = print_stmt(b.aug_store("W", "i", "max", "v"))
    assert printed == "W[i] = max(W[i], v)"


def test_aug_store_or_expands():
    printed = print_stmt(b.aug_store("nz", "k", "or", True))
    assert printed == "nz[k] = nz[k] or True"


def test_for_loop_from_zero_omits_lower_bound():
    loop = For(Var("i"), b.const(0), b.var("N"), b.assign("x", "i"))
    assert print_stmt(loop).splitlines()[0] == "for i in range(N):"


def test_for_loop_with_bounds():
    loop = For(Var("p"), b.load("pos", "i"), b.load("pos", b.add("i", 1)),
               b.assign("j", b.load("crd", "p")))
    lines = print_stmt(loop).splitlines()
    assert lines[0] == "for p in range(pos[i], pos[i + 1]):"
    assert lines[1] == "    j = crd[p]"


def test_if_else():
    stmt = If(b.lt("a", "b"), b.assign("m", "a"), b.assign("m", "b"))
    assert print_stmt(stmt).splitlines() == [
        "if a < b:", "    m = a", "else:", "    m = b",
    ]


def test_while():
    stmt = While(b.lt("p", "n"), b.aug_assign("p", "+", 1))
    assert print_stmt(stmt).splitlines() == ["while p < n:", "    p += 1"]


def test_alloc_zeros_and_empty():
    assert print_stmt(Alloc(Var("a"), b.var("n"), "int64", "zeros")) == (
        "a = np.zeros(n, dtype=np.int64)"
    )
    assert print_stmt(Alloc(Var("v"), b.mul("K", "N"), "float64", "empty")) == (
        "v = np.empty(K * N, dtype=np.float64)"
    )


def test_comment_and_pass():
    assert print_stmt(Comment("analysis phase")) == "# analysis phase"
    assert print_stmt(Pass()) == "pass"


def test_empty_block_prints_pass():
    assert print_stmt(Block([])) == "pass"


def test_function_roundtrip_executes():
    body = Block([
        Alloc(Var("count"), b.var("N"), "int64", "zeros"),
        For(Var("i"), b.const(0), b.var("N"),
            AugStore(b.var("count"), b.var("i"), "+", b.var("i"))),
        Return([b.var("count")]),
    ])
    func = FuncDef("weights", ("N",), body)
    source = print_func(func)
    compiled = compile_source(source, "weights")
    np.testing.assert_array_equal(compiled(4), np.array([0, 1, 2, 3]))
    assert compiled.__source__ == source


def test_docstring_emitted():
    func = FuncDef("f", (), Block([Return([b.const(1)])]), docstring="hello")
    assert '"""hello"""' in print_func(func)
