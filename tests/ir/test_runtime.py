"""Tests for the generated-code runtime helpers and source compilation."""

import numpy as np
import pytest

from repro.ir.runtime import compile_source, fill, prefix_sum, trim


def test_prefix_sum_matches_figure_11_semantics():
    # pos[0]=0, pos[k] = count of position k-1 -> offsets after finalize
    pos = np.array([0, 3, 1, 2, 0], dtype=np.int64)
    prefix_sum(pos, 5)
    np.testing.assert_array_equal(pos, [0, 3, 4, 6, 6])


def test_prefix_sum_partial_length():
    arr = np.array([0, 1, 1, 99], dtype=np.int64)
    prefix_sum(arr, 3)
    np.testing.assert_array_equal(arr, [0, 1, 2, 99])


def test_trim_returns_prefix_view():
    arr = np.arange(10, dtype=np.int64)
    out = trim(arr, 4)
    np.testing.assert_array_equal(out, [0, 1, 2, 3])
    out[0] = 7  # view, not copy — matches realloc-shrink semantics
    assert arr[0] == 7


def test_fill():
    arr = np.empty(5, dtype=np.int64)
    fill(arr, -1)
    assert np.all(arr == -1)


def test_compile_source_exposes_runtime():
    src = (
        "def f(n):\n"
        "    pos = np.zeros(n + 1, dtype=np.int64)\n"
        "    for i in range(n):\n"
        "        pos[i + 1] = 2\n"
        "    prefix_sum(pos, n + 1)\n"
        "    return trim(pos, n + 1), min(1, 2), max(1, 2)\n"
    )
    f = compile_source(src, "f")
    pos, lo, hi = f(3)
    np.testing.assert_array_equal(pos, [0, 2, 4, 6])
    assert (lo, hi) == (1, 2)
    assert f.__source__ == src


def test_compile_source_tracebacks_show_generated_lines():
    src = "def boom():\n    return undefined_name\n"
    boom = compile_source(src, "boom")
    try:
        boom()
    except NameError:
        import traceback

        text = traceback.format_exc()
        assert "return undefined_name" in text
    else:  # pragma: no cover
        pytest.fail("expected NameError")


def test_compile_source_extra_globals():
    f = compile_source("def g():\n    return MAGIC\n", "g", {"MAGIC": 42})
    assert f() == 42


def test_compiled_functions_are_isolated():
    f1 = compile_source("def h():\n    return 1\n", "h")
    f2 = compile_source("def h():\n    return 2\n", "h")
    assert f1() == 1 and f2() == 2
