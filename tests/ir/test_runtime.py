"""Tests for the generated-code runtime helpers and source compilation."""

import numpy as np
import pytest

from repro.ir.runtime import (
    WorkerPool,
    chunked_bincount,
    chunked_group_ranks,
    chunked_scatter,
    chunked_unique_first,
    chunked_yield_positions,
    compile_source,
    fill,
    group_ranks,
    prefix_sum,
    trim,
    unique_first,
)


def test_prefix_sum_matches_figure_11_semantics():
    # pos[0]=0, pos[k] = count of position k-1 -> offsets after finalize
    pos = np.array([0, 3, 1, 2, 0], dtype=np.int64)
    prefix_sum(pos, 5)
    np.testing.assert_array_equal(pos, [0, 3, 4, 6, 6])


def test_prefix_sum_partial_length():
    arr = np.array([0, 1, 1, 99], dtype=np.int64)
    prefix_sum(arr, 3)
    np.testing.assert_array_equal(arr, [0, 1, 2, 99])


def test_trim_returns_prefix_view():
    arr = np.arange(10, dtype=np.int64)
    out = trim(arr, 4)
    np.testing.assert_array_equal(out, [0, 1, 2, 3])
    out[0] = 7  # view, not copy — matches realloc-shrink semantics
    assert arr[0] == 7


def test_fill():
    arr = np.empty(5, dtype=np.int64)
    fill(arr, -1)
    assert np.all(arr == -1)


def test_compile_source_exposes_runtime():
    src = (
        "def f(n):\n"
        "    pos = np.zeros(n + 1, dtype=np.int64)\n"
        "    for i in range(n):\n"
        "        pos[i + 1] = 2\n"
        "    prefix_sum(pos, n + 1)\n"
        "    return trim(pos, n + 1), min(1, 2), max(1, 2)\n"
    )
    f = compile_source(src, "f")
    pos, lo, hi = f(3)
    np.testing.assert_array_equal(pos, [0, 2, 4, 6])
    assert (lo, hi) == (1, 2)
    assert f.__source__ == src


def test_compile_source_tracebacks_show_generated_lines():
    src = "def boom():\n    return undefined_name\n"
    boom = compile_source(src, "boom")
    try:
        boom()
    except NameError:
        import traceback

        text = traceback.format_exc()
        assert "return undefined_name" in text
    else:  # pragma: no cover
        pytest.fail("expected NameError")


def test_compile_source_extra_globals():
    f = compile_source("def g():\n    return MAGIC\n", "g", {"MAGIC": 42})
    assert f() == 42


def test_compiled_functions_are_isolated():
    f1 = compile_source("def h():\n    return 1\n", "h")
    f2 = compile_source("def h():\n    return 2\n", "h")
    assert f1() == 1 and f2() == 2


# ----------------------------------------------------------------------
# chunk runtime (the helpers behind repro.convert.chunked)


@pytest.fixture(scope="module", params=["serial", "one", "four", "fine"])
def pool(request):
    built = {
        "serial": None,
        "one": WorkerPool(workers=1, grain=4),
        "four": WorkerPool(workers=4, grain=4),
        "fine": WorkerPool(workers=3, grain=1),
    }[request.param]
    yield built
    if built is not None:
        built.shutdown()


def _key_cases():
    rng = np.random.default_rng(0)
    return [
        np.zeros(0, dtype=np.int64),
        np.array([5], dtype=np.int64),
        rng.integers(0, 7, 100).astype(np.int64),
        np.sort(rng.integers(0, 7, 100)).astype(np.int64),
        rng.integers(0, 10**12, 100).astype(np.int64),     # sparse key space
        np.sort(rng.integers(0, 10**12, 57)).astype(np.int64),
        np.concatenate(
            [np.sort(rng.integers(0, 9, 50)), rng.integers(0, 9, 50)]
        ).astype(np.int64),                                 # sorted prefix only
    ]


def test_chunked_group_ranks_matches_serial(pool):
    for keys in _key_cases():
        got = chunked_group_ranks(keys, pool)
        want = group_ranks(keys)
        assert got.dtype == want.dtype
        np.testing.assert_array_equal(got, want)


def test_chunked_unique_first_matches_serial(pool):
    for keys in _key_cases():
        np.testing.assert_array_equal(
            chunked_unique_first(keys, pool), unique_first(keys)
        )


def test_chunked_bincount_matches_serial(pool):
    for keys in _key_cases():
        if keys.size and keys.max() > 10**6:
            continue  # a bincount over a huge key space is never emitted
        got = chunked_bincount(keys, minlength=13, pool=pool)
        want = np.bincount(keys, minlength=13)
        assert got.dtype == want.dtype
        np.testing.assert_array_equal(got, want)


def test_chunked_yield_positions_matches_bulk_yield_pos(pool):
    rng = np.random.default_rng(1)
    for trial in range(24):
        n = int(rng.integers(0, 200))
        space = int(rng.integers(1, 9))
        parent = rng.integers(0, space, n).astype(np.int64)
        if trial % 2:
            parent.sort()  # the sorted-run fast path
        pos = np.zeros(space + 1, dtype=np.int64)
        np.cumsum(np.bincount(parent, minlength=space), out=pos[1:])
        want = (
            pos[parent] + group_ranks(parent)
            if n else np.zeros(0, dtype=np.int64)
        )
        got = chunked_yield_positions(pos, parent, pool)
        assert got.dtype == np.int64
        np.testing.assert_array_equal(got, want)


def test_chunked_yield_positions_identity_fast_path():
    # source already in destination order: positions are literally arange
    parent = np.sort(np.random.default_rng(2).integers(0, 50, 1000)).astype(
        np.int64
    )
    pos = np.zeros(51, dtype=np.int64)
    np.cumsum(np.bincount(parent, minlength=50), out=pos[1:])
    pool = WorkerPool(workers=4, grain=8)
    np.testing.assert_array_equal(
        chunked_yield_positions(pos, parent, pool), np.arange(1000)
    )
    pool.shutdown()


def test_chunked_scatter_matches_serial(pool):
    rng = np.random.default_rng(3)
    index = rng.permutation(40).astype(np.int64)
    values = rng.random(40)
    dst = np.zeros(40)
    chunked_scatter(dst, index, values, pool)
    want = np.zeros(40)
    want[index] = values
    np.testing.assert_array_equal(dst, want)
    # scalar broadcast form
    dst2 = np.zeros(40, dtype=np.int64)
    chunked_scatter(dst2, index, 7, pool)
    assert (dst2 == 7).all()


def test_worker_pool_bounds_policy():
    pool = WorkerPool(workers=4, grain=100)
    assert pool.bounds(0) == []
    assert pool.bounds(99) == [(0, 99)]        # below the grain: one chunk
    assert pool.bounds(250) == [(0, 125), (125, 250)]
    bounds = pool.bounds(1000)
    assert len(bounds) == 4                    # capped at the worker count
    assert bounds[0][0] == 0 and bounds[-1][1] == 1000
    assert all(lo < hi for lo, hi in bounds)
    pool.shutdown()
