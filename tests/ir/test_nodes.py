"""Unit tests for IR node utilities (traversal, substitution)."""

import pytest

from repro.ir import builder as b
from repro.ir.nodes import (
    BinOp,
    Const,
    UnOp,
    Var,
    expr_children,
    free_vars,
    map_expr,
    substitute,
)


def test_binop_rejects_unknown_operator():
    with pytest.raises(ValueError):
        BinOp("**", Var("a"), Var("b"))


def test_unop_rejects_unknown_operator():
    with pytest.raises(ValueError):
        UnOp("+", Var("a"))


def test_expr_children_covers_all_nodes():
    assert expr_children(Var("x")) == ()
    assert expr_children(Const(1)) == ()
    assert expr_children(b.add("x", 1)) == (Var("x"), Const(1))
    assert expr_children(b.neg("x")) == (Var("x"),)
    assert expr_children(b.load("a", "i")) == (Var("a"), Var("i"))
    assert expr_children(b.call("min", 1, 2)) == (Const(1), Const(2))
    ternary = b.ternary("c", 1, 2)
    assert expr_children(ternary) == (Var("c"), Const(1), Const(2))


def test_free_vars_collects_all_names():
    expr = b.add(b.load("pos", b.add("i", 1)), b.mul("k", "N"))
    assert free_vars(expr) == {"pos", "i", "k", "N"}


def test_substitute_replaces_variables():
    expr = b.sub("j", "i")
    result = substitute(expr, {"i": Const(2), "j": b.add("x", 1)})
    assert result == b.sub(b.add("x", 1), 2)


def test_substitute_leaves_unmapped_variables():
    expr = b.add("i", "j")
    assert substitute(expr, {"i": Var("p")}) == b.add("p", "j")


def test_map_expr_is_bottom_up():
    seen = []

    def record(node):
        seen.append(type(node).__name__)
        return node

    map_expr(b.add(b.mul("a", 2), 1), record)
    # children visited before parents
    assert seen.index("BinOp") > seen.index("Var")


def test_nodes_are_hashable_and_comparable():
    assert b.add("i", 1) == b.add("i", 1)
    assert hash(b.add("i", 1)) == hash(b.add("i", 1))
    assert b.add("i", 1) != b.add("i", 2)
