"""Tests for IR builder helpers and the name generator."""

import pytest

from repro.ir import builder as b
from repro.ir.builder import NameGenerator, to_expr
from repro.ir.nodes import (
    Assign,
    AugStore,
    BinOp,
    Block,
    Const,
    Pass,
    Store,
    Var,
)


def test_to_expr_coercions():
    assert to_expr("x") == Var("x")
    assert to_expr(3) == Const(3)
    assert to_expr(2.5) == Const(2.5)
    assert to_expr(True) == Const(True)
    assert to_expr(Var("y")) == Var("y")
    with pytest.raises(TypeError):
        to_expr([1, 2])


def test_binary_helpers_build_binops():
    assert b.add("x", 1) == BinOp("+", Var("x"), Const(1))
    assert b.floordiv("i", "M") == BinOp("//", Var("i"), Var("M"))
    assert b.shl("s", 1) == BinOp("<<", Var("s"), Const(1))
    assert b.lt("a", "b") == BinOp("<", Var("a"), Var("b"))


def test_statement_helpers():
    assert b.assign("x", 1) == Assign(Var("x"), Const(1))
    assert b.store("a", "i", "v") == Store(Var("a"), Var("i"), Var("v"))
    assert b.aug_store("a", "i", "max", 3) == AugStore(
        Var("a"), Var("i"), "max", Const(3)
    )


def test_block_flattens_and_drops_noise():
    inner = Block([b.assign("a", 1), Pass()])
    outer = b.block([inner, None, Block([]), b.assign("b", 2)])
    assert outer == Block([b.assign("a", 1), b.assign("b", 2)])


def test_name_generator_is_deterministic_and_fresh():
    ng = NameGenerator()
    assert ng.fresh("i") == "i"
    assert ng.fresh("i") == "i_2"
    assert ng.fresh("i") == "i_3"
    assert ng.fresh("j") == "j"


def test_name_generator_reserve():
    ng = NameGenerator()
    assert ng.reserve("N1") == "N1"
    assert ng.fresh("N1") == "N1_2"  # reserved names are not reissued
    ng.reserve("N1")  # idempotent
    assert ng.fresh("N1") == "N1_3"
