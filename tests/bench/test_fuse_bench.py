"""The fused-pipeline benchmark: harness, gating, report JSON."""

import dataclasses

import pytest

from repro.bench.fuse import (
    FUSE_CHECK_PAIRS,
    FUSE_PAIRS,
    check_fuse,
    fuse_json,
    render_fuse,
    run_fuse,
)
from repro.bench.table3 import compare_backend_reports
from repro.matrices.suite import get_matrix

pytest.importorskip("scipy")


@pytest.fixture(scope="module")
def results():
    return run_fuse([get_matrix("jnlbrng1", scale=0.1)], repeats=1)


def test_check_pairs_are_a_subset():
    assert set(FUSE_CHECK_PAIRS) <= set(FUSE_PAIRS)


def test_run_fuse_small_end_to_end(results):
    assert set(results) == set(FUSE_PAIRS)
    for pair, cells in results.items():
        (cell,) = cells
        assert cell.pair == pair
        assert cell.nnz > 0
        assert cell.fused_seconds > 0
        assert cell.materialized_seconds > 0
        assert cell.identical is True
        assert cell.intermediate_refs == 0
        assert cell.fused_peak_bytes > 0


def test_fused_never_references_destination_arrays(results):
    """The load-bearing acceptance property at any size: the fused
    kernel's source names no intermediate-format array, and its traced
    allocation peak sits below the materialized pipeline's."""
    for cells in results.values():
        for cell in cells:
            assert cell.intermediate_refs == 0
            if cell.backend != "native":
                assert cell.fused_peak_bytes < cell.materialized_peak_bytes


def test_render_and_json_layout(results):
    text = render_fuse(results)
    assert "fused (ms)" in text and "coo_csr" in text
    doc = fuse_json(results)
    for pair in FUSE_PAIRS:
        (cell,) = doc[pair]["cells"]
        # the shared backends-report cell layout bench compare reads
        assert {"matrix", "nnz", "fused_seconds", "materialized_seconds",
                "identical", "intermediate_refs"} <= set(cell)


def test_check_fuse_clean_and_dirty(results):
    assert check_fuse(results, tolerance=10.0) == []
    # a synthetic regression in every gated dimension
    (cell,) = results["coo_csr"]
    bad = dataclasses.replace(
        cell,
        identical=False,
        max_abs_delta=1.0,
        fused_seconds=cell.materialized_seconds * 50,
        intermediate_refs=3,
        fused_peak_bytes=cell.materialized_peak_bytes + 1,
    )
    problems = check_fuse({"coo_csr": [bad]})
    text = "\n".join(problems)
    assert len(problems) == 4
    assert "diverges" in text
    assert "intermediate-format array" in text
    assert "allocation peak" in text


def test_compare_gates_fused_seconds(results):
    """bench compare reads fuse reports like any backends report and
    flags a fused_seconds regression."""
    doc = fuse_json(results)
    slower = fuse_json(results)
    cell = slower["coo_csr"]["cells"][0]
    cell["fused_seconds"] = doc["coo_csr"]["cells"][0]["fused_seconds"] * 10
    # min_seconds=0: the smoke run's cells are sub-millisecond, which
    # the default noise floor would (correctly) skip
    problems = compare_backend_reports(doc, slower, threshold=1.5,
                                       min_seconds=0.0)
    assert any("fused" in p for p in problems)
    assert compare_backend_reports(doc, doc, threshold=1.5,
                                   min_seconds=0.0) == []
