"""Tests for the benchmark harness itself (inclusion rules, rendering)."""

from repro.baselines import scipy_ref
from repro.bench import (
    BACKEND_COLUMNS,
    COLUMNS,
    applicable,
    backends_json,
    check_auto,
    compare_backend_reports,
    format_table,
    geomean,
    render_ablations,
    render_backends,
    render_table2,
    render_table3,
    run_backends,
    run_table2,
    time_call,
)
from repro.bench.ablations import AblationResult
from repro.bench.table3 import (
    BackendCellResult,
    CellResult,
    _baselines,
    _ours,
)
from repro.matrices.suite import get_matrix, suite


def test_geomean():
    assert abs(geomean([2.0, 8.0]) - 4.0) < 1e-12
    assert geomean([]) is None
    assert abs(geomean([None, 3.0]) - 3.0) < 1e-12


def test_format_table_alignment():
    text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) for line in lines[1:])


def test_time_call_returns_positive_median():
    assert time_call(lambda: sum(range(100)), repeats=3) > 0


def test_applicable_rules():
    scircuit = get_matrix("scircuit", scale=0.2)
    cant = get_matrix("cant", scale=0.2)
    jnl = get_matrix("jnlbrng1", scale=0.2)
    assert not applicable("csr_dia", scircuit)   # >75% DIA padding
    assert not applicable("csr_ell", scircuit)   # >75% ELL padding
    assert applicable("csr_dia", cant)
    assert applicable("csr_csc", scircuit)       # nonsymmetric
    assert not applicable("csr_csc", jnl)        # symmetric
    assert applicable("coo_csr", scircuit)


def test_ours_and_baselines_execute():
    entry = get_matrix("jnlbrng1", scale=0.1)
    fn = _ours("coo_csr", entry)
    fn()
    impls = _baselines("coo_csr", entry)
    expected = {"taco w/o ext", "skit", "mkl"}
    if scipy_ref.available():
        expected.add("scipy")
    assert set(impls) == expected
    for impl in impls.values():
        impl()


def test_ours_vector_backend_executes():
    entry = get_matrix("jnlbrng1", scale=0.1)
    for column in ("coo_csr", "csr_csc", "csr_dia", "csr_ell"):
        _ours(column, entry, backend="vector")()


def test_symmetric_csc_casts_to_csr():
    entry = get_matrix("jnlbrng1", scale=0.1)
    assert entry.symmetric
    impls = _baselines("csc_dia", entry)
    # symmetric: baselines run the direct csr_dia routines (no via-CSR)
    expected = {"skit", "mkl"}
    if scipy_ref.available():
        expected.add("scipy")
    assert set(impls) == expected


def test_run_backends_reports_speedup():
    matrices = [get_matrix("jnlbrng1", scale=0.1)]
    results = run_backends(matrices, columns=["coo_csr"], repeats=1)
    (cell,) = results["coo_csr"]
    assert cell.scalar_seconds > 0 and cell.vector_seconds > 0
    assert cell.speedup == cell.scalar_seconds / cell.vector_seconds
    text = render_backends(results)
    assert "speedup" in text and "jnlbrng1_s" in text
    report = backends_json(results)
    assert report["coo_csr"]["cells"][0]["matrix"] == "jnlbrng1_s"
    assert report["coo_csr"]["geomean_speedup"] > 0


def test_backend_columns_include_per_level_pairs():
    assert set(COLUMNS) < set(BACKEND_COLUMNS)
    assert {"bcsr_csr", "dcsr_csr"} <= set(BACKEND_COLUMNS)
    entry = get_matrix("jnlbrng1", scale=0.1)
    # backend-only pairs execute (and have no Table 3 baselines)
    for column in ("bcsr_csr", "dcsr_csr"):
        _ours(column, entry, backend="vector")()
        assert _baselines(column, entry) == {}


def test_extra_backend_pairs_resolve_to_vector():
    from repro.convert import resolve_backend
    from repro.bench.table3 import _FORMATS

    assert resolve_backend(_FORMATS["bcsr"], _FORMATS["csr"]) == "vector"
    assert resolve_backend(_FORMATS["dcsr"], _FORMATS["csr"]) == "vector"


def test_run_backends_parallel_column():
    """``workers=N`` adds the chunked-executor column for chunkable pairs
    and leaves it empty for routed/scalar-only ones."""
    matrices = [get_matrix("jnlbrng1", scale=0.1)]
    results = run_backends(
        matrices, columns=["coo_csr", "hash_csr"], repeats=1, workers=2
    )
    (coo_cell,) = results["coo_csr"]
    assert coo_cell.parallel_seconds and coo_cell.parallel_seconds > 0
    assert coo_cell.parallel_speedup == (
        coo_cell.vector_seconds / coo_cell.parallel_seconds
    )
    (hash_cell,) = results["hash_csr"]
    assert hash_cell.parallel_seconds is None  # no chunked form for HASH
    text = render_backends(results)
    assert "parallel (ms)" in text
    report = backends_json(results)
    assert report["coo_csr"]["cells"][0]["parallel_seconds"] > 0
    # without workers the column stays out of the rendering
    plain = run_backends(matrices, columns=["coo_csr"], repeats=1)
    assert "parallel (ms)" not in render_backends(plain)


def test_run_backends_times_auto_cell():
    matrices = [get_matrix("jnlbrng1", scale=0.1)]
    results = run_backends(matrices, columns=["coo_csr"], repeats=1)
    (cell,) = results["coo_csr"]
    assert cell.auto_seconds and cell.auto_seconds > 0
    assert cell.auto_impl  # names the implementation the engine picked
    assert cell.best_impl in cell.fixed_cells
    assert cell.best_seconds == min(cell.fixed_cells.values())
    assert cell.auto_ratio == cell.auto_seconds / cell.best_seconds
    text = render_backends(results)
    assert "auto (ms)" in text and "best" in text
    report = backends_json(results)
    recorded = report["coo_csr"]["cells"][0]
    assert recorded["auto_seconds"] > 0
    assert recorded["auto_impl"] == cell.auto_impl
    assert recorded["best_impl"] == cell.best_impl
    assert recorded["best_seconds"] == cell.best_seconds


def test_check_auto_flags_slow_auto_cells():
    fast = BackendCellResult("m", 100, 0.5, 0.010, None,
                             auto_seconds=0.0105, auto_impl="vector")
    slow = BackendCellResult("m", 100, 0.5, 0.010, None,
                             auto_seconds=0.020, auto_impl="vector")
    assert check_auto({"coo_csr": [fast]}) == []
    problems = check_auto({"coo_csr": [slow]})
    assert len(problems) == 1
    assert "coo_csr/m" in problems[0] and "2.00x" in problems[0]
    # sub-noise-floor cells never gate; cells without an auto time either
    assert check_auto({"coo_csr": [slow]}, min_seconds=1.0) == []
    bare = BackendCellResult("m", 100, 0.5, 0.010, None)
    assert check_auto({"coo_csr": [bare]}) == []


def _report(vector_seconds, parallel_seconds=None, auto_seconds=None):
    return {
        "coo_csr": {
            "geomean_speedup": 10.0,
            "cells": [
                {
                    "matrix": "jnlbrng1_s",
                    "nnz": 100,
                    "scalar_seconds": 0.5,
                    "vector_seconds": vector_seconds,
                    "speedup": 0.5 / vector_seconds,
                    "scipy_seconds": None,
                    "parallel_seconds": parallel_seconds,
                    "auto_seconds": auto_seconds,
                }
            ],
        }
    }


def test_compare_backend_reports_flags_regressions():
    baseline = _report(0.010)
    assert compare_backend_reports(baseline, _report(0.015), 2.0) == []
    regressions = compare_backend_reports(baseline, _report(0.025), 2.0)
    assert len(regressions) == 1
    assert "coo_csr/jnlbrng1_s" in regressions[0]
    # unmatched columns/matrices are ignored, not regressions
    assert compare_backend_reports({}, _report(0.025), 2.0) == []
    other = {"csr_csc": _report(0.001)["coo_csr"]}
    assert compare_backend_reports(other, _report(0.025), 2.0) == []
    # sub-noise-floor baselines never gate (shared-runner jitter exceeds 2x)
    assert compare_backend_reports(_report(0.0004), _report(0.5), 2.0) == []
    assert compare_backend_reports(_report(0.0004), _report(0.5), 2.0,
                                   min_seconds=0.0001) != []


def test_compare_backend_reports_tolerates_new_and_odd_columns():
    """A current report with columns the baseline lacks — or entries that
    are not cell tables at all (metadata, the stream report's shape) —
    must be skipped with no KeyError; only shared columns are gated."""
    baseline = _report(0.010)
    current = _report(0.015)
    # new benchmark column absent from the baseline: tolerated
    current["stream"] = {"nnz": 20_000_000, "peak_rss_bytes": 1}
    assert compare_backend_reports(baseline, current, 2.0) == []
    # metadata entries present in BOTH reports (no "cells" list)
    baseline2 = dict(baseline, generated_at="2026-08-01", stream={"v": 1})
    current2 = dict(current, generated_at="2026-08-08")
    assert compare_backend_reports(baseline2, current2, 2.0) == []
    # a baseline column predating the cell layout (scalar, not a dict)
    baseline3 = dict(baseline, stream="unstructured")
    assert compare_backend_reports(baseline3, current, 2.0) == []
    # cells missing the "matrix" key are skipped, not crashes
    broken = _report(0.025)
    del broken["coo_csr"]["cells"][0]["matrix"]
    assert compare_backend_reports(baseline, broken, 2.0) == []
    # ...and shared well-formed columns still gate regressions
    regressions = compare_backend_reports(baseline, _report(0.025), 2.0)
    assert len(regressions) == 1


def test_compare_backend_reports_gates_parallel_cells():
    baseline = _report(0.010, parallel_seconds=0.005)
    ok = _report(0.010, parallel_seconds=0.006)
    assert compare_backend_reports(baseline, ok, 2.0) == []
    bad = _report(0.010, parallel_seconds=0.050)
    regressions = compare_backend_reports(baseline, bad, 2.0)
    assert len(regressions) == 1 and "parallel" in regressions[0]
    # reports without the parallel column (older baselines) never gate it
    assert compare_backend_reports(_report(0.010), bad, 2.0) == []


def test_compare_backend_reports_gates_auto_cells():
    baseline = _report(0.010, auto_seconds=0.010)
    ok = _report(0.010, auto_seconds=0.012)
    assert compare_backend_reports(baseline, ok, 2.0) == []
    bad = _report(0.010, auto_seconds=0.050)
    regressions = compare_backend_reports(baseline, bad, 2.0)
    assert len(regressions) == 1 and "auto" in regressions[0]
    # schema-1 reports without the auto cell (older baselines) never gate it
    assert compare_backend_reports(_report(0.010), bad, 2.0) == []


def test_render_table3_includes_geomean():
    cells = [CellResult("m1", 0.01, {"skit": 2.0}),
             CellResult("m2", 0.02, {"skit": 8.0})]
    text = render_table3({"coo_csr": cells})
    assert "Geomean" in text and "4.00" in text


def test_render_table2_lists_all():
    rows = run_table2(suite(scale=0.05)[:3])
    text = render_table2(rows)
    assert "pdb1HYS_s" in text and "paper nnz" in text


def test_render_ablations():
    text = render_ablations(
        {"A1": [AblationResult("m", 0.01, 2.0), AblationResult("n", 0.01, 8.0)]}
    )
    assert "4.00" in text


def test_run_backends_routed_hash_column():
    matrices = [get_matrix("jnlbrng1", scale=0.1)]
    results = run_backends(matrices, columns=["hash_csr"], repeats=1)
    (cell,) = results["hash_csr"]
    # the fast cell is the engine's multi-hop route, and says so
    assert cell.route == "HASH -> COO -> CSR"
    assert cell.scalar_seconds > 0 and cell.vector_seconds > 0
    text = render_backends(results)
    assert "HASH -> COO -> CSR" in text
    report = backends_json(results)
    assert report["hash_csr"]["cells"][0]["route"] == "HASH -> COO -> CSR"
    # direct vector cells stay unrouted
    direct = run_backends(matrices, columns=["coo_csr"], repeats=1)
    assert direct["coo_csr"][0].route is None


def test_run_cache_warm_vs_cold(tmp_path):
    from repro.bench import cache_json, check_warm, render_cache, run_cache

    results = run_cache(["coo_csr"], cache_dir=str(tmp_path / "kernels"))
    (cell,) = results
    assert cell.pair == "coo_csr"
    assert cell.cold_seconds > 0 and cell.warm_seconds > 0
    assert cell.warm_compiles == 0
    assert cell.warm_disk_hits > 0
    assert check_warm(results) == []
    text = render_cache(results)
    assert "coo_csr" in text and "warm" in text
    report = cache_json(results)
    assert report["coo_csr"]["warm_compiles"] == 0


def test_check_warm_flags_violations():
    from repro.bench import check_warm
    from repro.bench.cache import CacheCellResult

    dirty = CacheCellResult("coo_csr", 1.0, 0.5, warm_compiles=2,
                            warm_disk_hits=0)
    problems = check_warm([dirty])
    assert len(problems) == 2
    assert "compiled" in problems[0] and "disk" in problems[1]
