"""The out-of-core streaming benchmark: fixture, gating, report JSON."""

import numpy as np
import pytest

from repro.bench.stream import (
    StreamCellResult,
    check_stream,
    ensure_fixture,
    fixture_name,
    run_stream,
    stream_json,
)
from repro.bench.table3 import compare_backend_reports
from repro.io.stream import open_stream


def test_fixture_name_carries_generator_version():
    assert fixture_name(4096).startswith("stream-fixture-v")
    assert fixture_name(4096).endswith("-4096.bin")


def test_fixture_is_deterministic(tmp_path):
    """Byte-stable across regenerations — the property the CI cache key
    (generator version + nnz) relies on."""
    first = ensure_fixture(tmp_path / "a", nnz=4096)
    second = ensure_fixture(tmp_path / "b", nnz=4096)
    payload = first.read_bytes()
    assert payload == second.read_bytes()
    # reuse, not regeneration, when the file already exists
    assert ensure_fixture(tmp_path / "a", nnz=4096) == first
    assert first.read_bytes() == payload


def test_fixture_shape(tmp_path):
    """Row-sorted entries, distinct in-row columns, even dims (so the
    2x2 blocked destinations apply), exact nnz — including a trailing
    partial row when 256 does not divide nnz."""
    path = ensure_fixture(tmp_path, nnz=1000)  # 3 full rows + 232
    stream = open_stream(path, chunk_nnz=1 << 20)
    assert stream.nnz == 1000
    assert stream.dims[0] % 2 == 0 and stream.dims[1] % 2 == 0
    (chunk,) = list(stream.chunks())
    i, j, vals = chunk
    assert np.all(np.diff(i) >= 0)
    for row in np.unique(i):
        cols = j[i == row]
        assert len(np.unique(cols)) == len(cols)
    assert np.all((vals >= 0.5) & (vals < 1.5))


def test_run_stream_small_end_to_end(tmp_path):
    """A real (subprocess) streamed run at toy size: bit-identity holds;
    the RSS budget obviously fails because the interpreter baseline
    dwarfs a toy source — exactly what check_stream must report."""
    results = run_stream(nnz=4096, pairs=("coo_csr",), chunk_nnz=512,
                         fixture_dir=tmp_path)
    (cell,) = results
    assert cell.pair == "coo_csr"
    assert cell.passes == 2
    assert cell.chunks == 16
    assert cell.bit_identical is True
    assert cell.streamed_seconds > 0
    assert cell.memory_seconds > 0
    assert cell.source_bytes == 4096 * 24
    assert cell.rss_fraction > 1  # interpreter baseline >> 96 KB source
    problems = check_stream(results)
    assert len(problems) == 1 and "peak RSS" in problems[0]


def test_run_stream_rejects_unknown_pair(tmp_path):
    with pytest.raises(ValueError, match="unknown stream pair"):
        run_stream(nnz=1024, pairs=("coo_hash",), fixture_dir=tmp_path)


def _cell(**overrides):
    base = dict(pair="coo_csr", matrix="synthetic-20M", nnz=20_000_000,
                chunk_nnz=1 << 18, passes=2, chunks=154,
                streamed_seconds=4.0, peak_rss_bytes=80 * 2**20,
                source_bytes=480 * 2**20, memory_seconds=8.0,
                bit_identical=True)
    base.update(overrides)
    return StreamCellResult(**base)


def test_check_stream_gates_budget_and_identity():
    assert check_stream([_cell()]) == []
    over = _cell(peak_rss_bytes=200 * 2**20)
    assert any("budget" in p for p in check_stream([over]))
    broken = _cell(bit_identical=False, mismatch="B2_crd: first mismatch")
    assert any("differs" in p for p in check_stream([broken]))
    unverified = _cell(bit_identical=None)
    assert any("verify" in p for p in check_stream([unverified]))


def test_stream_json_layout_and_compare_gating():
    """The JSON shares the backends cell layout, so ``compare`` gates
    ``streamed_seconds`` between two stream reports."""
    baseline = stream_json([_cell()])
    assert baseline["stream_meta"]["rss_budget_fraction"] == 0.25
    cell = baseline["coo_csr"]["cells"][0]
    assert cell["matrix"] == "synthetic-20M"
    assert cell["bit_identical"] is True
    current = stream_json([_cell(streamed_seconds=12.0)])
    regressions = compare_backend_reports(baseline, current, threshold=2.0)
    assert len(regressions) == 1
    assert "streamed" in regressions[0]
    # within threshold: clean
    assert compare_backend_reports(baseline, baseline, threshold=2.0) == []
