"""Docs cannot rot silently: every ```python block in docs/*.md executes,
and every relative link in docs/*.md + README.md resolves.

Blocks in one file share a namespace and run top to bottom (so later
blocks may reuse earlier imports, like a reader following along).  Code
that is illustrative rather than runnable belongs in ```text / ```sh
fences.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
DOCS = sorted((REPO / "docs").glob("*.md"))
LINKED = DOCS + [REPO / "README.md"]

_FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.M | re.S)
# [text](target) links, ignoring images and in-page anchors
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


def _python_blocks(path: Path):
    return [match.group(1) for match in _FENCE.finditer(path.read_text())]


def test_docs_tree_exists():
    names = {path.name for path in DOCS}
    assert {"architecture.md", "formats.md", "routing.md",
            "performance.md", "plans.md", "serve.md"} <= names


@pytest.mark.parametrize("path", DOCS, ids=lambda p: p.name)
def test_docs_code_blocks_execute(path, monkeypatch):
    blocks = _python_blocks(path)
    assert blocks, f"{path.name} has no executable python blocks"
    monkeypatch.chdir(REPO)  # blocks may read repo files (BENCH_*.json)
    namespace = {"__name__": f"docs_{path.stem}"}
    for index, block in enumerate(blocks):
        try:
            exec(compile(block, f"{path.name}[block {index}]", "exec"),
                 namespace)
        except Exception as exc:  # pragma: no cover - the assert is the report
            pytest.fail(
                f"{path.name} block {index} failed: {type(exc).__name__}: {exc}"
            )


@pytest.mark.parametrize("path", LINKED, ids=lambda p: p.name)
def test_docs_links_resolve(path):
    broken = []
    for target in _LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue  # pure in-page anchor
        if not (path.parent / relative).exists():
            broken.append(target)
    assert not broken, f"{path.name}: broken links {broken}"
